package charles

// One benchmark per reproduction experiment E1–E11 (see DESIGN.md's
// experiment index and EXPERIMENTS.md for paper-vs-measured). Each bench
// regenerates the corresponding paper artifact end to end; run with
//
//	go test -bench=. -benchmem
//
// The heavyweight sweeps (E6 full scale, E10) use the quick configuration
// inside the timing loop and report the full-scale numbers via
// cmd/charles-bench.

import (
	"fmt"
	"sync"
	"testing"

	"charles/internal/experiments"
)

func benchExperiment(b *testing.B, id string, quick bool) {
	cfg := experiments.Config{Quick: quick}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Values) == 0 {
			b.Fatalf("%s produced no values", id)
		}
	}
}

// BenchmarkE1ToyRecovery — Fig 1 + Fig 2 + Example 1: recover R1–R3 from
// the toy snapshots and render the linear model tree.
func BenchmarkE1ToyRecovery(b *testing.B) { benchExperiment(b, "E1", true) }

// BenchmarkE2RankedSummaries — demo step 8: the ranked top-10 list.
func BenchmarkE2RankedSummaries(b *testing.B) { benchExperiment(b, "E2", true) }

// BenchmarkE3AttributeSelection — demo steps 4–5: the setup assistant.
func BenchmarkE3AttributeSelection(b *testing.B) { benchExperiment(b, "E3", true) }

// BenchmarkE4Treemap — demo step 10: the partition treemap.
func BenchmarkE4Treemap(b *testing.B) { benchExperiment(b, "E4", true) }

// BenchmarkE5AlphaSweep — §2: the accuracy–interpretability tradeoff.
func BenchmarkE5AlphaSweep(b *testing.B) { benchExperiment(b, "E5", true) }

// BenchmarkE6Montgomery — §3: the Montgomery County payroll scenario.
func BenchmarkE6Montgomery(b *testing.B) { benchExperiment(b, "E6", true) }

// BenchmarkE7SearchSpace — §2: search-space growth in c and t.
func BenchmarkE7SearchSpace(b *testing.B) { benchExperiment(b, "E7", true) }

// BenchmarkE8Baselines — §1: ChARLES vs global regression, cell list,
// no-change, and update distance.
func BenchmarkE8Baselines(b *testing.B) { benchExperiment(b, "E8", true) }

// BenchmarkE9Noise — robustness to noise and unchanged rows.
func BenchmarkE9Noise(b *testing.B) { benchExperiment(b, "E9", true) }

// BenchmarkE10Scalability — runtime growth in rows.
func BenchmarkE10Scalability(b *testing.B) { benchExperiment(b, "E10", true) }

// BenchmarkE11Billionaires — §3: the Forbes-billionaires scenario.
func BenchmarkE11Billionaires(b *testing.B) { benchExperiment(b, "E11", true) }

// BenchmarkE12Ablation — every engine design choice removed in turn.
func BenchmarkE12Ablation(b *testing.B) { benchExperiment(b, "E12", true) }

// BenchmarkE13Nonlinear — the nonlinear feature extension vs linear-only.
func BenchmarkE13Nonlinear(b *testing.B) { benchExperiment(b, "E13", true) }

// ---- micro-benchmarks of the pipeline stages ----

// BenchmarkSummarizeToy times the end-to-end engine on the 9-row toy data
// (the latency a demo user experiences per click).
func BenchmarkSummarizeToy(b *testing.B) {
	src, tgt := ToyDataset()
	opts := DefaultOptions("bonus")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(src, tgt, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummarize2k times the engine on a 2 000-row planted dataset with
// fixed attribute pools — the per-candidate cost driver.
func BenchmarkSummarize2k(b *testing.B) {
	d, err := PlantedDataset(PlantedConfig{N: 2000, Seed: 13, Rules: 3, RuleDepth: 2, UnchangedFrac: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(d.Src, d.Tgt, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlign times snapshot alignment alone (key index + row matching).
func BenchmarkAlign(b *testing.B) {
	d, err := MontgomeryDataset(7, 5000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Align(d.Src, d.Tgt.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuggestAttributes times the setup assistant on realistic data.
func BenchmarkSuggestAttributes(b *testing.B) {
	d, err := MontgomeryDataset(7, 5000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SuggestAttributes(d.Src, d.Tgt, d.Target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeline times the batch timeline workload: an 8-step chain with
// four evolving numeric attributes, steps fanned out over the worker pool
// and every pair's atom cache / split index shared across its targets. In CI
// it runs one iteration under -race, giving the worker-pool path race
// coverage on every push.
func BenchmarkTimeline(b *testing.B) {
	snaps, err := ChainDataset(ChainConfig{N: 300, Steps: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	base := DefaultOptions("")
	base.CondAttrs = []string{"dept", "grade"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt, err := SummarizeTimelineAll(snaps, base)
		if err != nil {
			b.Fatal(err)
		}
		if len(mt.Attrs) != 4 {
			b.Fatalf("attrs = %v", mt.Attrs)
		}
	}
}

// diffChainStore commits the 50-step chain into a memory store tuned so the
// whole chain stays delta-encoded (one anchor at the root) and warms every
// cache with one pass over the adjacent pairs — the steady state both diff
// benchmarks measure.
func diffChainStore(b *testing.B) (*VersionStore, []string) {
	b.Helper()
	snaps, err := ChainDataset(ChainConfig{N: 120, Steps: 50, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st, err := OpenStoreWith("", StoreOptions{TableCache: len(snaps), AnchorEvery: len(snaps) + 1})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, 0, len(snaps))
	parent := ""
	for _, snap := range snaps {
		v, err := st.Commit(snap, parent, "step")
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	for i := 0; i+1 < len(ids); i++ {
		if _, native, err := st.DiffResult(ids[i], ids[i+1], 1e-9); err != nil || !native {
			b.Fatalf("pair %d: native=%v err=%v", i, native, err)
		}
		if _, err := st.Checkout(ids[i+1]); err != nil {
			b.Fatal(err)
		}
	}
	return st, ids
}

// BenchmarkDiffChain50 times warm change queries over every adjacent pair of
// a 50-step delta-encoded chain. A cold query is assembled delta-natively —
// decoded ops from the ChangeSet cache plus one shared parent table, no
// target reconstruction, no CSV parse, no full row alignment — and the
// finished answer is memoized (versions are immutable, so it never goes
// stale); the warm steady state this records is the answer-cache path.
// Compare BenchmarkDiffChain50Align, the uncached checkout+align path
// answering the identical queries; the ratio is the speedup recorded in
// BENCH_baseline.json. In CI it runs one iteration under -race.
func BenchmarkDiffChain50(b *testing.B) {
	st, ids := diffChainStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j+1 < len(ids); j++ {
			res, native, err := st.DiffResult(ids[j], ids[j+1], 1e-9)
			if err != nil {
				b.Fatal(err)
			}
			if !native || res.UpdateDistance == 0 {
				b.Fatalf("pair %d: native=%v distance=%d", j, native, res.UpdateDistance)
			}
		}
	}
}

// BenchmarkDiffChain50Align answers exactly the queries of
// BenchmarkDiffChain50 through the classic path: check both versions out
// (warm table-LRU clones) and align the full row sets.
func BenchmarkDiffChain50Align(b *testing.B) {
	st, ids := diffChainStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j+1 < len(ids); j++ {
			src, err := st.Checkout(ids[j])
			if err != nil {
				b.Fatal(err)
			}
			tgt, err := st.Checkout(ids[j+1])
			if err != nil {
				b.Fatal(err)
			}
			res, err := DiffSnapshots(src, tgt, 1e-9)
			if err != nil {
				b.Fatal(err)
			}
			if res.UpdateDistance == 0 {
				b.Fatalf("pair %d: empty diff", j)
			}
		}
	}
}

// BenchmarkStoreChain50 times a full root→head checkout walk of a 50-step
// version chain stored delta-encoded: the timeline read pattern. The first
// iteration reconstructs and parses every version once; every later walk is
// served from the store's table LRU, so the steady state this records is
// the zero-parse clone path. In CI it runs one iteration under -race.
func BenchmarkStoreChain50(b *testing.B) {
	snaps, err := ChainDataset(ChainConfig{N: 120, Steps: 50, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st, err := OpenStoreWith("", StoreOptions{TableCache: len(snaps)})
	if err != nil {
		b.Fatal(err)
	}
	parent := ""
	var head string
	for _, snap := range snaps {
		v, err := st.Commit(snap, parent, "step")
		if err != nil {
			b.Fatal(err)
		}
		parent, head = v.ID, v.ID
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain, err := st.Chain(head)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range chain {
			if _, err := st.Checkout(v.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if stats := st.Stats(); stats.Parses != int64(len(snaps)) {
		b.Fatalf("walks parsed %d times, want exactly %d (first walk only)", stats.Parses, len(snaps))
	}
}

// BenchmarkHubCommit16 drives 16 goroutines, each committing a
// pre-generated 6-step chain into its own fresh dataset of one shared hub:
// per-shard locking keeps the 16 commit pipelines fully concurrent while
// every shard's caches charge the one shared memory budget.
// cmd/charles-bench mirrors it as HubCommit16 in BENCH_baseline.json.
func BenchmarkHubCommit16(b *testing.B) {
	const shards = 16
	chains := make([][]*Table, shards)
	for g := range chains {
		snaps, err := ChainDataset(ChainConfig{N: 60, Steps: 6, Seed: int64(g + 1)})
		if err != nil {
			b.Fatal(err)
		}
		chains[g] = snaps
	}
	h, err := OpenHubWith("", HubOptions{MemoryBudget: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, shards)
		for g := 0; g < shards; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// A fresh dataset per goroutine per iteration: every commit
				// is real pack-building work, never a content-address dedup.
				ds := fmt.Sprintf("d%02d-%d", g, i)
				parent := ""
				for _, snap := range chains[g] {
					v, err := h.Commit("bench", ds, snap, parent, "step")
					if err != nil {
						errs <- err
						return
					}
					parent = v.ID
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
}
