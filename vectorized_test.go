package charles

import (
	"testing"
)

// TestWorkersMatchSerialAt2k is the scale companion of
// TestParallelWorkersMatchSerial: on the 2 000-row planted dataset the
// full ranking — fingerprints AND scores — must be identical regardless of
// worker count. The engine's per-worker evaluators share one atom-bitmap
// cache, so this also exercises the cache under concurrency.
func TestWorkersMatchSerialAt2k(t *testing.T) {
	d, err := PlantedDataset(PlantedConfig{N: 2000, Seed: 13, Rules: 3, RuleDepth: 2, UnchangedFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs

	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 8

	a, err := Summarize(d.Src, d.Tgt, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Summarize(d.Src, d.Tgt, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("worker count changed result size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Summary.Fingerprint() != b[i].Summary.Fingerprint() {
			t.Fatalf("worker count changed ranking at %d:\n%s\nvs\n%s", i, a[i].Summary, b[i].Summary)
		}
		if a[i].Breakdown.Score != b[i].Breakdown.Score {
			t.Fatalf("worker count changed score at %d: %v vs %v", i, a[i].Breakdown.Score, b[i].Breakdown.Score)
		}
	}
}

// TestVectorizedApplyMatchesNaiveAt2k locks the whole vectorized candidate-
// evaluation stack against the naive per-row path at scale: for every
// summary the engine ranks, the naive Summary.Apply predictions must agree
// with the score the vectorized evaluator assigned (Score is recomputed
// through the public scoring entry point, which uses the naive Apply).
func TestVectorizedApplyMatchesNaiveAt2k(t *testing.T) {
	d, err := PlantedDataset(PlantedConfig{N: 2000, Seed: 29, Rules: 2, RuleDepth: 2, UnchangedFrac: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	ranked, err := Summarize(d.Src, d.Tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no summaries")
	}
	a, err := Align(d.Src, d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta(d.Target)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := a.ChangedMask(d.Target, opts.ChangeTol)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranked {
		bd, err := Evaluate(r.Summary, a.Source, newVals, changed, opts.Alpha, opts.Weights)
		if err != nil {
			t.Fatal(err)
		}
		if *bd != *r.Breakdown {
			t.Fatalf("summary %d: naive breakdown %+v != engine breakdown %+v", i, *bd, *r.Breakdown)
		}
	}
}
