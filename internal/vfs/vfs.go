// Package vfs is the filesystem seam the version store writes through: a
// minimal interface over the handful of operations persistence needs
// (create/write/sync/rename/remove plus directory listing and syncing), an
// OS implementation with real fsync discipline, and WriteAtomic — the
// temp → write → fsync(file) → rename → fsync(dir) helper every durable
// publish goes through.
//
// The seam exists so crash behavior is testable: internal/faultfs
// implements FS with an in-memory volatile/durable split and injectable
// faults (torn writes, failed renames, power-cut truncation), letting a
// property test crash a commit sequence at every write-path operation and
// assert the reopened store verifies clean.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is a writable file handle. Data written is not durable until Sync
// returns — and a file freshly created is not durably *named* until its
// parent directory is synced (see FS.SyncDir).
type File interface {
	io.Writer
	// Sync flushes the file's content to stable storage.
	Sync() error
	// Close releases the handle. Closing does NOT imply syncing.
	Close() error
}

// FS is the set of filesystem operations the store's persistence uses.
// Read operations return errors satisfying errors.Is(err, fs.ErrNotExist)
// for missing paths, like the os package.
type FS interface {
	// MkdirAll creates path and any missing parents.
	MkdirAll(path string) error
	// ReadFile returns the current content of path.
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing content.
	Create(path string) (File, error)
	// Rename atomically replaces newPath with oldPath's file. The rename
	// is atomic but not durable until the directory is synced.
	Rename(oldPath, newPath string) error
	// Remove deletes path.
	Remove(path string) error
	// Stat reports path's metadata.
	Stat(path string) (fs.FileInfo, error)
	// ReadDir lists path's entries sorted by name.
	ReadDir(path string) ([]fs.DirEntry, error)
	// SyncDir flushes path's directory entries (created, renamed, and
	// removed names) to stable storage.
	SyncDir(path string) error
}

// OS is the real filesystem, with Sync and SyncDir backed by fsync.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Create implements FS.
func (OS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Rename implements FS.
func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Stat implements FS.
func (OS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

// ReadDir implements FS.
func (OS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// SyncDir fsyncs the directory itself, making entry operations (creates,
// renames, removals) durable. Without it a power cut after a rename can
// resurrect the old directory state even though the rename "succeeded".
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteAtomic durably publishes data at path: it writes to a same-directory
// temp file, fsyncs the file, renames it over path, and fsyncs the
// directory. After WriteAtomic returns nil the content is crash-durable;
// after a crash at ANY intermediate point, path holds either its previous
// content or the new content in full — never a torn mix — and at worst a
// stale temp file is left behind for the caller's garbage collection.
//
// Callers that write unique paths (content-addressed packs) or serialize
// writers (the manifest, under the store's write lock) never collide on the
// temp name.
func WriteAtomic(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
