// Package lmtree represents a change summary as a linear model tree
// (Potts, ICML 2004): internal nodes test conditions, leaves hold linear
// models (transformations). The path from root to leaf defines a partition.
// This reproduces the paper's Figure 2 rendering.
package lmtree

import (
	"fmt"
	"strings"

	"charles/internal/model"
	"charles/internal/predicate"
)

// Node is one node of a linear model tree. Internal nodes carry a condition
// with YES/NO children; leaves carry a transformation (or None).
type Node struct {
	// Internal node:
	Cond predicate.Predicate
	Yes  *Node
	No   *Node

	// Leaf:
	Leaf bool
	Tran model.Transformation
	None bool // the "no transformation observed" leaf
}

// FromSummary builds a right-leaning decision-list tree from a summary:
// each CT becomes (condition → transformation-leaf) with the NO branch
// chaining to the next CT, and the final NO branch a None leaf — exactly
// the shape of the paper's Figure 2.
func FromSummary(s *model.Summary) *Node {
	none := &Node{Leaf: true, None: true}
	if len(s.CTs) == 0 {
		return none
	}
	root := none
	for i := len(s.CTs) - 1; i >= 0; i-- {
		ct := s.CTs[i]
		var leaf *Node
		if ct.Tran.NoChange {
			leaf = &Node{Leaf: true, None: true}
		} else {
			leaf = &Node{Leaf: true, Tran: ct.Tran}
		}
		root = &Node{Cond: ct.Cond, Yes: leaf, No: root}
	}
	return root
}

// Depth returns the longest condition chain (0 for a lone leaf).
func (n *Node) Depth() int {
	if n == nil || n.Leaf {
		return 0
	}
	dy, dn := n.Yes.Depth(), n.No.Depth()
	if dy > dn {
		return dy + 1
	}
	return dn + 1
}

// Leaves counts the leaves of the tree.
func (n *Node) Leaves() int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return n.Yes.Leaves() + n.No.Leaves()
}

// Render draws the tree as indented ASCII, e.g.
//
//	edu = PhD
//	├─ YES → new_bonus = 1.05×bonus + 1000
//	└─ NO
//	   edu = MS ∧ exp < 3
//	   ├─ YES → new_bonus = 1.03×bonus + 400
//	   └─ NO
//	      ...
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b, "")
	return b.String()
}

func (n *Node) render(b *strings.Builder, indent string) {
	if n.Leaf {
		if n.None {
			fmt.Fprintf(b, "%s(no change)\n", indent)
		} else {
			fmt.Fprintf(b, "%s%s\n", indent, n.Tran)
		}
		return
	}
	fmt.Fprintf(b, "%s%s\n", indent, n.Cond)
	// YES branch.
	if n.Yes.Leaf {
		if n.Yes.None {
			fmt.Fprintf(b, "%s├─ YES → (no change)\n", indent)
		} else {
			fmt.Fprintf(b, "%s├─ YES → %s\n", indent, n.Yes.Tran)
		}
	} else {
		fmt.Fprintf(b, "%s├─ YES\n", indent)
		n.Yes.render(b, indent+"│  ")
	}
	// NO branch.
	if n.No.Leaf {
		if n.No.None {
			fmt.Fprintf(b, "%s└─ NO  → (no change)\n", indent)
		} else {
			fmt.Fprintf(b, "%s└─ NO  → %s\n", indent, n.No.Tran)
		}
	} else {
		fmt.Fprintf(b, "%s└─ NO\n", indent)
		n.No.render(b, indent+"   ")
	}
}
