package lmtree

import (
	"strings"
	"testing"

	"charles/internal/model"
	"charles/internal/predicate"
)

func threeCTSummary() *model.Summary {
	return &model.Summary{
		Target: "bonus",
		CTs: []model.CT{
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "PhD")}},
				Tran: model.Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{
					predicate.StrAtom("edu", predicate.Eq, "MS"), predicate.NumAtom("exp", predicate.Lt, 3),
				}},
				Tran: model.Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.03}, Intercept: 400},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{
					predicate.StrAtom("edu", predicate.Eq, "MS"), predicate.NumAtom("exp", predicate.Ge, 3),
				}},
				Tran: model.Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.04}, Intercept: 800},
			},
		},
	}
}

func TestFromSummaryShape(t *testing.T) {
	root := FromSummary(threeCTSummary())
	// Decision list: depth = number of CTs; leaves = CTs + None.
	if d := root.Depth(); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
	if l := root.Leaves(); l != 4 {
		t.Errorf("leaves = %d, want 4", l)
	}
	// First condition at the root, first transformation on its YES branch.
	if root.Leaf || !root.Yes.Leaf {
		t.Fatal("root shape wrong")
	}
	if root.Yes.Tran.Intercept != 1000 {
		t.Errorf("YES leaf transformation = %v", root.Yes.Tran)
	}
	// Final NO chain ends at the None leaf.
	n := root
	for !n.Leaf {
		n = n.No
	}
	if !n.None {
		t.Error("tree should terminate in a None leaf")
	}
}

func TestEmptySummaryTree(t *testing.T) {
	root := FromSummary(&model.Summary{Target: "bonus"})
	if !root.Leaf || !root.None {
		t.Error("empty summary should be a single None leaf")
	}
	if root.Depth() != 0 || root.Leaves() != 1 {
		t.Error("empty tree dimensions wrong")
	}
}

func TestNoChangeCTBecomesNoneLeaf(t *testing.T) {
	s := &model.Summary{
		Target: "bonus",
		CTs: []model.CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "BS")}},
			Tran: model.Identity("bonus"),
		}},
	}
	root := FromSummary(s)
	if !root.Yes.Leaf || !root.Yes.None {
		t.Error("identity CT should render as a None leaf")
	}
}

func TestRenderContainsFigure2Elements(t *testing.T) {
	out := FromSummary(threeCTSummary()).Render()
	for _, want := range []string{
		"edu = PhD",
		"new_bonus = 1.05×bonus + 1000",
		"edu = MS ∧ exp < 3",
		"new_bonus = 1.03×bonus + 400",
		"new_bonus = 1.04×bonus + 800",
		"YES", "NO", "(no change)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// YES comes before NO in each block.
	if strings.Index(out, "YES") > strings.Index(out, "NO") {
		t.Error("YES branch should render before NO")
	}
}

func TestRenderIndentationNesting(t *testing.T) {
	out := FromSummary(threeCTSummary()).Render()
	lines := strings.Split(out, "\n")
	// The second condition must be indented deeper than the first.
	var firstIndent, secondIndent = -1, -1
	for _, l := range lines {
		if strings.Contains(l, "edu = PhD") {
			firstIndent = len(l) - len(strings.TrimLeft(l, " │"))
		}
		if strings.Contains(l, "exp < 3") {
			secondIndent = len(l) - len(strings.TrimLeft(l, " │"))
		}
	}
	if firstIndent < 0 || secondIndent <= firstIndent {
		t.Errorf("nesting indentation wrong: %d vs %d\n%s", firstIndent, secondIndent, out)
	}
}

func TestRenderDeepNesting(t *testing.T) {
	// A 3-CT list followed by nested render must show every branch form:
	// leaf YES, non-leaf NO, and the terminal None — plus a None mid-list
	// when a no-change CT appears between change CTs.
	s := threeCTSummary()
	s.CTs = append(s.CTs, model.CT{
		Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "BS")}},
		Tran: model.Identity("bonus"),
	})
	out := FromSummary(s).Render()
	if strings.Count(out, "(no change)") < 2 {
		t.Errorf("expected both the identity CT and terminal None leaves:\n%s", out)
	}
	if strings.Count(out, "├─ YES") != 4 {
		t.Errorf("expected 4 YES branches:\n%s", out)
	}
}

func TestRenderLoneLeaf(t *testing.T) {
	// Render on a leaf-only tree (no conditions at all).
	n := &Node{Leaf: true, Tran: model.Transformation{Target: "x", Inputs: []string{"x"}, Coef: []float64{2}}}
	out := n.Render()
	if !strings.Contains(out, "new_x = 2×x") {
		t.Errorf("lone leaf render:\n%s", out)
	}
	none := &Node{Leaf: true, None: true}
	if !strings.Contains(none.Render(), "(no change)") {
		t.Error("lone None leaf render")
	}
}
