package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterVecRendering pins the exposition format for counters: HELP and
// TYPE comments, sorted label sets, integer-rendered values, and label
// escaping.
func TestCounterVecRendering(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_requests_total", "requests by route", "route", "class")
	v.With("/versions", "2xx").Add(3)
	v.With("/diff", "4xx").Inc()
	v.With(`quo"te\back`+"\n", "5xx").Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total requests by route\n",
		"# TYPE test_requests_total counter\n",
		`test_requests_total{route="/versions",class="2xx"} 3`,
		`test_requests_total{route="/diff",class="4xx"} 1`,
		`test_requests_total{route="quo\"te\\back\n",class="5xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Errorf("rendered output fails lint: %v", err)
	}
	got, ok := Value([]byte(out), "test_requests_total", map[string]string{"route": "/versions", "class": "2xx"})
	if !ok || got != 3 {
		t.Errorf("Value = (%v, %v), want (3, true)", got, ok)
	}
	// The escaped label round-trips through the parser.
	got, ok = Value([]byte(out), "test_requests_total", map[string]string{"route": `quo"te\back` + "\n", "class": "5xx"})
	if !ok || got != 1 {
		t.Errorf("escaped label did not round-trip: (%v, %v)", got, ok)
	}
}

// TestHistogramRendering pins cumulative buckets, the implicit +Inf bucket,
// and _sum/_count.
func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_latency_seconds", "latency", []float64{0.1, 1, 10}, "route")
	h := v.With("/x")
	for _, obs := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(obs)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{route="/x",le="0.1"} 1`,
		`test_latency_seconds_bucket{route="/x",le="1"} 3`,
		`test_latency_seconds_bucket{route="/x",le="10"} 4`,
		`test_latency_seconds_bucket{route="/x",le="+Inf"} 5`,
		`test_latency_seconds_sum{route="/x"} 56.05`,
		`test_latency_seconds_count{route="/x"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Errorf("rendered output fails lint: %v", err)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

// TestFuncFamilies pins scrape-time collectors: the callback runs per
// WriteText and its samples render under the declared type.
func TestFuncFamilies(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.NewGaugeFunc("test_in_flight", "in flight", nil, func() []Sample {
		calls++
		return []Sample{{Value: float64(calls)}}
	})
	r.NewCounterFunc("test_shed_total", "shed", []string{"shard"}, func() []Sample {
		return []Sample{{LabelValues: []string{"a/b"}, Value: 7}}
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test_in_flight 1\n") || !strings.Contains(out, "test_in_flight 2\n") {
		t.Errorf("gauge func did not run per scrape:\n%s", out)
	}
	if !strings.Contains(out, `test_shed_total{shard="a/b"} 7`) {
		t.Errorf("counter func sample missing:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE test_shed_total counter") {
		t.Errorf("counter func TYPE missing:\n%s", out)
	}
}

// TestConcurrentObservations hammers one counter and one histogram from
// many goroutines (the -race half of the contract) and checks totals are
// exact — atomics may not drop updates.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_total", "t", "k")
	hv := r.NewHistogramVec("test_lat", "t", []float64{1, 2}, "k")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cv.With("x").Inc()
				hv.With("x").Observe(float64(i%3) + 0.5)
				// Render concurrently with the writers too.
				if i%251 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := cv.With("x").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := hv.With("x").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := Lint([]byte(b.String())); err != nil {
		t.Errorf("post-hammer output fails lint: %v", err)
	}
}

// TestLintRejectsMalformed drives known-bad exposition text through Lint.
func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no TYPE", "x_total 1\n"},
		{"no HELP", "# TYPE x_total counter\nx_total 1\n"},
		{"bad value", "# HELP x x\n# TYPE x counter\nx nope\n"},
		{"bad name", "# HELP x x\n# TYPE x counter\n1x 2\n"},
		{"duplicate sample", "# HELP x x\n# TYPE x counter\nx{a=\"1\"} 2\nx{a=\"1\"} 3\n"},
		{"unterminated label", "# HELP x x\n# TYPE x counter\nx{a=\"1} 2\n"},
		{"unknown type", "# HELP x x\n# TYPE x banana\nx 1\n"},
		{
			"non-monotone histogram",
			"# HELP h h\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		},
		{
			"missing +Inf bucket",
			"# HELP h h\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		},
		{
			"count mismatch",
			"# HELP h h\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 9\n",
		},
	}
	for _, tc := range cases {
		if err := Lint([]byte(tc.text)); err == nil {
			t.Errorf("%s: lint accepted malformed text", tc.name)
		}
	}
	// And a well-formed document passes.
	good := "# HELP h h\n# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 6\nh_sum 1.5\nh_count 6\n" +
		"# HELP g g\n# TYPE g gauge\ng 0\n"
	if err := Lint([]byte(good)); err != nil {
		t.Errorf("lint rejected well-formed text: %v", err)
	}
}

// TestRegistrationPanics pins constructor validation: bad names, reserved
// labels, duplicate registration, unsorted buckets.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounterVec("ok_total", "ok")
	mustPanic("bad metric name", func() { r.NewCounterVec("1bad", "x") })
	mustPanic("reserved le label", func() { r.NewHistogramVec("h", "x", nil, "le") })
	mustPanic("duplicate name", func() { r.NewCounterVec("ok_total", "again") })
	mustPanic("unsorted buckets", func() { r.NewHistogramVec("h2", "x", []float64{2, 1}) })
	mustPanic("label arity", func() { r.NewCounterVec("v_total", "x", "a").With("1", "2") })
	mustPanic("counter decrement", func() { r.NewCounterVec("w_total", "x").With().Add(-1) })
}

// TestValueUnlabeled covers the nil-labels lookup path and Inf parsing.
func TestValueUnlabeled(t *testing.T) {
	text := "# HELP g g\n# TYPE g gauge\ng 4.25\n"
	got, ok := Value([]byte(text), "g", nil)
	if !ok || got != 4.25 {
		t.Errorf("Value = (%v, %v), want (4.25, true)", got, ok)
	}
	if _, ok := Value([]byte(text), "missing", nil); ok {
		t.Error("Value found a metric that is not there")
	}
	if v, err := parseValue("+Inf"); err != nil || !math.IsInf(v, 1) {
		t.Errorf("parseValue(+Inf) = %v, %v", v, err)
	}
}
