package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// parsedSample is one decoded exposition line.
type parsedSample struct {
	name   string
	labels map[string]string
	value  float64
}

// Lint validates Prometheus text exposition output: every line parses,
// every sample's family is declared with # HELP and # TYPE before its
// first sample, no sample (name + label set) appears twice, and histogram
// families have monotone cumulative buckets whose +Inf bucket equals
// _count. Tests and the loadtest harness run it against GET /metrics so
// the endpoint cannot silently drift out of format.
func Lint(data []byte) error {
	types := map[string]string{} // family name -> TYPE
	helped := map[string]bool{}
	seen := map[string]bool{} // duplicate-sample detection
	var samples []parsedSample

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch kind {
			case "HELP":
				helped[name] = true
			case "TYPE":
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				types[name] = rest
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyName(s.name, types)
		if types[fam] == "" {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, s.name)
		}
		if !helped[fam] {
			return fmt.Errorf("line %d: sample %s has no # HELP", lineNo, s.name)
		}
		key := s.name + "\xff" + canonLabels(s.labels)
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s{%s}", lineNo, s.name, canonLabels(s.labels))
		}
		seen[key] = true
		samples = append(samples, s)
	}
	return lintHistograms(samples, types)
}

// Value parses exposition text and returns the sample with the given name
// whose labels exactly match want (nil matches an unlabeled sample). The
// second result reports whether it was found.
func Value(data []byte, name string, want map[string]string) (float64, bool) {
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil || s.name != name {
			continue
		}
		if len(s.labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.value, true
		}
	}
	return 0, false
}

// familyName maps a sample name to its declared family: histogram series
// (_bucket/_sum/_count) belong to the base name's family.
func familyName(sample string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base != sample && types[base] == "histogram" {
			return base
		}
	}
	return sample
}

func parseComment(line string) (kind, name, rest string, ok bool) {
	for _, k := range []string{"# HELP ", "# TYPE "} {
		if strings.HasPrefix(line, k) {
			body := line[len(k):]
			name, rest, _ = strings.Cut(body, " ")
			if !validName.MatchString(name) {
				return "", "", "", false
			}
			return strings.TrimSpace(k[2:7]), name, rest, true
		}
	}
	// Other comments are legal and ignored.
	return "OTHER", "", "", true
}

func parseSample(line string) (parsedSample, error) {
	s := parsedSample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.name = rest[:brace]
		rest = rest[brace+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			ln := rest[:eq]
			if !validName.MatchString(ln) {
				return s, fmt.Errorf("invalid label name %q", ln)
			}
			val, n, err := unquoteLabel(rest[eq+2:])
			if err != nil {
				return s, fmt.Errorf("label %s in %q: %w", ln, line, err)
			}
			s.labels[ln] = val
			rest = rest[eq+2+n:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return s, fmt.Errorf("malformed labels in %q", line)
		}
		rest = strings.TrimPrefix(rest, " ")
	} else {
		if space < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.name = rest[:space]
		rest = rest[space+1:]
	}
	if !validName.MatchString(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	// The value (and optionally a timestamp, which this renderer never
	// emits but the format allows).
	valStr, _, _ := strings.Cut(rest, " ")
	val, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	s.value = val
	return s, nil
}

// unquoteLabel consumes an escaped label value up to its closing quote,
// returning the decoded value and how many input bytes were consumed
// (closing quote included).
func unquoteLabel(in string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// canonLabels renders a label map sorted, for duplicate detection.
func canonLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// lintHistograms checks every histogram series group: cumulative bucket
// counts are monotone in le, the +Inf bucket exists, and _count matches it.
func lintHistograms(samples []parsedSample, types map[string]string) error {
	type group struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
	}
	groups := map[string]*group{} // family + non-le labels -> group
	key := func(fam string, labels map[string]string) string {
		rest := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		return fam + "\xff" + canonLabels(rest)
	}
	for _, s := range samples {
		fam := familyName(s.name, types)
		if types[fam] != "histogram" {
			continue
		}
		k := key(fam, s.labels)
		g := groups[k]
		if g == nil {
			g = &group{buckets: map[float64]float64{}}
			groups[k] = g
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, err := parseValue(s.labels["le"])
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", fam, s.labels["le"])
			}
			g.buckets[le] = s.value
		case strings.HasSuffix(s.name, "_count"):
			g.count = s.value
			g.hasCnt = true
		}
	}
	for k, g := range groups {
		les := make([]float64, 0, len(g.buckets))
		for le := range g.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		if len(les) == 0 || !math.IsInf(les[len(les)-1], 1) {
			return fmt.Errorf("histogram %s: missing +Inf bucket", k)
		}
		prev := math.Inf(-1)
		last := -1.0
		for _, le := range les {
			if le <= prev {
				return fmt.Errorf("histogram %s: le not ascending", k)
			}
			if g.buckets[le] < last {
				return fmt.Errorf("histogram %s: cumulative counts decrease at le=%g", k, le)
			}
			last = g.buckets[le]
			prev = le
		}
		if g.hasCnt && g.count != g.buckets[math.Inf(1)] {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", k, g.count, g.buckets[math.Inf(1)])
		}
	}
	return nil
}
