// Package metrics is a small, dependency-free metrics layer that renders
// in the Prometheus text exposition format (version 0.0.4). It exists so
// the serve layer can expose a GET /metrics endpoint without pulling the
// Prometheus client library into the module.
//
// Three metric shapes cover the serving surface:
//
//   - CounterVec: monotonically increasing integer counters keyed by a
//     fixed set of label names (per-route × per-shard request counts).
//     Children are created on first use and bumped with atomics — no lock
//     on the hot path after the first request for a label combination.
//   - HistogramVec: fixed-bucket latency histograms (cumulative bucket
//     counts, _sum, _count), again atomically bumped.
//   - GaugeFunc / CounterFunc: scrape-time collectors for values some
//     other subsystem already tracks (in-flight requests, store and hub
//     counters, budget bytes). The callback runs on every WriteText.
//
// A Registry owns the families and renders them sorted by name, each with
// its # HELP and # TYPE comment. Lint validates rendered output — tests
// and the loadtest harness use it to keep the endpoint well-formed.
package metrics

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// validName is the Prometheus metric/label name charset.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Sample is one collected value: label values in the family's label-name
// order, plus the value itself. Func-backed families return a slice of
// these per scrape.
type Sample struct {
	LabelValues []string
	Value       float64
}

// family is one named metric with a fixed type and label-name set. Exactly
// one of children (live counters/histograms) or collect (scrape-time
// callback) is used.
type family struct {
	name       string
	help       string
	kind       string // "counter", "gauge", "histogram"
	labelNames []string
	buckets    []float64 // histograms only; sorted, +Inf excluded
	children   sync.Map  // joined label values -> *Counter | *Histogram
	collect    func() []Sample
}

// Registry owns a set of metric families and renders them as Prometheus
// text. Registration is not concurrency-safe (do it at construction);
// bumping and rendering are.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(f *family) {
	if !validName.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, ln := range f.labelNames {
		if !validName.MatchString(ln) || ln == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", ln, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", f.name))
	}
	r.families[f.name] = f
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters never go down).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	f *family
}

// NewCounterVec registers a counter family. The rendered name should end
// in _total by Prometheus convention.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	f := &family{name: name, help: help, kind: "counter", labelNames: labelNames}
	r.register(f)
	return &CounterVec{f: f}
}

// With returns (creating on first use) the child counter for the given
// label values, which must match the family's label names in count.
func (v *CounterVec) With(labelValues ...string) *Counter {
	key := v.f.childKey(labelValues)
	if c, ok := v.f.children.Load(key); ok {
		return c.(*Counter)
	}
	c, _ := v.f.children.LoadOrStore(key, &Counter{})
	return c.(*Counter)
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus a
// running sum. Observations are atomically recorded.
type Histogram struct {
	buckets []float64 // upper bounds, sorted ascending
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(val float64) {
	// Buckets are few (≈14); linear scan beats binary search at this size.
	for i, ub := range h.buckets {
		if val <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + val)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramVec is a family of fixed-bucket histograms keyed by label
// values.
type HistogramVec struct {
	f *family
}

// DefLatencyBuckets are upper bounds (in seconds) that resolve
// sub-millisecond cache hits and multi-second engine walks alike.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogramVec registers a histogram family with the given upper
// bounds (nil uses DefLatencyBuckets). Bounds must be sorted ascending;
// the +Inf bucket is implicit.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not ascending", name))
		}
	}
	f := &family{name: name, help: help, kind: "histogram", labelNames: labelNames, buckets: buckets}
	r.register(f)
	return &HistogramVec{f: f}
}

// With returns (creating on first use) the child histogram for the given
// label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	key := v.f.childKey(labelValues)
	if h, ok := v.f.children.Load(key); ok {
		return h.(*Histogram)
	}
	h, _ := v.f.children.LoadOrStore(key, &Histogram{
		buckets: v.f.buckets,
		counts:  make([]atomic.Int64, len(v.f.buckets)),
	})
	return h.(*Histogram)
}

// NewGaugeFunc registers a gauge family whose samples are collected by
// callback at render time. labelNames may be nil for a single unlabeled
// sample.
func (r *Registry) NewGaugeFunc(name, help string, labelNames []string, collect func() []Sample) {
	r.register(&family{name: name, help: help, kind: "gauge", labelNames: labelNames, collect: collect})
}

// NewCounterFunc is NewGaugeFunc with counter semantics: use it when
// another subsystem already owns the monotone count (e.g. an atomic the
// hot path bumps directly).
func (r *Registry) NewCounterFunc(name, help string, labelNames []string, collect func() []Sample) {
	r.register(&family{name: name, help: help, kind: "counter", labelNames: labelNames, collect: collect})
}

// childKeySep joins label values in child keys. Label values are free
// text, so the separator is a byte that cannot appear in valid UTF-8.
const childKeySep = "\xff"

func (f *family) childKey(labelValues []string) string {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labelNames), len(labelValues)))
	}
	return strings.Join(labelValues, childKeySep)
}

// WriteText renders every family in the Prometheus text exposition
// format, sorted by metric name, each preceded by # HELP and # TYPE.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.renderInto(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) renderInto(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.collect != nil {
		for _, s := range f.collect() {
			if len(s.LabelValues) != len(f.labelNames) {
				// A collector bug must surface in scrape output, not panic
				// the handler.
				fmt.Fprintf(b, "# collector for %s returned %d label values, want %d\n",
					f.name, len(s.LabelValues), len(f.labelNames))
				continue
			}
			writeSample(b, f.name, f.labelNames, s.LabelValues, "", 0, s.Value)
		}
		return
	}
	// Live children, sorted by key for stable output.
	type kv struct {
		key string
		m   any
	}
	var kids []kv
	f.children.Range(func(k, v any) bool {
		kids = append(kids, kv{k.(string), v})
		return true
	})
	sort.Slice(kids, func(i, j int) bool { return kids[i].key < kids[j].key })
	for _, kid := range kids {
		var lvs []string
		if kid.key != "" {
			lvs = strings.Split(kid.key, childKeySep)
		}
		switch m := kid.m.(type) {
		case *Counter:
			writeSample(b, f.name, f.labelNames, lvs, "", 0, float64(m.Value()))
		case *Histogram:
			// Cumulative buckets. Reading the atomics while writers bump
			// them can tear across buckets; each individual count is exact
			// and the skew is one in-flight observation — fine for a scrape.
			var cum int64
			for i, ub := range m.buckets {
				cum += m.counts[i].Load()
				writeSample(b, f.name+"_bucket", f.labelNames, lvs, "le", ub, float64(cum))
			}
			count := m.count.Load()
			writeSample(b, f.name+"_bucket", f.labelNames, lvs, "le", math.Inf(1), float64(count))
			sum := math.Float64frombits(m.sumBits.Load())
			writeSample(b, f.name+"_sum", f.labelNames, lvs, "", 0, sum)
			writeSample(b, f.name+"_count", f.labelNames, lvs, "", 0, float64(count))
		}
	}
}

// writeSample renders one `name{labels} value` line. leName, when
// non-empty, appends the histogram bucket bound label.
func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, leName string, le, val float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || leName != "" {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		if leName != "" {
			if len(labelNames) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(leName)
			b.WriteString(`="`)
			b.WriteString(formatFloat(le))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(val))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
