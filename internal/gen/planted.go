package gen

import (
	"fmt"
	"math"
	"math/rand"

	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/table"
)

// PlantedConfig parameterizes the synthetic evolving-database generator.
type PlantedConfig struct {
	N    int   // rows
	Seed int64 // RNG seed (deterministic output)

	// Rules is the number of planted conditional transformations (1–8).
	Rules int
	// RuleDepth is atoms per condition: 1 (categorical only) or 2
	// (categorical + numeric threshold).
	RuleDepth int
	// UnchangedFrac is the approximate fraction of rows no rule covers.
	UnchangedFrac float64
	// NoiseStd perturbs evolved targets with Gaussian noise of this standard
	// deviation, *relative* to the mean change magnitude (0 = exact policy).
	NoiseStd float64
	// Distractors adds this many uncorrelated attributes (half categorical,
	// half numeric) to stress attribute selection.
	Distractors int
}

func (c PlantedConfig) withDefaults() PlantedConfig {
	if c.N <= 0 {
		c.N = 1000
	}
	if c.Rules <= 0 {
		c.Rules = 3
	}
	if c.Rules > 8 {
		c.Rules = 8
	}
	if c.RuleDepth != 2 {
		c.RuleDepth = 1
	}
	if c.UnchangedFrac < 0 {
		c.UnchangedFrac = 0
	}
	if c.UnchangedFrac > 0.95 {
		c.UnchangedFrac = 0.95
	}
	return c
}

// PlantedData is a generated snapshot pair with its ground truth.
type PlantedData struct {
	Src   *table.Table
	Tgt   *table.Table
	Truth *model.Summary
	// Target is the evolved attribute ("pay").
	Target string
	// CondAttrs / TranAttrs are the attributes the planted policy actually
	// uses (useful for configuring the engine in controlled experiments).
	CondAttrs []string
	TranAttrs []string
}

// segment values used by planted rules, in rule order.
var segmentNames = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}

// niceCoefs / niceIntercepts are the "normal" constants policies use.
var (
	niceCoefs      = []float64{1.02, 1.03, 1.04, 1.05, 1.06, 1.08, 1.1, 0.95}
	niceIntercepts = []float64{200, 400, 500, 800, 1000, 1500, 2000, 250}
	niceThresholds = []float64{3, 5, 10, 4, 6, 8, 2, 7}
)

// Planted generates a source snapshot and a target snapshot evolved by a
// known policy of conditional linear transformations over attribute "pay".
//
// Schema: id (key), seg (categorical segment driving the rules), tier
// (numeric 0–12 used by depth-2 rules), region (categorical, weakly
// correlated), pay (target), plus optional distractors.
func Planted(cfg PlantedConfig) (*PlantedData, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	schema := table.Schema{
		{Name: "id", Type: table.Int},
		{Name: "seg", Type: table.String},
		{Name: "tier", Type: table.Int},
		{Name: "region", Type: table.String},
		{Name: "pay", Type: table.Float},
	}
	for d := 0; d < cfg.Distractors; d++ {
		if d%2 == 0 {
			schema = append(schema, table.Field{Name: fmt.Sprintf("noisecat%d", d/2), Type: table.String})
		} else {
			schema = append(schema, table.Field{Name: fmt.Sprintf("noisenum%d", d/2), Type: table.Float})
		}
	}
	src, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	tgt, err := table.New(schema)
	if err != nil {
		return nil, err
	}

	// Build the planted rules.
	truth := &model.Summary{Target: "pay"}
	condAttrs := []string{"seg"}
	if cfg.RuleDepth == 2 {
		condAttrs = append(condAttrs, "tier")
	}
	for i := 0; i < cfg.Rules; i++ {
		cond := predicate.Predicate{Atoms: []predicate.Atom{
			predicate.StrAtom("seg", predicate.Eq, segmentNames[i]),
		}}
		if cfg.RuleDepth == 2 && i%2 == 1 {
			cond = cond.And(predicate.NumAtom("tier", predicate.Ge, niceThresholds[i]))
		}
		truth.CTs = append(truth.CTs, model.CT{
			Cond: cond,
			Tran: model.Transformation{
				Target:    "pay",
				Inputs:    []string{"pay"},
				Coef:      []float64{niceCoefs[i]},
				Intercept: niceIntercepts[i],
			},
		})
	}

	// Segment assignment: rule segments share 1−UnchangedFrac; the
	// remainder goes to a "plain" segment no rule touches.
	regions := []string{"north", "south", "east", "west"}
	meanChange := 0.0
	type rowRec struct {
		vals   []table.Value
		newPay float64
	}
	changeMags := make([]float64, 0, cfg.N)
	rows := make([]rowRec, 0, cfg.N)
	for r := 0; r < cfg.N; r++ {
		var seg string
		if rng.Float64() < cfg.UnchangedFrac {
			seg = "plain"
		} else {
			seg = segmentNames[rng.Intn(cfg.Rules)]
		}
		tier := int64(rng.Intn(13))
		region := regions[rng.Intn(len(regions))]
		// Pay correlates with tier (so the assistant can find signal) plus
		// a segment-level offset and noise.
		segOff := float64(indexOf(segmentNames, seg)+1) * 2000
		pay := 40000 + 3000*float64(tier) + segOff + rng.NormFloat64()*5000
		pay = math.Round(pay*100) / 100

		vals := []table.Value{
			table.I(int64(r + 1)), table.S(seg), table.I(tier), table.S(region), table.F(pay),
		}
		for d := 0; d < cfg.Distractors; d++ {
			if d%2 == 0 {
				vals = append(vals, table.S(fmt.Sprintf("v%d", rng.Intn(5))))
			} else {
				vals = append(vals, table.F(math.Round(rng.Float64()*1000)))
			}
		}

		// Evolve pay under the first matching rule.
		newPay := pay
		for _, ct := range truth.CTs {
			if matchPlanted(ct.Cond, seg, float64(tier)) {
				newPay = ct.Tran.Coef[0]*pay + ct.Tran.Intercept
				changeMags = append(changeMags, math.Abs(newPay-pay))
				break
			}
		}
		rows = append(rows, rowRec{vals: vals, newPay: newPay})
	}
	for _, m := range changeMags {
		meanChange += m
	}
	if len(changeMags) > 0 {
		meanChange /= float64(len(changeMags))
	}

	for _, rec := range rows {
		if err := src.AppendRow(rec.vals...); err != nil {
			return nil, err
		}
		tv := append([]table.Value(nil), rec.vals...)
		newPay := rec.newPay
		if cfg.NoiseStd > 0 && newPay != rec.vals[4].Float() {
			newPay += rng.NormFloat64() * cfg.NoiseStd * meanChange
		}
		tv[4] = table.F(newPay)
		if err := tgt.AppendRow(tv...); err != nil {
			return nil, err
		}
	}
	if err := src.SetKey("id"); err != nil {
		return nil, err
	}
	if err := tgt.SetKey("id"); err != nil {
		return nil, err
	}
	return &PlantedData{
		Src: src, Tgt: tgt, Truth: truth,
		Target:    "pay",
		CondAttrs: condAttrs,
		TranAttrs: []string{"pay"},
	}, nil
}

// matchPlanted evaluates a planted condition directly on the generated
// (seg, tier) pair — cheaper than building a table row first.
func matchPlanted(p predicate.Predicate, seg string, tier float64) bool {
	for _, a := range p.Atoms {
		switch a.Attr {
		case "seg":
			if a.Op == predicate.Eq && seg != a.Str {
				return false
			}
		case "tier":
			switch a.Op {
			case predicate.Ge:
				if !(tier >= a.Num) {
					return false
				}
			case predicate.Lt:
				if !(tier < a.Num) {
					return false
				}
			}
		}
	}
	return true
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
