// Package gen builds the datasets ChARLES is evaluated on: the paper's toy
// employee snapshots (Figure 1), a planted-policy generator that evolves a
// random table under known conditional transformations (so recovery can be
// measured against ground truth), and simulations of the two real-world
// datasets the demo uses — Montgomery County employee salaries and the
// Forbes billionaires list — which are external downloads we substitute with
// structurally faithful synthetic equivalents (see DESIGN.md).
package gen

import (
	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/table"
)

// toySchema is the employee schema of Figure 1.
func toySchema() table.Schema {
	return table.Schema{
		{Name: "name", Type: table.String},
		{Name: "gen", Type: table.String},
		{Name: "edu", Type: table.String},
		{Name: "exp", Type: table.Int},
		{Name: "salary", Type: table.Float},
		{Name: "bonus", Type: table.Float},
	}
}

// Toy returns the exact 2016 and 2017 snapshots of the paper's Figure 1.
// The 2017 bonus follows the planted policy R1–R3 of Example 1:
//
//	R1: edu = PhD             → bonus' = 1.05·bonus + 1000
//	R2: edu = MS ∧ exp ≥ 3    → bonus' = 1.04·bonus + 800
//	R3: edu = MS ∧ exp < 3    → bonus' = 1.03·bonus + 400
//	(BS employees: unchanged)
//
// exp is incremented by one year in the target snapshot; salary is flat.
// The primary key is "name".
func Toy() (src, tgt *table.Table) {
	src = table.MustNew(toySchema())
	tgt = table.MustNew(toySchema())

	// name, gen, edu, exp2016, salary, bonus2016, bonus2017
	rows := []struct {
		name, gen, edu string
		exp            int64
		salary         float64
		bonus2016      float64
		bonus2017      float64
	}{
		{"Anne", "F", "PhD", 2, 230000, 23000, 25150},
		{"Bob", "M", "PhD", 3, 250000, 25000, 27250},
		{"Amber", "F", "MS", 5, 160000, 16000, 17440},
		{"Allen", "M", "MS", 1, 130000, 13000, 13790},
		{"Cathy", "F", "BS", 2, 110000, 11000, 11000},
		{"Tom", "M", "MS", 4, 150000, 15000, 16400},
		{"James", "M", "BS", 3, 120000, 12000, 12000},
		{"Lucy", "F", "MS", 4, 150000, 15000, 16400},
		{"Frank", "M", "PhD", 1, 210000, 21000, 23050},
	}
	for _, r := range rows {
		src.MustAppendRow(
			table.S(r.name), table.S(r.gen), table.S(r.edu),
			table.I(r.exp), table.F(r.salary), table.F(r.bonus2016),
		)
		tgt.MustAppendRow(
			table.S(r.name), table.S(r.gen), table.S(r.edu),
			table.I(r.exp+1), table.F(r.salary), table.F(r.bonus2017),
		)
	}
	if err := src.SetKey("name"); err != nil {
		panic(err)
	}
	if err := tgt.SetKey("name"); err != nil {
		panic(err)
	}
	return src, tgt
}

// ToyTruth returns the ground-truth summary (R1–R3) behind the Toy target
// snapshot, for evaluation.
func ToyTruth() *model.Summary {
	return &model.Summary{
		Target: "bonus",
		CTs: []model.CT{
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "PhD")}},
				Tran: model.Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{
					predicate.StrAtom("edu", predicate.Eq, "MS"),
					predicate.NumAtom("exp", predicate.Ge, 3),
				}},
				Tran: model.Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.04}, Intercept: 800},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{
					predicate.StrAtom("edu", predicate.Eq, "MS"),
					predicate.NumAtom("exp", predicate.Lt, 3),
				}},
				Tran: model.Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.03}, Intercept: 400},
			},
		},
	}
}
