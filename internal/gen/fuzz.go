package gen

import (
	"fmt"
	"math/rand"

	"charles/internal/table"
)

// FuzzConfig parameterizes MutateChain, the randomized chain generator the
// version-store property tests feed through the delta codec.
type FuzzConfig struct {
	// N is the number of starting entities (default 40).
	N int
	// Steps is the number of mutated successors to generate (default 10).
	Steps int
	// Seed drives all randomness (default 1); equal seeds give equal chains.
	Seed int64
}

func (c FuzzConfig) withDefaults() FuzzConfig {
	if c.N <= 0 {
		c.N = 40
	}
	if c.Steps <= 0 {
		c.Steps = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// fuzzCellValues are the string cells the fuzzer draws from — deliberately
// hostile to naive CSV handling: separators, quotes, embedded newlines,
// unicode, leading/trailing spaces, and empties (nulls). Carriage returns
// are deliberately absent: one CR cell anywhere forces the store to keep
// the whole chain as full packs (encoding/csv cannot round-trip CRLF
// byte-exactly), which would leave the delta codec untested — the CR
// fallback has its own dedicated store test instead.
var fuzzCellValues = []string{
	"plain", "with,comma", `with"quote`, "with\nnewline", " leading space",
	"trailing space ", "ünïcødé", "x\x1fy", "", "FALSE", "123abc",
}

// MutateChain builds a randomized version chain: a seeded table followed by
// Steps successors, each derived from the previous snapshot by a random mix
// of cell edits, row inserts, and row deletes — so unlike Chain (fixed
// entity set, fixed schema), the chain exercises row-level insert/remove
// deltas, null transitions, and adversarial string cells. Every snapshot
// declares the same single-column key and stays non-empty. Deterministic
// for a given config.
func MutateChain(cfg FuzzConfig) ([]*table.Table, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := table.Schema{
		{Name: "id", Type: table.String},
		{Name: "label", Type: table.String},
		{Name: "grade", Type: table.Int},
		{Name: "score", Type: table.Float},
		{Name: "active", Type: table.Bool},
	}
	first := table.MustNew(schema)
	nextID := 0
	appendRow := func(t *table.Table, rng *rand.Rand) error {
		id := fmt.Sprintf("k%05d", nextID)
		nextID++
		return t.AppendRow(randomRow(id, rng)...)
	}
	for i := 0; i < cfg.N; i++ {
		if err := appendRow(first, rng); err != nil {
			return nil, err
		}
	}
	if err := first.SetKey("id"); err != nil {
		return nil, err
	}
	snaps := []*table.Table{first}
	for s := 0; s < cfg.Steps; s++ {
		next := snaps[len(snaps)-1].Clone()
		// Cell edits: a random fraction of rows get one random non-key cell
		// rewritten (possibly to null).
		edits := 1 + rng.Intn(next.NumRows())
		for e := 0; e < edits; e++ {
			r := rng.Intn(next.NumRows())
			ci := 1 + rng.Intn(len(schema)-1)
			c := next.ColumnAt(ci)
			if err := c.Set(r, randomValue(schema[ci].Type, rng)); err != nil {
				return nil, err
			}
		}
		// Deletes: drop up to a quarter of the rows, keeping at least one.
		if next.NumRows() > 1 && rng.Intn(2) == 0 {
			drop := 1 + rng.Intn(next.NumRows()/4+1)
			keep := make([]bool, next.NumRows())
			for i := range keep {
				keep[i] = true
			}
			for d := 0; d < drop && next.NumRows()-d > 1; d++ {
				keep[rng.Intn(len(keep))] = false
			}
			filtered, err := next.Filter(keep)
			if err != nil {
				return nil, err
			}
			next = filtered
		}
		// Inserts: append a few brand-new entities.
		for a := rng.Intn(4); a > 0; a-- {
			if err := appendRow(next, rng); err != nil {
				return nil, err
			}
		}
		if err := next.SetKey("id"); err != nil {
			return nil, err
		}
		snaps = append(snaps, next)
	}
	return snaps, nil
}

// randomRow builds one row for the fuzz schema.
func randomRow(id string, rng *rand.Rand) []table.Value {
	return []table.Value{
		table.S(id),
		randomValue(table.String, rng),
		randomValue(table.Int, rng),
		randomValue(table.Float, rng),
		randomValue(table.Bool, rng),
	}
}

// randomValue draws a value of the given type, null ~10% of the time.
// Floats always carry a fractional part so CSV round-trips keep the column
// typed Float (matching what the store's Checkout re-infers).
func randomValue(t table.Type, rng *rand.Rand) table.Value {
	if rng.Intn(10) == 0 {
		return table.Null(t)
	}
	switch t {
	case table.String:
		return table.S(fuzzCellValues[rng.Intn(len(fuzzCellValues))])
	case table.Int:
		return table.I(int64(rng.Intn(2001) - 1000))
	case table.Float:
		return table.F(float64(rng.Intn(100000))/100 + 0.125)
	case table.Bool:
		return table.B(rng.Intn(2) == 0)
	}
	return table.Null(t)
}
