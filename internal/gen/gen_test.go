package gen

import (
	"math"
	"testing"

	"charles/internal/diff"
)

func TestToyMatchesFigure1(t *testing.T) {
	src, tgt := Toy()
	if src.NumRows() != 9 || tgt.NumRows() != 9 {
		t.Fatalf("rows = %d, %d", src.NumRows(), tgt.NumRows())
	}
	// Spot-check cells straight from the paper's Figure 1.
	v, err := src.Value(0, "bonus")
	if err != nil || v.Float() != 23000 {
		t.Errorf("Anne 2016 bonus = %v", v)
	}
	v, _ = tgt.Value(0, "bonus")
	if v.Float() != 25150 {
		t.Errorf("Anne 2017 bonus = %v", v)
	}
	v, _ = tgt.Value(4, "bonus")
	if v.Float() != 11000 {
		t.Errorf("Cathy 2017 bonus should be unchanged: %v", v)
	}
	v, _ = src.Value(8, "exp")
	if v.Float() != 1 {
		t.Errorf("Frank 2016 exp = %v", v)
	}
	v, _ = tgt.Value(8, "exp")
	if v.Float() != 2 {
		t.Errorf("Frank 2017 exp = %v (should be incremented)", v)
	}
}

func TestToyTruthExplainsToyData(t *testing.T) {
	src, tgt := Toy()
	truth := ToyTruth()
	preds, _, err := truth.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta("bonus")
	if err != nil {
		t.Fatal(err)
	}
	for r := range preds {
		if math.Abs(preds[r]-newVals[r]) > 1e-6 {
			t.Errorf("row %d: truth predicts %v, actual %v", r, preds[r], newVals[r])
		}
	}
}

func TestPlantedTruthConsistencyNoNoise(t *testing.T) {
	d, err := Planted(PlantedConfig{N: 500, Seed: 3, Rules: 3, RuleDepth: 2, UnchangedFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	preds, _, err := d.Truth.Apply(d.Src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta(d.Target)
	if err != nil {
		t.Fatal(err)
	}
	for r := range preds {
		if math.Abs(preds[r]-newVals[r]) > 1e-6 {
			t.Fatalf("row %d: planted truth predicts %v, generated %v", r, preds[r], newVals[r])
		}
	}
}

func TestPlantedDeterministic(t *testing.T) {
	a, err := Planted(PlantedConfig{N: 200, Seed: 9, Rules: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Planted(PlantedConfig{N: 200, Seed: 9, Rules: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Src.Equal(b.Src) || !a.Tgt.Equal(b.Tgt) {
		t.Error("same seed produced different data")
	}
	c, err := Planted(PlantedConfig{N: 200, Seed: 10, Rules: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Src.Equal(c.Src) {
		t.Error("different seeds produced identical data")
	}
}

func TestPlantedUnchangedFraction(t *testing.T) {
	d, err := Planted(PlantedConfig{N: 2000, Seed: 4, Rules: 3, UnchangedFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := a.ChangedMask(d.Target, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, ch := range mask {
		if ch {
			changed++
		}
	}
	frac := float64(changed) / float64(len(mask))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("changed fraction = %v, want ≈ 0.5", frac)
	}
}

func TestPlantedNoiseActuallyPerturbs(t *testing.T) {
	clean, err := Planted(PlantedConfig{N: 300, Seed: 5, Rules: 2, NoiseStd: 0})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Planted(PlantedConfig{N: 300, Seed: 5, Rules: 2, NoiseStd: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Tgt.Equal(noisy.Tgt) {
		t.Error("noise had no effect")
	}
	// Sources identical: noise applies to evolution only.
	if !clean.Src.Equal(noisy.Src) {
		t.Error("noise should not perturb the source snapshot")
	}
}

func TestPlantedDistractors(t *testing.T) {
	d, err := Planted(PlantedConfig{N: 50, Seed: 6, Rules: 2, Distractors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Src.HasColumn("noisecat0") || !d.Src.HasColumn("noisenum0") {
		t.Errorf("distractor columns missing: %v", d.Src.Schema().Names())
	}
}

func TestMontgomeryTruthConsistency(t *testing.T) {
	d, err := Montgomery(7, 800)
	if err != nil {
		t.Fatal(err)
	}
	if d.Src.NumRows() != 800 {
		t.Fatalf("rows = %d", d.Src.NumRows())
	}
	preds, _, err := d.Truth.Apply(d.Src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta(d.Target)
	if err != nil {
		t.Fatal(err)
	}
	for r := range preds {
		if math.Abs(preds[r]-newVals[r]) > 1e-6 {
			t.Fatalf("row %d: policy predicts %v, generated %v", r, preds[r], newVals[r])
		}
	}
}

func TestMontgomerySchemaMatchesPaper(t *testing.T) {
	d, err := Montgomery(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"department", "department_name", "division", "gender", "base_salary", "overtime_pay", "longevity_pay", "grade"} {
		if !d.Src.HasColumn(col) {
			t.Errorf("missing paper attribute %q", col)
		}
	}
}

func TestBillionairesTruthConsistency(t *testing.T) {
	d, err := Billionaires(11, 500)
	if err != nil {
		t.Fatal(err)
	}
	preds, _, err := d.Truth.Apply(d.Src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta(d.Target)
	if err != nil {
		t.Fatal(err)
	}
	for r := range preds {
		if math.Abs(preds[r]-newVals[r]) > 1e-9 {
			t.Fatalf("row %d: policy predicts %v, generated %v", r, preds[r], newVals[r])
		}
	}
}

func TestGeneratorDefaults(t *testing.T) {
	d, err := Montgomery(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Src.NumRows() != 9000 {
		t.Errorf("default Montgomery rows = %d, want 9000", d.Src.NumRows())
	}
	b, err := Billionaires(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Src.NumRows() != 2500 {
		t.Errorf("default billionaires rows = %d, want 2500", b.Src.NumRows())
	}
}

func TestPlantedNonlinearTruthConsistency(t *testing.T) {
	d, err := PlantedNonlinear(31, 400)
	if err != nil {
		t.Fatal(err)
	}
	preds, _, err := d.Truth.Apply(d.Src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta(d.Target)
	if err != nil {
		t.Fatal(err)
	}
	for r := range preds {
		if math.Abs(preds[r]-newVals[r]) > 1e-6 {
			t.Fatalf("row %d: nonlinear truth predicts %v, generated %v", r, preds[r], newVals[r])
		}
	}
	if d2, _ := PlantedNonlinear(31, 0); d2.Src.NumRows() != 1500 {
		t.Errorf("default nonlinear rows = %d", d2.Src.NumRows())
	}
}

func TestPlantedConfigClamps(t *testing.T) {
	// Out-of-range knobs clamp instead of failing.
	d, err := Planted(PlantedConfig{N: 100, Seed: 1, Rules: 99, RuleDepth: 7, UnchangedFrac: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Truth.Size() > 8 {
		t.Errorf("rules clamp failed: %d", d.Truth.Size())
	}
	neg, err := Planted(PlantedConfig{N: 100, Seed: 1, Rules: 1, UnchangedFrac: -3})
	if err != nil {
		t.Fatal(err)
	}
	if neg.Src.NumRows() != 100 {
		t.Errorf("rows = %d", neg.Src.NumRows())
	}
	def, err := Planted(PlantedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Src.NumRows() != 1000 || def.Truth.Size() != 3 {
		t.Errorf("defaults: rows=%d rules=%d", def.Src.NumRows(), def.Truth.Size())
	}
}

func TestChainDeterministicAndPlanted(t *testing.T) {
	a, err := Chain(ChainConfig{N: 30, Steps: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chain(ChainConfig{N: 30, Steps: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 {
		t.Fatalf("snapshots = %d, want Steps+1", len(a))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("snapshot %d differs across identical configs", i)
		}
		if !a[i].Schema().Equal(a[0].Schema()) {
			t.Errorf("snapshot %d schema drifted", i)
		}
	}
	// Per-step change pattern: salary and bonus every step, overtime on even
	// steps, longevity on steps divisible by 3.
	for s := 1; s < len(a); s++ {
		al, err := diff.Align(a[s-1], a[s])
		if err != nil {
			t.Fatal(err)
		}
		changed, err := al.ChangedAttrs(1e-9)
		if err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, attr := range changed {
			set[attr] = true
		}
		if !set["salary"] || !set["bonus"] {
			t.Errorf("step %d: salary/bonus must change every step: %v", s, changed)
		}
		if set["overtime"] != (s%2 == 0) {
			t.Errorf("step %d: overtime changed = %v", s, set["overtime"])
		}
		if set["longevity"] != (s%3 == 0) {
			t.Errorf("step %d: longevity changed = %v", s, set["longevity"])
		}
		if set["grade"] || set["dept"] {
			t.Errorf("step %d: condition attributes must stay fixed: %v", s, changed)
		}
	}
}

// TestMutateChainDeterministicAndMutating pins the fuzz generator: equal
// seeds give byte-equal chains, every snapshot keeps the key declaration and
// at least one row, and consecutive snapshots actually differ.
func TestMutateChainDeterministicAndMutating(t *testing.T) {
	a, err := MutateChain(FuzzConfig{N: 20, Steps: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MutateChain(FuzzConfig{N: 20, Steps: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("chain lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("snapshot %d differs across identical seeds", i)
		}
		if a[i].NumRows() == 0 {
			t.Errorf("snapshot %d is empty", i)
		}
		if key := a[i].Key(); len(key) != 1 || key[0] != "id" {
			t.Errorf("snapshot %d key = %v", i, key)
		}
	}
	for i := 0; i+1 < len(a); i++ {
		if a[i].Equal(a[i+1]) {
			t.Errorf("step %d made no change", i)
		}
	}
	c, err := MutateChain(FuzzConfig{N: 20, Steps: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a[1].Equal(c[1]) {
		t.Error("different seeds produced identical mutations")
	}
}
