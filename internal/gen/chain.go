package gen

import (
	"fmt"
	"math/rand"

	"charles/internal/table"
)

// ChainConfig parameterizes the multi-step, multi-target chain generator.
type ChainConfig struct {
	// N is the number of entities (default 120).
	N int
	// Steps is the number of evolution steps; the chain has Steps+1
	// snapshots (default 8).
	Steps int
	// Seed drives the initial values (default 1).
	Seed int64
}

func (c ChainConfig) withDefaults() ChainConfig {
	if c.N <= 0 {
		c.N = 120
	}
	if c.Steps <= 0 {
		c.Steps = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Chain builds a version chain for the timeline workload: Steps+1 snapshots
// of an employee table in which four numeric attributes evolve under known
// per-step policies while the condition attributes (dept, grade) stay fixed:
//
//	salary    every step:   dept = ENG → 1.03·salary + 500
//	                        dept = POL → salary + 1000   (FIN unchanged)
//	bonus     every step:   grade ≥ 15 → 1.05·bonus, else bonus + 200
//	overtime  even steps:   dept = FIN → 1.10·overtime, else overtime + 50
//	longevity steps s%3==0: grade ≥ 20 → longevity + 250
//
// overtime and longevity skip steps, so their timelines contain genuine
// no-change steps. The generator is fully deterministic given the config.
func Chain(cfg ChainConfig) ([]*table.Table, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := table.Schema{
		{Name: "id", Type: table.String},
		{Name: "dept", Type: table.String},
		{Name: "grade", Type: table.Int},
		{Name: "salary", Type: table.Float},
		{Name: "bonus", Type: table.Float},
		{Name: "overtime", Type: table.Float},
		{Name: "longevity", Type: table.Float},
	}
	depts := []string{"ENG", "POL", "FIN"}
	first := table.MustNew(schema)
	for i := 0; i < cfg.N; i++ {
		dept := depts[rng.Intn(len(depts))]
		grade := int64(5 + rng.Intn(21)) // 5..25
		// The evolving columns carry a .5 cent-like fraction so every
		// snapshot keeps at least one non-integral cell per column — CSV
		// round-trips (the version store) then infer a stable Float type
		// instead of flipping between Int and Float across versions.
		first.MustAppendRow(
			table.S(fmt.Sprintf("e%04d", i)),
			table.S(dept),
			table.I(grade),
			table.F(float64(40000+rng.Intn(1200)*100)+0.5), // salary
			table.F(float64(1000+rng.Intn(90)*100)+0.5),    // bonus
			table.F(float64(rng.Intn(40)*25)+0.5),          // overtime
			table.F(float64(rng.Intn(8)*250)+0.5),          // longevity
		)
	}
	if err := first.SetKey("id"); err != nil {
		return nil, err
	}
	snaps := []*table.Table{first}
	for s := 1; s <= cfg.Steps; s++ {
		next := snaps[len(snaps)-1].Clone()
		dept := next.MustColumn("dept")
		grade := next.MustColumn("grade")
		salary := next.MustColumn("salary")
		bonus := next.MustColumn("bonus")
		overtime := next.MustColumn("overtime")
		longevity := next.MustColumn("longevity")
		for r := 0; r < next.NumRows(); r++ {
			switch dept.Str(r) {
			case "ENG":
				if err := salary.Set(r, table.F(1.03*salary.Float(r)+500)); err != nil {
					return nil, err
				}
			case "POL":
				if err := salary.Set(r, table.F(salary.Float(r)+1000)); err != nil {
					return nil, err
				}
			}
			if grade.Float(r) >= 15 {
				if err := bonus.Set(r, table.F(1.05*bonus.Float(r))); err != nil {
					return nil, err
				}
			} else {
				if err := bonus.Set(r, table.F(bonus.Float(r)+200)); err != nil {
					return nil, err
				}
			}
			if s%2 == 0 {
				ot := overtime.Float(r) + 50
				if dept.Str(r) == "FIN" {
					ot = 1.10 * overtime.Float(r)
				}
				if err := overtime.Set(r, table.F(ot)); err != nil {
					return nil, err
				}
			}
			if s%3 == 0 && grade.Float(r) >= 20 {
				if err := longevity.Set(r, table.F(longevity.Float(r)+250)); err != nil {
					return nil, err
				}
			}
		}
		snaps = append(snaps, next)
	}
	return snaps, nil
}
