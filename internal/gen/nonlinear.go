package gen

import (
	"math"
	"math/rand"

	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/table"
)

// PlantedNonlinear evolves a synthetic table under policies that are linear
// in *derived* features — the extension sketched in the paper's limitations
// section ("augmenting the data with nonlinear features"):
//
//	N1: seg = alpha → pay' = 8000·ln(pay)            (log policy)
//	N2: seg = beta  → pay' = pay + 0.000005·pay²     (quadratic kicker)
//	else: unchanged
//
// A linear-only engine cannot fit these exactly; with Options.Nonlinear the
// feature pool contains ln(pay) and pay² and the policies become exactly
// recoverable.
func PlantedNonlinear(seed int64, n int) (*PlantedData, error) {
	if n <= 0 {
		n = 1500
	}
	rng := rand.New(rand.NewSource(seed))
	schema := table.Schema{
		{Name: "id", Type: table.Int},
		{Name: "seg", Type: table.String},
		{Name: "pay", Type: table.Float},
	}
	src, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	tgt, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	truth := &model.Summary{
		Target: "pay",
		CTs: []model.CT{
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("seg", predicate.Eq, "alpha")}},
				Tran: model.Transformation{
					Target:   "pay",
					Features: []model.Feature{{Form: model.Log, Attr: "pay"}},
					Coef:     []float64{8000},
				},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("seg", predicate.Eq, "beta")}},
				Tran: model.Transformation{
					Target:   "pay",
					Features: []model.Feature{model.Lin("pay"), {Form: model.Square, Attr: "pay"}},
					Coef:     []float64{1, 0.000005},
				},
			},
		},
	}
	segs := []string{"alpha", "beta", "plain"}
	for r := 0; r < n; r++ {
		seg := segs[rng.Intn(3)]
		pay := 30000 + rng.Float64()*90000
		pay = math.Round(pay*100) / 100
		src.MustAppendRow(table.I(int64(r+1)), table.S(seg), table.F(pay))
		newPay := pay
		switch seg {
		case "alpha":
			newPay = 8000 * math.Log(pay)
		case "beta":
			newPay = pay + 0.000005*pay*pay
		}
		tgt.MustAppendRow(table.I(int64(r+1)), table.S(seg), table.F(newPay))
	}
	if err := src.SetKey("id"); err != nil {
		return nil, err
	}
	if err := tgt.SetKey("id"); err != nil {
		return nil, err
	}
	return &PlantedData{
		Src: src, Tgt: tgt, Truth: truth,
		Target:    "pay",
		CondAttrs: []string{"seg"},
		TranAttrs: []string{"pay"},
	}, nil
}
