package gen

import (
	"fmt"
	"math"
	"math/rand"

	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/table"
)

// montgomeryDepts mirrors the department structure of the real Montgomery
// County payroll (police, fire, health, transportation, ...), with rough
// head-count weights and salary bands.
var montgomeryDepts = []struct {
	code      string
	name      string
	divisions []string
	weight    float64
	baseLo    float64
	baseHi    float64
}{
	{"POL", "Department of Police", []string{"Patrol", "Investigations", "Traffic"}, 0.25, 55000, 115000},
	{"FRS", "Fire and Rescue Service", []string{"Operations", "Prevention"}, 0.20, 50000, 105000},
	{"HHS", "Health and Human Services", []string{"Public Health", "Children Services"}, 0.18, 45000, 95000},
	{"DOT", "Department of Transportation", []string{"Highway", "Transit"}, 0.15, 42000, 90000},
	{"LIB", "Public Libraries", []string{"Branches", "Collections"}, 0.08, 38000, 80000},
	{"FIN", "Department of Finance", []string{"Treasury", "Payroll"}, 0.07, 52000, 110000},
	{"REC", "Department of Recreation", []string{"Aquatics", "Parks"}, 0.07, 35000, 75000},
}

// Montgomery simulates the Montgomery County, MD employee-salary dataset the
// paper demonstrates on (data.montgomerycountymd.gov; 2016 → 2017). The real
// download is unavailable offline, so we generate a payroll with the same
// schema — Department, Department Name, Division, Gender, Base Salary,
// Overtime Pay, Longevity Pay, Grade — and evolve Base Salary under a
// county-style pay policy with known ground truth:
//
//	P1: Grade ≥ 25             → base' = 1.03·base + 1500   (senior COLA)
//	P2: Grade < 25 ∧ Dept=POL  → base' = 1.045·base + 1000  (police union)
//	P3: Grade < 25 ∧ Dept=FRS  → base' = 1.04·base + 800    (fire union)
//	others (general schedule)  → base' = 1.02·base          (flat COLA)
//
// Overtime Pay is re-drawn each year (incidental change), Longevity Pay
// increases by a flat 250 for employees with Grade ≥ 15; both exercise
// multi-attribute diffs without affecting the Base Salary experiment.
func Montgomery(seed int64, n int) (*PlantedData, error) {
	if n <= 0 {
		n = 9000
	}
	rng := rand.New(rand.NewSource(seed))
	schema := table.Schema{
		{Name: "employee_id", Type: table.Int},
		{Name: "department", Type: table.String},
		{Name: "department_name", Type: table.String},
		{Name: "division", Type: table.String},
		{Name: "gender", Type: table.String},
		{Name: "base_salary", Type: table.Float},
		{Name: "overtime_pay", Type: table.Float},
		{Name: "longevity_pay", Type: table.Float},
		{Name: "grade", Type: table.Int},
	}
	src, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	tgt, err := table.New(schema)
	if err != nil {
		return nil, err
	}

	truth := &model.Summary{
		Target: "base_salary",
		CTs: []model.CT{
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.NumAtom("grade", predicate.Ge, 25)}},
				Tran: model.Transformation{Target: "base_salary", Inputs: []string{"base_salary"}, Coef: []float64{1.03}, Intercept: 1500},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{
					predicate.NumAtom("grade", predicate.Lt, 25),
					predicate.StrAtom("department", predicate.Eq, "POL"),
				}},
				Tran: model.Transformation{Target: "base_salary", Inputs: []string{"base_salary"}, Coef: []float64{1.045}, Intercept: 1000},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{
					predicate.NumAtom("grade", predicate.Lt, 25),
					predicate.StrAtom("department", predicate.Eq, "FRS"),
				}},
				Tran: model.Transformation{Target: "base_salary", Inputs: []string{"base_salary"}, Coef: []float64{1.04}, Intercept: 800},
			},
			{
				Cond: predicate.True(),
				Tran: model.Transformation{Target: "base_salary", Inputs: []string{"base_salary"}, Coef: []float64{1.02}, Intercept: 0},
			},
		},
	}

	genders := []string{"F", "M"}
	for r := 0; r < n; r++ {
		d := pickDept(rng)
		dept := montgomeryDepts[d]
		division := dept.divisions[rng.Intn(len(dept.divisions))]
		gender := genders[rng.Intn(2)]
		grade := int64(5 + rng.Intn(31)) // grades 5–35
		// Base salary correlates with grade inside the department band.
		frac := float64(grade-5) / 30
		base := dept.baseLo + frac*(dept.baseHi-dept.baseLo) + rng.NormFloat64()*2500
		base = math.Round(base*100) / 100
		overtime := 0.0
		if dept.code == "POL" || dept.code == "FRS" || dept.code == "DOT" {
			overtime = math.Round(rng.Float64()*15000*100) / 100
		}
		longevity := 0.0
		if grade >= 15 {
			longevity = float64(grade-14) * 100
		}

		src.MustAppendRow(
			table.I(int64(r+1)), table.S(dept.code), table.S(dept.name), table.S(division),
			table.S(gender), table.F(base), table.F(overtime), table.F(longevity), table.I(grade),
		)

		// Evolve base salary under the policy (first matching rule).
		newBase := base
		switch {
		case grade >= 25:
			newBase = 1.03*base + 1500
		case dept.code == "POL":
			newBase = 1.045*base + 1000
		case dept.code == "FRS":
			newBase = 1.04*base + 800
		default:
			newBase = 1.02 * base
		}
		newOvertime := overtime
		if overtime > 0 {
			newOvertime = math.Round(rng.Float64()*15000*100) / 100
		}
		newLongevity := longevity
		if grade >= 15 {
			newLongevity += 250
		}
		tgt.MustAppendRow(
			table.I(int64(r+1)), table.S(dept.code), table.S(dept.name), table.S(division),
			table.S(gender), table.F(newBase), table.F(newOvertime), table.F(newLongevity), table.I(grade),
		)
	}
	if err := src.SetKey("employee_id"); err != nil {
		return nil, err
	}
	if err := tgt.SetKey("employee_id"); err != nil {
		return nil, err
	}
	return &PlantedData{
		Src: src, Tgt: tgt, Truth: truth,
		Target:    "base_salary",
		CondAttrs: []string{"department", "grade", "division"},
		TranAttrs: []string{"base_salary"},
	}, nil
}

func pickDept(rng *rand.Rand) int {
	x := rng.Float64()
	acc := 0.0
	for i, d := range montgomeryDepts {
		acc += d.weight
		if x < acc {
			return i
		}
	}
	return len(montgomeryDepts) - 1
}

// Billionaires simulates the Forbes billionaires list (the paper's
// "additional dataset [2]"): net worth evolving under sector-conditioned
// growth with known ground truth:
//
//	B1: sector = Tech             → worth' = 1.25·worth
//	B2: sector = Energy           → worth' = 1.1·worth + 0.5
//	B3: sector = Finance ∧ age ≥ 70 → worth' = 1.05·worth
//	others: unchanged
//
// Net worth is in billions of dollars.
func Billionaires(seed int64, n int) (*PlantedData, error) {
	if n <= 0 {
		n = 2500
	}
	rng := rand.New(rand.NewSource(seed))
	schema := table.Schema{
		{Name: "rank", Type: table.Int},
		{Name: "person", Type: table.String},
		{Name: "net_worth", Type: table.Float},
		{Name: "age", Type: table.Int},
		{Name: "sector", Type: table.String},
		{Name: "country", Type: table.String},
	}
	src, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	tgt, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	truth := &model.Summary{
		Target: "net_worth",
		CTs: []model.CT{
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("sector", predicate.Eq, "Tech")}},
				Tran: model.Transformation{Target: "net_worth", Inputs: []string{"net_worth"}, Coef: []float64{1.25}, Intercept: 0},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("sector", predicate.Eq, "Energy")}},
				Tran: model.Transformation{Target: "net_worth", Inputs: []string{"net_worth"}, Coef: []float64{1.1}, Intercept: 0.5},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{
					predicate.StrAtom("sector", predicate.Eq, "Finance"),
					predicate.NumAtom("age", predicate.Ge, 70),
				}},
				Tran: model.Transformation{Target: "net_worth", Inputs: []string{"net_worth"}, Coef: []float64{1.05}, Intercept: 0},
			},
		},
	}
	sectors := []string{"Tech", "Energy", "Finance", "Retail", "Media", "Healthcare"}
	countries := []string{"USA", "China", "Germany", "India", "France", "Brazil"}
	for r := 0; r < n; r++ {
		sector := sectors[rng.Intn(len(sectors))]
		country := countries[rng.Intn(len(countries))]
		age := int64(30 + rng.Intn(60))
		// Pareto-ish wealth: 1–200 billions.
		worth := math.Round(math.Pow(rng.Float64(), 3)*199*10)/10 + 1
		src.MustAppendRow(
			table.I(int64(r+1)), table.S(fmt.Sprintf("person%04d", r+1)),
			table.F(worth), table.I(age), table.S(sector), table.S(country),
		)
		newWorth := worth
		switch {
		case sector == "Tech":
			newWorth = 1.25 * worth
		case sector == "Energy":
			newWorth = 1.1*worth + 0.5
		case sector == "Finance" && age >= 70:
			newWorth = 1.05 * worth
		}
		tgt.MustAppendRow(
			table.I(int64(r+1)), table.S(fmt.Sprintf("person%04d", r+1)),
			table.F(newWorth), table.I(age), table.S(sector), table.S(country),
		)
	}
	if err := src.SetKey("person"); err != nil {
		return nil, err
	}
	if err := tgt.SetKey("person"); err != nil {
		return nil, err
	}
	return &PlantedData{
		Src: src, Tgt: tgt, Truth: truth,
		Target:    "net_worth",
		CondAttrs: []string{"sector", "age", "country"},
		TranAttrs: []string{"net_worth"},
	}, nil
}
