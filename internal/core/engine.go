package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"charles/internal/assist"
	"charles/internal/diff"
	"charles/internal/dtree"
	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/regress"
	"charles/internal/score"
	"charles/internal/table"
)

// Summarize runs the full ChARLES pipeline over a snapshot pair and returns
// the ranked change summaries for the configured target attribute.
func Summarize(src, tgt *table.Table, opts Options) ([]Ranked, error) {
	aligned, err := diff.Align(src, tgt)
	if err != nil {
		return nil, err
	}
	return SummarizeAligned(aligned, opts)
}

// SummarizeAligned is Summarize for pre-aligned snapshots (lets callers
// amortize alignment across target attributes).
func SummarizeAligned(a *diff.Aligned, opts Options) ([]Ranked, error) {
	if err := opts.validate(a.Source); err != nil {
		return nil, err
	}
	e, err := newEngine(a, opts)
	if err != nil {
		return nil, err
	}
	return e.run()
}

// engine holds per-run state.
type engine struct {
	opts    Options
	a       *diff.Aligned
	oldVals []float64 // target values in source, by source row
	newVals []float64 // target values in target, aligned to source rows
	changed []bool    // per source row

	condAttrs []string
	tranAttrs []string

	changedRows []int // rows with a changed, finite target
	minLeaf     int
}

func newEngine(a *diff.Aligned, opts Options) (*engine, error) {
	e := &engine{opts: opts, a: a}
	var err error
	e.oldVals, e.newVals, err = a.Delta(opts.Target)
	if err != nil {
		return nil, err
	}
	e.changed, err = a.ChangedMask(opts.Target, opts.ChangeTol)
	if err != nil {
		return nil, err
	}
	for r, ch := range e.changed {
		if ch && !math.IsNaN(e.oldVals[r]) && !math.IsNaN(e.newVals[r]) {
			e.changedRows = append(e.changedRows, r)
		}
	}

	// Attribute pools: user-specified, else the setup assistant's shortlist.
	e.condAttrs = opts.CondAttrs
	if len(e.condAttrs) == 0 {
		sugs, err := assist.SuggestCondition(a, opts.Target, opts.ChangeTol)
		if err != nil {
			return nil, err
		}
		// Backfill to a full pool of c attributes: marginal correlation
		// cannot see interaction attributes (the toy's exp only matters
		// inside edu = MS), so the threshold alone is too conservative.
		e.condAttrs = assist.Shortlist(sugs, assist.DefaultThreshold, opts.C, opts.C)
	}
	e.tranAttrs = opts.TranAttrs
	if len(e.tranAttrs) == 0 {
		sugs, err := assist.SuggestTransformation(a, opts.Target, opts.ChangeTol)
		if err != nil {
			return nil, err
		}
		e.tranAttrs = assist.Shortlist(sugs, assist.DefaultThreshold, opts.T, opts.T)
	}
	if err := assist.Validate(a.Source, e.condAttrs, false); err != nil {
		return nil, err
	}
	if err := assist.Validate(a.Source, e.tranAttrs, true); err != nil {
		return nil, err
	}

	e.minLeaf = 1
	if opts.MinLeafFrac > 0 {
		if ml := int(opts.MinLeafFrac * float64(a.Source.NumRows())); ml > 1 {
			e.minLeaf = ml
		}
	}
	return e, nil
}

func (e *engine) run() ([]Ranked, error) {
	// Nothing changed: the only truthful summary is "no change".
	if len(e.changedRows) == 0 {
		s := &model.Summary{Target: e.opts.Target}
		bd, err := score.Evaluate(s, e.a.Source, e.newVals, e.changed, e.opts.Alpha, e.opts.Weights)
		if err != nil {
			return nil, err
		}
		return []Ranked{{Summary: s, Breakdown: bd}}, nil
	}

	condSubsets := subsets(e.condAttrs, e.opts.C)
	tranSubsets := e.featureSubsets()

	// Fan the transformation-feature subsets across workers; the engine is
	// read-only during candidate generation, and the fingerprint-dedup +
	// total-order sort below make the outcome independent of scheduling.
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tranSubsets) {
		workers = len(tranSubsets)
	}
	if workers < 1 {
		workers = 1
	}
	type unit struct {
		ranked []Ranked
		err    error
	}
	jobs := make(chan []model.Feature)
	results := make(chan unit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for T := range jobs {
				ranked, err := e.evalFeatureSet(T, condSubsets)
				results <- unit{ranked: ranked, err: err}
			}
		}()
	}
	go func() {
		for _, T := range tranSubsets {
			jobs <- T
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	best := map[string]Ranked{} // fingerprint -> best-scoring instance
	var firstErr error
	for u := range results {
		if u.err != nil && firstErr == nil {
			firstErr = u.err
		}
		for _, r := range u.ranked {
			fp := r.Summary.Fingerprint()
			if cur, ok := best[fp]; !ok || r.Breakdown.Score > cur.Breakdown.Score {
				best[fp] = r
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	ranked := make([]Ranked, 0, len(best))
	for _, r := range best {
		ranked = append(ranked, r)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Breakdown.Score != ranked[j].Breakdown.Score {
			return ranked[i].Breakdown.Score > ranked[j].Breakdown.Score
		}
		// Deterministic tie-breaks: more interpretable (matters at α = 1,
		// where the blend ignores it), then smaller, then fingerprint.
		if ranked[i].Breakdown.Interpretability != ranked[j].Breakdown.Interpretability {
			return ranked[i].Breakdown.Interpretability > ranked[j].Breakdown.Interpretability
		}
		if ranked[i].Summary.Size() != ranked[j].Summary.Size() {
			return ranked[i].Summary.Size() < ranked[j].Summary.Size()
		}
		return ranked[i].Summary.Fingerprint() < ranked[j].Summary.Fingerprint()
	})
	if len(ranked) > e.opts.TopK {
		ranked = ranked[:e.opts.TopK]
	}
	return ranked, nil
}

// evalFeatureSet evaluates every (C, k) candidate for one transformation
// feature subset and returns the scored summaries.
func (e *engine) evalFeatureSet(T []model.Feature, condSubsets [][]string) ([]Ranked, error) {
	feats, featOK := e.featureMatrix(T)
	var out []Ranked
	for _, C := range condSubsets {
		for k := 1; k <= e.opts.KMax; k++ {
			sum, err := e.candidate(C, T, k, feats, featOK)
			if err != nil {
				return nil, err
			}
			if sum == nil {
				continue
			}
			bd, err := score.Evaluate(sum, e.a.Source, e.newVals, e.changed, e.opts.Alpha, e.opts.Weights)
			if err != nil {
				return nil, err
			}
			out = append(out, Ranked{Summary: sum, Breakdown: bd})
		}
	}
	return out, nil
}

// featureSubsets enumerates the transformation feature sets to try: all
// subsets of size ≤ t of the feature pool. The pool is the shortlisted
// attributes themselves, plus — when the nonlinear extension is enabled —
// their logs, squares, and pairwise interactions (the paper's "augmenting
// the data with nonlinear features").
func (e *engine) featureSubsets() [][]model.Feature {
	pool := make([]model.Feature, 0, len(e.tranAttrs))
	for _, attr := range e.tranAttrs {
		pool = append(pool, model.Lin(attr))
	}
	if e.opts.Nonlinear {
		for _, attr := range e.tranAttrs {
			if e.allPositive(attr) {
				pool = append(pool, model.Feature{Form: model.Log, Attr: attr})
			}
			pool = append(pool, model.Feature{Form: model.Square, Attr: attr})
		}
		for i := 0; i < len(e.tranAttrs); i++ {
			for j := i + 1; j < len(e.tranAttrs); j++ {
				pool = append(pool, model.Feature{Form: model.Interaction, Attr: e.tranAttrs[i], Attr2: e.tranAttrs[j]})
			}
		}
	}
	maxSize := e.opts.T
	if maxSize > len(pool) {
		maxSize = len(pool)
	}
	var out [][]model.Feature
	var rec func(start int, cur []model.Feature)
	rec = func(start int, cur []model.Feature) {
		if len(cur) > 0 && len(cur) <= maxSize {
			out = append(out, append([]model.Feature(nil), cur...))
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < len(pool); i++ {
			rec(i+1, append(cur, pool[i]))
		}
	}
	rec(0, nil)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return featNames(out[i]) < featNames(out[j])
	})
	return out
}

func featNames(fs []model.Feature) string {
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name()
	}
	return fmt.Sprint(names)
}

// allPositive reports whether every non-null value of attr is > 0 (the log
// feature's domain).
func (e *engine) allPositive(attr string) bool {
	col, err := e.a.Source.Column(attr)
	if err != nil {
		return false
	}
	for r := 0; r < col.Len(); r++ {
		if col.IsNull(r) {
			continue
		}
		if col.Float(r) <= 0 {
			return false
		}
	}
	return true
}

// featureMatrix evaluates the feature subset T over the source snapshot,
// plus a per-row finiteness mask.
func (e *engine) featureMatrix(T []model.Feature) ([][]float64, []bool) {
	n := e.a.Source.NumRows()
	feats := make([][]float64, n)
	ok := make([]bool, n)
	for r := 0; r < n; r++ {
		row := make([]float64, len(T))
		good := true
		for j, f := range T {
			v, err := f.Eval(e.a.Source, r)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				good = false
				v = math.NaN()
			}
			row[j] = v
		}
		feats[r] = row
		ok[r] = good
	}
	return feats, ok
}

// candidate builds one summary for the attribute subsets (C, T) and cluster
// count k: global fit → residual k-means → condition induction →
// per-partition refit → snap. Returns nil when the combination is
// infeasible (e.g. not enough usable rows).
func (e *engine) candidate(C []string, T []model.Feature, k int, feats [][]float64, featOK []bool) (*model.Summary, error) {
	// Usable changed rows for this T.
	var rows []int
	for _, r := range e.changedRows {
		if featOK[r] {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if k > len(rows) {
		return nil, nil
	}

	// (a) Global fit over the changed rows.
	gx := make([][]float64, len(rows))
	gy := make([]float64, len(rows))
	for i, r := range rows {
		gx[i] = feats[r]
		gy[i] = e.newVals[r]
	}
	global, err := regress.Fit(gx, gy, regress.DefaultOptions())
	if err != nil {
		// Too few rows for this feature set — fall back to shift residuals.
		global = nil
	}

	// (b) Partition seeding: cluster a 1-D change signal. The default is
	// the paper's residual-from-global-fit; Delta and Ratio exist for the
	// ablation study.
	signal := make([]float64, len(rows))
	for i, r := range rows {
		switch e.opts.Strategy {
		case DeltaKMeans:
			signal[i] = e.newVals[r] - e.oldVals[r]
		case RatioKMeans:
			if e.oldVals[r] != 0 {
				signal[i] = e.newVals[r] / e.oldVals[r]
			} else {
				signal[i] = 0
			}
		default: // ResidualKMeans
			if global != nil {
				signal[i] = e.newVals[r] - global.Predict(feats[r])
			} else {
				signal[i] = e.newVals[r] - e.oldVals[r]
			}
		}
	}
	// (b') Seed + EM-style refinement: 1-D clusters are only a seed — when
	// the latent transformations differ in slope over a wide feature range,
	// their signal distributions overlap. Alternate per-cluster regression
	// fits with best-fit reassignment until stable (best of several
	// seedings); this converges onto the true affine groups (cf. linear
	// model trees / M5-style splitting).
	clusterLabels, err := seedAndRefine(signal, rows, feats, e.newVals, k, e.opts.Seed, e.opts.NoRefine)
	if err != nil {
		return nil, err
	}

	// (c) Labels over all rows: cluster ids for changed rows; unchanged rows
	// (and rows with unusable features) become their own class so the
	// condition tree learns to separate them.
	n := e.a.Source.NumRows()
	labels := make([]int, n)
	unchangedLabel := k
	for r := 0; r < n; r++ {
		labels[r] = unchangedLabel
	}
	for i, r := range rows {
		labels[r] = clusterLabels[i]
	}

	// Tree depth: a decision list needs up to k splits to carve k+1 classes
	// out of one categorical attribute (the paper's c bounds *attributes*
	// per condition, not atoms; simplifyPredicate collapses the ≠-chains
	// afterwards).
	maxAtoms := e.opts.MaxCondAtoms
	if maxAtoms <= 0 {
		maxAtoms = len(C) + 1
		if m := e.opts.KMax + 1; m > maxAtoms {
			maxAtoms = m
		}
		if maxAtoms > 6 {
			maxAtoms = 6
		}
	}
	tree, err := dtree.Build(e.a.Source, C, labels, nil, dtree.Options{
		MaxDepth: maxAtoms,
		MinLeaf:  e.minLeaf,
	})
	if err != nil {
		return nil, err
	}

	// (d) Per-partition transformation discovery.
	sum := &model.Summary{
		Target:    e.opts.Target,
		CondAttrs: append([]string(nil), C...),
		TranAttrs: tranAttrNames(T),
	}
	for _, leaf := range tree.Leaves() {
		pred, err := simplifyPredicate(leaf.Pred, e.a.Source)
		if err != nil {
			return nil, err
		}
		ct, err := e.fitPartition(pred, leaf.Rows, T, feats, featOK)
		if err != nil {
			return nil, err
		}
		if ct == nil {
			continue
		}
		if ct.Tran.NoChange && !e.opts.KeepNoChangeCTs {
			continue // the None leaf stays implicit
		}
		sum.CTs = append(sum.CTs, *ct)
	}
	if len(sum.CTs) == 0 {
		return nil, nil
	}
	// Present dominant partitions first (deterministic).
	sort.SliceStable(sum.CTs, func(i, j int) bool {
		if sum.CTs[i].Rows != sum.CTs[j].Rows {
			return sum.CTs[i].Rows > sum.CTs[j].Rows
		}
		return sum.CTs[i].Cond.Fingerprint() < sum.CTs[j].Cond.Fingerprint()
	})
	return sum, nil
}

// fitPartition turns one induced partition into a CT. Partitions dominated
// by unchanged rows become "no change"; otherwise a linear model is fitted
// on the changed rows, with graceful fallbacks for tiny partitions, then
// snapped to normal constants.
func (e *engine) fitPartition(pred predicate.Predicate, rows []int, T []model.Feature, feats [][]float64, featOK []bool) (*model.CT, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	total := e.a.Source.NumRows()
	ct := &model.CT{
		Cond:     pred,
		Rows:     len(rows),
		Coverage: float64(len(rows)) / float64(total),
	}
	var chRows []int
	for _, r := range rows {
		if e.changed[r] && featOK[r] {
			chRows = append(chRows, r)
		}
	}
	// Mostly-unchanged partition → identity transformation.
	if float64(len(chRows)) < 0.5*float64(len(rows)) {
		ct.Tran = model.Identity(e.opts.Target)
		return ct, nil
	}

	x := make([][]float64, len(chRows))
	y := make([]float64, len(chRows))
	// The snapping budget is relative to the *magnitude of change* in this
	// partition, not the magnitude of the target: rounding may cost a few
	// percent of the change, never a few percent of the value (which would
	// legalize erasing whole rules).
	deltaScale := 0.0
	for i, r := range chRows {
		x[i] = feats[r]
		y[i] = e.newVals[r]
		deltaScale += math.Abs(e.newVals[r] - e.oldVals[r])
	}
	deltaScale /= float64(len(chRows))
	var m *regress.Model
	var err error
	if e.opts.Robust {
		m, _, err = regress.FitRobust(x, y, regress.RobustOptions{Base: regress.DefaultOptions()})
	} else {
		m, err = regress.Fit(x, y, regress.DefaultOptions())
	}
	if err != nil {
		// Fallback 1: no intercept (needs one fewer row).
		m, err = regress.Fit(x, y, regress.Options{Intercept: false, Ridge: 1e-8})
	}
	var tran model.Transformation
	if err == nil {
		snapped := regress.Snap(m, x, y, regress.SnapOptions{Tolerance: e.opts.SnapTolerance, Scale: deltaScale})
		tran = model.Transformation{
			Target:    e.opts.Target,
			Features:  append([]model.Feature(nil), T...),
			Coef:      snapped.Coef,
			Intercept: snapped.Intercept,
		}
		ct.MAE = snapped.MAE
	} else {
		// Fallback 2: pure shift on the target's own previous value
		// (new = old + mean Δ); always well defined with ≥ 1 row.
		shift := 0.0
		for _, r := range chRows {
			shift += e.newVals[r] - e.oldVals[r]
		}
		shift /= float64(len(chRows))
		m2 := &regress.Model{Coef: []float64{1}, Intercept: shift}
		x2 := make([][]float64, len(chRows))
		for i, r := range chRows {
			x2[i] = []float64{e.oldVals[r]}
		}
		m2.Refit(x2, y)
		snapped := regress.Snap(m2, x2, y, regress.SnapOptions{Tolerance: e.opts.SnapTolerance, Scale: deltaScale})
		tran = model.Transformation{
			Target:    e.opts.Target,
			Inputs:    []string{e.opts.Target},
			Coef:      snapped.Coef,
			Intercept: snapped.Intercept,
		}
		ct.MAE = snapped.MAE
	}
	// A fitted transformation numerically equal to identity collapses to
	// NoChange (cleaner rendering, better interpretability score).
	if isIdentity(tran, e.opts.Target) {
		tran = model.Identity(e.opts.Target)
	}
	ct.Tran = tran
	return ct, nil
}

// isIdentity recognizes new_target = 1.0×target + 0.
func isIdentity(tr model.Transformation, target string) bool {
	if tr.NoChange {
		return true
	}
	if tr.Intercept != 0 {
		return false
	}
	for i, in := range tr.Inputs {
		c := tr.Coef[i]
		if in == target {
			if c != 1 {
				return false
			}
		} else if c != 0 {
			return false
		}
	}
	return len(tr.Inputs) > 0
}

// tranAttrNames returns the distinct underlying attribute names of a
// feature subset, for summary provenance.
func tranAttrNames(T []model.Feature) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range T {
		for _, a := range f.Attrs() {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}

// subsets enumerates all non-empty subsets of attrs with size ≤ maxSize,
// in deterministic order (by size, then lexicographic positions).
func subsets(attrs []string, maxSize int) [][]string {
	var out [][]string
	n := len(attrs)
	if maxSize > n {
		maxSize = n
	}
	var rec func(start int, cur []string)
	rec = func(start int, cur []string) {
		if len(cur) > 0 && len(cur) <= maxSize {
			out = append(out, append([]string(nil), cur...))
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, attrs[i]))
		}
	}
	rec(0, nil)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return fmt.Sprint(out[i]) < fmt.Sprint(out[j])
	})
	return out
}
