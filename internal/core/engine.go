package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"charles/internal/assist"
	"charles/internal/diff"
	"charles/internal/dtree"
	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/regress"
	"charles/internal/score"
	"charles/internal/table"
)

// Summarize runs the full ChARLES pipeline over a snapshot pair and returns
// the ranked change summaries for the configured target attribute.
func Summarize(src, tgt *table.Table, opts Options) ([]Ranked, error) {
	aligned, err := diff.Align(src, tgt)
	if err != nil {
		return nil, err
	}
	return SummarizeAligned(aligned, opts)
}

// SummarizeAligned is Summarize for pre-aligned snapshots (lets callers
// amortize alignment across target attributes).
func SummarizeAligned(a *diff.Aligned, opts Options) ([]Ranked, error) {
	if err := opts.validate(a.Source); err != nil {
		return nil, err
	}
	e, err := newEngine(a, opts, nil)
	if err != nil {
		return nil, err
	}
	return e.run()
}

// engine holds per-run state.
type engine struct {
	opts    Options
	a       *diff.Aligned
	oldVals []float64 // target values in source, by source row
	newVals []float64 // target values in target, aligned to source rows
	changed []bool    // per source row

	condAttrs []string
	tranAttrs []string

	changedRows []int // rows with a changed, finite target
	minLeaf     int

	// Shared per-run acceleration structures (immutable / internally
	// synchronized, so workers use them concurrently):
	pcache *predicate.Cache // compiled atom bitmaps, one per distinct atom
	dindex *dtree.Index     // precomputed split candidates per cond attribute
}

// newEngine prepares one run. With a non-nil ctx (built for the same
// aligned pair), the run borrows the context's atom cache and split index
// instead of constructing its own.
func newEngine(a *diff.Aligned, opts Options, ctx *PairContext) (*engine, error) {
	e := &engine{opts: opts, a: a}
	var err error
	e.oldVals, e.newVals, err = a.Delta(opts.Target)
	if err != nil {
		return nil, err
	}
	e.changed, err = a.ChangedMask(opts.Target, opts.ChangeTol)
	if err != nil {
		return nil, err
	}
	for r, ch := range e.changed {
		if ch && !math.IsNaN(e.oldVals[r]) && !math.IsNaN(e.newVals[r]) {
			e.changedRows = append(e.changedRows, r)
		}
	}

	// Attribute pools: user-specified, else the setup assistant's shortlist.
	e.condAttrs = opts.CondAttrs
	if len(e.condAttrs) == 0 {
		sugs, err := assist.SuggestCondition(a, opts.Target, opts.ChangeTol)
		if err != nil {
			return nil, err
		}
		// Backfill to a full pool of c attributes: marginal correlation
		// cannot see interaction attributes (the toy's exp only matters
		// inside edu = MS), so the threshold alone is too conservative.
		e.condAttrs = assist.Shortlist(sugs, assist.DefaultThreshold, opts.C, opts.C)
	}
	e.tranAttrs = opts.TranAttrs
	if len(e.tranAttrs) == 0 {
		sugs, err := assist.SuggestTransformation(a, opts.Target, opts.ChangeTol)
		if err != nil {
			return nil, err
		}
		e.tranAttrs = assist.Shortlist(sugs, assist.DefaultThreshold, opts.T, opts.T)
	}
	if err := assist.Validate(a.Source, e.condAttrs, false); err != nil {
		return nil, err
	}
	if err := assist.Validate(a.Source, e.tranAttrs, true); err != nil {
		return nil, err
	}

	e.minLeaf = 1
	if opts.MinLeafFrac > 0 {
		if ml := int(opts.MinLeafFrac * float64(a.Source.NumRows())); ml > 1 {
			e.minLeaf = ml
		}
	}

	// Per-run acceleration: every distinct condition atom is materialized
	// as a bitmap exactly once, and split candidates (sorted numeric
	// distincts, category dictionaries) are derived once instead of per
	// (C, T, k) candidate. A PairContext hoists both one level further:
	// built once per aligned pair, shared by every target's run.
	if ctx != nil {
		e.pcache = ctx.pcache
		// The context's index covers every non-key column. An exotic pool
		// that names a key column would miss it — dtree.Build's covers()
		// fallback would then silently rebuild an index per candidate tree,
		// thousands per run — so fall back to a per-run index once instead.
		if ctx.dindex.Covers(a.Source, e.condAttrs) {
			e.dindex = ctx.dindex
			return e, nil
		}
		e.dindex, err = dtree.NewIndex(a.Source, e.condAttrs)
		if err != nil {
			return nil, err
		}
		accelIndexBuilds.Add(1)
		return e, nil
	}
	e.pcache = predicate.NewCache(a.Source)
	accelCacheBuilds.Add(1)
	e.dindex, err = dtree.NewIndex(a.Source, e.condAttrs)
	if err != nil {
		return nil, err
	}
	accelIndexBuilds.Add(1)
	return e, nil
}

func (e *engine) run() ([]Ranked, error) {
	if len(e.changedRows) == 0 {
		// changedRows excludes rows whose target is NaN on either side (no
		// model can be fitted through them), so distinguish two cases: with
		// no changed cells at all, the truthful summary is the explicit
		// "no change"; with changes that are all NaN transitions, claiming
		// NoChange would contradict the diff layer (which reports them), so
		// return an empty ranking — "changed, but nothing recoverable".
		for _, ch := range e.changed {
			if ch {
				return []Ranked{}, nil
			}
		}
		s := &model.Summary{Target: e.opts.Target}
		bd, err := score.Evaluate(s, e.a.Source, e.newVals, e.changed, e.opts.Alpha, e.opts.Weights)
		if err != nil {
			return nil, err
		}
		return []Ranked{{Summary: s, Breakdown: bd, NoChange: true}}, nil
	}

	condSubsets := subsets(e.condAttrs, e.opts.C)
	tranSubsets := e.featureSubsets()

	// Fan the transformation-feature subsets across workers; the engine is
	// read-only during candidate generation, and the fingerprint-dedup +
	// total-order sort below make the outcome independent of scheduling.
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tranSubsets) {
		workers = len(tranSubsets)
	}
	if workers < 1 {
		workers = 1
	}
	type unit struct {
		ranked []Ranked
		err    error
	}
	jobs := make(chan []model.Feature)
	results := make(chan unit)
	done := make(chan struct{}) // closed on first worker error: stop feeding
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Each worker owns one Evaluator (scratch buffers are per-worker;
		// the compiled-atom cache is shared across all of them).
		ev, err := score.NewEvaluator(e.a.Source, e.newVals, e.changed, e.opts.Alpha, e.opts.Weights)
		if err != nil {
			return nil, err
		}
		ev.SetCache(e.pcache)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for T := range jobs {
				ranked, err := e.evalFeatureSet(T, condSubsets, ev)
				results <- unit{ranked: ranked, err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, T := range tranSubsets {
			select {
			case jobs <- T:
			case <-done:
				return // a worker failed; don't evaluate the remaining subsets
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	best := map[string]Ranked{} // fingerprint -> best-scoring instance
	var firstErr error
	for u := range results {
		if u.err != nil && firstErr == nil {
			firstErr = u.err
			close(done)
		}
		for _, r := range u.ranked {
			fp := r.Summary.Fingerprint()
			if cur, ok := best[fp]; !ok || r.Breakdown.Score > cur.Breakdown.Score {
				best[fp] = r
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	ranked := make([]Ranked, 0, len(best))
	for _, r := range best {
		ranked = append(ranked, r)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Breakdown.Score != ranked[j].Breakdown.Score {
			return ranked[i].Breakdown.Score > ranked[j].Breakdown.Score
		}
		// Deterministic tie-breaks: more interpretable (matters at α = 1,
		// where the blend ignores it), then smaller, then fingerprint.
		if ranked[i].Breakdown.Interpretability != ranked[j].Breakdown.Interpretability {
			return ranked[i].Breakdown.Interpretability > ranked[j].Breakdown.Interpretability
		}
		if ranked[i].Summary.Size() != ranked[j].Summary.Size() {
			return ranked[i].Summary.Size() < ranked[j].Summary.Size()
		}
		return ranked[i].Summary.Fingerprint() < ranked[j].Summary.Fingerprint()
	})
	if len(ranked) > e.opts.TopK {
		ranked = ranked[:e.opts.TopK]
	}
	return ranked, nil
}

// evalFeatureSet evaluates every (C, k) candidate for one transformation
// feature subset and returns the scored summaries. Everything that does not
// depend on the condition subset is hoisted: the usable rows, the global
// fit, and the clustering signal are computed once per T, and the partition
// labels once per (T, k) — the historical code re-derived all of it for
// every condition subset.
func (e *engine) evalFeatureSet(T []model.Feature, condSubsets [][]string, ev *score.Evaluator) ([]Ranked, error) {
	fm, err := e.featureMatrix(T)
	if err != nil {
		return nil, err
	}
	// Usable changed rows for this T.
	rows := make([]int, 0, len(e.changedRows))
	for _, r := range e.changedRows {
		if fm.ok[r] {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return nil, nil
	}
	global := e.globalFit(rows, fm)
	signal := e.signal(rows, fm, global)

	// Partition labels depend on (T, k) only; memoized lazily so the
	// emission order (C outer, k inner) matches the historical stream.
	labelsByK := make([][]int, e.opts.KMax+1)

	var out []Ranked
	for _, C := range condSubsets {
		for k := 1; k <= e.opts.KMax; k++ {
			if k > len(rows) {
				continue
			}
			labels := labelsByK[k]
			if labels == nil {
				labels, err = e.partitionLabels(signal, rows, fm, k)
				if err != nil {
					return nil, err
				}
				labelsByK[k] = labels
			}
			sum, err := e.candidate(C, T, k, fm, labels)
			if err != nil {
				return nil, err
			}
			if sum == nil {
				continue
			}
			bd, err := ev.Evaluate(sum)
			if err != nil {
				return nil, err
			}
			out = append(out, Ranked{Summary: sum, Breakdown: &bd})
		}
	}
	return out, nil
}

// globalFit fits one model over all usable changed rows (per T; the
// residual-clustering seed). nil when the rows cannot support the fit — the
// signal falls back to shift residuals.
func (e *engine) globalFit(rows []int, fm *featMat) *regress.Model {
	gx := make([][]float64, len(rows))
	gy := make([]float64, len(rows))
	for i, r := range rows {
		gx[i] = fm.row(r)
		gy[i] = e.newVals[r]
	}
	global, err := regress.Fit(gx, gy, regress.DefaultOptions())
	if err != nil {
		return nil
	}
	return global
}

// signal builds the 1-D change signal that seeds partitioning. The default
// is the paper's residual-from-global-fit; Delta and Ratio exist for the
// ablation study.
func (e *engine) signal(rows []int, fm *featMat, global *regress.Model) []float64 {
	signal := make([]float64, len(rows))
	for i, r := range rows {
		switch e.opts.Strategy {
		case DeltaKMeans:
			signal[i] = e.newVals[r] - e.oldVals[r]
		case RatioKMeans:
			if e.oldVals[r] != 0 {
				signal[i] = e.newVals[r] / e.oldVals[r]
			} else {
				signal[i] = 0
			}
		default: // ResidualKMeans
			if global != nil {
				signal[i] = e.newVals[r] - global.Predict(fm.row(r))
			} else {
				signal[i] = e.newVals[r] - e.oldVals[r]
			}
		}
	}
	return signal
}

// partitionLabels clusters the signal into k groups (seed + EM-style
// refinement; see seedAndRefine) and expands the result to a full per-row
// labeling: changed rows carry their cluster id, all other rows the
// "unchanged" class k, so the condition tree learns to separate them.
func (e *engine) partitionLabels(signal []float64, rows []int, fm *featMat, k int) ([]int, error) {
	clusterLabels, err := seedAndRefine(signal, rows, fm, e.newVals, k, e.opts.Seed, e.opts.NoRefine)
	if err != nil {
		return nil, err
	}
	n := e.a.Source.NumRows()
	labels := make([]int, n)
	unchangedLabel := k
	for r := 0; r < n; r++ {
		labels[r] = unchangedLabel
	}
	for i, r := range rows {
		labels[r] = clusterLabels[i]
	}
	return labels, nil
}

// featureSubsets enumerates the transformation feature sets to try: all
// subsets of size ≤ t of the feature pool. The pool is the shortlisted
// attributes themselves, plus — when the nonlinear extension is enabled —
// their logs, squares, and pairwise interactions (the paper's "augmenting
// the data with nonlinear features").
func (e *engine) featureSubsets() [][]model.Feature {
	pool := make([]model.Feature, 0, len(e.tranAttrs))
	for _, attr := range e.tranAttrs {
		pool = append(pool, model.Lin(attr))
	}
	if e.opts.Nonlinear {
		for _, attr := range e.tranAttrs {
			if e.allPositive(attr) {
				pool = append(pool, model.Feature{Form: model.Log, Attr: attr})
			}
			pool = append(pool, model.Feature{Form: model.Square, Attr: attr})
		}
		for i := 0; i < len(e.tranAttrs); i++ {
			for j := i + 1; j < len(e.tranAttrs); j++ {
				pool = append(pool, model.Feature{Form: model.Interaction, Attr: e.tranAttrs[i], Attr2: e.tranAttrs[j]})
			}
		}
	}
	maxSize := e.opts.T
	if maxSize > len(pool) {
		maxSize = len(pool)
	}
	var out [][]model.Feature
	var rec func(start int, cur []model.Feature)
	rec = func(start int, cur []model.Feature) {
		if len(cur) > 0 && len(cur) <= maxSize {
			out = append(out, append([]model.Feature(nil), cur...))
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < len(pool); i++ {
			rec(i+1, append(cur, pool[i]))
		}
	}
	rec(0, nil)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return featNames(out[i]) < featNames(out[j])
	})
	return out
}

func featNames(fs []model.Feature) string {
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name()
	}
	return fmt.Sprint(names)
}

// allPositive reports whether every non-null value of attr is > 0 (the log
// feature's domain).
func (e *engine) allPositive(attr string) bool {
	col, err := e.a.Source.Column(attr)
	if err != nil {
		return false
	}
	for r := 0; r < col.Len(); r++ {
		if col.IsNull(r) {
			continue
		}
		if col.Float(r) <= 0 {
			return false
		}
	}
	return true
}

// featMat is the feature matrix of one transformation subset T: a single
// flat row-major buffer (one allocation instead of one per row) plus a
// per-row finiteness mask. Row vectors are subslices, so downstream fitting
// code consumes them with zero copies.
type featMat struct {
	vals []float64 // NumRows × w, row-major
	w    int       // len(T)
	ok   []bool    // per-row: every feature finite
}

// row returns the feature vector of row r as a view into the flat buffer.
func (m *featMat) row(r int) []float64 { return m.vals[r*m.w : (r+1)*m.w] }

// featureMatrix evaluates the feature subset T over the source snapshot.
// Features are column-bound once (no per-row column lookups).
func (e *engine) featureMatrix(T []model.Feature) (*featMat, error) {
	n := e.a.Source.NumRows()
	m := &featMat{vals: make([]float64, n*len(T)), w: len(T), ok: make([]bool, n)}
	bound := make([]model.BoundFeature, len(T))
	for j, f := range T {
		bf, err := f.Bind(e.a.Source)
		if err != nil {
			return nil, err
		}
		bound[j] = bf
	}
	for r := 0; r < n; r++ {
		row := m.row(r)
		good := true
		for j := range bound {
			v := bound[j].At(r)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				good = false
				v = math.NaN()
			}
			row[j] = v
		}
		m.ok[r] = good
	}
	return m, nil
}

// candidate builds one summary for the attribute subsets (C, T) and cluster
// count k: condition induction over the precomputed partition labels →
// per-partition refit → snap. (The global fit, clustering signal, and
// labels are hoisted into evalFeatureSet — they do not depend on C.)
// Returns nil when the combination yields no explicit CTs.
func (e *engine) candidate(C []string, T []model.Feature, k int, fm *featMat, labels []int) (*model.Summary, error) {
	// Tree depth: a decision list needs up to k splits to carve k+1 classes
	// out of one categorical attribute (the paper's c bounds *attributes*
	// per condition, not atoms; simplifyPredicate collapses the ≠-chains
	// afterwards).
	maxAtoms := e.opts.MaxCondAtoms
	if maxAtoms <= 0 {
		maxAtoms = len(C) + 1
		if m := e.opts.KMax + 1; m > maxAtoms {
			maxAtoms = m
		}
		if maxAtoms > 6 {
			maxAtoms = 6
		}
	}
	tree, err := dtree.Build(e.a.Source, C, labels, nil, dtree.Options{
		MaxDepth: maxAtoms,
		MinLeaf:  e.minLeaf,
		Index:    e.dindex,
	})
	if err != nil {
		return nil, err
	}

	// Per-partition transformation discovery.
	sum := &model.Summary{
		Target:    e.opts.Target,
		CondAttrs: append([]string(nil), C...),
		TranAttrs: tranAttrNames(T),
	}
	for _, leaf := range tree.Leaves() {
		pred, err := simplifyPredicate(leaf.Pred, e.a.Source, e.pcache)
		if err != nil {
			return nil, err
		}
		ct, err := e.fitPartition(pred, leaf.Rows, T, fm)
		if err != nil {
			return nil, err
		}
		if ct == nil {
			continue
		}
		if ct.Tran.NoChange && !e.opts.KeepNoChangeCTs {
			continue // the None leaf stays implicit
		}
		sum.CTs = append(sum.CTs, *ct)
	}
	if len(sum.CTs) == 0 {
		return nil, nil
	}
	// Present dominant partitions first (deterministic). Fingerprints are
	// precomputed: the comparator would otherwise normalize both conditions
	// on every comparison.
	fps := make([]string, len(sum.CTs))
	for i := range sum.CTs {
		fps[i] = sum.CTs[i].Cond.Fingerprint()
	}
	sort.Stable(&ctsByDominance{cts: sum.CTs, fps: fps})
	return sum, nil
}

type ctsByDominance struct {
	cts []model.CT
	fps []string
}

func (s *ctsByDominance) Len() int { return len(s.cts) }
func (s *ctsByDominance) Less(i, j int) bool {
	if s.cts[i].Rows != s.cts[j].Rows {
		return s.cts[i].Rows > s.cts[j].Rows
	}
	return s.fps[i] < s.fps[j]
}
func (s *ctsByDominance) Swap(i, j int) {
	s.cts[i], s.cts[j] = s.cts[j], s.cts[i]
	s.fps[i], s.fps[j] = s.fps[j], s.fps[i]
}

// fitPartition turns one induced partition into a CT. Partitions dominated
// by unchanged rows become "no change"; otherwise a linear model is fitted
// on the changed rows, with graceful fallbacks for tiny partitions, then
// snapped to normal constants.
func (e *engine) fitPartition(pred predicate.Predicate, rows []int, T []model.Feature, fm *featMat) (*model.CT, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	total := e.a.Source.NumRows()
	ct := &model.CT{
		Cond:     pred,
		Rows:     len(rows),
		Coverage: float64(len(rows)) / float64(total),
	}
	var chRows []int
	for _, r := range rows {
		if e.changed[r] && fm.ok[r] {
			chRows = append(chRows, r)
		}
	}
	// Mostly-unchanged partition → identity transformation.
	if float64(len(chRows)) < 0.5*float64(len(rows)) {
		ct.Tran = model.Identity(e.opts.Target)
		return ct, nil
	}

	x := make([][]float64, len(chRows))
	y := make([]float64, len(chRows))
	// The snapping budget is relative to the *magnitude of change* in this
	// partition, not the magnitude of the target: rounding may cost a few
	// percent of the change, never a few percent of the value (which would
	// legalize erasing whole rules).
	deltaScale := 0.0
	for i, r := range chRows {
		x[i] = fm.row(r)
		y[i] = e.newVals[r]
		deltaScale += math.Abs(e.newVals[r] - e.oldVals[r])
	}
	deltaScale /= float64(len(chRows))
	var m *regress.Model
	var err error
	if e.opts.Robust {
		m, _, err = regress.FitRobust(x, y, regress.RobustOptions{Base: regress.DefaultOptions()})
	} else {
		m, err = regress.Fit(x, y, regress.DefaultOptions())
	}
	if err != nil {
		// Fallback 1: no intercept (needs one fewer row).
		m, err = regress.Fit(x, y, regress.Options{Intercept: false, Ridge: 1e-8})
	}
	var tran model.Transformation
	if err == nil {
		snapped := regress.Snap(m, x, y, regress.SnapOptions{Tolerance: e.opts.SnapTolerance, Scale: deltaScale})
		tran = model.Transformation{
			Target:    e.opts.Target,
			Features:  append([]model.Feature(nil), T...),
			Coef:      snapped.Coef,
			Intercept: snapped.Intercept,
		}
		ct.MAE = snapped.MAE
	} else {
		// Fallback 2: pure shift on the target's own previous value
		// (new = old + mean Δ); always well defined with ≥ 1 row.
		shift := 0.0
		for _, r := range chRows {
			shift += e.newVals[r] - e.oldVals[r]
		}
		shift /= float64(len(chRows))
		m2 := &regress.Model{Coef: []float64{1}, Intercept: shift}
		x2 := make([][]float64, len(chRows))
		for i, r := range chRows {
			x2[i] = []float64{e.oldVals[r]}
		}
		m2.Refit(x2, y)
		snapped := regress.Snap(m2, x2, y, regress.SnapOptions{Tolerance: e.opts.SnapTolerance, Scale: deltaScale})
		tran = model.Transformation{
			Target:    e.opts.Target,
			Inputs:    []string{e.opts.Target},
			Coef:      snapped.Coef,
			Intercept: snapped.Intercept,
		}
		ct.MAE = snapped.MAE
	}
	// A fitted transformation numerically equal to identity collapses to
	// NoChange (cleaner rendering, better interpretability score).
	if isIdentity(tran, e.opts.Target) {
		tran = model.Identity(e.opts.Target)
	}
	ct.Tran = tran
	return ct, nil
}

// isIdentity recognizes new_target = 1.0×target + 0.
func isIdentity(tr model.Transformation, target string) bool {
	if tr.NoChange {
		return true
	}
	if tr.Intercept != 0 {
		return false
	}
	for i, in := range tr.Inputs {
		c := tr.Coef[i]
		if in == target {
			if c != 1 {
				return false
			}
		} else if c != 0 {
			return false
		}
	}
	return len(tr.Inputs) > 0
}

// tranAttrNames returns the distinct underlying attribute names of a
// feature subset, for summary provenance.
func tranAttrNames(T []model.Feature) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range T {
		for _, a := range f.Attrs() {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}

// subsets enumerates all non-empty subsets of attrs with size ≤ maxSize,
// in deterministic order (by size, then lexicographic positions).
func subsets(attrs []string, maxSize int) [][]string {
	var out [][]string
	n := len(attrs)
	if maxSize > n {
		maxSize = n
	}
	var rec func(start int, cur []string)
	rec = func(start int, cur []string) {
		if len(cur) > 0 && len(cur) <= maxSize {
			out = append(out, append([]string(nil), cur...))
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, attrs[i]))
		}
	}
	rec(0, nil)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return fmt.Sprint(out[i]) < fmt.Sprint(out[j])
	})
	return out
}
