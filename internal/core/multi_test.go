package core

import (
	"math"
	"testing"

	"charles/internal/diff"
	"charles/internal/table"
)

// multiPair builds a snapshot pair whose two changed numeric attributes are
// deliberately ordered against lexicographic order in the schema (zeta
// before alpha), so the Attrs ordering contract is observable.
func multiPair(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	schema := table.Schema{
		{Name: "id", Type: table.Int},
		{Name: "dept", Type: table.String},
		{Name: "zeta", Type: table.Float},
		{Name: "alpha", Type: table.Float},
	}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	depts := []string{"a", "a", "b", "b", "a", "b", "a", "b"}
	for i, d := range depts {
		z := float64(100 + 10*i)
		al := float64(50 + 5*i)
		src.MustAppendRow(table.I(int64(i)), table.S(d), table.F(z), table.F(al))
		dz, da := 10.0, 0.0
		if d == "b" {
			dz, da = 0, 7
		}
		tgt.MustAppendRow(table.I(int64(i)), table.S(d), table.F(z+dz), table.F(al+da))
	}
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	return src, tgt
}

// TestSummarizeAllAttrsSchemaOrder is the regression test for the Attrs
// ordering contract: "in schema order", not sorted (the historical
// sort.Strings would yield [alpha zeta] here).
func TestSummarizeAllAttrsSchemaOrder(t *testing.T) {
	src, tgt := multiPair(t)
	res, err := SummarizeAll(src, tgt, DefaultOptions("ignored"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"zeta", "alpha"}
	if len(res.Attrs) != len(want) {
		t.Fatalf("Attrs = %v, want %v", res.Attrs, want)
	}
	for i := range want {
		if res.Attrs[i] != want[i] {
			t.Fatalf("Attrs = %v, want schema order %v", res.Attrs, want)
		}
	}
}

// TestPairContextSharesAccelAcrossTargets asserts the amortization contract
// directly: summarizing both changed attributes of one pair through
// SummarizeAll constructs exactly one atom cache and one split index, and
// the context records one engine run per target.
func TestPairContextSharesAccelAcrossTargets(t *testing.T) {
	src, tgt := multiPair(t)
	a, err := diff.Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	c0, i0 := AccelBuilds()
	ctx, err := NewPairContext(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SummarizeAllWith(ctx, DefaultOptions("ignored"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attrs) != 2 {
		t.Fatalf("expected 2 summarized attributes, got %v", res.Attrs)
	}
	c1, i1 := AccelBuilds()
	if c1-c0 != 1 || i1-i0 != 1 {
		t.Errorf("accel builds across 2 targets: caches %d, indexes %d; want 1, 1", c1-c0, i1-i0)
	}
	st := ctx.Stats()
	if st.Runs != 2 {
		t.Errorf("context runs = %d, want 2", st.Runs)
	}
	if st.AtomMisses == 0 || st.AtomMisses != uint64(st.Atoms) {
		t.Errorf("each distinct atom should be materialized exactly once: misses=%d atoms=%d", st.AtomMisses, st.Atoms)
	}
}

// TestPairContextMatchesSummarizeAligned pins bit-identical results between
// a context-backed run and the classic per-run path.
func TestPairContextMatchesSummarizeAligned(t *testing.T) {
	src, tgt := multiPair(t)
	a, err := diff.Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewPairContext(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"zeta", "alpha"} {
		opts := DefaultOptions(target)
		viaCtx, err := ctx.Summarize(opts)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := SummarizeAligned(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(viaCtx) != len(plain) {
			t.Fatalf("%s: %d vs %d summaries", target, len(viaCtx), len(plain))
		}
		for i := range plain {
			if viaCtx[i].Summary.Fingerprint() != plain[i].Summary.Fingerprint() {
				t.Errorf("%s: summary %d fingerprints differ", target, i)
			}
			if *viaCtx[i].Breakdown != *plain[i].Breakdown {
				t.Errorf("%s: summary %d breakdowns differ: %+v vs %+v", target, i, *viaCtx[i].Breakdown, *plain[i].Breakdown)
			}
		}
	}
}

// TestPairContextKeyCondAttrFallback: a condition pool naming the primary
// key is not covered by the pair index (keys are excluded); the engine must
// fall back to one per-run index rather than letting dtree rebuild one per
// candidate tree.
func TestPairContextKeyCondAttrFallback(t *testing.T) {
	src, tgt := multiPair(t)
	a, err := diff.Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewPairContext(a)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("zeta")
	opts.CondAttrs = []string{"id", "dept"} // id is the key
	c0, i0 := AccelBuilds()
	viaCtx, err := ctx.Summarize(opts)
	if err != nil {
		t.Fatal(err)
	}
	c1, i1 := AccelBuilds()
	if c1-c0 != 0 {
		t.Errorf("atom cache rebuilt %d times, want reuse", c1-c0)
	}
	if i1-i0 != 1 {
		t.Errorf("fallback index builds = %d, want exactly 1 per run", i1-i0)
	}
	plain, err := SummarizeAligned(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaCtx) != len(plain) {
		t.Fatalf("fallback path diverged: %d vs %d summaries", len(viaCtx), len(plain))
	}
	for i := range plain {
		if viaCtx[i].Summary.Fingerprint() != plain[i].Summary.Fingerprint() || *viaCtx[i].Breakdown != *plain[i].Breakdown {
			t.Errorf("summary %d differs between fallback and classic path", i)
		}
	}
}

// TestNaNOnlyChangesNotReportedNoChange: when the target's only changes are
// NaN transitions (visible to the diff layer, unmodelable by the engine),
// the run must return an empty ranking — "changed, but nothing recoverable"
// — not the explicit NoChange result that would contradict the diff.
func TestNaNOnlyChangesNotReportedNoChange(t *testing.T) {
	schema := table.Schema{
		{Name: "id", Type: table.Int},
		{Name: "dept", Type: table.String},
		{Name: "v", Type: table.Float},
	}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	for i := 0; i < 8; i++ {
		x := float64(100 + i)
		y := x
		if i < 3 {
			y = math.NaN() // NaN transitions on rows 0..2, rest unchanged
		}
		d := "a"
		if i%2 == 0 {
			d = "b"
		}
		src.MustAppendRow(table.I(int64(i)), table.S(d), table.F(x))
		tgt.MustAppendRow(table.I(int64(i)), table.S(d), table.F(y))
	}
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	ranked, err := Summarize(src, tgt, DefaultOptions("v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 0 {
		t.Fatalf("NaN-only change step ranked %d summaries (first NoChange=%v); want empty", len(ranked), ranked[0].NoChange)
	}
	// A genuinely unchanged pair still yields the explicit NoChange result.
	ranked, err = Summarize(src, src.Clone(), DefaultOptions("v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 || !ranked[0].NoChange {
		t.Fatalf("unchanged pair: got %d results, want the explicit NoChange", len(ranked))
	}
}
