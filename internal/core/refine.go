package core

import (
	"math"

	"charles/internal/cluster"
	"charles/internal/regress"
)

// refineMaxIters bounds the EM-style refinement loop; assignments almost
// always stabilize within a handful of iterations.
const refineMaxIters = 12

// refineRestarts is the number of independent clustering seeds fed through
// refinement. EM converges to local optima that depend on the seeding (and
// hence on row order); taking the best of a few restarts makes recovery
// insensitive to both.
const refineRestarts = 3

// seedAndRefine clusters the 1-D signal with several independent seedings,
// refines each EM-style, and returns the refined labeling with the lowest
// total absolute fitting error (deterministic: ties keep the earliest
// restart). This is the partition-discovery workhorse behind candidate().
func seedAndRefine(signal []float64, rows []int, fm *featMat, newVals []float64, k int, seed int64, noRefine bool) ([]int, error) {
	var bestLabels []int
	bestErr := math.Inf(1)
	for restart := 0; restart < refineRestarts; restart++ {
		km, err := cluster.KMeans1D(signal, k, cluster.Options{Seed: seed + int64(restart)})
		if err != nil {
			return nil, err
		}
		labels := km.Labels
		if !noRefine {
			labels = refineClusters(km.Labels, rows, fm, newVals, k)
		}
		total := totalAbsError(labels, rows, fm, newVals, k)
		if total < bestErr-1e-9 {
			bestLabels, bestErr = labels, total
		}
		if noRefine {
			break // without refinement the extra seeds only churn
		}
	}
	return bestLabels, nil
}

// totalAbsError sums each row's absolute error under its cluster's model.
func totalAbsError(labels []int, rows []int, fm *featMat, newVals []float64, k int) float64 {
	models := fitClusterModels(labels, rows, fm, newVals, k)
	total := 0.0
	for i, r := range rows {
		m := models[labels[i]]
		if m == nil {
			continue
		}
		total += math.Abs(newVals[r] - m.Predict(fm.row(r)))
	}
	return total
}

// refineClusters improves an initial clustering of the changed rows by
// alternating (fit a linear model per cluster) with (reassign each row to
// the cluster whose model predicts its new value best). labels[i] is the
// cluster of rows[i]; feats and newVals are indexed by table row.
// The refined labels (same indexing as labels) are returned; the input
// slice is not modified.
func refineClusters(labels []int, rows []int, fm *featMat, newVals []float64, k int) []int {
	cur := append([]int(nil), labels...)
	if k <= 1 || len(rows) <= 1 {
		return cur
	}
	for iter := 0; iter < refineMaxIters; iter++ {
		models := fitClusterModels(cur, rows, fm, newVals, k)
		sizes := make([]int, k)
		for _, l := range cur {
			sizes[l]++
		}
		changed := false
		for i, r := range rows {
			// Tolerance for "fits equally well": rows on the intersection
			// of two transformation lines are ambiguous, and chasing
			// floating-point dust would make the outcome depend on the
			// k-means seeding (and hence on row order).
			eps := 1e-9 * (1 + math.Abs(newVals[r]))
			bestC, bestErr := -1, math.Inf(1)
			for c := 0; c < k; c++ {
				m := models[c]
				if m == nil {
					continue
				}
				err := math.Abs(newVals[r] - m.Predict(fm.row(r)))
				switch {
				case err < bestErr-eps:
					bestC, bestErr = c, err
				case err <= bestErr+eps && bestC >= 0:
					// Tie: prefer the larger cluster, so ambiguous rows
					// join the dominant policy instead of propping up
					// spurious singleton partitions.
					if sizes[c] > sizes[bestC] || (sizes[c] == sizes[bestC] && c < bestC) {
						bestC = c
						if err < bestErr {
							bestErr = err
						}
					}
				}
			}
			if bestC >= 0 && bestC != cur[i] {
				cur[i] = bestC
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return cur
}

// fitClusterModels fits one model per cluster, with the same fallback
// ladder the partition fitter uses; clusters that cannot support any fit
// get nil (rows keep their previous assignment relative to them).
func fitClusterModels(labels []int, rows []int, fm *featMat, newVals []float64, k int) []*regress.Model {
	models := make([]*regress.Model, k)
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		x := make([][]float64, 0, sizes[c])
		y := make([]float64, 0, sizes[c])
		for i, r := range rows {
			if labels[i] != c {
				continue
			}
			x = append(x, fm.row(r))
			y = append(y, newVals[r])
		}
		if len(y) == 0 {
			continue
		}
		m, err := regress.Fit(x, y, regress.DefaultOptions())
		if err != nil {
			m, err = regress.Fit(x, y, regress.Options{Intercept: false, Ridge: 1e-8})
		}
		if err != nil {
			// Constant model: predict the cluster's mean new value.
			mean := 0.0
			for _, v := range y {
				mean += v
			}
			mean /= float64(len(y))
			m = &regress.Model{Coef: make([]float64, len(x[0])), Intercept: mean}
			m.Refit(x, y)
		}
		models[c] = m
	}
	return models
}
