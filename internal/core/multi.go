package core

import (
	"charles/internal/diff"
	"charles/internal/table"
)

// MultiResult holds per-attribute summaries for a whole-table run.
type MultiResult struct {
	// Attrs lists the summarized attributes in schema order.
	Attrs []string
	// ByAttr maps each changed numeric attribute to its ranked summaries.
	ByAttr map[string][]Ranked
	// Skipped lists changed attributes that could not be summarized
	// (non-numeric), mapped to the reason. Change detection uses
	// base.ChangeTol, with zero defaulting to 1e-9 — the same default
	// DefaultOptions applies — so Skipped and Attrs together cover exactly
	// the attributes a diff at that tolerance reports as changed.
	Skipped map[string]string
}

// SummarizeAll discovers every changed attribute between the snapshots and
// runs the engine once per changed *numeric* attribute, reusing base for
// everything except Target (and clearing TranAttrs so each target gets its
// own assistant shortlist when none was given). Changed categorical
// attributes are reported in Skipped — ChARLES explains numeric evolution.
// All targets share one PairContext: the pair is aligned once and the atom
// cache and split index are built once, not per target.
func SummarizeAll(src, tgt *table.Table, base Options) (*MultiResult, error) {
	a, err := diff.Align(src, tgt)
	if err != nil {
		return nil, err
	}
	ctx, err := NewPairContext(a)
	if err != nil {
		return nil, err
	}
	return SummarizeAllWith(ctx, base)
}

// SummarizeAllWith is SummarizeAll over a prepared PairContext, for callers
// that align (and amortize) themselves — the timeline layer builds one
// context per consecutive snapshot pair and runs every changed attribute
// through it.
func SummarizeAllWith(ctx *PairContext, base Options) (*MultiResult, error) {
	a := ctx.Aligned()
	tol := base.ChangeTol
	if tol == 0 {
		tol = 1e-9
	}
	changed, err := a.ChangedAttrs(tol)
	if err != nil {
		return nil, err
	}
	res := &MultiResult{ByAttr: map[string][]Ranked{}, Skipped: map[string]string{}}
	for _, attr := range changed {
		col, err := a.Source.Column(attr)
		if err != nil {
			return nil, err
		}
		if !col.Type.Numeric() {
			res.Skipped[attr] = "non-numeric attribute (categorical change)"
			continue
		}
		opts := base
		opts.Target = attr
		// Per-target pools: a shortlist computed for one target is wrong
		// for another, so only explicit user pools carry over.
		if len(base.TranAttrs) == 0 {
			opts.TranAttrs = nil
		}
		if len(base.CondAttrs) == 0 {
			opts.CondAttrs = nil
		}
		ranked, err := ctx.Summarize(opts)
		if err != nil {
			return nil, err
		}
		res.Attrs = append(res.Attrs, attr)
		res.ByAttr[attr] = ranked
	}
	// ChangedAttrs reports in schema order and the loop preserves it, so
	// Attrs matches its documentation without re-sorting (the historical
	// sort.Strings here contradicted the doc).
	return res, nil
}
