package core

import (
	"sort"

	"charles/internal/diff"
	"charles/internal/table"
)

// MultiResult holds per-attribute summaries for a whole-table run.
type MultiResult struct {
	// Attrs lists the summarized attributes in schema order.
	Attrs []string
	// ByAttr maps each changed numeric attribute to its ranked summaries.
	ByAttr map[string][]Ranked
	// Skipped lists changed attributes that could not be summarized
	// (non-numeric), mapped to the reason.
	Skipped map[string]string
}

// SummarizeAll discovers every changed attribute between the snapshots and
// runs the engine once per changed *numeric* attribute, reusing base for
// everything except Target (and clearing TranAttrs so each target gets its
// own assistant shortlist when none was given). Changed categorical
// attributes are reported in Skipped — ChARLES explains numeric evolution.
func SummarizeAll(src, tgt *table.Table, base Options) (*MultiResult, error) {
	a, err := diff.Align(src, tgt)
	if err != nil {
		return nil, err
	}
	tol := base.ChangeTol
	if tol == 0 {
		tol = 1e-9
	}
	changed, err := a.ChangedAttrs(tol)
	if err != nil {
		return nil, err
	}
	res := &MultiResult{ByAttr: map[string][]Ranked{}, Skipped: map[string]string{}}
	for _, attr := range changed {
		col, err := src.Column(attr)
		if err != nil {
			return nil, err
		}
		if !col.Type.Numeric() {
			res.Skipped[attr] = "non-numeric attribute (categorical change)"
			continue
		}
		opts := base
		opts.Target = attr
		// Per-target pools: a shortlist computed for one target is wrong
		// for another, so only explicit user pools carry over.
		if len(base.TranAttrs) == 0 {
			opts.TranAttrs = nil
		}
		if len(base.CondAttrs) == 0 {
			opts.CondAttrs = nil
		}
		ranked, err := SummarizeAligned(a, opts)
		if err != nil {
			return nil, err
		}
		res.Attrs = append(res.Attrs, attr)
		res.ByAttr[attr] = ranked
	}
	sort.Strings(res.Attrs)
	return res, nil
}
