package core

import (
	"sync/atomic"

	"charles/internal/diff"
	"charles/internal/dtree"
	"charles/internal/predicate"
)

// PairContext carries the derived state of one aligned snapshot pair that is
// independent of the engine's target attribute: the compiled atom-bitmap
// cache and the split index. A single Summarize run already shares both
// across its workers; the PairContext extends that amortization across *runs*
// — all targets of a multi-attribute summarization (SummarizeAll, the
// timeline workload) reuse one cache and one index instead of rebuilding
// them per engine run.
//
// The cache is internally synchronized and the index is immutable, so a
// PairContext is safe for concurrent Summarize calls.
type PairContext struct {
	a      *diff.Aligned
	pcache *predicate.Cache
	dindex *dtree.Index
	runs   atomic.Int64
}

// NewPairContext builds the shared acceleration structures for a. With an
// explicit condition pool, the split index covers exactly those attributes;
// without one it covers every non-key column of the source snapshot, so it
// serves whatever pool a later run's assistant selects. (Keys identify
// entities and are excluded from condition pools either way; indexing them
// would materialize a dictionary the size of the table for nothing. A run
// whose pool the index does not cover falls back to its own index — see
// newEngine — rather than failing.)
func NewPairContext(a *diff.Aligned, condAttrs ...string) (*PairContext, error) {
	keySet := map[string]bool{}
	for _, k := range a.Source.Key() {
		keySet[k] = true
	}
	var attrs []string
	if len(condAttrs) > 0 {
		for _, c := range condAttrs {
			if !keySet[c] {
				attrs = append(attrs, c)
			}
		}
	} else {
		for _, f := range a.Source.Schema() {
			if !keySet[f.Name] {
				attrs = append(attrs, f.Name)
			}
		}
	}
	dindex, err := dtree.NewIndex(a.Source, attrs)
	if err != nil {
		return nil, err
	}
	accelIndexBuilds.Add(1)
	accelCacheBuilds.Add(1)
	return &PairContext{a: a, pcache: predicate.NewCache(a.Source), dindex: dindex}, nil
}

// Aligned returns the snapshot pair the context was built for.
func (pc *PairContext) Aligned() *diff.Aligned { return pc.a }

// Summarize runs the engine for opts over the context's pair, sharing the
// atom cache and split index with every other run on the same context. The
// ranking is bit-identical to Summarize/SummarizeAligned with the same
// options — sharing changes where derived state lives, not what is derived.
func (pc *PairContext) Summarize(opts Options) ([]Ranked, error) {
	if err := opts.validate(pc.a.Source); err != nil {
		return nil, err
	}
	e, err := newEngine(pc.a, opts, pc)
	if err != nil {
		return nil, err
	}
	pc.runs.Add(1)
	return e.run()
}

// PairStats reports how much work the context amortized.
type PairStats struct {
	// Runs counts engine runs served by this context.
	Runs int64
	// AtomHits and AtomMisses are the shared cache's counters: misses are
	// atoms materialized (each distinct atom exactly once across all runs),
	// hits are lookups served from memory.
	AtomHits, AtomMisses uint64
	// Atoms is the number of distinct atom bitmaps currently materialized.
	Atoms int
}

// Stats snapshots the context's amortization counters.
func (pc *PairContext) Stats() PairStats {
	hits, misses := pc.pcache.Stats()
	return PairStats{
		Runs:     pc.runs.Load(),
		AtomHits: hits, AtomMisses: misses,
		Atoms: pc.pcache.Size(),
	}
}

// accelCacheBuilds and accelIndexBuilds count, process-wide, how many atom
// caches and split indexes the engine layer has constructed — one pair each
// per PairContext, one each per context-free engine run. Tests and
// benchmarks use the deltas to assert that pair-level sharing really builds
// the structures once per pair rather than once per target.
var (
	accelCacheBuilds atomic.Uint64
	accelIndexBuilds atomic.Uint64
)

// AccelBuilds reports the process-wide construction counters for the
// engine's acceleration structures (atom caches, split indexes).
func AccelBuilds() (cacheBuilds, indexBuilds uint64) {
	return accelCacheBuilds.Load(), accelIndexBuilds.Load()
}
