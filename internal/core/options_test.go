package core

import "testing"

func TestOptionsFingerprint(t *testing.T) {
	a := DefaultOptions("bonus")
	b := DefaultOptions("bonus")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical options fingerprint differently")
	}
	// Workers does not influence results and must not influence the key.
	b.Workers = 7
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("Workers changed the fingerprint")
	}
	// Every result-affecting knob must move the fingerprint.
	muts := map[string]func(*Options){
		"target":       func(o *Options) { o.Target = "pay" },
		"cond attrs":   func(o *Options) { o.CondAttrs = []string{"edu"} },
		"tran attrs":   func(o *Options) { o.TranAttrs = []string{"pay"} },
		"c":            func(o *Options) { o.C = 2 },
		"t":            func(o *Options) { o.T = 1 },
		"kmax":         func(o *Options) { o.KMax = 2 },
		"alpha":        func(o *Options) { o.Alpha = 0.7 },
		"topk":         func(o *Options) { o.TopK = 3 },
		"weights":      func(o *Options) { o.Weights.Coverage = 2 },
		"snap":         func(o *Options) { o.SnapTolerance = 0 },
		"changetol":    func(o *Options) { o.ChangeTol = 1e-6 },
		"minleaf":      func(o *Options) { o.MinLeafFrac = 0.1 },
		"maxatoms":     func(o *Options) { o.MaxCondAtoms = 2 },
		"seed":         func(o *Options) { o.Seed = 42 },
		"robust":       func(o *Options) { o.Robust = !o.Robust },
		"nonlinear":    func(o *Options) { o.Nonlinear = true },
		"strategy":     func(o *Options) { o.Strategy = DeltaKMeans },
		"norefine":     func(o *Options) { o.NoRefine = true },
		"keepnochange": func(o *Options) { o.KeepNoChangeCTs = true },
	}
	for name, mut := range muts {
		o := DefaultOptions("bonus")
		mut(&o)
		if o.Fingerprint() == a.Fingerprint() {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

func TestOptionsFingerprintListEncodingUnambiguous(t *testing.T) {
	a := DefaultOptions("bonus")
	a.CondAttrs = []string{"a,b"}
	b := DefaultOptions("bonus")
	b.CondAttrs = []string{"a", "b"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error(`CondAttrs {"a,b"} and {"a","b"} collide`)
	}
	c := DefaultOptions("bonus")
	c.CondAttrs = []string{"x"}
	d := DefaultOptions("bonus")
	d.TranAttrs = []string{"x"}
	if c.Fingerprint() == d.Fingerprint() {
		t.Error("cond attr vs tran attr collide")
	}
}
