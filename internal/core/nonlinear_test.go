package core

import (
	"strings"
	"testing"

	"charles/internal/eval"
	"charles/internal/gen"
	"charles/internal/table"
)

// TestNonlinearRecovery: with the nonlinear feature pool enabled, the
// engine recovers log- and square-feature policies that a linear-only run
// can only approximate.
func TestNonlinearRecovery(t *testing.T) {
	d, err := gen.PlantedNonlinear(31, 1200)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	opts.Nonlinear = true
	// The two planted policies jointly use three features (ln(pay), pay,
	// pay²); every partition of one candidate shares a feature subset, so
	// the bound t must admit all three.
	opts.T = 3
	ranked, err := Summarize(d.Src, d.Tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	top := ranked[0]
	if top.Breakdown.Accuracy < 0.99 {
		t.Errorf("nonlinear accuracy = %v, want ≈ 1", top.Breakdown.Accuracy)
	}
	rendered := top.Summary.String()
	if !strings.Contains(rendered, "ln(pay)") {
		t.Errorf("log feature not recovered:\n%s", rendered)
	}
	rm, err := eval.Rules(d.Truth, top.Summary, d.Src)
	if err != nil {
		t.Fatal(err)
	}
	if rm.MeanJaccard < 0.99 {
		t.Errorf("nonlinear partition Jaccard = %v", rm.MeanJaccard)
	}
}

// TestLinearOnlyCannotFitNonlinearPolicy pins the contrast: the same data
// without the feature extension fits strictly worse.
func TestLinearOnlyCannotFitNonlinearPolicy(t *testing.T) {
	d, err := gen.PlantedNonlinear(31, 1200)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultOptions(d.Target)
	base.CondAttrs = d.CondAttrs
	base.TranAttrs = d.TranAttrs

	linOpts := base
	linRanked, err := Summarize(d.Src, d.Tgt, linOpts)
	if err != nil {
		t.Fatal(err)
	}
	nlOpts := base
	nlOpts.Nonlinear = true
	nlOpts.T = 3
	nlRanked, err := Summarize(d.Src, d.Tgt, nlOpts)
	if err != nil {
		t.Fatal(err)
	}
	linMAE := linRanked[0].Breakdown.MAE
	nlMAE := nlRanked[0].Breakdown.MAE
	if nlMAE >= linMAE {
		t.Errorf("nonlinear MAE %v should beat linear MAE %v", nlMAE, linMAE)
	}
	if linMAE < 10 {
		t.Errorf("linear-only fit suspiciously exact (MAE %v) on a log policy", linMAE)
	}
}

// TestNonlinearOffByDefault guards the default configuration: the linear
// engine must not pay the quadratic feature-pool cost unless asked.
func TestNonlinearOffByDefault(t *testing.T) {
	opts := DefaultOptions("pay")
	if opts.Nonlinear {
		t.Error("Nonlinear should default to false")
	}
}

// TestLogFeatureSkippedOnNonPositiveData: a transformation attribute with
// zeros or negatives must not spawn a log feature.
func TestLogFeatureSkippedOnNonPositiveData(t *testing.T) {
	d, err := gen.Planted(gen.PlantedConfig{N: 300, Seed: 7, Rules: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Force a zero into pay.
	if err := d.Src.MustColumn("pay").Set(0, tableF(0)); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	opts.Nonlinear = true
	ranked, err := Summarize(d.Src, d.Tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranked {
		if strings.Contains(r.Summary.String(), "ln(") {
			t.Fatalf("log feature generated despite non-positive domain:\n%s", r.Summary)
		}
	}
}

// tableF adapts the table value constructor for this test file.
func tableF(x float64) table.Value { return table.F(x) }
