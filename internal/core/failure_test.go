package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"charles/internal/eval"
	"charles/internal/gen"
	"charles/internal/table"
)

// pairSchema builds a minimal keyed snapshot pair for failure injection.
func pair(t *testing.T, build func(src, tgt *table.Table)) (*table.Table, *table.Table) {
	t.Helper()
	schema := table.Schema{
		{Name: "id", Type: table.Int},
		{Name: "grp", Type: table.String},
		{Name: "pay", Type: table.Float},
	}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	build(src, tgt)
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	return src, tgt
}

func TestSingleRowTable(t *testing.T) {
	src, tgt := pair(t, func(src, tgt *table.Table) {
		src.MustAppendRow(table.I(1), table.S("a"), table.F(100))
		tgt.MustAppendRow(table.I(1), table.S("a"), table.F(110))
	})
	opts := DefaultOptions("pay")
	opts.CondAttrs = []string{"grp"}
	opts.TranAttrs = []string{"pay"}
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("single-row pair should still produce a summary")
	}
	// The only explanation possible is a shift/scale of the single row.
	if ranked[0].Breakdown.Accuracy < 0.99 {
		t.Errorf("single-row accuracy = %v", ranked[0].Breakdown.Accuracy)
	}
}

func TestAllTargetValuesNull(t *testing.T) {
	src, tgt := pair(t, func(src, tgt *table.Table) {
		for i := 1; i <= 5; i++ {
			src.MustAppendRow(table.I(int64(i)), table.S("a"), table.Null(table.Float))
			tgt.MustAppendRow(table.I(int64(i)), table.S("a"), table.Null(table.Float))
		}
	})
	opts := DefaultOptions("pay")
	opts.CondAttrs = []string{"grp"}
	opts.TranAttrs = []string{"pay"}
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing changed (null → null): the empty summary.
	if len(ranked) != 1 || ranked[0].Summary.Size() != 0 {
		t.Errorf("all-null target should give the empty summary, got %d summaries", len(ranked))
	}
}

func TestNullBecomesValue(t *testing.T) {
	src, tgt := pair(t, func(src, tgt *table.Table) {
		for i := 1; i <= 6; i++ {
			src.MustAppendRow(table.I(int64(i)), table.S("a"), table.Null(table.Float))
			tgt.MustAppendRow(table.I(int64(i)), table.S("a"), table.F(float64(i*100)))
		}
	})
	opts := DefaultOptions("pay")
	opts.CondAttrs = []string{"grp"}
	opts.TranAttrs = []string{"pay"}
	// Null → value changes have no numeric old value; the engine must not
	// crash, and with no usable (finite) changed rows it reports no-change
	// or a degenerate summary rather than NaN scores.
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranked {
		if r.Breakdown.Score != r.Breakdown.Score { // NaN check
			t.Fatal("NaN score leaked out")
		}
	}
}

func TestConstantTargetShift(t *testing.T) {
	src, tgt := pair(t, func(src, tgt *table.Table) {
		for i := 1; i <= 8; i++ {
			src.MustAppendRow(table.I(int64(i)), table.S("a"), table.F(5000))
			tgt.MustAppendRow(table.I(int64(i)), table.S("a"), table.F(5500))
		}
	})
	opts := DefaultOptions("pay")
	opts.CondAttrs = []string{"grp"}
	opts.TranAttrs = []string{"pay"}
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Constant source: slope unidentifiable (rank deficient); the ridge /
	// shift fallbacks must still explain the +500 exactly.
	if ranked[0].Breakdown.Accuracy < 0.999 {
		t.Errorf("constant-shift accuracy = %v\n%s", ranked[0].Breakdown.Accuracy, ranked[0].Summary)
	}
}

func TestDuplicateKeysRejected(t *testing.T) {
	src, tgt := pair(t, func(src, tgt *table.Table) {
		src.MustAppendRow(table.I(1), table.S("a"), table.F(1))
		src.MustAppendRow(table.I(1), table.S("a"), table.F(2))
		tgt.MustAppendRow(table.I(1), table.S("a"), table.F(1))
		tgt.MustAppendRow(table.I(1), table.S("a"), table.F(2))
	})
	if _, err := Summarize(src, tgt, DefaultOptions("pay")); err == nil {
		t.Error("duplicate primary keys accepted")
	}
}

func TestCategoricalOnlyConditionPoolWithNumericTarget(t *testing.T) {
	// All condition attributes categorical, target numeric: the standard
	// case, but with a condition pool that contains the key accidentally
	// excluded — i.e. pool = {grp} only.
	src, tgt := pair(t, func(src, tgt *table.Table) {
		groups := []string{"a", "a", "b", "b", "c", "c"}
		for i, g := range groups {
			pay := float64(1000 * (i + 1))
			src.MustAppendRow(table.I(int64(i+1)), table.S(g), table.F(pay))
			newPay := pay
			if g == "a" {
				newPay = pay * 1.1
			}
			tgt.MustAppendRow(table.I(int64(i+1)), table.S(g), table.F(newPay))
		}
	})
	opts := DefaultOptions("pay")
	opts.CondAttrs = []string{"grp"}
	opts.TranAttrs = []string{"pay"}
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	top := ranked[0]
	if top.Summary.Size() != 1 {
		t.Fatalf("want a single CT for the single-group policy, got:\n%s", top.Summary)
	}
	if got := top.Summary.CTs[0].Cond.String(); got != "grp = a" {
		t.Errorf("condition = %q, want grp = a", got)
	}
}

// TestPlantedRecoveryProperty: across random generator configurations, the
// engine must recover the planted policy's partitions with high fidelity
// (no noise ⇒ rule F1 ≥ threshold) and must never error or emit NaNs.
func TestPlantedRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := gen.PlantedConfig{
			N:             300 + r.Intn(400),
			Seed:          seed,
			Rules:         1 + r.Intn(3),
			RuleDepth:     1 + r.Intn(2),
			UnchangedFrac: float64(r.Intn(5)) / 10,
		}
		d, err := gen.Planted(cfg)
		if err != nil {
			return false
		}
		opts := DefaultOptions(d.Target)
		opts.CondAttrs = d.CondAttrs
		opts.TranAttrs = d.TranAttrs
		ranked, err := Summarize(d.Src, d.Tgt, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		top := ranked[0]
		if top.Breakdown.Score != top.Breakdown.Score {
			t.Logf("seed %d: NaN score", seed)
			return false
		}
		rm, err := eval.Rules(d.Truth, top.Summary, d.Src)
		if err != nil {
			return false
		}
		if rm.MeanJaccard < 0.85 {
			t.Logf("seed %d (cfg %+v): jaccard %v\ntruth:\n%s\ngot:\n%s",
				seed, cfg, rm.MeanJaccard, d.Truth, top.Summary)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
