// Package core implements the ChARLES diff discovery engine: given two
// aligned snapshots and a numeric target attribute, it enumerates candidate
// condition/transformation attribute subsets, discovers data partitions by
// clustering the residuals of a global fit, induces human-readable
// conditions for the partitions, fits per-partition transformations, and
// returns the top-K scored change summaries.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"charles/internal/model"
	"charles/internal/score"
	"charles/internal/table"
)

// Options configure a Summarize run. The zero value is not valid; use
// DefaultOptions and override fields.
type Options struct {
	// Target is the numeric attribute whose evolution is summarized.
	Target string

	// CondAttrs and TranAttrs are the candidate attribute pools A_cond and
	// A_tran. Empty pools are filled by the setup assistant (correlation
	// shortlist, paper demo steps 4–5).
	CondAttrs []string
	TranAttrs []string

	// C and T bound the subset sizes: conditions use at most C attributes,
	// transformations at most T (paper parameters c and t).
	C int
	T int

	// KMax bounds the number of residual clusters (candidate partitions)
	// tried per attribute-subset pair.
	KMax int

	// Alpha weighs accuracy against interpretability in Score(S).
	Alpha float64

	// TopK is the number of ranked summaries to return (paper default 10).
	TopK int

	// Weights tune the interpretability sub-scores.
	Weights score.Weights

	// SnapTolerance is the relative accuracy loss allowed when rounding
	// fitted constants to "normal" values (0 disables snapping).
	SnapTolerance float64

	// ChangeTol is the absolute numeric tolerance used to decide whether a
	// cell changed between the snapshots.
	ChangeTol float64

	// MinLeafFrac is the minimum fraction of rows a partition must hold
	// (protects against overly specific conditions; paper's coverage
	// preference). 0 means a single row suffices.
	MinLeafFrac float64

	// MaxCondAtoms bounds the depth of induced condition predicates. 0
	// derives it from the condition-subset size.
	MaxCondAtoms int

	// Seed makes clustering deterministic.
	Seed int64

	// Robust enables MAD-trimmed per-partition fitting, which keeps a few
	// off-policy edits (manual corrections, data-entry errors) from
	// dragging the recovered transformation away from the policy.
	Robust bool

	// Nonlinear augments the transformation feature pool with derived
	// features — ln(attr), attr², and pairwise products — so transformations
	// stay linear in the features while capturing nonlinear policies (the
	// extension sketched in the paper's limitations section). The feature
	// pool, and hence the search, grows quadratically in the number of
	// transformation attributes; the t bound still applies per summary.
	Nonlinear bool

	// Strategy selects how candidate partitions are discovered (the paper
	// notes "other methods of partitioning ... are certainly possible";
	// the non-default strategies exist for the ablation study E12).
	Strategy PartitionStrategy

	// NoRefine disables the EM-style cluster refinement between seeding
	// and condition induction (ablation knob; leave false in production —
	// without refinement, transformations that differ in slope over a wide
	// feature range are frequently conflated).
	NoRefine bool

	// KeepNoChangeCTs retains explicit "no change" CTs in summaries instead
	// of leaving unchanged partitions implicit (the default, matching the
	// paper's None leaf).
	KeepNoChangeCTs bool

	// Workers bounds the goroutines evaluating candidate (C, T, k)
	// combinations; 0 uses GOMAXPROCS. The search is embarrassingly
	// parallel over transformation-feature subsets, and results are
	// identical regardless of worker count (candidates are deduplicated by
	// fingerprint and ranked with total-order tie-breaks). The timeline
	// layer (history.SummarizeAll) reuses the same knob to bound its
	// per-step worker pool, collapsing each engine run to one worker when
	// the step pool is parallel so total concurrency stays at the bound.
	Workers int
}

// DefaultOptions returns the engine defaults used in the paper's demo:
// c = 3, t = 2, α = 0.5, top-10 summaries.
func DefaultOptions(target string) Options {
	return Options{
		Target:        target,
		C:             3,
		T:             2,
		KMax:          4,
		Alpha:         0.5,
		TopK:          10,
		Weights:       score.DefaultWeights(),
		SnapTolerance: 0.02,
		ChangeTol:     1e-9,
		Seed:          1,
		Robust:        true,
	}
}

// Fingerprint returns a deterministic digest of every option that can
// influence a Summarize result. Two Options values with equal fingerprints
// produce identical rankings over the same snapshot pair (the engine is
// deterministic given Seed and independent of Workers), which makes the
// fingerprint a sound component of result-cache keys.
func (o Options) Fingerprint() string {
	var b strings.Builder
	// Workers is deliberately excluded: results are identical regardless of
	// worker count. Every other field participates. String components are
	// %q-quoted so attribute names containing separators cannot make
	// distinct option sets collide.
	fmt.Fprintf(&b, "target=%q|cond=%s|tran=%s|c=%d|t=%d|kmax=%d|alpha=%.12g|topk=%d",
		o.Target, quoteList(o.CondAttrs), quoteList(o.TranAttrs),
		o.C, o.T, o.KMax, o.Alpha, o.TopK)
	fmt.Fprintf(&b, "|w=%.12g,%.12g,%.12g,%.12g,%.12g",
		o.Weights.Size, o.Weights.CondSimplicity, o.Weights.TranSimplicity,
		o.Weights.Coverage, o.Weights.Normality)
	fmt.Fprintf(&b, "|snap=%.12g|tol=%.12g|minleaf=%.12g|maxatoms=%d|seed=%d",
		o.SnapTolerance, o.ChangeTol, o.MinLeafFrac, o.MaxCondAtoms, o.Seed)
	fmt.Fprintf(&b, "|robust=%t|nonlinear=%t|strategy=%d|norefine=%t|keepnochange=%t",
		o.Robust, o.Nonlinear, int(o.Strategy), o.NoRefine, o.KeepNoChangeCTs)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}

// quoteList renders a string slice unambiguously: each element %q-quoted,
// so {"a,b"} and {"a","b"} serialize differently.
func quoteList(items []string) string {
	quoted := make([]string, len(items))
	for i, s := range items {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, ",")
}

func (o Options) validate(src *table.Table) error {
	if o.Target == "" {
		return fmt.Errorf("core: no target attribute")
	}
	col, err := src.Column(o.Target)
	if err != nil {
		return err
	}
	if !col.Type.Numeric() {
		return fmt.Errorf("core: target attribute %q is %s, need numeric", o.Target, col.Type)
	}
	if o.C <= 0 || o.T <= 0 {
		return fmt.Errorf("core: parameters c=%d and t=%d must be positive", o.C, o.T)
	}
	if o.KMax <= 0 {
		return fmt.Errorf("core: KMax must be positive, got %d", o.KMax)
	}
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("core: alpha %g out of [0,1]", o.Alpha)
	}
	if o.TopK <= 0 {
		return fmt.Errorf("core: TopK must be positive, got %d", o.TopK)
	}
	return nil
}

// PartitionStrategy selects the clustering signal used to seed partitions.
type PartitionStrategy int

const (
	// ResidualKMeans clusters the residuals of a global fit (the paper's
	// method, and the default).
	ResidualKMeans PartitionStrategy = iota
	// DeltaKMeans clusters the raw change Δ = new − old. Cheap, but groups
	// with equal additive shifts and different slopes blur together.
	DeltaKMeans
	// RatioKMeans clusters the relative change new/old. Natural for purely
	// multiplicative policies; additive constants distort it.
	RatioKMeans
)

// String names the strategy for reports.
func (s PartitionStrategy) String() string {
	switch s {
	case ResidualKMeans:
		return "residual-kmeans"
	case DeltaKMeans:
		return "delta-kmeans"
	case RatioKMeans:
		return "ratio-kmeans"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", int(s))
	}
}

// Ranked pairs a summary with its evaluated score.
type Ranked struct {
	Summary   *model.Summary
	Breakdown *score.Breakdown

	// NoChange marks the engine's explicit "nothing changed" result: the
	// target attribute did not move between the snapshots, and Summary is
	// the empty summary. It is the authoritative signal — callers should
	// test it rather than inferring no-change from Summary.Size().
	NoChange bool
}

// Score returns the blended score (convenience accessor).
func (r Ranked) Score() float64 { return r.Breakdown.Score }
