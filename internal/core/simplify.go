package core

import (
	"sort"

	"charles/internal/predicate"
	"charles/internal/table"
)

// simplifyPredicate rewrites an induced condition into the simplest form
// that selects exactly the same rows of t:
//
//  1. redundant atoms are dropped (edu ≠ BS ∧ edu ≠ MS ∧ exp < 4 loses the
//     exp atom when every remaining row already satisfies it);
//  2. a pile of ≠ atoms on one categorical attribute collapses to a single
//     equality when only one value remains in the selected rows
//     (edu ≠ BS ∧ edu ≠ MS becomes edu = PhD).
//
// Both rewrites are validated by row-set equality, so the summary's
// semantics on the observed data are unchanged while its interpretability
// (fewer, positive descriptors) improves — exactly the paper's preference
// for simpler conditions.
func simplifyPredicate(p predicate.Predicate, t *table.Table) (predicate.Predicate, error) {
	p = p.Normalize()
	base, err := p.Mask(t)
	if err != nil {
		return p, err
	}

	// Pass 1: greedy redundant-atom elimination to a fixpoint.
	for {
		dropped := false
		for i := range p.Atoms {
			cand := predicate.Predicate{Atoms: removeAtom(p.Atoms, i)}
			m, err := cand.Mask(t)
			if err != nil {
				return p, err
			}
			if maskEqual(m, base) {
				p = cand
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
	}

	// Pass 2: collapse ≠-chains into a positive equality. Attributes are
	// visited in sorted order so the rewrite is deterministic.
	neSet := map[string]bool{}
	for _, a := range p.Atoms {
		if !a.Numeric && a.Op == predicate.Ne {
			neSet[a.Attr] = true
		}
	}
	neAttrs := make([]string, 0, len(neSet))
	for attr := range neSet {
		neAttrs = append(neAttrs, attr)
	}
	sort.Strings(neAttrs)
	for _, attr := range neAttrs {
		col, err := t.Column(attr)
		if err != nil {
			return p, err
		}
		distinct := map[string]bool{}
		for r, in := range base {
			if in && !col.IsNull(r) {
				distinct[col.Str(r)] = true
			}
		}
		if len(distinct) != 1 {
			continue
		}
		var only string
		for v := range distinct {
			only = v
		}
		var atoms []predicate.Atom
		for _, a := range p.Atoms {
			if !a.Numeric && a.Op == predicate.Ne && a.Attr == attr {
				continue
			}
			atoms = append(atoms, a)
		}
		atoms = append(atoms, predicate.StrAtom(attr, predicate.Eq, only))
		cand := predicate.Predicate{Atoms: atoms}
		m, err := cand.Mask(t)
		if err != nil {
			return p, err
		}
		if maskEqual(m, base) {
			p = cand
		}
	}

	// Re-run atom elimination: the equality may subsume other atoms.
	for {
		dropped := false
		for i := range p.Atoms {
			cand := predicate.Predicate{Atoms: removeAtom(p.Atoms, i)}
			m, err := cand.Mask(t)
			if err != nil {
				return p, err
			}
			if maskEqual(m, base) {
				p = cand
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
	}
	return p.Normalize(), nil
}

func removeAtom(atoms []predicate.Atom, i int) []predicate.Atom {
	out := make([]predicate.Atom, 0, len(atoms)-1)
	out = append(out, atoms[:i]...)
	out = append(out, atoms[i+1:]...)
	return out
}

func maskEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
