package core

import (
	"sort"

	"charles/internal/predicate"
	"charles/internal/table"
)

// simplifyPredicate rewrites an induced condition into the simplest form
// that selects exactly the same rows of t:
//
//  1. redundant atoms are dropped (edu ≠ BS ∧ edu ≠ MS ∧ exp < 4 loses the
//     exp atom when every remaining row already satisfies it);
//  2. a pile of ≠ atoms on one categorical attribute collapses to a single
//     equality when only one value remains in the selected rows
//     (edu ≠ BS ∧ edu ≠ MS becomes edu = PhD).
//
// Both rewrites are validated by row-set equality, so the summary's
// semantics on the observed data are unchanged while its interpretability
// (fewer, positive descriptors) improves — exactly the paper's preference
// for simpler conditions.
//
// Each atom's bitmap is fetched from the run's shared cache once per call;
// every candidate test is then a few word-wise ANDs over those bitmaps
// instead of a full table scan per atom.
func simplifyPredicate(p predicate.Predicate, t *table.Table, pc *predicate.Cache) (predicate.Predicate, error) {
	p = p.Normalize()
	atoms := append([]predicate.Atom(nil), p.Atoms...)
	bits := make([]predicate.Bitset, len(atoms))
	for i, a := range atoms {
		bs, err := pc.AtomMask(a)
		if err != nil {
			return p, err
		}
		bits[i] = bs
	}
	n := pc.Rows()
	base := andAll(bits, nil, n)
	scratch := predicate.NewBitset(n)

	// Pass 1: greedy redundant-atom elimination to a fixpoint.
	atoms, bits = dropRedundantAtoms(atoms, bits, base, scratch, n)

	// Pass 2: collapse ≠-chains into a positive equality. Attributes are
	// visited in sorted order so the rewrite is deterministic.
	neSet := map[string]bool{}
	for _, a := range atoms {
		if !a.Numeric && a.Op == predicate.Ne {
			neSet[a.Attr] = true
		}
	}
	neAttrs := make([]string, 0, len(neSet))
	for attr := range neSet {
		neAttrs = append(neAttrs, attr)
	}
	sort.Strings(neAttrs)
	for _, attr := range neAttrs {
		col, err := t.Column(attr)
		if err != nil {
			return predicate.Predicate{Atoms: atoms}, err
		}
		codes, dict := col.Codes()
		// Distinct non-null values among the selected rows; the collapse
		// applies only when exactly one remains.
		only, unique, found := "", true, false
		base.ForEach(func(r int) {
			c := codes[r]
			if c == table.NullCode {
				return
			}
			switch {
			case !found:
				found, only = true, dict[c]
			case only != dict[c]:
				unique = false
			}
		})
		if !found || !unique {
			continue
		}
		var keptAtoms []predicate.Atom
		var keptBits []predicate.Bitset
		for i, a := range atoms {
			if !a.Numeric && a.Op == predicate.Ne && a.Attr == attr {
				continue
			}
			keptAtoms = append(keptAtoms, a)
			keptBits = append(keptBits, bits[i])
		}
		eq := predicate.StrAtom(attr, predicate.Eq, only)
		eqBits, err := pc.AtomMask(eq)
		if err != nil {
			return predicate.Predicate{Atoms: atoms}, err
		}
		keptAtoms = append(keptAtoms, eq)
		keptBits = append(keptBits, eqBits)
		scratch = andAll(keptBits, scratch, n)
		if scratch.Equal(base) {
			atoms, bits = keptAtoms, keptBits
		}
	}

	// Re-run atom elimination: the equality may subsume other atoms.
	atoms, _ = dropRedundantAtoms(atoms, bits, base, scratch, n)
	return predicate.Predicate{Atoms: atoms}.Normalize(), nil
}

// dropRedundantAtoms removes atoms whose absence leaves the selected row set
// unchanged, to a fixpoint. atoms and bits stay aligned.
func dropRedundantAtoms(atoms []predicate.Atom, bits []predicate.Bitset, base, scratch predicate.Bitset, n int) ([]predicate.Atom, []predicate.Bitset) {
	for {
		dropped := false
		for i := range atoms {
			scratch = andAllBut(bits, i, scratch, n)
			if scratch.Equal(base) {
				atoms = append(atoms[:i:i], atoms[i+1:]...)
				bits = append(bits[:i:i], bits[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return atoms, bits
		}
	}
}

// andAll writes the intersection of all bitsets into dst (the empty
// conjunction selects every row).
func andAll(bits []predicate.Bitset, dst predicate.Bitset, n int) predicate.Bitset {
	return andAllBut(bits, -1, dst, n)
}

// andAllBut is andAll excluding index skip.
func andAllBut(bits []predicate.Bitset, skip int, dst predicate.Bitset, n int) predicate.Bitset {
	if dst == nil {
		dst = predicate.NewBitset(n)
	}
	first := true
	for i, b := range bits {
		if i == skip {
			continue
		}
		if first {
			dst.CopyFrom(b)
			first = false
		} else {
			dst.And(b)
		}
	}
	if first {
		dst.Fill(n)
	}
	return dst
}
