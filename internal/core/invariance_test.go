package core

import (
	"math/rand"
	"testing"

	"charles/internal/gen"
)

// TestRowOrderInvariance: physical row order is presentation, not
// semantics — the recovered top summary must not change when both
// snapshots are permuted identically. (Regression test: k-means++ seeding
// is order-sensitive, and EM refinement converges to seed-dependent local
// optima; multi-seed refinement with ambiguity-aware tie-breaks makes the
// result stable.)
func TestRowOrderInvariance(t *testing.T) {
	src, tgt := gen.Toy()
	baseRanked, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	baseTop := baseRanked[0]

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(src.NumRows())
		psrc := src.Gather(perm)
		ptgt := tgt.Gather(perm)
		if err := psrc.SetKey("name"); err != nil {
			t.Fatal(err)
		}
		if err := ptgt.SetKey("name"); err != nil {
			t.Fatal(err)
		}
		ranked, err := Summarize(psrc, ptgt, DefaultOptions("bonus"))
		if err != nil {
			t.Fatal(err)
		}
		top := ranked[0]
		if top.Summary.Fingerprint() != baseTop.Summary.Fingerprint() {
			t.Fatalf("trial %d: permuted top summary differs:\nbase:\n%s\npermuted:\n%s",
				trial, baseTop.Summary, top.Summary)
		}
	}
}

// TestSortedOrderRecoversPolicy pins the specific ordering that exposed the
// EM local optimum: key-sorted rows (the canonical order the version store
// uses) must recover the same 3-CT policy as insertion order.
func TestSortedOrderRecoversPolicy(t *testing.T) {
	src0, tgt0 := gen.Toy()
	src, err := src0.SortByKey()
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tgt0.SortByKey()
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Summary.Size() != 3 {
		t.Errorf("sorted-order top summary size = %d, want 3:\n%s",
			ranked[0].Summary.Size(), ranked[0].Summary)
	}
	if ranked[0].Breakdown.Score < 0.85 {
		t.Errorf("sorted-order top score = %v", ranked[0].Breakdown.Score)
	}
}

// TestRowOrderInvarianceMontgomery extends the invariance check to a
// realistic dataset (subset for speed).
func TestRowOrderInvarianceMontgomery(t *testing.T) {
	d, err := gen.Montgomery(7, 500)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(d.Target)
	opts.CondAttrs = []string{"department", "grade"}
	opts.TranAttrs = d.TranAttrs
	base, err := Summarize(d.Src, d.Tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(3)).Perm(d.Src.NumRows())
	psrc := d.Src.Gather(perm)
	ptgt := d.Tgt.Gather(perm)
	if err := psrc.SetKey("employee_id"); err != nil {
		t.Fatal(err)
	}
	if err := ptgt.SetKey("employee_id"); err != nil {
		t.Fatal(err)
	}
	permuted, err := Summarize(psrc, ptgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base[0].Summary.Fingerprint() != permuted[0].Summary.Fingerprint() {
		t.Errorf("Montgomery top summary is row-order sensitive:\nbase:\n%s\npermuted:\n%s",
			base[0].Summary, permuted[0].Summary)
	}
}
