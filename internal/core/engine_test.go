package core

import (
	"math"
	"strings"
	"testing"

	"charles/internal/diff"
	"charles/internal/eval"
	"charles/internal/gen"
	"charles/internal/model"
	"charles/internal/table"
)

func TestToyRecoveryTopSummary(t *testing.T) {
	src, tgt := gen.Toy()
	ranked, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no summaries")
	}
	top := ranked[0]
	if top.Breakdown.Score < 0.85 {
		t.Errorf("top score = %v, want ≥ 0.85 (paper reports 89%%)", top.Breakdown.Score)
	}
	if top.Breakdown.Accuracy < 0.95 {
		t.Errorf("top accuracy = %v", top.Breakdown.Accuracy)
	}
	if top.Summary.Size() != 3 {
		t.Errorf("top summary size = %d, want 3 (R1-R3)", top.Summary.Size())
	}
	// Rule-level match against the planted policy.
	rm, err := eval.Rules(gen.ToyTruth(), top.Summary, src)
	if err != nil {
		t.Fatal(err)
	}
	if rm.MeanJaccard < 0.99 {
		t.Errorf("partition Jaccard = %v, want 1", rm.MeanJaccard)
	}
	// The PhD rule must be recovered verbatim.
	rendered := top.Summary.String()
	if !strings.Contains(rendered, "edu = PhD") || !strings.Contains(rendered, "1.05×bonus + 1000") {
		t.Errorf("R1 not recovered verbatim:\n%s", rendered)
	}
}

func TestRankingIsDeterministic(t *testing.T) {
	src, tgt := gen.Toy()
	a, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Summary.Fingerprint() != b[i].Summary.Fingerprint() {
			t.Fatalf("rank %d differs between runs", i)
		}
		if a[i].Breakdown.Score != b[i].Breakdown.Score {
			t.Fatalf("score %d differs between runs", i)
		}
	}
}

func TestRankingMonotoneAndDeduplicated(t *testing.T) {
	src, tgt := gen.Toy()
	opts := DefaultOptions("bonus")
	opts.TopK = 100
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, r := range ranked {
		if i > 0 && r.Breakdown.Score > ranked[i-1].Breakdown.Score+1e-12 {
			t.Errorf("ranking not monotone at %d", i)
		}
		fp := r.Summary.Fingerprint()
		if seen[fp] {
			t.Errorf("duplicate summary at rank %d", i)
		}
		seen[fp] = true
	}
}

func TestNoChangeDataset(t *testing.T) {
	src, _ := gen.Toy()
	ranked, err := Summarize(src, src.Clone(), DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 || ranked[0].Summary.Size() != 0 {
		t.Fatalf("identical snapshots should yield the single empty summary, got %d summaries", len(ranked))
	}
	if ranked[0].Breakdown.Accuracy < 1-1e-9 {
		t.Errorf("empty summary on unchanged data accuracy = %v", ranked[0].Breakdown.Accuracy)
	}
}

func TestOptionValidation(t *testing.T) {
	src, tgt := gen.Toy()
	bad := []Options{
		{}, // no target
		func() Options { o := DefaultOptions("gen"); return o }(),   // categorical target
		func() Options { o := DefaultOptions("ghost"); return o }(), // unknown target
		func() Options { o := DefaultOptions("bonus"); o.Alpha = 2; return o }(),
		func() Options { o := DefaultOptions("bonus"); o.C = 0; return o }(),
		func() Options { o := DefaultOptions("bonus"); o.KMax = 0; return o }(),
		func() Options { o := DefaultOptions("bonus"); o.TopK = 0; return o }(),
		func() Options { o := DefaultOptions("bonus"); o.CondAttrs = []string{"ghost"}; return o }(),
		func() Options { o := DefaultOptions("bonus"); o.TranAttrs = []string{"edu"}; return o }(), // categorical tran
	}
	for i, o := range bad {
		if _, err := Summarize(src, tgt, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestAlignmentErrorsPropagate(t *testing.T) {
	src, _ := gen.Toy()
	other := table.MustNew(table.Schema{{Name: "x", Type: table.Int}})
	if _, err := Summarize(src, other, DefaultOptions("bonus")); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestMontgomeryRecovery(t *testing.T) {
	d, err := gen.Montgomery(7, 1200)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	ranked, err := Summarize(d.Src, d.Tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := eval.Rules(d.Truth, ranked[0].Summary, d.Src)
	if err != nil {
		t.Fatal(err)
	}
	if rm.RuleF1 < 0.99 {
		t.Errorf("Montgomery rule F1 = %v, want 1.0", rm.RuleF1)
	}
	for _, m := range rm.Matches {
		if m.CoefErr > 0.01 {
			t.Errorf("rule %d coefficient error %v", m.TruthIdx, m.CoefErr)
		}
	}
}

func TestTopKHonored(t *testing.T) {
	src, tgt := gen.Toy()
	opts := DefaultOptions("bonus")
	opts.TopK = 3
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Errorf("TopK=3 returned %d", len(ranked))
	}
}

func TestExplicitAttributePools(t *testing.T) {
	src, tgt := gen.Toy()
	opts := DefaultOptions("bonus")
	opts.CondAttrs = []string{"edu"}
	opts.TranAttrs = []string{"bonus"}
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranked {
		for _, ct := range r.Summary.CTs {
			for _, attr := range ct.Cond.Attrs() {
				if attr != "edu" {
					t.Errorf("condition uses %q outside the pool", attr)
				}
			}
			if ct.Tran.NoChange {
				continue
			}
			for i, in := range ct.Tran.Inputs {
				if ct.Tran.Coef[i] != 0 && in != "bonus" {
					t.Errorf("transformation uses %q outside the pool", in)
				}
			}
		}
	}
}

func TestCTsAreDisjointOnSource(t *testing.T) {
	src, tgt := gen.Toy()
	ranked, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranked[:3] {
		claimed := make([]bool, src.NumRows())
		for _, ct := range r.Summary.CTs {
			mask, err := ct.Cond.Mask(src)
			if err != nil {
				t.Fatal(err)
			}
			for i, m := range mask {
				if m && claimed[i] {
					// Overlap is allowed only under first-match semantics;
					// partitions from a single tree must be disjoint.
					t.Logf("row %d claimed twice in %s", i, r.Summary)
				}
				if m {
					claimed[i] = true
				}
			}
		}
	}
}

func TestSubsets(t *testing.T) {
	got := subsets([]string{"a", "b", "c"}, 2)
	if len(got) != 6 {
		t.Fatalf("subsets = %v", got)
	}
	// Sizes non-decreasing.
	for i := 1; i < len(got); i++ {
		if len(got[i]) < len(got[i-1]) {
			t.Error("subsets not ordered by size")
		}
	}
	if len(subsets([]string{"a"}, 5)) != 1 {
		t.Error("maxSize > n should clamp")
	}
	if subsets(nil, 2) != nil {
		t.Error("empty attr pool should give no subsets")
	}
}

func TestNaNFeaturesSkipped(t *testing.T) {
	schema := table.Schema{
		{Name: "id", Type: table.Int},
		{Name: "grp", Type: table.String},
		{Name: "x", Type: table.Float},
		{Name: "pay", Type: table.Float},
	}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	for i := 1; i <= 30; i++ {
		pay := float64(1000 * i)
		xv := table.F(float64(i))
		if i%7 == 0 {
			xv = table.Null(table.Float) // nulls in a transformation attribute
		}
		src.MustAppendRow(table.I(int64(i)), table.S("a"), xv, table.F(pay))
		tgt.MustAppendRow(table.I(int64(i)), table.S("a"), xv, table.F(1.1*pay))
	}
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("pay")
	opts.CondAttrs = []string{"grp"}
	opts.TranAttrs = []string{"pay", "x"}
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no summaries despite usable rows")
	}
	if ranked[0].Breakdown.Accuracy < 0.9 {
		t.Errorf("accuracy with null features = %v", ranked[0].Breakdown.Accuracy)
	}
}

func TestIsIdentity(t *testing.T) {
	if !isIdentity(identityLike("pay"), "pay") {
		t.Error("1×pay + 0 should be identity")
	}
	notID := identityLike("pay")
	notID.Intercept = 5
	if isIdentity(notID, "pay") {
		t.Error("intercept 5 is not identity")
	}
	other := identityLike("other")
	if isIdentity(other, "pay") {
		t.Error("coefficient on another attribute is not identity")
	}
}

func identityLike(attr string) model.Transformation {
	return model.Transformation{Target: "pay", Inputs: []string{attr}, Coef: []float64{1}}
}

func TestRefineClustersConvergesToAffineGroups(t *testing.T) {
	// Two affine groups that 1-D residual clustering would muddle: wide x
	// range with crossing lines.
	n := 200
	rows := make([]int, n)
	fm := &featMat{vals: make([]float64, n), w: 1, ok: make([]bool, n)}
	newVals := make([]float64, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		rows[i] = i
		x := float64(1000 + i*100)
		fm.vals[i] = x
		fm.ok[i] = true
		if i%2 == 0 {
			newVals[i] = 1.02 * x
			truth[i] = 0
		} else {
			newVals[i] = 1.05*x - 500
			truth[i] = 1
		}
	}
	// Deliberately bad seed labels: split by index half.
	labels := make([]int, n)
	for i := range labels {
		if i < n/2 {
			labels[i] = 0
		} else {
			labels[i] = 1
		}
	}
	refined := refineClusters(labels, rows, fm, newVals, 2)
	// All rows of one true group must share a label.
	label0 := refined[0]
	label1 := refined[1]
	if label0 == label1 {
		t.Fatal("refinement failed to separate groups")
	}
	for i := range refined {
		want := label0
		if truth[i] == 1 {
			want = label1
		}
		if refined[i] != want {
			t.Fatalf("row %d refined to %d, want %d", i, refined[i], want)
		}
	}
}

func TestScoreAccessor(t *testing.T) {
	src, tgt := gen.Toy()
	ranked, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ranked[0].Score()-ranked[0].Breakdown.Score) > 1e-15 {
		t.Error("Score() accessor disagrees with breakdown")
	}
}

func TestSummarizeAlignedSharesAlignment(t *testing.T) {
	src, tgt := gen.Toy()
	a, err := diff.Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := SummarizeAligned(a, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].Summary.Fingerprint() != r2[0].Summary.Fingerprint() {
		t.Error("aligned and unaligned paths disagree")
	}
}
