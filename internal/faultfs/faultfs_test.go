package faultfs

import (
	"errors"
	"io/fs"
	"testing"

	"charles/internal/vfs"
)

func write(t *testing.T, fsys *FS, path, content string) {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

// TestUnsyncedDataDoesNotSurviveCrash pins the core of the model: without
// File.Sync + SyncDir, nothing is durable.
func TestUnsyncedDataDoesNotSurviveCrash(t *testing.T) {
	fsys := New()
	if err := fsys.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	write(t, fsys, "db/a", "hello")
	// Visible to the running process...
	got, err := fsys.ReadFile("db/a")
	if err != nil || string(got) != "hello" {
		t.Fatalf("volatile read = %q, %v", got, err)
	}
	// ...gone after the power cut: the name was never dir-synced.
	after := fsys.Crash()
	if _, err := after.ReadFile("db/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("unsynced file survived crash: err=%v", err)
	}
	// The old handle is dead.
	if _, err := fsys.ReadFile("db/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed FS still serving: %v", err)
	}
}

// TestSyncedFileSurvivesCrashExactly pins the happy path: file sync + dir
// sync = full durability.
func TestSyncedFileSurvivesCrashExactly(t *testing.T) {
	fsys := New()
	if err := fsys.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	after := fsys.Crash()
	got, err := after.ReadFile("db/a")
	if err != nil || string(got) != "durable" {
		t.Fatalf("synced file after crash = %q, %v; want durable", got, err)
	}
}

// TestDirSyncedButFileUnsyncedIsTorn pins the half-written-page case: the
// name made it to disk, the data only partially did.
func TestDirSyncedButFileUnsyncedIsTorn(t *testing.T) {
	fsys := New()
	if err := fsys.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	write(t, fsys, "db/a", "0123456789")
	if err := fsys.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	after := fsys.Crash()
	got, err := after.ReadFile("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn content = %q, want the half prefix %q", got, "01234")
	}
}

// TestRenameWithoutDirSyncRollsBack pins the lost-rename case.
func TestRenameWithoutDirSyncRollsBack(t *testing.T) {
	fsys := New()
	if err := fsys.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	// Durably establish db/a.tmp.
	f, _ := fsys.Create("db/a.tmp")
	f.Write([]byte("v1"))
	f.Sync()
	f.Close()
	fsys.SyncDir("db")
	// Rename it but crash before the directory sync.
	if err := fsys.Rename("db/a.tmp", "db/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadFile("db/a"); err != nil {
		t.Fatalf("rename not visible volatile: %v", err)
	}
	after := fsys.Crash()
	if _, err := after.ReadFile("db/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("un-dir-synced rename survived crash: %v", err)
	}
	got, err := after.ReadFile("db/a.tmp")
	if err != nil || string(got) != "v1" {
		t.Fatalf("old name did not roll back: %q, %v", got, err)
	}
}

// TestRemoveWithoutDirSyncResurrects pins the undone-removal case.
func TestRemoveWithoutDirSyncResurrects(t *testing.T) {
	fsys := New()
	fsys.MkdirAll("db")
	f, _ := fsys.Create("db/a")
	f.Write([]byte("keep"))
	f.Sync()
	f.Close()
	fsys.SyncDir("db")
	if err := fsys.Remove("db/a"); err != nil {
		t.Fatal(err)
	}
	after := fsys.Crash()
	got, err := after.ReadFile("db/a")
	if err != nil || string(got) != "keep" {
		t.Fatalf("removed-but-unsynced file should resurrect: %q, %v", got, err)
	}
}

// TestFailAtInjectsExactlyOnce pins the fault trigger: the armed op fails
// with ErrInjected, a faulted write is torn, and later ops proceed.
func TestFailAtInjectsExactlyOnce(t *testing.T) {
	fsys := New()
	fsys.MkdirAll("db") // op 0
	f, err := fsys.Create("db/a")
	if err != nil { // op 1
		t.Fatal(err)
	}
	fsys.FailAt(0) // arm the next op: the write
	if _, err := f.Write([]byte("abcdefgh")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write returned %v, want ErrInjected", err)
	}
	if !fsys.Faulted() {
		t.Fatal("Faulted() should report the fired fault")
	}
	// The torn half-write landed.
	got, _ := fsys.ReadFile("db/a")
	if string(got) != "abcd" {
		t.Fatalf("faulted write left %q, want the torn prefix \"abcd\"", got)
	}
	// Subsequent ops work — the process may keep running after an IO error.
	if _, err := f.Write([]byte("ij")); err != nil {
		t.Fatalf("op after fault: %v", err)
	}
}

// TestWriteAtomicThroughFaultFS drives vfs.WriteAtomic through the model
// at every fault point and asserts all-or-nothing durability: after a
// crash the published path holds either the previous value or the new
// value in full — never a torn mix — and a fault-free pass is durable.
func TestWriteAtomicThroughFaultFS(t *testing.T) {
	// Learn the op count of one atomic publish.
	probe := New()
	probe.MkdirAll("db")
	base := probe.Ops()
	if err := vfs.WriteAtomic(probe, "db/f", []byte("NEW")); err != nil {
		t.Fatal(err)
	}
	opsPerWrite := probe.Ops() - base

	for point := 0; point < opsPerWrite; point++ {
		fsys := New()
		fsys.MkdirAll("db")
		// Durably publish the previous value first.
		if err := vfs.WriteAtomic(fsys, "db/f", []byte("OLD")); err != nil {
			t.Fatal(err)
		}
		fsys.FailAt(point)
		err := vfs.WriteAtomic(fsys, "db/f", []byte("NEW"))
		if !fsys.Faulted() {
			t.Fatalf("point %d: fault did not fire", point)
		}
		after := fsys.Crash()
		got, rerr := after.ReadFile("db/f")
		if rerr != nil {
			t.Fatalf("point %d: published file missing after crash: %v", point, rerr)
		}
		if s := string(got); s != "OLD" && s != "NEW" {
			t.Fatalf("point %d: torn publish: %q (err from write: %v)", point, s, err)
		}
	}

	// Fault-free publish is fully durable.
	fsys := New()
	fsys.MkdirAll("db")
	if err := vfs.WriteAtomic(fsys, "db/f", []byte("NEW")); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.Crash().ReadFile("db/f")
	if err != nil || string(got) != "NEW" {
		t.Fatalf("clean publish not durable: %q, %v", got, err)
	}
}
