// Package faultfs is an in-memory vfs.FS that models what a real disk
// does under power loss, for crash-safety testing of the version store.
//
// Every file tracks two states: its volatile content (what the running
// process reads back) and its durable content (what survives a crash —
// the content as of the last File.Sync). The directory namespace is
// likewise split: creates, renames, and removals are visible immediately
// but survive a crash only if the parent directory was SyncDir'd
// afterwards. The model is deliberately adversarial within POSIX's
// allowances:
//
//   - data written but never fsynced is TORN on crash: if the file's name
//     is durable, a prefix of the unsynced bytes survives (the classic
//     half-written page), otherwise the file vanishes entirely;
//   - a rename that was not followed by a directory sync is rolled back —
//     the old name comes back with its own durable content;
//   - a removal without a directory sync is undone (the file reappears).
//
// Faults are injected by operation index: FailAt(n) makes the nth
// mutating operation (create, write, sync, rename, remove, mkdir,
// sync-dir) fail with ErrInjected — a failing write additionally applies a
// short (half-length) write, simulating a torn sector. Crash() then
// collapses the filesystem to its durable state and returns a fresh,
// fault-free FS to "reboot" against.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"charles/internal/vfs"
)

// ErrInjected is returned by the one operation FailAt armed.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after Crash.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// memFile is one inode: volatile content plus the durable snapshot taken
// at the last Sync (nil until the first Sync).
type memFile struct {
	data   []byte
	synced []byte
	hasSyn bool
}

// FS implements vfs.FS in memory with crash semantics. Safe for
// concurrent use.
type FS struct {
	mu          sync.Mutex
	files       map[string]*memFile // volatile namespace
	dirs        map[string]bool     // volatile directories
	durable     map[string]*memFile // durably linked names (dir-synced)
	durableDirs map[string]bool

	ops     int // mutating operations performed
	failAt  int // operation index to fault; -1 = never
	faulted bool
	crashed bool
}

// New returns an empty, fault-free filesystem rooted at "/".
func New() *FS {
	return &FS{
		files:       map[string]*memFile{},
		dirs:        map[string]bool{".": true, "/": true},
		durable:     map[string]*memFile{},
		durableDirs: map[string]bool{".": true, "/": true},
		failAt:      -1,
	}
}

// FailAt arms the fault: the nth mutating operation from now (0-based,
// counted across create/write/sync/rename/remove/mkdir/sync-dir) returns
// ErrInjected. A failing write applies a torn half-write first.
func (f *FS) FailAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = f.ops + n
}

// Ops reports how many mutating operations have been performed — run a
// workload once fault-free to learn its fault-point count.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Faulted reports whether the armed fault has fired.
func (f *FS) Faulted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faulted
}

// step counts one mutating operation and decides whether it faults.
// Caller holds f.mu.
func (f *FS) step() error {
	if f.crashed {
		return ErrCrashed
	}
	idx := f.ops
	f.ops++
	if idx == f.failAt {
		f.faulted = true
		return ErrInjected
	}
	return nil
}

func clean(path string) string { return filepath.Clean(path) }

// Crash simulates a power cut: the volatile state is discarded and a
// fresh fault-free FS holding only the durable state is returned. The
// receiver refuses all further operations with ErrCrashed.
func (f *FS) Crash() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	n := New()
	for name, mf := range f.durable {
		var content []byte
		switch {
		case mf.hasSyn:
			content = append([]byte(nil), mf.synced...)
		default:
			// Durably named but never fsynced: the metadata made it to
			// disk, the data only partially did. Keep a torn prefix.
			content = append([]byte(nil), mf.data[:len(mf.data)/2]...)
		}
		n.files[name] = &memFile{data: content, synced: append([]byte(nil), content...), hasSyn: true}
		n.durable[name] = n.files[name]
		// Parents of surviving files exist by construction.
		for d := filepath.Dir(name); d != "." && d != "/"; d = filepath.Dir(d) {
			n.dirs[d] = true
			n.durableDirs[d] = true
		}
	}
	for d := range f.durableDirs {
		n.dirs[d] = true
		n.durableDirs[d] = true
	}
	return n
}

// MkdirAll implements vfs.FS. Directory creation is modeled as durable
// immediately — the store only creates directories at open time, before
// any data is at stake, and SyncDir would persist them anyway.
func (f *FS) MkdirAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	path = clean(path)
	for d := path; d != "." && d != "/"; d = filepath.Dir(d) {
		f.dirs[d] = true
		f.durableDirs[d] = true
	}
	return nil
}

// ReadFile implements vfs.FS (reads are never faulted: read failures are
// IO errors, not crash-safety events).
func (f *FS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	mf, ok := f.files[clean(path)]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), mf.data...), nil
}

// handle is an open File.
type handle struct {
	fs   *FS
	name string
	mf   *memFile
}

// Create implements vfs.FS. The parent directory must exist.
func (f *FS) Create(path string) (vfs.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	path = clean(path)
	if dir := filepath.Dir(path); dir != "." && dir != "/" && !f.dirs[dir] {
		return nil, &fs.PathError{Op: "create", Path: path, Err: fs.ErrNotExist}
	}
	mf, ok := f.files[path]
	if ok {
		// Truncating an existing inode in place: volatile content resets;
		// what survives a crash is still governed by the durable links and
		// the last synced snapshot.
		mf.data = nil
	} else {
		mf = &memFile{}
		f.files[path] = mf
	}
	return &handle{fs: f, name: path, mf: mf}, nil
}

// Write appends to the file. A faulted write applies a torn half-write
// before reporting ErrInjected.
func (h *handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.step(); err != nil {
		if errors.Is(err, ErrInjected) {
			h.mf.data = append(h.mf.data, p[:len(p)/2]...)
		}
		return 0, err
	}
	h.mf.data = append(h.mf.data, p...)
	return len(p), nil
}

// Sync makes the file's current content durable (content, not name — the
// name needs a SyncDir of the parent).
func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.step(); err != nil {
		return err
	}
	h.mf.synced = append([]byte(nil), h.mf.data...)
	h.mf.hasSyn = true
	return nil
}

// Close implements vfs.File. Closing is free and never faulted — it
// provides no durability.
func (h *handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	return nil
}

// Rename implements vfs.FS: atomic in the volatile namespace, durable only
// after SyncDir.
func (f *FS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	oldPath, newPath = clean(oldPath), clean(newPath)
	mf, ok := f.files[oldPath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldPath, Err: fs.ErrNotExist}
	}
	delete(f.files, oldPath)
	f.files[newPath] = mf
	return nil
}

// Remove implements vfs.FS. The removal survives a crash only after the
// parent directory is synced.
func (f *FS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	path = clean(path)
	if _, ok := f.files[path]; !ok {
		return &fs.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	delete(f.files, path)
	return nil
}

// SyncDir implements vfs.FS: the directory's volatile entry set (names
// created, renamed in or out, removed) becomes durable.
func (f *FS) SyncDir(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	path = clean(path)
	for name, mf := range f.files {
		if filepath.Dir(name) == path {
			f.durable[name] = mf
		}
	}
	for name := range f.durable {
		if filepath.Dir(name) == path {
			if _, ok := f.files[name]; !ok {
				delete(f.durable, name)
			}
		}
	}
	f.durableDirs[path] = true
	return nil
}

// memInfo implements fs.FileInfo / fs.DirEntry for memory entries.
type memInfo struct {
	name  string
	size  int64
	isDir bool
}

func (m memInfo) Name() string { return m.name }
func (m memInfo) Size() int64  { return m.size }
func (m memInfo) Mode() fs.FileMode {
	if m.isDir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (m memInfo) ModTime() time.Time         { return time.Time{} }
func (m memInfo) IsDir() bool                { return m.isDir }
func (m memInfo) Sys() any                   { return nil }
func (m memInfo) Type() fs.FileMode          { return m.Mode().Type() }
func (m memInfo) Info() (fs.FileInfo, error) { return m, nil }
func (m memInfo) String() string             { return fmt.Sprintf("faultfs entry %s", m.name) }

// Stat implements vfs.FS.
func (f *FS) Stat(path string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	path = clean(path)
	if mf, ok := f.files[path]; ok {
		return memInfo{name: filepath.Base(path), size: int64(len(mf.data))}, nil
	}
	if f.dirs[path] {
		return memInfo{name: filepath.Base(path), isDir: true}, nil
	}
	return nil, &fs.PathError{Op: "stat", Path: path, Err: fs.ErrNotExist}
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(path string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	path = clean(path)
	if !f.dirs[path] {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	var out []fs.DirEntry
	for name, mf := range f.files {
		if filepath.Dir(name) == path {
			out = append(out, memInfo{name: filepath.Base(name), size: int64(len(mf.data))})
		}
	}
	for dir := range f.dirs {
		if filepath.Dir(dir) == path && dir != path {
			out = append(out, memInfo{name: filepath.Base(dir), isDir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// DumpNames lists the volatile file names (diagnostics for failing tests).
func (f *FS) DumpNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var names []string
	for name := range f.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var _ vfs.FS = (*FS)(nil)
