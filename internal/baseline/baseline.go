// Package baseline implements the comparison points discussed in the
// paper's introduction and related work, all expressed in the same Summary
// representation so they can be scored with the ChARLES Score(S):
//
//   - GlobalRegression — a single unconditional linear transformation (the
//     "R4: everyone gets about 6%" style summary);
//   - CellList — the exhaustive change log: one CT per changed row
//     (maximally precise, minimally interpretable);
//   - NoChange — the empty summary (predicts the source unchanged);
//   - UpdateDistanceSummary — the Müller et al. update-distance view,
//     reported as a count rather than a summary.
package baseline

import (
	"fmt"

	"charles/internal/diff"
	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/regress"
	"charles/internal/table"
)

// GlobalRegression fits one linear model over all changed rows — no
// partitioning — mirroring the paper's R4-style summary.
func GlobalRegression(a *diff.Aligned, target string, tranAttrs []string, tol float64) (*model.Summary, error) {
	oldVals, newVals, err := a.Delta(target)
	if err != nil {
		return nil, err
	}
	changed, err := a.ChangedMask(target, tol)
	if err != nil {
		return nil, err
	}
	cols := make([]*table.Column, len(tranAttrs))
	for j, name := range tranAttrs {
		c, err := a.Source.Column(name)
		if err != nil {
			return nil, err
		}
		if !c.Type.Numeric() {
			return nil, fmt.Errorf("baseline: transformation attribute %q is not numeric", name)
		}
		cols[j] = c
	}
	var x [][]float64
	var y []float64
	for r := range changed {
		if !changed[r] {
			continue
		}
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = c.Float(r)
		}
		x = append(x, row)
		y = append(y, newVals[r])
	}
	sum := &model.Summary{Target: target, TranAttrs: tranAttrs}
	if len(y) == 0 {
		return sum, nil // nothing changed: empty summary
	}
	m, err := regress.Fit(x, y, regress.DefaultOptions())
	if err != nil {
		// Degenerate: fall back to a global mean shift.
		shift := 0.0
		cnt := 0
		for r := range changed {
			if changed[r] {
				shift += newVals[r] - oldVals[r]
				cnt++
			}
		}
		shift /= float64(cnt)
		sum.CTs = []model.CT{{
			Cond: predicate.True(),
			Tran: model.Transformation{Target: target, Inputs: []string{target}, Coef: []float64{1}, Intercept: shift},
		}}
		return sum, nil
	}
	sum.CTs = []model.CT{{
		Cond:     predicate.True(),
		Tran:     model.Transformation{Target: target, Inputs: tranAttrs, Coef: m.Coef, Intercept: m.Intercept},
		Rows:     len(y),
		Coverage: 1,
		MAE:      m.MAE,
	}}
	return sum, nil
}

// CellList is the exhaustive diff: one CT per changed row, keyed on the
// primary key, each mapping to the exact new value. It is perfectly
// accurate and catastrophically verbose — the paper's motivating
// anti-example.
func CellList(a *diff.Aligned, target string, tol float64) (*model.Summary, error) {
	changes, err := a.Changes(target, tol)
	if err != nil {
		return nil, err
	}
	key := a.Source.Key()
	if len(key) == 0 {
		return nil, diff.ErrNoKey
	}
	sum := &model.Summary{Target: target}
	for _, ch := range changes {
		cond := predicate.True()
		for _, k := range key {
			v, err := a.Source.Value(ch.SrcRow, k)
			if err != nil {
				return nil, err
			}
			kc := a.Source.MustColumn(k)
			if kc.Type.Numeric() {
				cond = cond.And(predicate.Atom{Attr: k, Op: predicate.Eq, Num: v.Float(), Numeric: true})
			} else {
				cond = cond.And(predicate.StrAtom(k, predicate.Eq, v.Str()))
			}
		}
		sum.CTs = append(sum.CTs, model.CT{
			Cond: cond,
			Tran: model.Transformation{Target: target, Intercept: ch.New.Float()},
			Rows: 1,
		})
	}
	return sum, nil
}

// NoChange is the empty summary: it predicts the target attribute did not
// evolve at all.
func NoChange(target string) *model.Summary {
	return &model.Summary{Target: target}
}

// UpdateDistance reports the Müller-style minimal number of cell updates
// between the snapshots, restricted to the target attribute.
func UpdateDistance(a *diff.Aligned, target string, tol float64) (int, error) {
	ch, err := a.Changes(target, tol)
	if err != nil {
		return 0, err
	}
	return len(ch), nil
}
