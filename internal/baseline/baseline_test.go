package baseline

import (
	"math"
	"testing"

	"charles/internal/diff"
	"charles/internal/gen"
	"charles/internal/score"
	"charles/internal/table"
)

// uniformPair: every row evolves under the same rule pay' = 1.1·pay + 100.
func uniformPair(t *testing.T) *diff.Aligned {
	t.Helper()
	schema := table.Schema{{Name: "id", Type: table.Int}, {Name: "pay", Type: table.Float}}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	for i := 1; i <= 20; i++ {
		pay := float64(i * 1000)
		src.MustAppendRow(table.I(int64(i)), table.F(pay))
		tgt.MustAppendRow(table.I(int64(i)), table.F(1.1*pay+100))
	}
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGlobalRegressionExactOnUniformPolicy(t *testing.T) {
	a := uniformPair(t)
	s, err := GlobalRegression(a, "pay", []string{"pay"}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 1 {
		t.Fatalf("size = %d", s.Size())
	}
	ct := s.CTs[0]
	if !ct.Cond.IsTrue() {
		t.Error("global regression condition should be TRUE")
	}
	if math.Abs(ct.Tran.Coef[0]-1.1) > 1e-9 || math.Abs(ct.Tran.Intercept-100) > 1e-6 {
		t.Errorf("fit = %v + %v", ct.Tran.Coef, ct.Tran.Intercept)
	}
	if ct.Coverage != 1 {
		t.Errorf("coverage = %v", ct.Coverage)
	}
}

func TestGlobalRegressionNoChanges(t *testing.T) {
	a := uniformPair(t)
	// Align a snapshot with itself: nothing changed.
	self, err := diff.Align(a.Source, a.Source.Clone())
	if err != nil {
		t.Fatal(err)
	}
	s, err := GlobalRegression(self, "pay", []string{"pay"}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 0 {
		t.Errorf("no-change global summary should be empty, got %d CTs", s.Size())
	}
}

func TestGlobalRegressionRejectsCategorical(t *testing.T) {
	d, err := gen.Planted(gen.PlantedConfig{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GlobalRegression(a, "pay", []string{"seg"}, 1e-9); err == nil {
		t.Error("categorical transformation attribute accepted")
	}
}

func TestCellListOneCTPerChange(t *testing.T) {
	a := uniformPair(t)
	s, err := CellList(a, "pay", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 20 {
		t.Fatalf("cell list size = %d, want 20", s.Size())
	}
	// Each CT pins one row to its exact new value.
	preds, covered, err := s.Apply(a.Source)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta("pay")
	if err != nil {
		t.Fatal(err)
	}
	for r := range preds {
		if !covered[r] {
			t.Errorf("row %d not covered by cell list", r)
		}
		if math.Abs(preds[r]-newVals[r]) > 1e-9 {
			t.Errorf("row %d: cell list predicts %v, want %v", r, preds[r], newVals[r])
		}
	}
}

func TestCellListPerfectAccuracyPoorInterpretability(t *testing.T) {
	a := uniformPair(t)
	s, err := CellList(a, "pay", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta("pay")
	if err != nil {
		t.Fatal(err)
	}
	changed, err := a.ChangedMask("pay", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := score.Evaluate(s, a.Source, newVals, changed, 0.5, score.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if bd.Accuracy < 1-1e-9 {
		t.Errorf("cell list accuracy = %v", bd.Accuracy)
	}
	// 20 CTs for 20 rows: the size sub-score is 1/(1+0.25·19) ≈ 0.17 and the
	// harmonic mean keeps the aggregate well below a real summary's ≈ 0.9.
	if bd.Interpretability > 0.6 {
		t.Errorf("cell list interpretability = %v, want low", bd.Interpretability)
	}
	if bd.Size > 0.2 {
		t.Errorf("cell list size sub-score = %v", bd.Size)
	}
}

func TestNoChangeBaseline(t *testing.T) {
	s := NoChange("pay")
	if s.Size() != 0 || s.Target != "pay" {
		t.Errorf("NoChange = %+v", s)
	}
}

func TestUpdateDistance(t *testing.T) {
	a := uniformPair(t)
	d, err := UpdateDistance(a, "pay", 1e-9)
	if err != nil || d != 20 {
		t.Errorf("update distance = %d, %v", d, err)
	}
}

func TestBaselineOrderingOnPlantedPolicy(t *testing.T) {
	// On multi-rule data at α = 0.5 the single global regression must lose
	// accuracy (policy is not globally linear), while the cell list stays
	// perfectly accurate but uninterpretable.
	d, err := gen.Planted(gen.PlantedConfig{N: 400, Seed: 5, Rules: 3, UnchangedFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	_, newVals, err := a.Delta("pay")
	if err != nil {
		t.Fatal(err)
	}
	changed, err := a.ChangedMask("pay", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	w := score.DefaultWeights()

	global, err := GlobalRegression(a, "pay", []string{"pay"}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	gbd, err := score.Evaluate(global, d.Src, newVals, changed, 0.5, w)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := CellList(a, "pay", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	cbd, err := score.Evaluate(cells, d.Src, newVals, changed, 0.5, w)
	if err != nil {
		t.Fatal(err)
	}
	tbd, err := score.Evaluate(d.Truth, d.Src, newVals, changed, 0.5, w)
	if err != nil {
		t.Fatal(err)
	}
	if gbd.Accuracy > 0.9 {
		t.Errorf("global regression accuracy = %v, should suffer on 3-rule policy", gbd.Accuracy)
	}
	if cbd.Accuracy < 1-1e-9 {
		t.Errorf("cell list accuracy = %v", cbd.Accuracy)
	}
	if tbd.Score <= gbd.Score || tbd.Score <= cbd.Score {
		t.Errorf("truth summary (%.3f) should beat global (%.3f) and cell list (%.3f)", tbd.Score, gbd.Score, cbd.Score)
	}
}
