// Package assist implements the ChARLES setup assistant: it estimates the
// influence of every attribute on the target attribute via correlation
// analysis and shortlists the most promising condition and transformation
// attributes (paper §2 and demo steps 4–5), so users unfamiliar with the
// schema get sensible defaults.
package assist

import (
	"fmt"
	"math"
	"sort"

	"charles/internal/diff"
	"charles/internal/stats"
	"charles/internal/table"
)

// DefaultThreshold is the correlation cutoff for the shortlist (paper: 0.5).
const DefaultThreshold = 0.5

// Suggestion is one ranked candidate attribute.
type Suggestion struct {
	Attr    string
	Score   float64 // |correlation| with the observed change, in [0,1]
	Numeric bool
}

// SuggestCondition ranks attributes by how strongly they associate with the
// *observed change* of the target attribute (Δ = new − old over changed
// rows): numeric attributes by |Pearson r|, categorical ones by the
// correlation ratio η. Ranking against Δ rather than the raw target follows
// the paper's goal — condition attributes should explain *why a change
// happened*, and a flat target correlation cannot separate that.
func SuggestCondition(a *diff.Aligned, target string, tol float64) ([]Suggestion, error) {
	oldVals, newVals, err := a.Delta(target)
	if err != nil {
		return nil, err
	}
	changed, err := a.ChangedMask(target, tol)
	if err != nil {
		return nil, err
	}
	// Δ per row; unchanged rows contribute Δ = 0, which carries signal too
	// (conditions must separate changed from unchanged rows).
	delta := make([]float64, len(oldVals))
	for r := range delta {
		if changed[r] {
			delta[r] = newVals[r] - oldVals[r]
		}
	}
	keySet := map[string]bool{}
	for _, k := range a.Source.Key() {
		keySet[k] = true
	}
	var out []Suggestion
	for _, f := range a.Source.Schema() {
		if keySet[f.Name] || f.Name == target {
			continue
		}
		col := a.Source.MustColumn(f.Name)
		var s Suggestion
		s.Attr = f.Name
		if f.Type.Numeric() {
			s.Numeric = true
			s.Score = math.Abs(stats.Pearson(col.Floats(), delta))
		} else {
			cats := make([]string, col.Len())
			for r := range cats {
				cats[r] = col.Str(r)
			}
			s.Score = stats.CorrelationRatio(cats, delta)
		}
		out = append(out, s)
	}
	sortSuggestions(out)
	return out, nil
}

// SuggestTransformation ranks the numeric attributes (source-snapshot
// values, including the target's own previous value) by |Pearson r| with
// the target's *new* value — these are the candidates for the right-hand
// side of the linear transformation.
func SuggestTransformation(a *diff.Aligned, target string, tol float64) ([]Suggestion, error) {
	_, newVals, err := a.Delta(target)
	if err != nil {
		return nil, err
	}
	keySet := map[string]bool{}
	for _, k := range a.Source.Key() {
		keySet[k] = true
	}
	var out []Suggestion
	for _, f := range a.Source.Schema() {
		if keySet[f.Name] || !f.Type.Numeric() {
			continue
		}
		col := a.Source.MustColumn(f.Name)
		out = append(out, Suggestion{
			Attr:    f.Name,
			Numeric: true,
			Score:   math.Abs(stats.Pearson(col.Floats(), newVals)),
		})
	}
	sortSuggestions(out)
	return out, nil
}

// Shortlist applies the paper's default policy: keep attributes whose score
// exceeds threshold, capped at max entries; when fewer than min survive the
// threshold, backfill with the next best so the engine always has something
// to work with.
func Shortlist(sugs []Suggestion, threshold float64, max, min int) []string {
	if max <= 0 {
		max = len(sugs)
	}
	var out []string
	for _, s := range sugs {
		if s.Score > threshold && len(out) < max {
			out = append(out, s.Attr)
		}
	}
	for _, s := range sugs {
		if len(out) >= min || len(out) >= max {
			break
		}
		if !contains(out, s.Attr) {
			out = append(out, s.Attr)
		}
	}
	return out
}

// Validate checks that attrs exist in t and (for transformation candidates)
// are numeric.
func Validate(t *table.Table, attrs []string, needNumeric bool) error {
	for _, aName := range attrs {
		col, err := t.Column(aName)
		if err != nil {
			return err
		}
		if needNumeric && !col.Type.Numeric() {
			return fmt.Errorf("assist: attribute %q is %s, need numeric", aName, col.Type)
		}
	}
	return nil
}

func sortSuggestions(out []Suggestion) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Attr < out[j].Attr
	})
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
