package assist

import (
	"testing"

	"charles/internal/diff"
	"charles/internal/gen"
)

func alignedToy(t *testing.T) *diff.Aligned {
	t.Helper()
	src, tgt := gen.Toy()
	a, err := diff.Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSuggestConditionRanksEduFirst(t *testing.T) {
	a := alignedToy(t)
	sugs, err := SuggestCondition(a, "bonus", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 || sugs[0].Attr != "edu" {
		t.Fatalf("top condition suggestion = %+v, want edu", sugs)
	}
	// Target and key never appear.
	for _, s := range sugs {
		if s.Attr == "bonus" || s.Attr == "name" {
			t.Errorf("suggestion includes %q", s.Attr)
		}
	}
	// Scores sorted descending.
	for i := 1; i < len(sugs); i++ {
		if sugs[i].Score > sugs[i-1].Score {
			t.Error("suggestions not sorted")
		}
	}
}

func TestSuggestTransformationNumericOnly(t *testing.T) {
	a := alignedToy(t)
	sugs, err := SuggestTransformation(a, "bonus", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sugs {
		if !s.Numeric {
			t.Errorf("non-numeric transformation candidate %q", s.Attr)
		}
		if s.Attr == "edu" || s.Attr == "gen" {
			t.Errorf("categorical attribute %q suggested for transformation", s.Attr)
		}
	}
	// bonus (previous value) and salary must be the top two (demo step 5).
	if len(sugs) < 2 {
		t.Fatal("too few suggestions")
	}
	top2 := map[string]bool{sugs[0].Attr: true, sugs[1].Attr: true}
	if !top2["bonus"] || !top2["salary"] {
		t.Errorf("top-2 transformation attrs = %v, want {bonus, salary}", top2)
	}
}

func TestSuggestUnknownTarget(t *testing.T) {
	a := alignedToy(t)
	if _, err := SuggestCondition(a, "ghost", 1e-9); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := SuggestTransformation(a, "ghost", 1e-9); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestShortlistThresholdAndBackfill(t *testing.T) {
	sugs := []Suggestion{
		{Attr: "a", Score: 0.9},
		{Attr: "b", Score: 0.7},
		{Attr: "c", Score: 0.2},
		{Attr: "d", Score: 0.1},
	}
	// Threshold alone.
	got := Shortlist(sugs, 0.5, 4, 0)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("threshold shortlist = %v", got)
	}
	// Backfill to min when the threshold is too strict.
	got = Shortlist(sugs, 0.95, 4, 3)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("backfilled shortlist = %v", got)
	}
	// Max caps even above-threshold entries.
	got = Shortlist(sugs, 0.1, 1, 1)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("capped shortlist = %v", got)
	}
	// max ≤ 0 means no cap.
	got = Shortlist(sugs, 0.0, 0, 0)
	if len(got) != 4 {
		t.Errorf("uncapped shortlist = %v", got)
	}
}

func TestValidate(t *testing.T) {
	a := alignedToy(t)
	if err := Validate(a.Source, []string{"edu", "exp"}, false); err != nil {
		t.Errorf("valid attrs rejected: %v", err)
	}
	if err := Validate(a.Source, []string{"ghost"}, false); err == nil {
		t.Error("unknown attr accepted")
	}
	if err := Validate(a.Source, []string{"edu"}, true); err == nil {
		t.Error("categorical attr accepted as numeric")
	}
	if err := Validate(a.Source, []string{"salary"}, true); err != nil {
		t.Errorf("numeric attr rejected: %v", err)
	}
}
