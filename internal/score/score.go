// Package score implements the ChARLES summary scoring model:
//
//	Score(S) = α·Accuracy(S) + (1−α)·Interpretability(S)
//
// Accuracy is the normalized inverse L1 distance between the transformed
// source and the actual target. Interpretability concretizes the paper's
// four preferences — smaller summaries, simpler conditions and
// transformations, higher coverage, and more "normal" constants — as a
// weighted mean of sub-scores in [0,1].
//
// Evaluate is the row-at-a-time reference implementation; Evaluator is the
// engine's reusable vectorized equivalent (compiled predicate masks, bound
// target column, zero steady-state allocations) producing bit-identical
// breakdowns.
package score

import (
	"fmt"
	"math"

	"charles/internal/model"
	"charles/internal/regress"
	"charles/internal/table"
)

// Weights set the relative importance of the interpretability sub-scores.
// Zero-valued weights drop a component; the default weights everything
// equally.
type Weights struct {
	Size           float64 // fewer CTs
	CondSimplicity float64 // fewer descriptors per condition
	TranSimplicity float64 // fewer variables per transformation
	Coverage       float64 // conditions that explain more of the change
	Normality      float64 // rounder numeric constants
}

// DefaultWeights weights all five interpretability components equally.
func DefaultWeights() Weights {
	return Weights{Size: 1, CondSimplicity: 1, TranSimplicity: 1, Coverage: 1, Normality: 1}
}

// SizePenalty shapes the size sub-score: 1/(1+SizePenalty·(|S|−1)).
// A summary of 1 CT scores 1.0; with the default 0.25, 3 CTs score 0.67.
const SizePenalty = 0.25

// AccuracySharpness controls how fast accuracy decays with error: a summary
// whose mean absolute error is 1/AccuracySharpness of the mean observed
// change scores 0.5 accuracy. Sharp decay is what lets a precise multi-CT
// summary beat a sloppy single-CT one at the default α = 0.5 (the paper's
// Example 1 ranking).
const AccuracySharpness = 10

// Breakdown is a fully evaluated score with its components.
type Breakdown struct {
	Score            float64
	Accuracy         float64
	Interpretability float64

	// Interpretability components (each in [0,1]).
	Size           float64
	CondSimplicity float64
	TranSimplicity float64
	Coverage       float64
	Normality      float64

	// Diagnostics.
	MAE   float64 // mean |predicted − actual| over all rows
	Scale float64 // normalization scale (mean |Δtarget| over changed rows)
}

// Evaluate scores summary s against the actual evolved values.
//
//	src      — the source snapshot (CT inputs are read from it)
//	actual   — target-attribute values in the *target* snapshot, aligned to
//	           source row order
//	changed  — per-source-row mask of rows whose target attribute changed
//	alpha    — accuracy weight α ∈ [0,1]
func Evaluate(s *model.Summary, src *table.Table, actual []float64, changed []bool, alpha float64, w Weights) (*Breakdown, error) {
	if src.NumRows() != len(actual) || len(actual) != len(changed) {
		return nil, fmt.Errorf("score: inconsistent lengths (rows=%d actual=%d changed=%d)", src.NumRows(), len(actual), len(changed))
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("score: alpha %g out of [0,1]", alpha)
	}
	preds, covered, err := s.Apply(src)
	if err != nil {
		return nil, err
	}
	b := &Breakdown{}

	// ----- Accuracy: normalized inverse L1 -----
	tcol, err := src.Column(s.Target)
	if err != nil {
		return nil, err
	}
	n := len(actual)
	var sae float64
	var scale float64
	var nChanged, nScored int
	for r := 0; r < n; r++ {
		// Rows without a numeric before/after (nulls) cannot be scored on
		// an L1 basis; skipping them beats poisoning the whole score with
		// NaN. Such changes are still visible in the raw diff.
		e := math.Abs(preds[r] - actual[r])
		if !math.IsNaN(e) && !math.IsInf(e, 0) {
			sae += e
			nScored++
		}
		if changed[r] {
			d := math.Abs(actual[r] - tcol.Float(r))
			if !math.IsNaN(d) && !math.IsInf(d, 0) {
				scale += d
				nChanged++
			}
		}
	}
	if nScored == 0 {
		nScored = 1
	}
	b.MAE = sae / float64(nScored)
	if nChanged > 0 {
		// Per-row mean change magnitude, spread over all rows, then
		// sharpened: Accuracy = 1/(1 + κ·MAE/meanΔ). A perfect summary
		// scores 1; the identity summary (MAE = meanΔ) scores 1/(1+κ).
		scale /= float64(nChanged)
		scale *= float64(nChanged) / float64(nScored)
		scale /= AccuracySharpness
	}
	if scale <= 0 {
		scale = 1
	}
	b.Scale = scale
	b.Accuracy = 1 / (1 + b.MAE/scale)

	// ----- Interpretability -----
	b.Size = sizeScore(s.Size())
	b.CondSimplicity = condSimplicity(s)
	b.TranSimplicity = tranSimplicity(s)
	b.Coverage = coverageScore(covered, changed)
	b.Normality = normality(s)

	b.Interpretability = harmonicMean([]float64{b.Size, b.CondSimplicity, b.TranSimplicity, b.Coverage, b.Normality},
		[]float64{w.Size, w.CondSimplicity, w.TranSimplicity, w.Coverage, w.Normality})
	b.Score = alpha*b.Accuracy + (1-alpha)*b.Interpretability
	return b, nil
}

// harmonicMean aggregates the interpretability components as a weighted
// harmonic mean: interpretability is a weakest-link property — a summary
// with 361 CTs is unreadable no matter how simple each CT is, and a
// condition covering 1% of the change explains almost nothing no matter how
// round its constants are. The arithmetic mean would let strong components
// paper over a fatal one.
func harmonicMean(xs, ws []float64) float64 {
	const eps = 1e-6
	var sumW, sumWX float64
	for i, x := range xs {
		w := ws[i]
		if w <= 0 {
			continue
		}
		if x < eps {
			x = eps
		}
		sumW += w
		sumWX += w / x
	}
	if sumW == 0 || sumWX == 0 {
		return 0
	}
	return sumW / sumWX
}

// sizeScore prefers smaller summaries: 1 CT → 1.0, each extra CT discounts.
func sizeScore(size int) float64 {
	if size <= 0 {
		return 1
	}
	return 1 / (1 + SizePenalty*float64(size-1))
}

// condSimplicity is the reciprocal of the mean number of descriptors per
// condition ("All Females" beats "Asian or European Females in HR").
func condSimplicity(s *model.Summary) float64 {
	if len(s.CTs) == 0 {
		return 1
	}
	total := 0.0
	for _, ct := range s.CTs {
		c := ct.Cond.Complexity()
		if c < 1 {
			c = 1 // TRUE is as simple as a single descriptor
		}
		total += float64(c)
	}
	mean := total / float64(len(s.CTs))
	return 1 / mean
}

// tranSimplicity is the reciprocal of the mean variable count per
// transformation; "no change" counts as maximally simple.
func tranSimplicity(s *model.Summary) float64 {
	if len(s.CTs) == 0 {
		return 1
	}
	total := 0.0
	for _, ct := range s.CTs {
		v := ct.Tran.Complexity()
		if v < 1 {
			v = 1
		}
		total += float64(v)
	}
	mean := total / float64(len(s.CTs))
	return 1 / mean
}

// coverageScore is the fraction of *changed* rows matched by some CT: a
// summary whose conditions miss most of the change explains little.
func coverageScore(covered, changed []bool) float64 {
	var hit, total int
	for r := range changed {
		if changed[r] {
			total++
			if covered[r] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// normality averages the Roundness of every numeric constant appearing in
// the summary: multiplicative coefficients near 1 are judged on their rate
// (1.05 → 5%), matching how humans read raise policies; condition thresholds
// and additive constants are judged directly.
func normality(s *model.Summary) float64 {
	var total float64
	var count int
	for _, ct := range s.CTs {
		for _, a := range ct.Cond.Atoms {
			if a.Numeric {
				total += regress.Roundness(a.Num)
				count++
			}
		}
		// Inline Transformation.Constants (nonzero coefficients, then the
		// intercept) without materializing the slice — this runs once per
		// CT per scored candidate.
		if ct.Tran.NoChange {
			continue
		}
		for _, c := range ct.Tran.Coef {
			if c != 0 {
				total += ConstantRoundness(c)
				count++
			}
		}
		if ct.Tran.Intercept != 0 {
			total += ConstantRoundness(ct.Tran.Intercept)
			count++
		}
	}
	if count == 0 {
		return 1
	}
	return total / float64(count)
}

// ConstantRoundness scores a transformation constant. Coefficients in
// (0.5, 1.5) are additionally judged as rates around 1 (so 1.05 is as round
// as 5%); the better of the two views wins.
func ConstantRoundness(x float64) float64 {
	r := regress.Roundness(x)
	if x > 0.5 && x < 1.5 && x != 1 {
		if alt := regress.Roundness(x - 1); alt > r {
			r = alt
		}
	}
	return r
}
