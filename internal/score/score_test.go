package score

import (
	"math"
	"testing"

	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/table"
)

// fixture: 4 rows; first three change (+10% of 1000-ish), last unchanged.
func fixture(t *testing.T) (*table.Table, []float64, []bool) {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "grp", Type: table.String},
		{Name: "pay", Type: table.Float},
	})
	tbl.MustAppendRow(table.S("a"), table.F(1000))
	tbl.MustAppendRow(table.S("a"), table.F(2000))
	tbl.MustAppendRow(table.S("a"), table.F(3000))
	tbl.MustAppendRow(table.S("b"), table.F(4000))
	actual := []float64{1100, 2200, 3300, 4000}
	changed := []bool{true, true, true, false}
	return tbl, actual, changed
}

func perfectSummary() *model.Summary {
	return &model.Summary{
		Target: "pay",
		CTs: []model.CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("grp", predicate.Eq, "a")}},
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}},
		}},
	}
}

func TestPerfectSummaryScoresAccuracyOne(t *testing.T) {
	tbl, actual, changed := fixture(t)
	bd, err := Evaluate(perfectSummary(), tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if bd.Accuracy < 1-1e-9 {
		t.Errorf("accuracy = %v, want ≈ 1", bd.Accuracy)
	}
	if bd.MAE > 1e-6 {
		t.Errorf("MAE = %v", bd.MAE)
	}
	if bd.Interpretability <= 0.9 {
		t.Errorf("single simple CT should be highly interpretable: %v", bd.Interpretability)
	}
	if bd.Score < 0.95 {
		t.Errorf("score = %v", bd.Score)
	}
}

func TestEmptySummaryAccuracyLow(t *testing.T) {
	tbl, actual, changed := fixture(t)
	bd, err := Evaluate(&model.Summary{Target: "pay"}, tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	// The identity summary's MAE equals the mean change; with sharpness κ
	// its accuracy is 1/(1+κ).
	want := 1.0 / (1 + AccuracySharpness)
	if math.Abs(bd.Accuracy-want) > 1e-9 {
		t.Errorf("identity accuracy = %v, want %v", bd.Accuracy, want)
	}
	// It also covers none of the change, so interpretability collapses.
	if bd.Coverage != 0 {
		t.Errorf("coverage = %v", bd.Coverage)
	}
	if bd.Interpretability > 0.01 {
		t.Errorf("interpretability = %v, want ≈ 0", bd.Interpretability)
	}
}

func TestAlphaBlending(t *testing.T) {
	tbl, actual, changed := fixture(t)
	s := perfectSummary()
	var prev float64
	for i, alpha := range []float64{0, 0.5, 1} {
		bd, err := Evaluate(s, tbl, actual, changed, alpha, DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		want := alpha*bd.Accuracy + (1-alpha)*bd.Interpretability
		if math.Abs(bd.Score-want) > 1e-12 {
			t.Errorf("alpha=%v: score %v != blend %v", alpha, bd.Score, want)
		}
		// For this summary accuracy > interpretability, so score rises with α.
		if i > 0 && bd.Score < prev-1e-9 {
			t.Errorf("score not monotone in alpha")
		}
		prev = bd.Score
	}
}

func TestEvaluateValidation(t *testing.T) {
	tbl, actual, changed := fixture(t)
	if _, err := Evaluate(perfectSummary(), tbl, actual[:2], changed, 0.5, DefaultWeights()); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Evaluate(perfectSummary(), tbl, actual, changed, 1.5, DefaultWeights()); err == nil {
		t.Error("alpha out of range accepted")
	}
	bad := &model.Summary{Target: "ghost"}
	if _, err := Evaluate(bad, tbl, actual, changed, 0.5, DefaultWeights()); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestSizePenaltyMonotone(t *testing.T) {
	tbl, actual, changed := fixture(t)
	one := perfectSummary()
	// Same semantics split into three CTs (one per row value) — more CTs,
	// lower size sub-score.
	three := &model.Summary{Target: "pay"}
	for _, v := range []float64{1000, 2000, 3000} {
		three.CTs = append(three.CTs, model.CT{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.NumAtom("pay", predicate.Ge, v), predicate.NumAtom("pay", predicate.Lt, v+1)}},
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}},
		})
	}
	bd1, err := Evaluate(one, tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	bd3, err := Evaluate(three, tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if bd3.Accuracy < 1-1e-9 {
		t.Fatalf("three-CT accuracy = %v", bd3.Accuracy)
	}
	if bd3.Size >= bd1.Size {
		t.Errorf("size sub-score should drop: %v vs %v", bd3.Size, bd1.Size)
	}
	if bd3.Interpretability >= bd1.Interpretability {
		t.Errorf("interpretability should drop with size: %v vs %v", bd3.Interpretability, bd1.Interpretability)
	}
}

func TestCondAndTranSimplicity(t *testing.T) {
	tbl, actual, changed := fixture(t)
	complexCond := &model.Summary{
		Target: "pay",
		CTs: []model.CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{
				predicate.StrAtom("grp", predicate.Eq, "a"),
				predicate.NumAtom("pay", predicate.Ge, 0),
				predicate.NumAtom("pay", predicate.Lt, 1e9),
			}},
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}},
		}},
	}
	simple, err := Evaluate(perfectSummary(), tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	complexBd, err := Evaluate(complexCond, tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if complexBd.CondSimplicity >= simple.CondSimplicity {
		t.Errorf("3-atom condition should score lower: %v vs %v", complexBd.CondSimplicity, simple.CondSimplicity)
	}
}

func TestNormalityPrefersRoundConstants(t *testing.T) {
	tbl, actual, changed := fixture(t)
	round := perfectSummary() // 1.1 is round
	ugly := &model.Summary{
		Target: "pay",
		CTs: []model.CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("grp", predicate.Eq, "a")}},
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.09973}, Intercept: 0.41},
		}},
	}
	rb, err := Evaluate(round, tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	ub, err := Evaluate(ugly, tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if ub.Normality >= rb.Normality {
		t.Errorf("ugly constants should score lower normality: %v vs %v", ub.Normality, rb.Normality)
	}
}

func TestCoverageComponent(t *testing.T) {
	tbl, actual, changed := fixture(t)
	// Covers only the first changed row (pay < 1500).
	partial := &model.Summary{
		Target: "pay",
		CTs: []model.CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.NumAtom("pay", predicate.Lt, 1500)}},
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}},
		}},
	}
	bd, err := Evaluate(partial, tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Coverage-1.0/3) > 1e-12 {
		t.Errorf("coverage = %v, want 1/3", bd.Coverage)
	}
}

func TestHarmonicMeanWeakestLink(t *testing.T) {
	// One near-zero component must collapse the aggregate even when the
	// others are perfect.
	h := harmonicMean([]float64{1, 1, 1, 1, 0.001}, []float64{1, 1, 1, 1, 1})
	if h > 0.01 {
		t.Errorf("weakest link ignored: %v", h)
	}
	// All equal → mean equals the value.
	if got := harmonicMean([]float64{0.5, 0.5}, []float64{1, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("uniform harmonic = %v", got)
	}
	// Zero weights drop components.
	if got := harmonicMean([]float64{0.001, 1}, []float64{0, 1}); got != 1 {
		t.Errorf("weighted drop = %v", got)
	}
	if harmonicMean([]float64{1}, []float64{0}) != 0 {
		t.Error("no active weights should give 0")
	}
}

func TestNoChangedRowsScale(t *testing.T) {
	tbl, _, _ := fixture(t)
	actual := []float64{1000, 2000, 3000, 4000} // nothing changed
	changed := []bool{false, false, false, false}
	bd, err := Evaluate(&model.Summary{Target: "pay"}, tbl, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if bd.Accuracy != 1 {
		t.Errorf("no-change vs empty summary accuracy = %v, want 1", bd.Accuracy)
	}
	if bd.Coverage != 1 {
		t.Errorf("coverage with no changes = %v, want vacuous 1", bd.Coverage)
	}
}

func TestConstantRoundnessRateView(t *testing.T) {
	// 1.05 read as "5%" is fully round; 1.0493 is not.
	if ConstantRoundness(1.05) != 1 {
		t.Errorf("ConstantRoundness(1.05) = %v", ConstantRoundness(1.05))
	}
	if ConstantRoundness(1.0493) >= ConstantRoundness(1.05) {
		t.Error("1.0493 should be less round than 1.05")
	}
	// Outside the rate window the direct view is used.
	if ConstantRoundness(1000) != 1 {
		t.Errorf("ConstantRoundness(1000) = %v", ConstantRoundness(1000))
	}
}
