package score

import (
	"math/rand"
	"testing"

	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/table"
)

func randomScoreTable(rng *rand.Rand, n int) *table.Table {
	t := table.MustNew(table.Schema{
		{Name: "pay", Type: table.Float},
		{Name: "exp", Type: table.Int},
		{Name: "edu", Type: table.String},
	})
	edus := []string{"BS", "MS", "PhD"}
	for r := 0; r < n; r++ {
		vals := []table.Value{
			table.F(1000 + float64(rng.Intn(9000))),
			table.I(int64(rng.Intn(20))),
			table.S(edus[rng.Intn(len(edus))]),
		}
		for c := range vals {
			if rng.Float64() < 0.05 {
				vals[c] = table.Null(t.Schema()[c].Type)
			}
		}
		t.MustAppendRow(vals...)
	}
	return t
}

func randomSummary(rng *rand.Rand) *model.Summary {
	s := &model.Summary{Target: "pay"}
	nCT := 1 + rng.Intn(3)
	for i := 0; i < nCT; i++ {
		var cond predicate.Predicate
		if rng.Intn(4) > 0 {
			switch rng.Intn(3) {
			case 0:
				cond = cond.And(predicate.StrAtom("edu", predicate.Eq, []string{"BS", "MS", "PhD"}[rng.Intn(3)]))
			case 1:
				cond = cond.And(predicate.NumAtom("exp", predicate.Lt, float64(rng.Intn(20))))
			default:
				cond = cond.And(predicate.NumAtom("pay", predicate.Ge, 1000+float64(rng.Intn(9000))))
			}
		}
		var tran model.Transformation
		switch rng.Intn(4) {
		case 0:
			tran = model.Identity("pay")
		case 1:
			tran = model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.05}, Intercept: 100}
		case 2:
			tran = model.Transformation{
				Target:   "pay",
				Features: []model.Feature{{Form: model.Log, Attr: "pay"}, {Form: model.Square, Attr: "exp"}},
				Coef:     []float64{50, 2}, Intercept: float64(rng.Intn(500)),
			}
		default:
			tran = model.Transformation{
				Target:   "pay",
				Features: []model.Feature{{Form: model.Interaction, Attr: "pay", Attr2: "exp"}},
				Coef:     []float64{0.01}, Intercept: 1,
			}
		}
		s.CTs = append(s.CTs, model.CT{Cond: cond, Tran: tran})
	}
	return s
}

// TestEvaluatorMatchesEvaluate is the differential lock on the zero-realloc
// scoring path: every Breakdown field must equal the naive path bit for bit
// on randomized tables and summaries.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(200)
		src := randomScoreTable(rng, n)
		actual := make([]float64, n)
		changed := make([]bool, n)
		pay := src.MustColumn("pay")
		for r := 0; r < n; r++ {
			actual[r] = pay.Float(r)
			if rng.Float64() < 0.5 {
				actual[r] *= 1.05
				changed[r] = true
			}
		}
		alpha := rng.Float64()
		w := DefaultWeights()
		ev, err := NewEvaluator(src, actual, changed, alpha, w)
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < 20; si++ {
			s := randomSummary(rng)
			want, err := Evaluate(s, src, actual, changed, alpha, w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ev.Evaluate(s)
			if err != nil {
				t.Fatal(err)
			}
			if got != *want {
				t.Fatalf("trial %d summary %d: evaluator %+v != naive %+v\nsummary:\n%s", trial, si, got, *want, s)
			}
		}
	}
}

// TestEvaluatorSteadyStateAllocs locks the zero-realloc contract: once the
// atom cache is warm, scoring a summary allocates nothing.
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	src := randomScoreTable(rng, n)
	actual := make([]float64, n)
	changed := make([]bool, n)
	pay := src.MustColumn("pay")
	for r := 0; r < n; r++ {
		actual[r] = pay.Float(r) * 1.1
		changed[r] = true
	}
	ev, err := NewEvaluator(src, actual, changed, 0.5, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	s := &model.Summary{Target: "pay", CTs: []model.CT{
		{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "MS")}},
			Tran: model.Transformation{Target: "pay", Features: []model.Feature{model.Lin("pay")}, Coef: []float64{1.1}},
		},
		{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.NumAtom("exp", predicate.Ge, 5)}},
			Tran: model.Identity("pay"),
		},
	}}
	if _, err := ev.Evaluate(s); err != nil { // warm the cache and scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ev.Evaluate(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Evaluate allocates %.1f objects/op, want 0", allocs)
	}
}
