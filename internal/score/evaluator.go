package score

import (
	"fmt"
	"math"
	"math/bits"

	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/table"
)

// Evaluator is the reusable, allocation-free fast path of Evaluate. The
// engine scores thousands of candidate summaries against one fixed
// (source, actual, changed) triple; Evaluate re-derives everything per call
// — it re-allocates the prediction and coverage buffers, re-resolves the
// target column, and re-evaluates every CT condition row by row. An
// Evaluator binds all of that once:
//
//   - the target column is resolved to a float view at construction;
//   - the accuracy normalization scale (mean |Δtarget| over changed rows)
//     is summary-independent and precomputed;
//   - CT conditions evaluate through a shared predicate.Cache of compiled
//     atom bitmaps, so each distinct atom touches the rows once per run;
//   - predictions, coverage, and mask buffers are scratch, reused across
//     calls — steady-state scoring does zero allocations.
//
// Results are identical to Evaluate (same arithmetic, same order). Each
// engine worker owns one Evaluator; an Evaluator is not safe for concurrent
// use, but the shared cache is.
type Evaluator struct {
	src     *table.Table
	actual  []float64
	changed []bool
	alpha   float64
	w       Weights

	cache *predicate.Cache

	// Target binding (lazily established on first Evaluate, summary target
	// changes rebind).
	target   string
	tvals    []float64
	scaleSum float64 // Σ |actual − old| over changed rows with finite delta
	nDelta   int     // changed rows with a finite delta
	nChanged int     // all changed rows (coverage denominator)

	// Per-row changed mask in bitset form, for popcount coverage.
	changedBits predicate.Bitset

	// Scratch reused across Evaluate calls.
	preds   []float64
	covered predicate.Bitset
	mask    predicate.Bitset
	ctran   model.CompiledTransformation
}

// NewEvaluator builds an evaluator for scoring summaries against the actual
// evolved values (see Evaluate for the argument contract).
func NewEvaluator(src *table.Table, actual []float64, changed []bool, alpha float64, w Weights) (*Evaluator, error) {
	if src.NumRows() != len(actual) || len(actual) != len(changed) {
		return nil, fmt.Errorf("score: inconsistent lengths (rows=%d actual=%d changed=%d)", src.NumRows(), len(actual), len(changed))
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("score: alpha %g out of [0,1]", alpha)
	}
	n := len(actual)
	e := &Evaluator{
		src:     src,
		actual:  actual,
		changed: changed,
		alpha:   alpha,
		w:       w,
		cache:   predicate.NewCache(src),
		preds:   make([]float64, n),
		covered: predicate.NewBitset(n),
		mask:    predicate.NewBitset(n),
	}
	e.changedBits = predicate.NewBitset(n)
	for r, ch := range changed {
		if ch {
			e.changedBits.Set(r)
			e.nChanged++
		}
	}
	return e, nil
}

// SetCache shares an external atom-bitmap cache (the engine owns one per
// run, shared across its workers).
func (e *Evaluator) SetCache(c *predicate.Cache) { e.cache = c }

// Cache returns the evaluator's atom-bitmap cache.
func (e *Evaluator) Cache() *predicate.Cache { return e.cache }

// bindTarget resolves the target column and precomputes the
// summary-independent half of the accuracy scale.
func (e *Evaluator) bindTarget(target string) error {
	tcol, err := e.src.Column(target)
	if err != nil {
		return err
	}
	e.target = target
	e.tvals = tcol.FloatView()
	if e.tvals == nil {
		// Non-numeric target: Float(r) is NaN everywhere, like Evaluate.
		nan := make([]float64, len(e.actual))
		for i := range nan {
			nan[i] = math.NaN()
		}
		e.tvals = nan
	}
	e.scaleSum, e.nDelta = 0, 0
	for r, ch := range e.changed {
		if !ch {
			continue
		}
		d := math.Abs(e.actual[r] - e.tvals[r])
		if !math.IsNaN(d) && !math.IsInf(d, 0) {
			e.scaleSum += d
			e.nDelta++
		}
	}
	return nil
}

// Evaluate scores summary s. The Breakdown is returned by value so the
// steady state allocates nothing; results equal Evaluate's exactly.
func (e *Evaluator) Evaluate(s *model.Summary) (Breakdown, error) {
	if s.Target != e.target {
		if err := e.bindTarget(s.Target); err != nil {
			return Breakdown{}, err
		}
	}
	n := len(e.actual)

	// ----- Apply: first matching CT per row, via compiled masks -----
	copy(e.preds, e.tvals) // default: unchanged
	e.covered.Zero()
	for i := range s.CTs {
		ct := &s.CTs[i]
		mask, err := e.cache.Mask(ct.Cond, e.mask)
		if err != nil {
			return Breakdown{}, err
		}
		e.mask = mask
		mask.AndNot(e.covered) // rows already claimed by an earlier CT
		if err := ct.Tran.CompileInto(&e.ctran, e.src); err != nil {
			return Breakdown{}, err
		}
		// Manual word walk (ForEach's closure would be this loop's only
		// heap allocation).
		for wi, w := range mask {
			for w != 0 {
				r := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				e.preds[r] = e.ctran.At(r)
			}
		}
		e.covered.Or(mask)
	}

	b := Breakdown{}

	// ----- Accuracy: normalized inverse L1 (same arithmetic as Evaluate) ---
	var sae float64
	var nScored int
	for r := 0; r < n; r++ {
		d := math.Abs(e.preds[r] - e.actual[r])
		if !math.IsNaN(d) && !math.IsInf(d, 0) {
			sae += d
			nScored++
		}
	}
	if nScored == 0 {
		nScored = 1
	}
	b.MAE = sae / float64(nScored)
	scale := e.scaleSum
	if e.nDelta > 0 {
		scale /= float64(e.nDelta)
		scale *= float64(e.nDelta) / float64(nScored)
		scale /= AccuracySharpness
	}
	if scale <= 0 {
		scale = 1
	}
	b.Scale = scale
	b.Accuracy = 1 / (1 + b.MAE/scale)

	// ----- Interpretability -----
	b.Size = sizeScore(s.Size())
	b.CondSimplicity = condSimplicity(s)
	b.TranSimplicity = tranSimplicity(s)
	b.Coverage = e.coverage()
	b.Normality = normality(s)

	b.Interpretability = harmonicMean([]float64{b.Size, b.CondSimplicity, b.TranSimplicity, b.Coverage, b.Normality},
		[]float64{e.w.Size, e.w.CondSimplicity, e.w.TranSimplicity, e.w.Coverage, e.w.Normality})
	b.Score = e.alpha*b.Accuracy + (1-e.alpha)*b.Interpretability
	return b, nil
}

// coverage is coverageScore over the scratch bitsets: the fraction of
// changed rows claimed by some CT.
func (e *Evaluator) coverage() float64 {
	if e.nChanged == 0 {
		return 1
	}
	hit := 0
	for i, w := range e.covered {
		hit += bits.OnesCount64(w & e.changedBits[i])
	}
	return float64(hit) / float64(e.nChanged)
}
