// Package linalg provides the dense linear algebra needed by the regression
// layer: a row-major Matrix type, Householder QR factorization, linear-system
// and least-squares solvers, and vector utilities. It is deliberately small
// and dependency-free; ChARLES only ever solves skinny least-squares systems
// (rows = partition size, cols = |T|+1 ≤ a handful).
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all must share a length).
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	return append([]float64(nil), m.Data[i*m.Cols:(i+1)*m.Cols]...)
}

// MulVec computes y = M·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec: len(x)=%d, want %d", len(x), m.Cols)
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// Transpose returns Mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns M·N.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("linalg: Mul: %dx%d × %dx%d mismatch", m.Rows, m.Cols, n.Rows, n.Cols)
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns ⟨a,b⟩.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled to avoid overflow, matching the classic BLAS dnrm2 approach.
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			ssq = 1 + ssq*(scale/ax)*(scale/ax)
			scale = ax
		} else {
			ssq += (ax / scale) * (ax / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns Σ|vᵢ|.
func Norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns max|vᵢ|.
func NormInf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}
