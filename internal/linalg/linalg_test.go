package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("At/Set broken")
	}
	cp := m.Clone()
	cp.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone not deep")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Error("Transpose broken")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Error("Row broken")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil || m.At(1, 0) != 3 {
		t.Fatalf("FromRows: %v", err)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Error("empty FromRows broken")
	}
}

func TestMulVecAndMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil || y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v, %v", y, err)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("bad vector length accepted")
	}
	b, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	c, err := a.Mul(b)
	if err != nil || c.At(0, 0) != 2 || c.At(0, 1) != 1 {
		t.Fatalf("Mul = %v, %v", c, err)
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  →  x = 2, y = 1
	a, _ := FromRows([][]float64{{2, 1}, {1, -1}})
	x, err := SolveLinear(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-12) || !almostEq(x[1], 1, 1e-12) {
		t.Errorf("solution = %v, want [2 1]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := SolveLinear(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := SolveLinear(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Error("bad b length accepted")
	}
}

func TestSolveLinearRandomDiagonallyDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		xTrue := make([]float64, n)
		for i := 0; i < n; i++ {
			xTrue[i] = rng.NormFloat64()
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.NormFloat64()
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1+rng.Float64())
		}
		b, _ := a.MulVec(xTrue)
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestQRExactSolve(t *testing.T) {
	// Square full-rank: least squares = exact solve.
	a, _ := FromRows([][]float64{{2, 1}, {1, -1}})
	x, err := SolveLS(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-10) || !almostEq(x[1], 1, 1e-10) {
		t.Errorf("QR solve = %v", x)
	}
}

func TestQROverdeterminedRecovery(t *testing.T) {
	// y = 3x + 2 sampled without noise: LS must recover exactly.
	var rows [][]float64
	var b []float64
	for i := 0; i < 10; i++ {
		x := float64(i)
		rows = append(rows, []float64{x, 1})
		b = append(b, 3*x+2)
	}
	a, _ := FromRows(rows)
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-10) || !almostEq(x[1], 2, 1e-10) {
		t.Errorf("LS = %v, want [3 2]", x)
	}
}

func TestQRLeastSquaresOptimality(t *testing.T) {
	// The QR solution must beat random perturbations in ‖Ax−b‖₂.
	rng := rand.New(rand.NewSource(11))
	a := NewMatrix(20, 3)
	b := make([]float64, 20)
	for i := 0; i < 20; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = rng.NormFloat64()
	}
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	base := residNorm(a, x, b)
	for trial := 0; trial < 100; trial++ {
		xp := append([]float64(nil), x...)
		for j := range xp {
			xp[j] += rng.NormFloat64() * 0.1
		}
		if residNorm(a, xp, b) < base-1e-9 {
			t.Fatalf("perturbed solution beats QR: %v < %v", residNorm(a, xp, b), base)
		}
	}
}

func residNorm(a *Matrix, x, b []float64) float64 {
	ax, _ := a.MulVec(x)
	r := make([]float64, len(b))
	for i := range b {
		r[i] = ax[i] - b[i]
	}
	return Norm2(r)
}

func TestQRRankDeficiencyDetected(t *testing.T) {
	// Column 2 = 2 × column 1.
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := SolveLS(a, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient LS accepted")
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.FullRank() {
		t.Error("FullRank() true for rank-deficient matrix")
	}
	if !math.IsInf(f.ConditionEstimate(), 1) && f.ConditionEstimate() < 1e10 {
		t.Errorf("condition estimate too small: %v", f.ConditionEstimate())
	}
}

func TestFactorShapeCheck(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Error("wide matrix accepted by QR")
	}
}

func TestSolveRidgeHandlesRankDeficiency(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	x, err := SolveRidge(a, []float64{1, 2, 3}, 1e-6)
	if err != nil {
		t.Fatalf("ridge failed: %v", err)
	}
	// Prediction should still be close even though coefficients are not unique.
	ax, _ := a.MulVec(x)
	for i, want := range []float64{1, 2, 3} {
		if !almostEq(ax[i], want, 1e-3) {
			t.Errorf("ridge prediction[%d] = %v, want %v", i, ax[i], want)
		}
	}
	if _, err := SolveRidge(a, []float64{1, 2, 3}, -1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if Norm2(v) != 5 {
		t.Errorf("Norm2 = %v", Norm2(v))
	}
	if Norm1(v) != 7 {
		t.Errorf("Norm1 = %v", Norm1(v))
	}
	if NormInf(v) != 4 {
		t.Errorf("NormInf = %v", NormInf(v))
	}
	if Norm2(nil) != 0 {
		t.Error("empty Norm2 should be 0")
	}
	// Overflow-resistant norm.
	big := []float64{1e300, 1e300}
	if math.IsInf(Norm2(big), 1) {
		t.Error("Norm2 overflowed")
	}
}

func TestDotProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := a[:], b[:]
		// Bound magnitudes so the products stay finite: commutativity of a
		// sum of non-finite terms is not a meaningful property to check.
		for i := range x {
			x[i] = math.Mod(x[i], 1e6)
			y[i] = math.Mod(y[i], 1e6)
			if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
				return true
			}
		}
		return almostEq(Dot(x, y), Dot(y, x), 1e-6*(1+math.Abs(Dot(x, y))))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQRSolveBadLength(t *testing.T) {
	a, _ := FromRows([][]float64{{1}, {2}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("bad b length accepted by QR.Solve")
	}
}
