package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system is (numerically) rank deficient.
var ErrSingular = errors.New("linalg: matrix is singular or rank deficient")

// SolveLinear solves the square system A·x = b via Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: SolveLinear needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLinear: len(b)=%d, want %d", len(b), n)
	}
	// Augmented working copy.
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot: largest |entry| in this column at or below the diagonal.
		pivot, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax == 0 || math.IsNaN(pmax) {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := col; j < n; j++ {
				tmp := m.At(col, j)
				m.Set(col, j, m.At(pivot, j))
				m.Set(pivot, j, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// QR holds a Householder QR factorization of an m×n matrix with m ≥ n:
// A = Q·R with Q orthogonal (stored implicitly as Householder vectors) and
// R upper triangular.
type QR struct {
	qr   *Matrix   // Householder vectors below the diagonal, R on/above it
	rdia []float64 // diagonal of R
}

// Factor computes the QR factorization of a (not modified).
func Factor(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QR needs rows ≥ cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdia[k] = -norm
	}
	return &QR{qr: qr, rdia: rdia}, nil
}

// FullRank reports whether R has no (near-)zero diagonal entries relative to
// the largest one.
func (f *QR) FullRank() bool {
	maxd := 0.0
	for _, d := range f.rdia {
		if a := math.Abs(d); a > maxd {
			maxd = a
		}
	}
	if maxd == 0 {
		return false
	}
	const rcond = 1e-12
	for _, d := range f.rdia {
		if math.Abs(d) <= rcond*maxd {
			return false
		}
	}
	return true
}

// ConditionEstimate returns max|R_ii| / min|R_ii|, a cheap proxy for the
// 2-norm condition number of A.
func (f *QR) ConditionEstimate() float64 {
	mind, maxd := math.Inf(1), 0.0
	for _, d := range f.rdia {
		a := math.Abs(d)
		if a < mind {
			mind = a
		}
		if a > maxd {
			maxd = a
		}
	}
	if mind == 0 {
		return math.Inf(1)
	}
	return maxd / mind
}

// Solve returns x minimizing ‖A·x − b‖₂ using the stored factorization.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR.Solve: len(b)=%d, want %d", len(b), m)
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := append([]float64(nil), b...)
	// Apply Qᵀ to b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R·x = (Qᵀb)[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdia[i]
	}
	return x, nil
}

// SolveLS returns x minimizing ‖A·x − b‖₂ (QR-based, numerically stable).
func SolveLS(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveRidge solves the regularized least-squares problem
// min ‖A·x − b‖² + λ‖x‖² via the augmented system [A; √λ·I]x = [b; 0].
// With λ > 0 the system is always full rank.
func SolveRidge(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: SolveRidge: negative lambda %g", lambda)
	}
	if lambda == 0 {
		return SolveLS(a, b)
	}
	m, n := a.Rows, a.Cols
	aug := NewMatrix(m+n, n)
	copy(aug.Data[:m*n], a.Data)
	sq := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sq)
	}
	bb := make([]float64, m+n)
	copy(bb, b)
	return SolveLS(aug, bb)
}
