package history

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"charles/internal/core"
	"charles/internal/gen"
	"charles/internal/store"
	"charles/internal/table"
)

// maintainBase is the option set every maintainer test runs under.
// Workers=1 makes SummarizeAll emit the engine's canonical deterministic
// form even on 1-step chains (multi-step chains always collapse to it; see
// forEachStep), so maintained and rebuilt timelines can be compared
// bit-for-bit at every prefix length.
func maintainBase() core.Options {
	base := core.DefaultOptions("")
	base.Workers = 1
	return base
}

// renderFull serializes every bit of a MultiTimeline the engine produces —
// per-attribute step sequences, full rankings with breakdowns, CT order,
// provenance, and the skipped set — into one deterministic string. Timeline
// equality is compared on these renderings rather than reflect.DeepEqual
// because summaries can legitimately contain NaN constants (a condition
// group empty on one side), and DeepEqual's NaN != NaN would report two
// bit-identical timelines as different.
func renderFull(mt *MultiTimeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "attrs=%v steps=%d\n", mt.Attrs, mt.Steps)
	for _, k := range sortedKeys(mt.Skipped) {
		fmt.Fprintf(&b, "skip %s=%s\n", k, mt.Skipped[k])
	}
	for _, attr := range mt.Attrs {
		tl := mt.Timelines[attr]
		fmt.Fprintf(&b, "== %s (%s)\n", attr, tl.Target)
		for _, s := range tl.Steps {
			fmt.Fprintf(&b, "step %d->%d nochange=%v\n", s.From, s.To, s.NoChange)
			for _, r := range s.Ranked {
				fmt.Fprintf(&b, " r nochange=%v breakdown=%+v target=%s cond=%v tran=%v cts=",
					r.NoChange, *r.Breakdown, r.Summary.Target, r.Summary.CondAttrs, r.Summary.TranAttrs)
				for _, ct := range r.Summary.CTs {
					fmt.Fprintf(&b, "[%v]", ct)
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// equalTimelines reports bit-identical timelines (NaN-tolerant; see
// renderFull).
func equalTimelines(a, b *MultiTimeline) bool {
	return renderFull(a) == renderFull(b)
}

// commitMutateChain commits a MutateChain-derived lineage into a fresh
// memory store and returns the store, the ids (root → head), and the
// canonical (store-materialized) snapshots. The engine's Align requires a
// fixed entity set, so each fuzz snapshot is projected onto the chain-wide
// common key set — MutateChain's adversarial cell edits survive; its row
// churn (which the engine rejects by contract) does not. A projected
// snapshot that dedups to an earlier version is skipped rather than
// committed (content addressing would report a lineage conflict).
func commitMutateChain(t *testing.T, cfg gen.FuzzConfig) (*store.Store, []string, []*table.Table) {
	t.Helper()
	snaps, err := gen.MutateChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	common := map[string]int{}
	for _, snap := range snaps {
		for r := 0; r < snap.NumRows(); r++ {
			k, err := snap.KeyOf(r)
			if err != nil {
				t.Fatal(err)
			}
			common[k]++
		}
	}
	st, err := store.OpenWith("", store.Options{AnchorEvery: 4, TableCache: 64})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	parent := ""
	for _, snap := range snaps {
		keep := make([]bool, snap.NumRows())
		for r := range keep {
			k, err := snap.KeyOf(r)
			if err != nil {
				t.Fatal(err)
			}
			keep[r] = common[k] == len(snaps)
		}
		proj, err := snap.Filter(keep)
		if err != nil {
			t.Fatal(err)
		}
		if err := proj.SetKey("id"); err != nil {
			t.Fatal(err)
		}
		v, err := st.Commit(proj, parent, "step")
		if errors.Is(err, store.ErrLineageConflict) {
			continue // projection erased this step's visible change
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	if len(ids) < 3 {
		t.Fatalf("projected chain too short: %d versions", len(ids))
	}
	mats, err := MaterializeChain(st, ids)
	if err != nil {
		t.Fatal(err)
	}
	return st, ids, mats
}

// TestTimelineMaintainerDifferential is the incremental-vs-rebuild
// acceptance differential: across 5 MutateChain seeds, a maintainer seeded
// on the 2-version prefix and extended one commit at a time must produce,
// at every prefix length, a MultiTimeline bit-identical to a from-scratch
// SummarizeAll over the same snapshots.
func TestTimelineMaintainerDifferential(t *testing.T) {
	base := maintainBase()
	for seed := int64(1); seed <= 5; seed++ {
		st, ids, mats := commitMutateChain(t, gen.FuzzConfig{N: 20, Steps: 5, Seed: seed})
		m, err := NewTimelineMaintainer(mats[:2], ids[:2], base)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for k := 2; k <= len(ids); k++ {
			if k > 2 {
				if err := m.ExtendFromSource(st, ids[k-1]); err != nil {
					t.Fatalf("seed %d: extend to %s: %v", seed, ids[k-1], err)
				}
			}
			want, err := SummarizeAll(mats[:k], base)
			if err != nil {
				t.Fatalf("seed %d: rebuild at %d: %v", seed, k, err)
			}
			if got := m.Timeline(); !equalTimelines(got, want) {
				t.Fatalf("seed %d: maintained timeline at %d versions differs from SummarizeAll rebuild", seed, k)
			}
			if m.Head() != ids[k-1] || m.Steps() != k-1 {
				t.Fatalf("seed %d: head=%s steps=%d, want %s/%d", seed, m.Head(), m.Steps(), ids[k-1], k-1)
			}
		}
	}
}

// TestTimelineMaintainerPrefixAnswers pins TimelineAt: a prefix answer must
// equal the rebuild of that prefix, the root has no timeline, and unknown
// ids report !ok.
func TestTimelineMaintainerPrefixAnswers(t *testing.T) {
	base := maintainBase()
	_, ids, mats := commitMutateChain(t, gen.FuzzConfig{N: 15, Steps: 4, Seed: 7})
	m, err := NewTimelineMaintainer(mats, ids, base)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= len(ids); k++ {
		got, gotIDs, ok := m.TimelineAt(ids[k-1])
		if !ok {
			t.Fatalf("TimelineAt(%s) not ok", ids[k-1])
		}
		if !reflect.DeepEqual(gotIDs, ids[:k]) {
			t.Fatalf("TimelineAt(%s) ids = %v, want %v", ids[k-1], gotIDs, ids[:k])
		}
		want, err := SummarizeAll(mats[:k], base)
		if err != nil {
			t.Fatal(err)
		}
		if !equalTimelines(got, want) {
			t.Fatalf("TimelineAt(%s) differs from rebuild of the %d-version prefix", ids[k-1], k)
		}
	}
	if _, _, ok := m.TimelineAt(ids[0]); ok {
		t.Error("root version reported a timeline")
	}
	if _, _, ok := m.TimelineAt("nope"); ok {
		t.Error("unknown id reported a timeline")
	}
}

// TestTimelineMaintainerSchemaChangeFallback pins the rebuild-fallback
// contract: extending across a schema change fails, leaves the maintainer
// unchanged, and a fresh maintainer over the new-schema suffix matches the
// from-scratch rebuild of that suffix.
func TestTimelineMaintainerSchemaChangeFallback(t *testing.T) {
	base := maintainBase()
	st, ids, mats := commitMutateChain(t, gen.FuzzConfig{N: 15, Steps: 3, Seed: 9})
	m, err := NewTimelineMaintainer(mats, ids, base)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Timeline()

	// Commit a snapshot with a different schema (the toy dataset) as a
	// child of the current head — the store accepts it (full pack), but
	// Align cannot pair the schemas, so the incremental extend must fail.
	d1, d2 := gen.Toy()
	v1, err := st.Commit(d1, ids[len(ids)-1], "schema change")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ExtendFromSource(st, v1.ID); err == nil {
		t.Fatal("extend across a schema change succeeded, want error")
	} else if !strings.Contains(err.Error(), "extend") {
		t.Fatalf("extend error = %v, want the extend step named", err)
	}
	if m.Head() != ids[len(ids)-1] || m.Steps() != len(ids)-1 {
		t.Fatalf("failed extend mutated the maintainer: head=%s steps=%d", m.Head(), m.Steps())
	}
	if !equalTimelines(m.Timeline(), before) {
		t.Fatal("failed extend changed the maintained timeline")
	}

	// The fallback path: rebuild over the consistent new-schema suffix.
	v2, err := st.Commit(d2, v1.ID, "toy policy applied")
	if err != nil {
		t.Fatal(err)
	}
	sufIDs := []string{v1.ID, v2.ID}
	suf, err := MaterializeChain(st, sufIDs)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewTimelineMaintainer(suf, sufIDs, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SummarizeAll(suf, base)
	if err != nil {
		t.Fatal(err)
	}
	if !equalTimelines(rebuilt.Timeline(), want) {
		t.Fatal("rebuilt maintainer differs from SummarizeAll over the new-schema suffix")
	}
	if rebuilt.Head() != v2.ID {
		t.Fatalf("rebuilt head = %s, want %s", rebuilt.Head(), v2.ID)
	}
}

// TestTimelineMaintainerForkIsolation pins Fork: extending a fork leaves
// the original untouched.
func TestTimelineMaintainerForkIsolation(t *testing.T) {
	base := maintainBase()
	st, ids, mats := commitMutateChain(t, gen.FuzzConfig{N: 15, Steps: 4, Seed: 11})
	m, err := NewTimelineMaintainer(mats[:len(mats)-1], ids[:len(ids)-1], base)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Timeline()
	f := m.Fork()
	if err := f.ExtendFromSource(st, ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	if f.Head() != ids[len(ids)-1] || m.Head() == f.Head() {
		t.Fatalf("fork head = %s, original head = %s", f.Head(), m.Head())
	}
	if !equalTimelines(m.Timeline(), before) {
		t.Fatal("extending the fork mutated the original maintainer")
	}
}

// TestTimelineMaintainerValidation pins the constructor's input contract.
func TestTimelineMaintainerValidation(t *testing.T) {
	base := maintainBase()
	d1, d2 := gen.Toy()
	if _, err := NewTimelineMaintainer([]*table.Table{d1, d2}, []string{"only-one"}, base); err == nil {
		t.Error("mismatched snapshots/ids accepted")
	}
	if _, err := NewTimelineMaintainer([]*table.Table{d1}, []string{"a"}, base); err == nil {
		t.Error("single-snapshot seed accepted")
	}
}
