// Package history extends ChARLES from a snapshot *pair* to a snapshot
// *sequence*: given versions D₁ … Dₙ of an evolving table, it summarizes
// each consecutive step and reports how the recovered policy drifts over
// time — the "temporal changes" framing of the paper applied across a whole
// version history (cf. Bleifuß et al., "Exploring Change", PVLDB 2018,
// which the related-work section positions ChARLES against).
package history

import (
	"fmt"
	"strings"

	"charles/internal/core"
	"charles/internal/model"
	"charles/internal/table"
)

// Step is the summarization of one consecutive snapshot pair.
type Step struct {
	// From and To index the snapshot sequence (step i: snapshots[i] →
	// snapshots[i+1]).
	From, To int
	// Ranked holds the step's summaries (empty only on no-change steps,
	// which instead set NoChange).
	Ranked []core.Ranked
	// NoChange marks steps where the target attribute did not move.
	NoChange bool
}

// Top returns the step's best summary (nil for no-change steps).
func (s Step) Top() *model.Summary {
	if len(s.Ranked) == 0 {
		return nil
	}
	return s.Ranked[0].Summary
}

// Timeline is the summarized evolution of one target attribute across a
// snapshot sequence.
type Timeline struct {
	Target string
	Steps  []Step
}

// Summarize runs the engine over every consecutive pair of snapshots. All
// snapshots must share the schema and entity set of the first; opts.Target
// selects the attribute. Steps where the target did not change are marked
// rather than summarized.
func Summarize(snapshots []*table.Table, opts core.Options) (*Timeline, error) {
	if len(snapshots) < 2 {
		return nil, fmt.Errorf("history: need at least 2 snapshots, got %d", len(snapshots))
	}
	tl := &Timeline{Target: opts.Target}
	for i := 0; i+1 < len(snapshots); i++ {
		ranked, err := core.Summarize(snapshots[i], snapshots[i+1], opts)
		if err != nil {
			return nil, fmt.Errorf("history: step %d→%d: %w", i, i+1, err)
		}
		step := Step{From: i, To: i + 1, Ranked: ranked}
		// The engine tags its "nothing changed" result explicitly; trust
		// that signal instead of inferring it from summary shape (a real
		// change step can legitimately rank a single summary).
		if len(ranked) > 0 && ranked[0].NoChange {
			step.NoChange = true
		}
		tl.Steps = append(tl.Steps, step)
	}
	return tl, nil
}

// Drift describes how a policy changed between two consecutive steps.
type Drift struct {
	StepA, StepB int
	// SamePartitioning reports whether both steps' top summaries induce the
	// same partition structure (condition fingerprints match pairwise).
	SamePartitioning bool
	// Note summarizes the relationship in one line.
	Note string
}

// Drifts compares the top summary of each step against the next step's:
// stable policies (same conditions, same constants) read as "policy held",
// same conditions with new constants read as "rates changed", and different
// conditions read as "policy restructured".
func (tl *Timeline) Drifts() []Drift {
	var out []Drift
	for i := 0; i+1 < len(tl.Steps); i++ {
		a, b := tl.Steps[i], tl.Steps[i+1]
		d := Drift{StepA: i, StepB: i + 1}
		switch {
		case a.NoChange && b.NoChange:
			d.SamePartitioning = true
			d.Note = "no change in either step"
		case a.NoChange != b.NoChange:
			d.Note = "change activity toggled"
		default:
			sa, sb := a.Top(), b.Top()
			d.SamePartitioning = samePartitioning(sa, sb)
			switch {
			case sa.Fingerprint() == sb.Fingerprint():
				d.Note = "policy held exactly"
			case d.SamePartitioning:
				d.Note = "same partitions, constants changed"
			default:
				d.Note = "policy restructured"
			}
		}
		out = append(out, d)
	}
	return out
}

// samePartitioning compares condition fingerprints pairwise (order-free).
func samePartitioning(a, b *model.Summary) bool {
	if a.Size() != b.Size() {
		return false
	}
	seen := map[string]int{}
	for _, ct := range a.CTs {
		seen[ct.Cond.Fingerprint()]++
	}
	for _, ct := range b.CTs {
		seen[ct.Cond.Fingerprint()]--
	}
	for _, v := range seen {
		if v != 0 {
			return false
		}
	}
	return true
}

// Render prints the timeline: one block per step with its top summary.
func (tl *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "evolution of %s across %d steps\n", tl.Target, len(tl.Steps))
	for _, s := range tl.Steps {
		fmt.Fprintf(&b, "\nstep %d → %d:\n", s.From, s.To)
		if s.NoChange {
			b.WriteString("  (no change)\n")
			continue
		}
		top := s.Ranked[0]
		fmt.Fprintf(&b, "  score %.1f%%\n", top.Breakdown.Score*100)
		for _, ct := range top.Summary.CTs {
			fmt.Fprintf(&b, "  %s\n", ct)
		}
	}
	drifts := tl.Drifts()
	if len(drifts) > 0 {
		b.WriteString("\ndrift:\n")
		for _, d := range drifts {
			fmt.Fprintf(&b, "  step %d→%d vs %d→%d: %s\n", d.StepA, d.StepA+1, d.StepB, d.StepB+1, d.Note)
		}
	}
	return b.String()
}
