// Package history extends ChARLES from a snapshot *pair* to a snapshot
// *sequence*: given versions D₁ … Dₙ of an evolving table, it summarizes
// each consecutive step and reports how the recovered policy drifts over
// time — the "temporal changes" framing of the paper applied across a whole
// version history (cf. Bleifuß et al., "Exploring Change", PVLDB 2018,
// which the related-work section positions ChARLES against).
package history

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"charles/internal/core"
	"charles/internal/diff"
	"charles/internal/model"
	"charles/internal/table"
)

// Step is the summarization of one consecutive snapshot pair.
type Step struct {
	// From and To index the snapshot sequence (step i: snapshots[i] →
	// snapshots[i+1]).
	From, To int
	// Ranked holds the step's summaries (empty only on no-change steps,
	// which instead set NoChange).
	Ranked []core.Ranked
	// NoChange marks steps where the target attribute did not move.
	NoChange bool
}

// Top returns the step's best summary (nil for no-change steps).
func (s Step) Top() *model.Summary {
	if len(s.Ranked) == 0 {
		return nil
	}
	return s.Ranked[0].Summary
}

// Timeline is the summarized evolution of one target attribute across a
// snapshot sequence.
type Timeline struct {
	Target string
	Steps  []Step
}

// Summarize runs the engine over every consecutive pair of snapshots. All
// snapshots must share the schema and entity set of the first; opts.Target
// selects the attribute. Steps where the target did not change are marked
// rather than summarized.
func Summarize(snapshots []*table.Table, opts core.Options) (*Timeline, error) {
	if len(snapshots) < 2 {
		return nil, fmt.Errorf("history: need at least 2 snapshots, got %d", len(snapshots))
	}
	tl := &Timeline{Target: opts.Target}
	for i := 0; i+1 < len(snapshots); i++ {
		ranked, err := core.Summarize(snapshots[i], snapshots[i+1], opts)
		if err != nil {
			return nil, fmt.Errorf("history: step %d→%d: %w", i, i+1, err)
		}
		step := Step{From: i, To: i + 1, Ranked: ranked}
		// The engine tags its "nothing changed" result explicitly; trust
		// that signal instead of inferring it from summary shape (a real
		// change step can legitimately rank a single summary).
		if len(ranked) > 0 && ranked[0].NoChange {
			step.NoChange = true
		}
		tl.Steps = append(tl.Steps, step)
	}
	return tl, nil
}

// MultiTimeline is the summarized evolution of every changed numeric
// attribute across a snapshot sequence — the batch form of Timeline.
type MultiTimeline struct {
	// Attrs lists the summarized attributes in schema order (the union of
	// per-step changed numeric attributes).
	Attrs []string
	// Timelines maps each summarized attribute to its per-step timeline.
	// Steps where the attribute did not change are marked NoChange.
	Timelines map[string]*Timeline
	// Skipped maps changed non-numeric attributes to the reason they were
	// not summarized (merged across steps).
	Skipped map[string]string
	// Steps is the number of consecutive snapshot pairs (len(snapshots)−1).
	Steps int
}

// SummarizeAll summarizes an entire version chain across all changed numeric
// attributes: each consecutive snapshot pair is aligned exactly once, every
// changed attribute of the pair runs through one shared core.PairContext
// (one atom cache and one split index per pair, regardless of how many
// targets it has), and the steps are fanned out over a worker pool bounded
// by base.Workers (0 = GOMAXPROCS). When the step pool is parallel, each
// engine run is single-threaded so total concurrency stays at the bound
// rather than squaring it; a single-step chain gets the full budget inside
// the one engine run.
//
// The result is bit-identical to the sequential per-pair, per-target loop —
// steps are independent and merged in step order, and the engine itself is
// deterministic and scheduling-independent.
func SummarizeAll(snapshots []*table.Table, base core.Options) (*MultiTimeline, error) {
	return SummarizeAllContext(context.Background(), snapshots, base) //lint:allow ctxflow compatibility shim for pre-context callers; new code calls SummarizeAllContext
}

// SummarizeAllContext is SummarizeAll bounded by ctx: a cancelled or expired
// context stops the step pool from dispatching further steps and returns the
// context's error. Steps already running finish their current engine pass
// (the engine itself is not preemptible) before the pool drains.
func SummarizeAllContext(ctx context.Context, snapshots []*table.Table, base core.Options) (*MultiTimeline, error) {
	if len(snapshots) < 2 {
		return nil, fmt.Errorf("history: need at least 2 snapshots, got %d", len(snapshots))
	}
	steps := len(snapshots) - 1
	results := make([]*core.MultiResult, steps)
	if err := forEachStep(ctx, steps, base.Workers, func(i int, engineBase core.Options) error {
		var err error
		results[i], err = summarizeStep(snapshots[i], snapshots[i+1], engineBase)
		return err
	}, base); err != nil {
		return nil, err
	}
	return mergeSteps(snapshots[0], results), nil
}

// CheckoutSource abstracts a version store that can materialize stored
// snapshots — the cache-aware checkout path behind store-backed timeline
// walks. store.Store satisfies it: its Checkout serves warm walks from a
// size-bounded table LRU, so repeating a timeline does no CSV parsing.
type CheckoutSource interface {
	Checkout(id string) (*table.Table, error)
}

// DeltaSource is a CheckoutSource that can additionally serve a version's
// decoded delta ops (store.Store satisfies it). Chain materialization uses
// the ops to derive each snapshot incrementally from its predecessor instead
// of reconstructing and parsing every version from storage.
type DeltaSource interface {
	CheckoutSource
	// DeltaOps returns id's decoded row-level ops against its base version,
	// with Materialized set for versions stored whole. The result is shared:
	// callers must not mutate it.
	DeltaOps(id string) (*diff.ChangeSet, error)
}

// CachedCheckoutSource is a CheckoutSource that can report whether a
// snapshot is already decoded and resident (store.Store satisfies it), so a
// materializer can prefer the cheap warm path over re-applying deltas.
type CachedCheckoutSource interface {
	CheckoutCached(id string) (*table.Table, bool)
}

// SnapshotAdmitter is a source that can verify an externally materialized
// snapshot against its content id and adopt it into its own caches
// (store.Store satisfies it). Chain materialization runs every
// delta-applied table through it, so a decodable-but-tampered delta pack
// cannot slip wrong data into a timeline — a failed check falls back to
// Checkout, which verifies the raw bytes and surfaces real corruption as an
// error — and a verified walk warms the same table cache a parsing walk
// would, keeping repeat walks on the cheap CheckoutCached clone path.
type SnapshotAdmitter interface {
	AdmitSnapshot(id string, t *table.Table) error
}

// MaterializeChain materializes the version ids in order, delta-natively
// where possible: the first id (and every id whose table is already cached)
// is checked out, and each subsequent id is derived by applying its delta
// ops to the previous snapshot — so a cold walk of an n-version chain does
// one CSV parse at the root instead of n. Anchors, versions whose ops do not
// apply cleanly (diff.ApplyChangeSet's canonical-encoding requirements), and
// plain CheckoutSources fall back to a regular checkout per id. The returned
// tables are identical to per-id checkouts, row order included.
func MaterializeChain(src CheckoutSource, ids []string) ([]*table.Table, error) {
	return MaterializeChainContext(context.Background(), src, ids) //lint:allow ctxflow compatibility shim for pre-context callers; new code calls MaterializeChainContext
}

// MaterializeChainContext is MaterializeChain bounded by ctx: the walk
// checks for cancellation before each version, so a caller abandoning a
// long chain stops paying for checkouts it will never read.
func MaterializeChainContext(ctx context.Context, src CheckoutSource, ids []string) ([]*table.Table, error) {
	ds, _ := src.(DeltaSource)
	cc, _ := src.(CachedCheckoutSource)
	sa, _ := src.(SnapshotAdmitter)
	out := make([]*table.Table, len(ids))
	for i, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cc != nil {
			if t, ok := cc.CheckoutCached(id); ok {
				out[i] = t
				continue
			}
		}
		if i > 0 && ds != nil {
			if cs, err := ds.DeltaOps(id); err == nil && !cs.Materialized && cs.Base == ids[i-1] {
				if t, err := diff.ApplyChangeSet(out[i-1], cs); err == nil {
					// Applied tables carry the same tamper-evidence as
					// checkouts: verify against the content id before
					// trusting them (a failure falls through to Checkout,
					// which verifies the raw bytes itself), and admit the
					// verified table into the source's cache so the next
					// walk takes the warm clone path.
					if sa == nil || sa.AdmitSnapshot(id, t) == nil {
						out[i] = t
						continue
					}
				}
			}
		}
		t, err := src.Checkout(id)
		if err != nil {
			return nil, fmt.Errorf("history: version %s: %w", id, err)
		}
		out[i] = t
	}
	return out, nil
}

// SummarizeChain materializes the given version ids in order through src —
// delta-natively when src is a DeltaSource: one checkout at the chain root,
// then step-by-step application of each version's ChangeSet — and summarizes
// every changed numeric attribute of every consecutive pair via
// SummarizeAll. It is the store-backed batch timeline: ids usually come from
// Store.Chain(head).
func SummarizeChain(src CheckoutSource, ids []string, base core.Options) (*MultiTimeline, error) {
	return SummarizeChainContext(context.Background(), src, ids, base) //lint:allow ctxflow compatibility shim for pre-context callers; new code calls SummarizeChainContext
}

// SummarizeChainContext is SummarizeChain bounded by ctx: both the chain
// materialization and the step pool observe cancellation.
func SummarizeChainContext(ctx context.Context, src CheckoutSource, ids []string, base core.Options) (*MultiTimeline, error) {
	if len(ids) < 2 {
		return nil, fmt.Errorf("history: need at least 2 versions, got %d", len(ids))
	}
	snapshots, err := MaterializeChainContext(ctx, src, ids)
	if err != nil {
		return nil, err
	}
	return SummarizeAllContext(ctx, snapshots, base)
}

// forEachStep runs fn for every step index on a pool bounded by workers
// (≤0 means GOMAXPROCS, clamped to the step count) and returns the earliest
// failed step's error — deterministic regardless of scheduling. The engine
// options handed to fn have their internal candidate-worker count collapsed
// to 1 whenever the step pool itself is parallel, so total concurrency
// stays at the configured bound instead of squaring it (results are
// identical either way; the engine is worker-count-independent).
//
// Cancellation is observed at the pool gate: a step that has not yet
// acquired a worker slot when ctx ends records the context's error instead
// of running. A context error outranks step errors in the return value —
// once the caller has given up, per-step failures are noise.
func forEachStep(ctx context.Context, steps, workers int, fn func(i int, engineBase core.Options) error, base core.Options) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > steps {
		workers = steps
	}
	engineBase := base
	if workers > 1 {
		engineBase.Workers = 1
	}
	errs := make([]error, steps)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < steps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(i, engineBase)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("history: step %d→%d: %w", i, i+1, err)
		}
	}
	return nil
}

// SummarizeTarget summarizes one attribute across the chain on the same
// bounded step pool as SummarizeAll, skipping the engine entirely on steps
// where the target did not move. Single-target steps need no pair context —
// with one run per pair there is nothing to amortize — so each step runs
// the classic aligned engine. Results are bit-identical to Summarize
// (the sequential single-target path) except that unchanged steps carry no
// Ranked entry at all rather than the engine's explicit no-change result.
func SummarizeTarget(snapshots []*table.Table, target string, base core.Options) (*Timeline, error) {
	return SummarizeTargetContext(context.Background(), snapshots, target, base) //lint:allow ctxflow compatibility shim for pre-context callers; new code calls SummarizeTargetContext
}

// SummarizeTargetContext is SummarizeTarget bounded by ctx (see
// SummarizeAllContext for the cancellation semantics).
func SummarizeTargetContext(ctx context.Context, snapshots []*table.Table, target string, base core.Options) (*Timeline, error) {
	if len(snapshots) < 2 {
		return nil, fmt.Errorf("history: need at least 2 snapshots, got %d", len(snapshots))
	}
	// Validate the target up front: the engine only runs on steps where it
	// moved, and a categorical or misspelled target that never moves must
	// not read as a plausible all-no-change timeline (the serve layer
	// rejects the same request with a 400).
	col, err := snapshots[0].Column(target)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if !col.Type.Numeric() {
		return nil, fmt.Errorf("history: target attribute %q is %s, need numeric", target, col.Type)
	}
	steps := len(snapshots) - 1
	tl := &Timeline{Target: target, Steps: make([]Step, steps)}
	tol := base.ChangeTol
	if tol == 0 {
		tol = 1e-9
	}
	if err := forEachStep(ctx, steps, base.Workers, func(i int, engineBase core.Options) error {
		var err error
		tl.Steps[i], err = summarizeTargetStep(snapshots[i], snapshots[i+1], i, target, tol, engineBase)
		return err
	}, base); err != nil {
		return nil, err
	}
	return tl, nil
}

// summarizeTargetStep runs one pair for one target, short-circuiting to a
// NoChange step when the target did not move.
func summarizeTargetStep(src, tgt *table.Table, i int, target string, tol float64, base core.Options) (Step, error) {
	step := Step{From: i, To: i + 1}
	a, err := diff.Align(src, tgt)
	if err != nil {
		return step, err
	}
	mask, err := a.ChangedMask(target, tol)
	if err != nil {
		return step, err
	}
	moved := false
	for _, ch := range mask {
		if ch {
			moved = true
			break
		}
	}
	if !moved {
		step.NoChange = true
		return step, nil
	}
	opts := base
	opts.Target = target
	ranked, err := core.SummarizeAligned(a, opts)
	if err != nil {
		return step, err
	}
	step.Ranked = ranked
	if len(ranked) > 0 && ranked[0].NoChange {
		step.NoChange = true
	}
	return step, nil
}

// summarizeStep aligns one consecutive pair and summarizes all its changed
// numeric attributes through a shared pair context. An explicit condition
// pool narrows the context's split index to just those attributes.
func summarizeStep(src, tgt *table.Table, base core.Options) (*core.MultiResult, error) {
	a, err := diff.Align(src, tgt)
	if err != nil {
		return nil, err
	}
	ctx, err := core.NewPairContext(a, base.CondAttrs...)
	if err != nil {
		return nil, err
	}
	return core.SummarizeAllWith(ctx, base)
}

// mergeSteps assembles per-attribute timelines from the per-step results.
// Attributes follow schema order; an attribute absent from a step's result
// (it did not change there) becomes a NoChange step.
func mergeSteps(first *table.Table, results []*core.MultiResult) *MultiTimeline {
	mt := &MultiTimeline{
		Timelines: map[string]*Timeline{},
		Skipped:   map[string]string{},
		Steps:     len(results),
	}
	for _, f := range first.Schema() {
		attr := f.Name
		active := false
		for _, res := range results {
			if _, ok := res.ByAttr[attr]; ok {
				active = true
				break
			}
		}
		if !active {
			continue
		}
		tl := &Timeline{Target: attr}
		for i, res := range results {
			step := Step{From: i, To: i + 1}
			if ranked, ok := res.ByAttr[attr]; ok {
				step.Ranked = ranked
				if len(ranked) > 0 && ranked[0].NoChange {
					step.NoChange = true
				}
			} else {
				step.NoChange = true
			}
			tl.Steps = append(tl.Steps, step)
		}
		mt.Attrs = append(mt.Attrs, attr)
		mt.Timelines[attr] = tl
	}
	for _, res := range results {
		for attr, why := range res.Skipped {
			mt.Skipped[attr] = why
		}
	}
	return mt
}

// Render prints every attribute's timeline, in schema order, followed by the
// skipped attributes.
func (mt *MultiTimeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "evolution of %d attribute(s) across %d steps\n", len(mt.Attrs), mt.Steps)
	for _, attr := range mt.Attrs {
		fmt.Fprintf(&b, "\n=== %s ===\n", attr)
		b.WriteString(mt.Timelines[attr].Render())
	}
	if len(mt.Skipped) > 0 {
		b.WriteString("\nskipped:\n")
		for _, attr := range sortedKeys(mt.Skipped) {
			fmt.Fprintf(&b, "  %s: %s\n", attr, mt.Skipped[attr])
		}
	}
	return b.String()
}

// sortedKeys returns the map's keys in lexicographic order (deterministic
// rendering of the skipped set).
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Drift describes how a policy changed between two consecutive steps.
type Drift struct {
	StepA, StepB int
	// SamePartitioning reports whether both steps' top summaries induce the
	// same partition structure (condition fingerprints match pairwise).
	SamePartitioning bool
	// Note summarizes the relationship in one line.
	Note string
}

// Drifts compares the top summary of each step against the next step's:
// stable policies (same conditions, same constants) read as "policy held",
// same conditions with new constants read as "rates changed", and different
// conditions read as "policy restructured".
func (tl *Timeline) Drifts() []Drift {
	var out []Drift
	for i := 0; i+1 < len(tl.Steps); i++ {
		a, b := tl.Steps[i], tl.Steps[i+1]
		d := Drift{StepA: i, StepB: i + 1}
		switch {
		case a.NoChange && b.NoChange:
			d.SamePartitioning = true
			d.Note = "no change in either step"
		case a.NoChange != b.NoChange:
			d.Note = "change activity toggled"
		default:
			sa, sb := a.Top(), b.Top()
			// A change step can come back with nothing ranked (an engine run
			// whose every candidate was filtered); without a summary there is
			// no policy to compare, so say so instead of dereferencing nil.
			if sa == nil || sb == nil {
				d.Note = "no summary recovered"
				break
			}
			d.SamePartitioning = samePartitioning(sa, sb)
			switch {
			case sa.Fingerprint() == sb.Fingerprint():
				d.Note = "policy held exactly"
			case d.SamePartitioning:
				d.Note = "same partitions, constants changed"
			default:
				d.Note = "policy restructured"
			}
		}
		out = append(out, d)
	}
	return out
}

// samePartitioning compares condition fingerprints pairwise (order-free).
func samePartitioning(a, b *model.Summary) bool {
	if a.Size() != b.Size() {
		return false
	}
	seen := map[string]int{}
	for _, ct := range a.CTs {
		seen[ct.Cond.Fingerprint()]++
	}
	for _, ct := range b.CTs {
		seen[ct.Cond.Fingerprint()]--
	}
	for _, v := range seen {
		if v != 0 {
			return false
		}
	}
	return true
}

// Render prints the timeline: one block per step with its top summary.
func (tl *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "evolution of %s across %d steps\n", tl.Target, len(tl.Steps))
	for _, s := range tl.Steps {
		fmt.Fprintf(&b, "\nstep %d → %d:\n", s.From, s.To)
		if s.NoChange {
			b.WriteString("  (no change)\n")
			continue
		}
		if len(s.Ranked) == 0 {
			b.WriteString("  (no summary recovered)\n")
			continue
		}
		top := s.Ranked[0]
		fmt.Fprintf(&b, "  score %.1f%%\n", top.Breakdown.Score*100)
		for _, ct := range top.Summary.CTs {
			fmt.Fprintf(&b, "  %s\n", ct)
		}
	}
	drifts := tl.Drifts()
	if len(drifts) > 0 {
		b.WriteString("\ndrift:\n")
		for _, d := range drifts {
			fmt.Fprintf(&b, "  step %d→%d vs %d→%d: %s\n", d.StepA, d.StepA+1, d.StepB, d.StepB+1, d.Note)
		}
	}
	return b.String()
}
