// Incremental timeline maintenance: instead of re-walking a version chain
// on every question, a TimelineMaintainer keeps the per-step engine results
// alive and extends them by exactly one step per commit — the "query
// answering under updates" idea (Berkholz/Keppeler/Schweikardt,
// arXiv:1702.08764) applied to change summarization. Extension work is
// O(one step) regardless of chain length, and the maintained MultiTimeline
// is bit-identical to a from-scratch SummarizeAll rebuild of any multi-step
// chain: both paths run the same deterministic engine on the same pairs in
// the same canonical Workers=1 form and merge with the same mergeSteps.
// (A 1-step SummarizeAll with Workers unset runs the engine parallel, whose
// tie order inside a summary can differ; pass Workers=1 when comparing.)

package history

import (
	"context"
	"fmt"

	"charles/internal/core"
	"charles/internal/diff"
	"charles/internal/table"
)

// TimelineMaintainer incrementally maintains a MultiTimeline over a growing
// version chain. It is NOT safe for concurrent use; callers serialize
// access (the serve layer holds one per shard behind a mutex).
type TimelineMaintainer struct {
	base    core.Options
	ids     []string // version ids, root → head (len == len(results)+1)
	first   *table.Table
	last    *table.Table
	results []*core.MultiResult // one per consecutive pair
}

// NewTimelineMaintainer summarizes the seed chain and returns a maintainer
// positioned at its head. snapshots and ids must be parallel (root → head)
// with at least 2 entries. The snapshots are retained only at the
// endpoints: first (for schema-ordered merging) and last (the pair source
// for the next Extend).
func NewTimelineMaintainer(snapshots []*table.Table, ids []string, base core.Options) (*TimelineMaintainer, error) {
	return NewTimelineMaintainerContext(context.Background(), snapshots, ids, base) //lint:allow ctxflow compatibility shim for pre-context callers; new code calls NewTimelineMaintainerContext
}

// NewTimelineMaintainerContext is NewTimelineMaintainer bounded by ctx (the
// seed walk runs on the same bounded step pool as SummarizeAllContext).
func NewTimelineMaintainerContext(ctx context.Context, snapshots []*table.Table, ids []string, base core.Options) (*TimelineMaintainer, error) {
	if len(snapshots) != len(ids) {
		return nil, fmt.Errorf("history: %d snapshots but %d ids", len(snapshots), len(ids))
	}
	if len(snapshots) < 2 {
		return nil, fmt.Errorf("history: need at least 2 snapshots, got %d", len(snapshots))
	}
	steps := len(snapshots) - 1
	results := make([]*core.MultiResult, steps)
	if err := forEachStep(ctx, steps, base.Workers, func(i int, engineBase core.Options) error {
		// Always run the engine in its Workers=1 form — the canonical form
		// forEachStep collapses to on every multi-step chain. The engine's
		// rankings are semantically worker-count-independent but not
		// bit-stable across worker counts (tie order inside a summary can
		// differ), and the maintainer's contract is bit-identity between an
		// extended timeline and a ≥2-step rebuild, so every step must be
		// produced in the same form regardless of when it was computed.
		engineBase.Workers = 1
		var err error
		results[i], err = summarizeStep(snapshots[i], snapshots[i+1], engineBase)
		return err
	}, base); err != nil {
		return nil, err
	}
	return &TimelineMaintainer{
		base:    base,
		ids:     append([]string(nil), ids...),
		first:   snapshots[0],
		last:    snapshots[len(snapshots)-1],
		results: results,
	}, nil
}

// Head returns the version id the maintainer is currently positioned at.
func (m *TimelineMaintainer) Head() string { return m.ids[len(m.ids)-1] }

// Steps returns the number of maintained consecutive pairs.
func (m *TimelineMaintainer) Steps() int { return len(m.results) }

// Versions returns a copy of the maintained chain's ids, root → head.
func (m *TimelineMaintainer) Versions() []string {
	return append([]string(nil), m.ids...)
}

// Extend advances the maintainer by one commit: next is the new head
// snapshot (id its version id), and exactly one engine step — last pair
// only — runs. On error (most commonly a schema change, which diff.Align
// rejects) the maintainer is left unchanged so the caller can fall back to
// a full rebuild over the new chain.
func (m *TimelineMaintainer) Extend(id string, next *table.Table) error {
	// Same canonical Workers=1 engine form as the seed build (see
	// NewTimelineMaintainerContext): the one new pair must be bit-identical
	// to what a from-scratch multi-step rebuild would compute for it.
	eb := m.base
	eb.Workers = 1
	res, err := summarizeStep(m.last, next, eb)
	if err != nil {
		return fmt.Errorf("history: extend %s→%s: %w", m.Head(), id, err)
	}
	m.ids = append(m.ids, id)
	m.results = append(m.results, res)
	m.last = next
	return nil
}

// ExtendFromSource is Extend with the new head materialized through src:
// delta-natively against the maintainer's retained head snapshot when src
// serves delta ops, falling back to a checkout. The maintainer must
// currently be positioned at the new version's parent.
func (m *TimelineMaintainer) ExtendFromSource(src CheckoutSource, id string) error {
	next, err := MaterializeStep(src, m.Head(), m.last, id)
	if err != nil {
		return err
	}
	return m.Extend(id, next)
}

// Timeline assembles the maintained MultiTimeline. The assembly is the same
// mergeSteps that SummarizeAll uses, over the same per-step results, so the
// output is bit-identical to a from-scratch rebuild of the same chain.
func (m *TimelineMaintainer) Timeline() *MultiTimeline {
	return mergeSteps(m.first, m.results)
}

// TimelineAt assembles the MultiTimeline for a prefix of the maintained
// chain ending at id, along with that prefix's version ids. It lets a
// reader race a concurrent commit and still get a consistent answer for the
// head it resolved. ok is false when id is not in the chain or is the root
// (a single version has no timeline).
func (m *TimelineMaintainer) TimelineAt(id string) (*MultiTimeline, []string, bool) {
	for i, cur := range m.ids {
		if cur == id {
			if i == 0 {
				return nil, nil, false
			}
			return mergeSteps(m.first, m.results[:i]), append([]string(nil), m.ids[:i+1]...), true
		}
	}
	return nil, nil, false
}

// Fork returns an independent maintainer sharing the immutable per-step
// results but with private id/result slices, so benchmarks (and speculative
// extensions) can Extend without mutating the original.
func (m *TimelineMaintainer) Fork() *TimelineMaintainer {
	return &TimelineMaintainer{
		base:    m.base,
		ids:     append([]string(nil), m.ids...),
		first:   m.first,
		last:    m.last,
		results: append([]*core.MultiResult(nil), m.results...),
	}
}

// MaterializeStep materializes one version delta-natively when possible:
// the cached-table path first, then applying id's ChangeSet to prev (the
// already materialized snapshot of prevID, id's parent), then a plain
// checkout. It is the single-step form of MaterializeChainContext's loop
// body, with the same verify-before-trust discipline on applied deltas.
func MaterializeStep(src CheckoutSource, prevID string, prev *table.Table, id string) (*table.Table, error) {
	if cc, ok := src.(CachedCheckoutSource); ok {
		if t, ok := cc.CheckoutCached(id); ok {
			return t, nil
		}
	}
	if ds, ok := src.(DeltaSource); ok && prev != nil {
		if cs, err := ds.DeltaOps(id); err == nil && !cs.Materialized && cs.Base == prevID {
			if t, err := diff.ApplyChangeSet(prev, cs); err == nil {
				sa, _ := src.(SnapshotAdmitter)
				if sa == nil || sa.AdmitSnapshot(id, t) == nil {
					return t, nil
				}
			}
		}
	}
	t, err := src.Checkout(id)
	if err != nil {
		return nil, fmt.Errorf("history: version %s: %w", id, err)
	}
	return t, nil
}
