package history

import (
	"strings"
	"testing"

	"charles/internal/core"
	"charles/internal/gen"
	"charles/internal/table"
)

// threeSnapshots builds D1→D2→D3: step 1 applies the toy policy (R1–R3),
// step 2 leaves everything unchanged.
func threeSnapshots(t *testing.T) []*table.Table {
	t.Helper()
	d1, d2 := gen.Toy()
	d3 := d2.Clone()
	return []*table.Table{d1, d2, d3}
}

func TestTimelineSummarizesEachStep(t *testing.T) {
	snaps := threeSnapshots(t)
	tl, err := Summarize(snaps, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Steps) != 2 {
		t.Fatalf("steps = %d", len(tl.Steps))
	}
	if tl.Steps[0].NoChange {
		t.Error("step 0 should carry the policy change")
	}
	if top := tl.Steps[0].Top(); top == nil || top.Size() != 3 {
		t.Errorf("step 0 top summary = %v", tl.Steps[0].Top())
	}
	if !tl.Steps[1].NoChange {
		t.Error("step 1 should be a no-change step")
	}
	if tl.Steps[1].Top() != nil && tl.Steps[1].Top().Size() != 0 {
		t.Error("no-change step should have an empty top summary")
	}
}

func TestTimelineValidation(t *testing.T) {
	d1, _ := gen.Toy()
	if _, err := Summarize([]*table.Table{d1}, core.DefaultOptions("bonus")); err == nil {
		t.Error("single snapshot accepted")
	}
	other := table.MustNew(table.Schema{{Name: "x", Type: table.Int}})
	if _, err := Summarize([]*table.Table{d1, other}, core.DefaultOptions("bonus")); err == nil {
		t.Error("schema drift accepted")
	}
}

func TestDriftDetection(t *testing.T) {
	// D1→D2 applies the policy, D2→D3 applies nothing: activity toggles.
	snaps := threeSnapshots(t)
	tl, err := Summarize(snaps, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	drifts := tl.Drifts()
	if len(drifts) != 1 {
		t.Fatalf("drifts = %d", len(drifts))
	}
	if drifts[0].Note != "change activity toggled" {
		t.Errorf("drift note = %q", drifts[0].Note)
	}
}

func TestDriftPolicyHeld(t *testing.T) {
	// Apply the same planted policy twice: D1→D2 and D2→D3 should match.
	d, err := gen.Planted(gen.PlantedConfig{N: 500, Seed: 8, Rules: 2, UnchangedFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// D3: re-apply the truth policy to D2.
	d3 := d.Tgt.Clone()
	preds, _, err := d.Truth.Apply(d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	col := d3.MustColumn("pay")
	for r := 0; r < d3.NumRows(); r++ {
		if err := col.Set(r, table.F(preds[r])); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.DefaultOptions("pay")
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	tl, err := Summarize([]*table.Table{d.Src, d.Tgt, d3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	drifts := tl.Drifts()
	if len(drifts) != 1 {
		t.Fatalf("drifts = %d", len(drifts))
	}
	if !drifts[0].SamePartitioning {
		t.Errorf("partitioning should be stable across identical policy steps: %+v", drifts[0])
	}
}

func TestRender(t *testing.T) {
	snaps := threeSnapshots(t)
	tl, err := Summarize(snaps, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	out := tl.Render()
	for _, want := range []string{"evolution of bonus", "step 0 → 1", "step 1 → 2", "(no change)", "drift:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestOneSummaryChangeStepNotMarkedNoChange is a regression test for the old
// no-change heuristic (`len(ranked) == 1 && Size() == 0`): a genuine change
// step that happens to rank exactly one summary must not read as no-change.
// The engine's explicit Ranked.NoChange signal is authoritative.
func TestOneSummaryChangeStepNotMarkedNoChange(t *testing.T) {
	d1, d2 := gen.Toy()
	opts := core.DefaultOptions("bonus")
	opts.TopK = 1 // force a one-summary result on a real change step
	tl, err := Summarize([]*table.Table{d1, d2, d2.Clone()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	step := tl.Steps[0]
	if len(step.Ranked) != 1 {
		t.Fatalf("want exactly one ranked summary, got %d", len(step.Ranked))
	}
	if step.Ranked[0].Summary.Size() == 0 {
		t.Fatal("change step produced an empty summary")
	}
	if step.NoChange {
		t.Error("one-summary change step marked NoChange")
	}
	if step.Ranked[0].NoChange {
		t.Error("engine tagged a change result as NoChange")
	}
	// And the genuine no-change step carries the explicit engine signal.
	quiet := tl.Steps[1]
	if !quiet.NoChange || len(quiet.Ranked) != 1 || !quiet.Ranked[0].NoChange {
		t.Errorf("no-change step signal: step=%+v", quiet)
	}
}
