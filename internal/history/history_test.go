package history

import (
	"reflect"
	"strings"
	"testing"

	"charles/internal/core"
	"charles/internal/diff"
	"charles/internal/gen"
	"charles/internal/store"
	"charles/internal/table"
)

// threeSnapshots builds D1→D2→D3: step 1 applies the toy policy (R1–R3),
// step 2 leaves everything unchanged.
func threeSnapshots(t *testing.T) []*table.Table {
	t.Helper()
	d1, d2 := gen.Toy()
	d3 := d2.Clone()
	return []*table.Table{d1, d2, d3}
}

func TestTimelineSummarizesEachStep(t *testing.T) {
	snaps := threeSnapshots(t)
	tl, err := Summarize(snaps, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Steps) != 2 {
		t.Fatalf("steps = %d", len(tl.Steps))
	}
	if tl.Steps[0].NoChange {
		t.Error("step 0 should carry the policy change")
	}
	if top := tl.Steps[0].Top(); top == nil || top.Size() != 3 {
		t.Errorf("step 0 top summary = %v", tl.Steps[0].Top())
	}
	if !tl.Steps[1].NoChange {
		t.Error("step 1 should be a no-change step")
	}
	if tl.Steps[1].Top() != nil && tl.Steps[1].Top().Size() != 0 {
		t.Error("no-change step should have an empty top summary")
	}
}

func TestTimelineValidation(t *testing.T) {
	d1, _ := gen.Toy()
	if _, err := Summarize([]*table.Table{d1}, core.DefaultOptions("bonus")); err == nil {
		t.Error("single snapshot accepted")
	}
	other := table.MustNew(table.Schema{{Name: "x", Type: table.Int}})
	if _, err := Summarize([]*table.Table{d1, other}, core.DefaultOptions("bonus")); err == nil {
		t.Error("schema drift accepted")
	}
}

func TestDriftDetection(t *testing.T) {
	// D1→D2 applies the policy, D2→D3 applies nothing: activity toggles.
	snaps := threeSnapshots(t)
	tl, err := Summarize(snaps, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	drifts := tl.Drifts()
	if len(drifts) != 1 {
		t.Fatalf("drifts = %d", len(drifts))
	}
	if drifts[0].Note != "change activity toggled" {
		t.Errorf("drift note = %q", drifts[0].Note)
	}
}

func TestDriftPolicyHeld(t *testing.T) {
	// Apply the same planted policy twice: D1→D2 and D2→D3 should match.
	d, err := gen.Planted(gen.PlantedConfig{N: 500, Seed: 8, Rules: 2, UnchangedFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// D3: re-apply the truth policy to D2.
	d3 := d.Tgt.Clone()
	preds, _, err := d.Truth.Apply(d.Tgt)
	if err != nil {
		t.Fatal(err)
	}
	col := d3.MustColumn("pay")
	for r := 0; r < d3.NumRows(); r++ {
		if err := col.Set(r, table.F(preds[r])); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.DefaultOptions("pay")
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	tl, err := Summarize([]*table.Table{d.Src, d.Tgt, d3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	drifts := tl.Drifts()
	if len(drifts) != 1 {
		t.Fatalf("drifts = %d", len(drifts))
	}
	if !drifts[0].SamePartitioning {
		t.Errorf("partitioning should be stable across identical policy steps: %+v", drifts[0])
	}
}

func TestRender(t *testing.T) {
	snaps := threeSnapshots(t)
	tl, err := Summarize(snaps, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	out := tl.Render()
	for _, want := range []string{"evolution of bonus", "step 0 → 1", "step 1 → 2", "(no change)", "drift:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestOneSummaryChangeStepNotMarkedNoChange is a regression test for the old
// no-change heuristic (`len(ranked) == 1 && Size() == 0`): a genuine change
// step that happens to rank exactly one summary must not read as no-change.
// The engine's explicit Ranked.NoChange signal is authoritative.
func TestOneSummaryChangeStepNotMarkedNoChange(t *testing.T) {
	d1, d2 := gen.Toy()
	opts := core.DefaultOptions("bonus")
	opts.TopK = 1 // force a one-summary result on a real change step
	tl, err := Summarize([]*table.Table{d1, d2, d2.Clone()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	step := tl.Steps[0]
	if len(step.Ranked) != 1 {
		t.Fatalf("want exactly one ranked summary, got %d", len(step.Ranked))
	}
	if step.Ranked[0].Summary.Size() == 0 {
		t.Fatal("change step produced an empty summary")
	}
	if step.NoChange {
		t.Error("one-summary change step marked NoChange")
	}
	if step.Ranked[0].NoChange {
		t.Error("engine tagged a change result as NoChange")
	}
	// And the genuine no-change step carries the explicit engine signal.
	quiet := tl.Steps[1]
	if !quiet.NoChange || len(quiet.Ranked) != 1 || !quiet.Ranked[0].NoChange {
		t.Errorf("no-change step signal: step=%+v", quiet)
	}
}

// TestEmptyRankedStepGuards pins the crash fix: a change step whose engine
// output is empty (no ranked summaries, not NoChange) must render and drift
// without panicking, and the drift carries an explicit note.
func TestEmptyRankedStepGuards(t *testing.T) {
	tl := &Timeline{
		Target: "bonus",
		Steps: []Step{
			{From: 0, To: 1}, // empty Ranked, not NoChange
			{From: 1, To: 2}, // same
		},
	}
	out := tl.Render()
	if !strings.Contains(out, "(no summary recovered)") {
		t.Errorf("render missing empty-step note:\n%s", out)
	}
	drifts := tl.Drifts()
	if len(drifts) != 1 {
		t.Fatalf("drifts = %d", len(drifts))
	}
	if drifts[0].Note != "no summary recovered" {
		t.Errorf("drift note = %q", drifts[0].Note)
	}
	if drifts[0].SamePartitioning {
		t.Error("empty steps cannot claim same partitioning")
	}
	// Mixed: one real step, one empty — also must not panic.
	snaps := threeSnapshots(t)
	real, err := Summarize(snaps, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	mixed := &Timeline{Target: "bonus", Steps: []Step{real.Steps[0], {From: 1, To: 2}}}
	if out := mixed.Render(); !strings.Contains(out, "(no summary recovered)") {
		t.Errorf("mixed render missing empty-step note:\n%s", out)
	}
	if d := mixed.Drifts(); d[0].Note != "no summary recovered" {
		t.Errorf("mixed drift note = %q", d[0].Note)
	}
}

// chainOpts is the shared base configuration of the chain tests: explicit
// condition pool (dept, grade are the planted policy dimensions) keeps the
// runs fast; everything else stays at the engine defaults.
func chainOpts() core.Options {
	base := core.DefaultOptions("")
	base.CondAttrs = []string{"dept", "grade"}
	return base
}

// equalRanked reports bit-identical rankings: same order, same summaries,
// same breakdowns to the last float.
func equalRanked(a, b []core.Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].NoChange != b[i].NoChange {
			return false
		}
		if a[i].Summary.Fingerprint() != b[i].Summary.Fingerprint() {
			return false
		}
		if *a[i].Breakdown != *b[i].Breakdown {
			return false
		}
	}
	return true
}

// TestSummarizeAllDifferential pins the parallel multi-target timeline to
// the sequential per-pair, per-target reference loop, bit-identically: same
// attributes, same steps, same rankings, same scores.
func TestSummarizeAllDifferential(t *testing.T) {
	snaps, err := gen.Chain(gen.ChainConfig{N: 80, Steps: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	base := chainOpts()
	base.Workers = 4
	mt, err := SummarizeAll(snaps, base)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reference: fresh alignment and fresh engine state per
	// (pair, target) — no context sharing, no step parallelism.
	type ref struct {
		ranked map[string][]core.Ranked
	}
	refs := make([]ref, len(snaps)-1)
	for i := 0; i+1 < len(snaps); i++ {
		a, err := diff.Align(snaps[i], snaps[i+1])
		if err != nil {
			t.Fatal(err)
		}
		changed, err := a.ChangedAttrs(base.ChangeTol)
		if err != nil {
			t.Fatal(err)
		}
		refs[i].ranked = map[string][]core.Ranked{}
		for _, attr := range changed {
			col, err := snaps[i].Column(attr)
			if err != nil {
				t.Fatal(err)
			}
			if !col.Type.Numeric() {
				continue
			}
			opts := base
			opts.Target = attr
			opts.Workers = 1
			ranked, err := core.Summarize(snaps[i], snaps[i+1], opts)
			if err != nil {
				t.Fatal(err)
			}
			refs[i].ranked[attr] = ranked
		}
	}

	wantAttrs := map[string]bool{}
	for _, r := range refs {
		for attr := range r.ranked {
			wantAttrs[attr] = true
		}
	}
	if len(mt.Attrs) != len(wantAttrs) {
		t.Fatalf("parallel attrs = %v, reference saw %v", mt.Attrs, wantAttrs)
	}
	for _, attr := range mt.Attrs {
		tl := mt.Timelines[attr]
		if len(tl.Steps) != len(refs) {
			t.Fatalf("%s: %d steps, want %d", attr, len(tl.Steps), len(refs))
		}
		for i, step := range tl.Steps {
			want, changed := refs[i].ranked[attr]
			if !changed {
				if !step.NoChange {
					t.Errorf("%s step %d: reference saw no change, parallel ran the engine", attr, i)
				}
				continue
			}
			if !equalRanked(step.Ranked, want) {
				t.Errorf("%s step %d: parallel ranking differs from sequential reference", attr, i)
			}
		}
	}
}

// TestSummarizeAllEightStepChain is the acceptance-criteria test: an 8-step
// chain with 4 evolving numeric attributes, run concurrently, must build
// each pair's atom cache and split index exactly once across all targets
// (asserted via the engine's process-wide build counters) and match the
// sequential path (Workers=1) bit-identically.
func TestSummarizeAllEightStepChain(t *testing.T) {
	snaps, err := gen.Chain(gen.ChainConfig{N: 100, Steps: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	steps := len(snaps) - 1

	base := chainOpts()
	base.Workers = 4
	c0, i0 := core.AccelBuilds()
	mt, err := SummarizeAll(snaps, base)
	if err != nil {
		t.Fatal(err)
	}
	c1, i1 := core.AccelBuilds()
	if got := c1 - c0; got != uint64(steps) {
		t.Errorf("atom caches built = %d, want exactly one per pair (%d)", got, steps)
	}
	if got := i1 - i0; got != uint64(steps) {
		t.Errorf("split indexes built = %d, want exactly one per pair (%d)", got, steps)
	}
	if len(mt.Attrs) != 4 {
		t.Fatalf("changed numeric attributes = %v, want the 4 planted targets", mt.Attrs)
	}
	engineRuns := 0
	for _, attr := range mt.Attrs {
		for _, step := range mt.Timelines[attr].Steps {
			if len(step.Ranked) > 0 {
				engineRuns++
			}
		}
	}
	if engineRuns <= steps {
		t.Fatalf("expected more engine runs (%d) than pairs (%d) for the amortization claim to be non-trivial", engineRuns, steps)
	}

	seq := chainOpts()
	seq.Workers = 1
	mtSeq, err := SummarizeAll(snaps, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(mtSeq.Attrs) != len(mt.Attrs) {
		t.Fatalf("sequential attrs %v vs parallel %v", mtSeq.Attrs, mt.Attrs)
	}
	for _, attr := range mt.Attrs {
		p, s := mt.Timelines[attr], mtSeq.Timelines[attr]
		for i := range p.Steps {
			if p.Steps[i].NoChange != s.Steps[i].NoChange || !equalRanked(p.Steps[i].Ranked, s.Steps[i].Ranked) {
				t.Errorf("%s step %d: parallel and sequential outputs differ", attr, i)
			}
		}
	}
	// overtime and longevity skip steps by construction: their timelines
	// must contain genuine NoChange steps.
	for _, attr := range []string{"overtime", "longevity"} {
		tl, ok := mt.Timelines[attr]
		if !ok {
			t.Fatalf("%s missing from timelines (%v)", attr, mt.Attrs)
		}
		quiet := 0
		for _, step := range tl.Steps {
			if step.NoChange {
				quiet++
			}
		}
		if quiet == 0 {
			t.Errorf("%s: expected no-change steps in its timeline", attr)
		}
	}
	// Render must cover every attribute without panicking.
	out := mt.Render()
	for _, attr := range mt.Attrs {
		if !strings.Contains(out, "=== "+attr+" ===") {
			t.Errorf("render missing block for %s", attr)
		}
	}
}

// TestSummarizeAllValidation mirrors the single-target validation contract.
func TestSummarizeAllValidation(t *testing.T) {
	d1, _ := gen.Toy()
	if _, err := SummarizeAll([]*table.Table{d1}, core.DefaultOptions("")); err == nil {
		t.Error("single snapshot accepted")
	}
	other := table.MustNew(table.Schema{{Name: "x", Type: table.Int}})
	if _, err := SummarizeAll([]*table.Table{d1, other}, core.DefaultOptions("")); err == nil {
		t.Error("schema drift accepted")
	}
}

// TestSummarizeTargetMatchesSequential pins the parallel single-target path
// to the sequential reference: engine steps bit-identical, unchanged steps
// short-circuited to NoChange without an engine run.
func TestSummarizeTargetMatchesSequential(t *testing.T) {
	snaps, err := gen.Chain(gen.ChainConfig{N: 60, Steps: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	base := chainOpts()
	base.Workers = 4
	for _, target := range []string{"salary", "overtime"} {
		tl, err := SummarizeTarget(snaps, target, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(tl.Steps) != len(snaps)-1 {
			t.Fatalf("%s: steps = %d", target, len(tl.Steps))
		}
		for i := 0; i+1 < len(snaps); i++ {
			a, err := diff.Align(snaps[i], snaps[i+1])
			if err != nil {
				t.Fatal(err)
			}
			mask, err := a.ChangedMask(target, base.ChangeTol)
			if err != nil {
				t.Fatal(err)
			}
			moved := false
			for _, ch := range mask {
				moved = moved || ch
			}
			step := tl.Steps[i]
			if !moved {
				if !step.NoChange || len(step.Ranked) != 0 {
					t.Errorf("%s step %d: want engine-free NoChange, got %+v", target, i, step)
				}
				continue
			}
			opts := base
			opts.Target = target
			opts.Workers = 1
			want, err := core.SummarizeAligned(a, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !equalRanked(step.Ranked, want) {
				t.Errorf("%s step %d: parallel single-target differs from sequential reference", target, i)
			}
		}
	}
	// overtime changes only on even steps: the timeline must show that.
	tl, err := SummarizeTarget(snaps, "overtime", base)
	if err != nil {
		t.Fatal(err)
	}
	for i, step := range tl.Steps {
		if want := (i+1)%2 == 0; step.NoChange == want {
			t.Errorf("overtime step %d: NoChange = %v", i, step.NoChange)
		}
	}
	// Validation mirrors the batch path.
	if _, err := SummarizeTarget(snaps[:1], "salary", base); err == nil {
		t.Error("single snapshot accepted")
	}
	if _, err := SummarizeTarget(snaps, "ghost", base); err == nil {
		t.Error("unknown target accepted")
	}
	// A categorical target errors up front instead of yielding a plausible
	// all-no-change timeline (the serve layer 400s the same request).
	if _, err := SummarizeTarget(snaps, "dept", base); err == nil {
		t.Error("categorical target accepted")
	}
}

// TestSummarizeChainMatchesSummarizeAll pins the store-backed timeline
// entry point: walking version ids through a CheckoutSource must yield a
// MultiTimeline bit-identical to checking the snapshots out by hand and
// running SummarizeAll — and the second walk must be parse-free (served
// from the store's table cache).
func TestSummarizeChainMatchesSummarizeAll(t *testing.T) {
	snaps, err := gen.Chain(gen.ChainConfig{N: 40, Steps: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	parent := ""
	for _, snap := range snaps {
		v, err := st.Commit(snap, parent, "step")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	base := core.DefaultOptions("")
	base.CondAttrs = []string{"dept", "grade"}
	got, err := SummarizeChain(st, ids, base)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]*table.Table, len(ids))
	for i, id := range ids {
		if ref[i], err = st.Checkout(id); err != nil {
			t.Fatal(err)
		}
	}
	want, err := SummarizeAll(ref, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("SummarizeChain differs from SummarizeAll over the checked-out snapshots")
	}
	parses := st.Stats().Parses
	if _, err := SummarizeChain(st, ids, base); err != nil {
		t.Fatal(err)
	}
	if again := st.Stats().Parses; again != parses {
		t.Errorf("second chain walk parsed %d more snapshots, want 0 (cache-served)", again-parses)
	}

	if _, err := SummarizeChain(st, ids[:1], base); err == nil {
		t.Error("single-version chain accepted")
	}
	if _, err := SummarizeChain(st, []string{"nope", "nope2"}, base); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown id err = %v, want the id named", err)
	}
}

// TestMaterializeChainMatchesCheckout is the delta-materialization
// differential: on random mutation chains (cell edits, inserts, deletes,
// adversarial string cells, anchors mid-chain), MaterializeChain must
// return exactly the tables per-id checkouts return — schema types, values,
// and row order — whichever mix of delta application, verification
// fallback, and anchor checkout each version takes. The raw
// diff.ApplyChangeSet path is additionally differenced directly against
// checkouts (bypassing the verification policy), so the adversarial cells
// exercise the apply codec itself.
func TestMaterializeChainMatchesCheckout(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		st, err := store.OpenWith("", store.Options{AnchorEvery: 4, TableCache: 64})
		if err != nil {
			t.Fatal(err)
		}
		snaps, err := gen.MutateChain(gen.FuzzConfig{N: 25, Steps: 7, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		parent := ""
		for _, snap := range snaps {
			v, err := st.Commit(snap, parent, "step")
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, v.ID)
			parent = v.ID
		}
		// The table cache is cold right after committing (commits warm only
		// the blob cache), so this walk exercises delta application.
		got, err := MaterializeChain(st, ids)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, id := range ids {
			want, err := st.Checkout(id)
			if err != nil {
				t.Fatal(err)
			}
			if !got[i].Equal(want) {
				t.Fatalf("seed %d: materialized version %d (%s) differs from its checkout", seed, i, id)
			}
			if !got[i].Schema().Equal(want.Schema()) {
				t.Fatalf("seed %d: version %d schema types diverged", seed, i)
			}
		}
		// Direct apply differential over every delta version.
		applied := 0
		for i := 1; i < len(ids); i++ {
			cs, err := st.DeltaOps(ids[i])
			if err != nil {
				t.Fatal(err)
			}
			if cs.Materialized || cs.Base != ids[i-1] {
				continue
			}
			base, err := st.Checkout(ids[i-1])
			if err != nil {
				t.Fatal(err)
			}
			next, err := diff.ApplyChangeSet(base, cs)
			if err != nil {
				continue // non-canonical key texts: fallback contract, not a bug
			}
			want, err := st.Checkout(ids[i])
			if err != nil {
				t.Fatal(err)
			}
			if !next.Equal(want) {
				t.Fatalf("seed %d: ApplyChangeSet of version %d differs from its checkout", seed, i)
			}
			applied++
		}
		if applied == 0 {
			t.Fatalf("seed %d: no delta version applied; apply codec untested", seed)
		}
	}
}

// TestMaterializeChainIsParseFreeOnCanonicalChains pins the cold-walk win on
// canonical-text data (everything the serve path commits): one CSV parse at
// the chain root, every later version derived by verified delta application.
func TestMaterializeChainIsParseFreeOnCanonicalChains(t *testing.T) {
	st, err := store.OpenWith("", store.Options{AnchorEvery: 16, TableCache: 16})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := gen.Chain(gen.ChainConfig{N: 40, Steps: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	parent := ""
	for _, snap := range snaps {
		v, err := st.Commit(snap, parent, "step")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	got, err := MaterializeChain(st, ids)
	if err != nil {
		t.Fatal(err)
	}
	if parses := st.Stats().Parses; parses != 1 {
		t.Errorf("cold canonical walk parsed %d versions, want 1 (root only)", parses)
	}
	// Verified applied tables were admitted into the table LRU, so a repeat
	// walk is all warm clone hits: no parsing, no re-application.
	hitsBefore := st.Stats().CacheHits
	again, err := MaterializeChain(st, ids)
	if err != nil {
		t.Fatal(err)
	}
	if parses := st.Stats().Parses; parses != 1 {
		t.Errorf("warm walk parsed %d more versions, want 0", parses-1)
	}
	if hits := st.Stats().CacheHits; hits < hitsBefore+int64(len(ids)) {
		t.Errorf("warm walk hit the table cache %d times, want ≥ %d (one per version)", hits-hitsBefore, len(ids))
	}
	for i, id := range ids {
		want, err := st.Checkout(id)
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Equal(want) {
			t.Fatalf("materialized version %d (%s) differs from its checkout", i, id)
		}
		if !again[i].Equal(want) {
			t.Fatalf("warm-walk version %d (%s) differs from its checkout", i, id)
		}
	}
}
