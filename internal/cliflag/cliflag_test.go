package cliflag

import (
	"flag"
	"reflect"
	"testing"
)

func newFS() (*flag.FlagSet, *string, *bool) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	dir := fs.String("dir", ".default", "")
	verbose := fs.Bool("v", false, "")
	return fs, dir, verbose
}

func TestParseGlobalSpellings(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"space", []string{"-dir", "X", "commit"}},
		{"equals", []string{"-dir=X", "commit"}},
		{"double-dash space", []string{"--dir", "X", "commit"}},
		{"double-dash equals", []string{"--dir=X", "commit"}},
		{"after subcommand", []string{"commit", "-dir", "X"}},
		{"after subcommand equals", []string{"commit", "--dir=X"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, dir, _ := newFS()
			sub, rest, err := ParseGlobal(fs, tc.args)
			if err != nil {
				t.Fatal(err)
			}
			if sub != "commit" || *dir != "X" || len(rest) != 0 {
				t.Errorf("sub=%q dir=%q rest=%v", sub, *dir, rest)
			}
		})
	}
}

func TestParseGlobalLeavesSubcommandFlags(t *testing.T) {
	fs, dir, verbose := newFS()
	sub, rest, err := ParseGlobal(fs, []string{"-v", "commit", "-csv", "x.csv", "-dir", "D", "-m", "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if sub != "commit" || *dir != "D" || !*verbose {
		t.Errorf("sub=%q dir=%q v=%v", sub, *dir, *verbose)
	}
	// -csv and -m are not global flags: they pass through untouched, in
	// order, for the subcommand's FlagSet.
	if want := []string{"-csv", "x.csv", "-m", "hello"}; !reflect.DeepEqual(rest, want) {
		t.Errorf("rest = %v, want %v", rest, want)
	}
}

func TestParseGlobalBoolFlagTakesNoValue(t *testing.T) {
	fs, _, verbose := newFS()
	sub, rest, err := ParseGlobal(fs, []string{"-v", "log"})
	if err != nil {
		t.Fatal(err)
	}
	if !*verbose || sub != "log" || len(rest) != 0 {
		t.Errorf("v=%v sub=%q rest=%v — bool flag must not swallow the subcommand", *verbose, sub, rest)
	}
}

func TestParseGlobalMissingValue(t *testing.T) {
	fs, _, _ := newFS()
	if _, _, err := ParseGlobal(fs, []string{"log", "-dir"}); err == nil {
		t.Error("trailing valueless -dir parsed without error")
	}
}

func TestParseGlobalNoSubcommand(t *testing.T) {
	fs, dir, _ := newFS()
	sub, rest, err := ParseGlobal(fs, []string{"--dir=only-flags"})
	if err != nil {
		t.Fatal(err)
	}
	if sub != "" || len(rest) != 0 || *dir != "only-flags" {
		t.Errorf("sub=%q rest=%v dir=%q", sub, rest, *dir)
	}
}
