// Package cliflag normalizes command-line parsing for the charles
// binaries. The standard flag package stops at the first non-flag
// argument, which breaks the `tool -global sub -local` shape, and the
// binaries historically diverged: charles-store hand-rolled a loop that
// only understood -dir, while charles-serve accepted flags only in strict
// flag-package order. ParseGlobal is the one shared helper: every flag
// registered on the global FlagSet is recognized anywhere on the command
// line, in all four spellings (-name VALUE, -name=VALUE, --name VALUE,
// --name=VALUE); the first bare argument is the subcommand and everything
// else passes through for the subcommand's own FlagSet.
package cliflag

import (
	"flag"
	"fmt"
	"strings"
)

// boolFlag is the flag package's convention for flags that may omit their
// value (flag.Value implementations report it via IsBoolFlag).
type boolFlag interface {
	IsBoolFlag() bool
}

// ParseGlobal scans args for flags registered on fs — wherever they appear
// — parses them into fs, and returns the subcommand (the first bare
// argument, "" if none) plus the remaining arguments in order. Unregistered
// flags are NOT errors here: they stay in rest for the subcommand's
// FlagSet, which reports its own unknowns.
func ParseGlobal(fs *flag.FlagSet, args []string) (sub string, rest []string, err error) {
	var globals []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		if len(arg) > 1 && arg[0] == '-' && arg != "--" {
			name := strings.TrimPrefix(strings.TrimPrefix(arg, "-"), "-")
			base, _, hasValue := strings.Cut(name, "=")
			if f := fs.Lookup(base); f != nil {
				switch {
				case hasValue:
					globals = append(globals, "-"+name)
				case isBoolValue(f.Value):
					globals = append(globals, "-"+base)
				case i+1 < len(args):
					globals = append(globals, "-"+base, args[i+1])
					i++
				default:
					return "", nil, fmt.Errorf("flag -%s needs a value", base)
				}
				continue
			}
		}
		if sub == "" && !strings.HasPrefix(arg, "-") {
			sub = arg
			continue
		}
		rest = append(rest, arg)
	}
	if err := fs.Parse(globals); err != nil {
		return "", nil, err
	}
	return sub, rest, nil
}

func isBoolValue(v flag.Value) bool {
	b, ok := v.(boolFlag)
	return ok && b.IsBoolFlag()
}
