package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"charles/internal/gen"
	"charles/internal/store"
)

func newHubTestServer(t *testing.T, opts store.HubOptions) (*store.Hub, *httptest.Server) {
	t.Helper()
	h, err := store.OpenHubWith("", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	ts := httptest.NewServer(NewHubServer(h, Config{CacheSize: 8}))
	t.Cleanup(ts.Close)
	return h, ts
}

// commitTo commits a CSV into one dataset over HTTP.
func commitTo(t *testing.T, base, tenant, ds, csv, parent, msg string) store.Version {
	t.Helper()
	resp, body := postJSON(t, base+"/datasets/"+tenant+"/"+ds+"/versions", commitRequest{
		CSV: csv, Key: []string{"name"}, Parent: parent, Message: msg,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit to %s/%s status %d: %s", tenant, ds, resp.StatusCode, body)
	}
	var v store.Version
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHubServerDatasetIsolation commits the same snapshots into two
// tenants' datasets and checks the routes address separate shards — same
// content ids, independent logs, and summarize answers cached per shard.
func TestHubServerDatasetIsolation(t *testing.T) {
	_, ts := newHubTestServer(t, store.HubOptions{})
	d1, d2 := gen.Toy()
	csv1, csv2 := csvOf(t, d1), csvOf(t, d2)

	a1 := commitTo(t, ts.URL, "acme", "payroll", csv1, "", "2016")
	a2 := commitTo(t, ts.URL, "acme", "payroll", csv2, a1.ID, "2017")
	b1 := commitTo(t, ts.URL, "globex", "payroll", csv1, "", "2016")
	if a1.ID != b1.ID {
		t.Errorf("same content produced different ids across shards: %s vs %s", a1.ID, b1.ID)
	}

	// Independent logs: globex has 1 version, acme has 2.
	resp, body := get(t, ts.URL+"/datasets/globex/payroll/versions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("globex log status %d", resp.StatusCode)
	}
	var log []store.Version
	if err := json.Unmarshal(body, &log); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 {
		t.Fatalf("globex log = %d entries, want 1", len(log))
	}

	// Version a2 exists in acme but must 404 in globex.
	resp, _ = get(t, ts.URL+"/datasets/acme/payroll/versions/"+a2.ID)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("acme version status = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/datasets/globex/payroll/versions/"+a2.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cross-shard version lookup status = %d, want 404", resp.StatusCode)
	}

	// Summarize on acme misses cold; the identical request on globex (same
	// version ids!) must NOT hit acme's cached answer — keys are
	// shard-prefixed. globex lacks v2, so it 404s rather than answering.
	resp, body = postJSON(t, ts.URL+"/datasets/acme/payroll/summarize",
		summarizeRequest{From: a1.ID, To: a2.ID, Target: "bonus"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summarize status %d: %s", resp.StatusCode, body)
	}
	var sum summarizeResponse
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Cached {
		t.Error("first summarize reported cached")
	}
	resp, _ = postJSON(t, ts.URL+"/datasets/globex/payroll/summarize",
		summarizeRequest{From: a1.ID, To: a2.ID, Target: "bonus"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("summarize against shard missing the version: status %d, want 404", resp.StatusCode)
	}

	// Dataset listing covers both shards.
	resp, body = get(t, ts.URL+"/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d", resp.StatusCode)
	}
	var refs []store.DatasetRef
	if err := json.Unmarshal(body, &refs); err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("datasets = %+v, want acme/payroll and globex/payroll", refs)
	}
}

// TestHubServerLegacyAlias pins the compatibility contract: the historical
// un-prefixed routes serve the default dataset, interchangeably with its
// /datasets/default/default spelling.
func TestHubServerLegacyAlias(t *testing.T) {
	_, ts := newHubTestServer(t, store.HubOptions{})
	d1, _ := gen.Toy()

	v1 := commit(t, ts.URL, csvOf(t, d1), "", "via legacy route")
	resp, body := get(t, ts.URL+"/datasets/default/default/versions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default dataset log status %d", resp.StatusCode)
	}
	var log []store.Version
	if err := json.Unmarshal(body, &log); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].ID != v1.ID {
		t.Fatalf("default dataset log = %+v, want the legacy commit", log)
	}
	// And back: the legacy read route sees hub-addressed commits.
	resp, _ = get(t, ts.URL+"/versions/"+v1.ID)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("legacy version route status %d", resp.StatusCode)
	}
}

// TestHubServerUnknownDataset pins the read/create split: reads on a
// never-committed dataset 404 without creating it; commits create it.
func TestHubServerUnknownDataset(t *testing.T) {
	h, ts := newHubTestServer(t, store.HubOptions{})
	for _, url := range []string{
		ts.URL + "/datasets/no/such/versions",
		ts.URL + "/datasets/no/such/diff?from=a&to=b",
	} {
		resp, _ := get(t, url)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", url, resp.StatusCode)
		}
	}
	refs, err := h.Datasets()
	if err != nil || len(refs) != 0 {
		t.Fatalf("read traffic created datasets: %v, %v", refs, err)
	}
	// Invalid names are rejected, not treated as missing files.
	resp, _ := get(t, ts.URL+"/datasets/..%2F..%2Fetc/passwd/versions")
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
		t.Errorf("traversal-shaped dataset name: status %d, want 400/404", resp.StatusCode)
	}
}

// TestHubServerStatsRollup commits into two shards and checks GET /stats
// reports the hub section: per-shard store stats and commit counters, the
// shared budget accounting, and per-shard serve request counts.
func TestHubServerStatsRollup(t *testing.T) {
	_, ts := newHubTestServer(t, store.HubOptions{MemoryBudget: 8 << 20})
	d1, d2 := gen.Toy()
	v1 := commitTo(t, ts.URL, "acme", "payroll", csvOf(t, d1), "", "2016")
	commitTo(t, ts.URL, "acme", "payroll", csvOf(t, d2), v1.ID, "2017")
	commitTo(t, ts.URL, "globex", "sales", csvOf(t, d1), "", "2016")
	// A couple of reads against one shard.
	get(t, ts.URL+"/datasets/acme/payroll/versions")
	get(t, ts.URL+"/datasets/acme/payroll/versions/"+v1.ID)

	resp, body := get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Hub == nil {
		t.Fatal("hub section missing from stats")
	}
	if st.Hub.OpenShards != 2 || len(st.Hub.Shards) != 2 {
		t.Fatalf("hub stats shards = %d open / %d listed, want 2/2", st.Hub.OpenShards, len(st.Hub.Shards))
	}
	byKey := map[string]store.ShardStats{}
	for _, sh := range st.Hub.Shards {
		byKey[sh.Tenant+"/"+sh.Dataset] = sh
	}
	if got := byKey["acme/payroll"]; got.Commits != 2 || got.Store.Versions != 2 {
		t.Errorf("acme/payroll shard stats = %+v, want 2 commits / 2 versions", got)
	}
	if got := byKey["globex/sales"]; got.Commits != 1 {
		t.Errorf("globex/sales commits = %d, want 1", got.Commits)
	}
	if st.Hub.Budget.CapBytes != 8<<20 {
		t.Errorf("budget cap = %d, want %d", st.Hub.Budget.CapBytes, 8<<20)
	}
	if st.Hub.Budget.UsedBytes <= 0 {
		t.Error("budget reports zero usage after commits — caches not charged")
	}
	// Per-shard serving counters: acme/payroll took 2 commits + 2 reads.
	if got := st.Serving.Shards["acme/payroll"].Requests; got != 4 {
		t.Errorf("acme/payroll serve requests = %d, want 4", got)
	}
	if got := st.Serving.Shards["globex/sales"].Requests; got != 1 {
		t.Errorf("globex/sales serve requests = %d, want 1", got)
	}
}

// TestHubServerTimelinePerShard walks a timeline on a hub shard end to end
// (exercising the shard-prefixed step cache) and checks a second shard's
// timeline is computed independently.
func TestHubServerTimelinePerShard(t *testing.T) {
	_, ts := newHubTestServer(t, store.HubOptions{})
	chain, err := gen.Chain(gen.ChainConfig{N: 20, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"acme", "globex"} {
		parent := ""
		for i, snap := range chain {
			resp, body := postJSON(t, ts.URL+"/datasets/"+tenant+"/events/versions", commitRequest{
				CSV: csvOf(t, snap), Key: snap.Key(), Parent: parent, Message: fmt.Sprintf("step %d", i),
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s commit %d status %d: %s", tenant, i, resp.StatusCode, body)
			}
			var v store.Version
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatal(err)
			}
			parent = v.ID
		}
	}
	for _, tenant := range []string{"acme", "globex"} {
		resp, body := postJSON(t, ts.URL+"/datasets/"+tenant+"/events/timeline",
			timelineRequest{Target: "salary"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s timeline status %d: %s", tenant, resp.StatusCode, body)
		}
		var tl timelineResponse
		if err := json.Unmarshal(body, &tl); err != nil {
			t.Fatal(err)
		}
		if tl.Steps != len(chain)-1 || len(tl.Targets) != 1 {
			t.Fatalf("%s timeline = %d steps / %d targets", tenant, tl.Steps, len(tl.Targets))
		}
	}
}
