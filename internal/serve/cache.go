package serve

import (
	"container/list"
	"errors"
	"sync"
)

// Stats is a snapshot of the result cache's counters. Hits are requests
// served from the LRU, misses are requests that had to compute (or join an
// in-flight computation), and executions counts actual engine runs — with
// singleflight deduplication, N identical concurrent requests cost one
// execution.
type Stats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Executions int64 `json:"executions"`
	Evictions  int64 `json:"evictions"`
	Entries    int   `json:"entries"`
	Capacity   int   `json:"capacity"`
}

// resultCache is a fixed-capacity LRU with singleflight deduplication:
// concurrent Do calls for the same key block on one computation instead of
// racing the engine N times. Errors are returned to every waiter but never
// cached, so a transient failure does not poison the key.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> *entry element
	calls map[string]*call         // in-flight computations

	hits, misses, executions, evictions int64
}

type entry struct {
	key string
	val any
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: map[string]*list.Element{},
		calls: map[string]*call{},
	}
}

// Do returns the cached value for key, or computes it once — no matter how
// many goroutines ask concurrently. hit reports whether the value came from
// the LRU without waiting on any computation.
func (c *resultCache) Do(key string, compute func() (any, error)) (val any, hit bool, err error) {
	// Singleflight cannot defer-scope this lock: it must be released before
	// blocking on an in-flight call (or running compute), and every exit path
	// below unlocks explicitly first.
	c.mu.Lock() //lint:allow lockhygiene singleflight unlocks before blocking on the in-flight call
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry).val, true, nil
	}
	c.misses++
	if cl, ok := c.calls[key]; ok {
		// Join the in-flight computation.
		c.mu.Unlock()
		<-cl.done
		return cl.val, false, cl.err
	}
	cl := &call{done: make(chan struct{})}
	cl.err = errPanicked // overwritten unless compute panics
	c.calls[key] = cl
	c.executions++
	c.mu.Unlock()

	// The deferred cleanup runs even if compute panics (net/http recovers
	// handler panics): waiters are released with errPanicked and the key is
	// freed for the next attempt, instead of deadlocking forever.
	defer func() {
		close(cl.done)
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.calls, key)
		if cl.err == nil {
			c.insert(key, cl.val)
		}
	}()
	cl.val, cl.err = compute()
	return cl.val, false, cl.err
}

// errPanicked is what waiters of a computation that panicked observe.
var errPanicked = errors.New("serve: computation panicked")

// insert adds key→val, evicting the least recently used entry at capacity.
// Caller holds c.mu.
func (c *resultCache) insert(key string, val any) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *resultCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Executions: c.executions,
		Evictions:  c.evictions,
		Entries:    c.ll.Len(),
		Capacity:   c.cap,
	}
}
