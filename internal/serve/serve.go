// Package serve exposes version stores and the ChARLES summarization
// engine as a long-lived HTTP/JSON service — the "bolt-on versioning meets
// queryable change history" layer: versions go in, ranked change summaries
// come out, and repeated questions are answered from an LRU cache with
// singleflight deduplication (N identical in-flight requests run the
// engine once).
//
// A server fronts either one Store (NewServer) or a multi-tenant Hub
// (NewHubServer). Every data endpoint exists in two spellings:
//
//	/datasets/{tenant}/{ds}/<route>   addresses one hub shard
//	/<route>                          legacy alias for the default dataset
//
// Endpoints (per dataset):
//
//	POST .../versions               commit a CSV snapshot {csv, key, parent?, message?}
//	GET  .../versions               log, commit order
//	GET  .../versions/{id}          version metadata
//	GET  .../versions/{id}/csv      checkout the canonical CSV
//	GET  .../versions/{id}/changes  the version's decoded delta ops (ChangeSet)
//	GET  .../diff?from=&to=         removed/inserted keys, update distance, changed
//	                                attrs (&target= for cells) — served straight
//	                                from pack deltas when the pair is
//	                                delta-connected, checkout+align otherwise
//	POST .../summarize              {from, to, target, alpha?, c?, t?, topk?}
//	POST .../timeline               {head?, target?, alpha?, c?, t?, topk?} — walk
//	                                the lineage root→head and summarize every step
//	                                (head-relative defaults answered live from the
//	                                commit-maintained timeline, memoized per head)
//	GET  .../timeline/watch         subscribe to live timeline updates — an SSE
//	                                stream of per-commit step events, or one
//	                                long-poll cycle with ?since=<version>
//
// And hub-wide:
//
//	GET  /datasets               list tenant/dataset pairs
//	GET  /stats                  cache, store, hub, and per-shard serving counters
//	GET  /metrics                Prometheus text exposition (see metrics.go)
//	GET  /healthz                liveness
//
// Wrong-method requests are answered uniformly on every route: 405 with an
// Allow header and the JSON error envelope.
//
// Every request is instrumented: a statusRecorder captures what was
// answered, per-shard status-class counters and the /metrics registry are
// bumped exactly once per request (shed 429s and shard-resolve failures
// included), and an optional JSON-lines request log records method, route
// pattern, shard, status, bytes, and duration.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"charles/internal/core"
	"charles/internal/csvio"
	"charles/internal/store"
)

// DefaultCacheSize is the summarize-result LRU capacity when NewServer is
// given a non-positive size.
const DefaultCacheSize = 128

// DefaultDatasetName is the tenant and dataset name legacy (un-prefixed)
// routes address when the config does not override it.
const DefaultDatasetName = "default"

// maxBodyBytes bounds request bodies (CSV snapshots included).
const maxBodyBytes = 64 << 20

// Config tunes the serving lifecycle. The zero value matches the historical
// behavior: default cache, unlimited concurrency, no per-request deadline.
type Config struct {
	// CacheSize bounds the summarize result LRU (<=0 uses DefaultCacheSize).
	CacheSize int
	// MaxInFlight caps concurrently served requests (liveness and stats
	// endpoints are exempt). A request arriving with every slot taken is
	// shed immediately with 429 and a Retry-After header — the server never
	// queues, so saturation degrades into fast rejections instead of
	// unbounded memory growth and collapsing tail latencies. 0 = unlimited.
	MaxInFlight int
	// RequestTimeout bounds each non-exempt request's context. Work that
	// observes the deadline (timeline walks, history pools) stops early and
	// the client gets 503. 0 = no deadline.
	RequestTimeout time.Duration
	// RetryAfter is the advisory Retry-After duration on shed responses
	// (rounded up to whole seconds; 0 = 1s).
	RetryAfter time.Duration
	// DefaultTenant and DefaultDataset name the shard the legacy
	// (un-prefixed) routes address in hub mode; both default to "default".
	// A single-store server also answers /datasets routes under these
	// names.
	DefaultTenant  string
	DefaultDataset string
	// RequestLog, when non-nil, receives one JSON line per completed
	// request (see requestLogEntry). Writes are serialized internally; a
	// write error disables the log instead of failing requests.
	RequestLog io.Writer
}

// Server is the HTTP front end over one Store or a Hub of them. Stores are
// safe for concurrent use and the engine runs outside the store's lock, so
// any number of requests proceed in parallel; identical summarize requests
// are collapsed by the cache (keyed per shard).
type Server struct {
	store *store.Store // single-store mode (nil in hub mode)
	hub   *store.Hub   // hub mode (nil in single-store mode)
	cache *resultCache
	mux   *http.ServeMux
	cfg   Config

	defTenant  string
	defDataset string

	slots    chan struct{} // nil = unlimited
	inflight atomic.Int64
	shed     atomic.Int64

	// live is the commit-driven timeline registry (see live.go); the pump
	// goroutine feeds it from the store/hub commit subscription. watchSubs
	// counts active /timeline/watch subscribers (SSE + blocked long-polls).
	// drain is closed by BeginDrain so watch handlers end promptly inside
	// the graceful-drain window.
	live      *liveRegistry
	watchSubs atomic.Int64
	drain     chan struct{}
	drainOnce sync.Once

	// Test seams (set only from package tests): testDelay runs after a
	// limiter slot is held, stepHook inside each timeline step computation.
	testDelay func(*http.Request)
	stepHook  func()

	// perShard maps tenant/ds -> *shardCounters. A sync.Map because this
	// is on every request's path and the shard set stabilizes quickly:
	// after warmup every access is a lock-free read (the previous
	// exclusive-mutex map serialized all requests on one lock just to
	// fetch an existing pointer — see BenchmarkShardCounters).
	perShard sync.Map

	metrics *serverMetrics
	reqLog  *requestLogger // nil = request logging disabled
}

// shardCounters is one shard's serve-layer request accounting, bumped
// atomically once per request in Server.finish. requests counts all
// traffic attributed to the shard — including requests shed with 429 and
// shard-resolve failures (404 unknown dataset, 400 invalid name), which
// previously bypassed the counters entirely and made ServingStats
// undercount under overload. classes[i] counts responses with status
// i00–i99 (classes[0] collects out-of-range codes).
type shardCounters struct {
	requests atomic.Int64
	shed     atomic.Int64
	classes  [6]atomic.Int64
}

// shardRef is one request's resolved shard: the store to serve from, the
// names that key its cache entries and counters, and the release that
// unpins it from the hub (a no-op in single-store mode).
type shardRef struct {
	tenant  string
	dataset string
	st      *store.Store
	release func()
}

// cacheKeyPrefix namespaces result-cache keys per shard, so two datasets'
// identical version ids can never collide in the shared LRU.
func (sh *shardRef) cacheKeyPrefix() string {
	return sh.tenant + "/" + sh.dataset + "|"
}

// NewServer wraps st in an HTTP handler with a result cache of cacheSize
// entries (<=0 uses DefaultCacheSize), no concurrency cap, and no request
// deadline — the historical constructor, now sugar over NewServerWith.
func NewServer(st *store.Store, cacheSize int) *Server {
	return NewServerWith(st, Config{CacheSize: cacheSize})
}

// NewServerWith wraps st in an HTTP handler with the full serving config.
func NewServerWith(st *store.Store, cfg Config) *Server {
	return newServer(st, nil, cfg)
}

// NewHubServer serves a multi-tenant Hub: every dataset is addressable
// under /datasets/{tenant}/{ds}/..., the legacy routes alias the default
// dataset, and GET /stats rolls up per-shard serving and store counters
// plus the hub's shared memory budget.
func NewHubServer(h *store.Hub, cfg Config) *Server {
	return newServer(nil, h, cfg)
}

func newServer(st *store.Store, h *store.Hub, cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = DefaultDatasetName
	}
	if cfg.DefaultDataset == "" {
		cfg.DefaultDataset = DefaultDatasetName
	}
	s := &Server{
		store: st, hub: h,
		cache:     newResultCache(cfg.CacheSize),
		cfg:       cfg,
		defTenant: cfg.DefaultTenant, defDataset: cfg.DefaultDataset,
		reqLog: newRequestLogger(cfg.RequestLog),
		live:   newLiveRegistry(),
		drain:  make(chan struct{}),
	}
	s.metrics = newServerMetrics(s)
	if cfg.MaxInFlight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	// The commit pump: one goroutine bridging the storage layer's commit
	// feed into the live-timeline registry. It exits when the store (or
	// hub) is closed — Close closes the subscription channel.
	if h != nil {
		go s.pumpHub(h.Subscribe(0))
	} else {
		go s.pumpStore(st.Subscribe(0))
	}
	mux := http.NewServeMux()
	// Each dataset route is registered twice: under the explicit
	// /datasets/{tenant}/{ds} prefix and at the legacy root (which aliases
	// the default dataset). commit=true routes may create the shard;
	// read routes must 404 on unknown datasets instead.
	shardRoutes := []struct {
		method, pattern string
		commit          bool
		h               func(*shardRef, http.ResponseWriter, *http.Request)
	}{
		{"POST", "/versions", true, s.handleCommit},
		{"GET", "/versions", false, s.handleLog},
		{"GET", "/versions/{id}", false, s.handleVersion},
		{"GET", "/versions/{id}/csv", false, s.handleCheckout},
		{"GET", "/versions/{id}/changes", false, s.handleChanges},
		{"GET", "/diff", false, s.handleDiff},
		{"POST", "/summarize", true, s.handleSummarize},
		{"POST", "/timeline", true, s.handleTimeline},
		{"GET", "/timeline/watch", false, s.handleWatch},
	}
	// tagRoute stamps the matched pattern onto the request's
	// statusRecorder so accounting and the request log see the route
	// pattern, not the raw (unbounded-cardinality) path.
	tagRoute := func(pattern string, h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			setRoute(w, pattern)
			h(w, r)
		}
	}
	allowed := map[string][]string{}
	for _, r := range shardRoutes {
		wrapped := s.onShard(r.commit, r.h)
		for _, pattern := range []string{r.pattern, "/datasets/{tenant}/{ds}" + r.pattern} {
			mux.HandleFunc(r.method+" "+pattern, tagRoute(pattern, wrapped))
			allowed[pattern] = append(allowed[pattern], r.method)
		}
	}
	plainRoutes := []struct {
		method, pattern string
		h               http.HandlerFunc
	}{
		{"GET", "/datasets", s.handleDatasets},
		{"GET", "/stats", s.handleStats},
		{"GET", "/metrics", s.handleMetrics},
		{"GET", "/healthz", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}},
	}
	for _, r := range plainRoutes {
		mux.HandleFunc(r.method+" "+r.pattern, tagRoute(r.pattern, r.h))
		allowed[r.pattern] = append(allowed[r.pattern], r.method)
	}
	// Every route also gets a method-agnostic fallback, so a wrong-method
	// request is answered uniformly on every endpoint: 405, an Allow header
	// listing the methods that would work, and the JSON error envelope
	// (instead of net/http's plain-text default).
	for pattern, methods := range allowed {
		sort.Strings(methods)
		allow := strings.Join(methods, ", ")
		mux.HandleFunc(pattern, tagRoute(pattern, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeJSON(w, http.StatusMethodNotAllowed, errorJSON{
				Error: fmt.Sprintf("method %s not allowed (allow: %s)", r.Method, allow),
			})
		}))
	}
	s.mux = mux
	return s
}

// resolve maps a request onto its shard: the {tenant}/{ds} path values
// when present, the configured default dataset on legacy routes. In hub
// mode the shard is acquired (pinned) for the duration of the request; on
// read routes an unknown dataset is a 404, never a freshly created
// directory.
func (s *Server) resolve(r *http.Request, commit bool) (*shardRef, error) {
	tenant, dataset := r.PathValue("tenant"), r.PathValue("ds")
	if tenant == "" && dataset == "" {
		tenant, dataset = s.defTenant, s.defDataset
	}
	if s.hub == nil {
		if tenant != s.defTenant || dataset != s.defDataset {
			return nil, fmt.Errorf("%w: %s/%s (single-dataset server)", store.ErrUnknownDataset, tenant, dataset)
		}
		return &shardRef{tenant: tenant, dataset: dataset, st: s.store, release: func() {}}, nil
	}
	var (
		st      *store.Store
		release func()
		err     error
	)
	if commit {
		st, release, err = s.hub.Acquire(tenant, dataset)
	} else {
		st, release, err = s.hub.AcquireExisting(tenant, dataset)
		if err == nil {
			s.hub.MarkRead(tenant, dataset)
		}
	}
	if err != nil {
		return nil, err
	}
	return &shardRef{tenant: tenant, dataset: dataset, st: st, release: release}, nil
}

// counters returns (creating on first use) one shard's serve counters.
// Lock-free on the hot path: after a shard's first request every call is
// a sync.Map read, so concurrent requests to different (or the same)
// shards never serialize just to fetch an existing counter struct.
func (s *Server) counters(key string) *shardCounters {
	if c, ok := s.perShard.Load(key); ok {
		return c.(*shardCounters)
	}
	c, _ := s.perShard.LoadOrStore(key, &shardCounters{})
	return c.(*shardCounters)
}

// onShard adapts a shard handler into an http.HandlerFunc: resolve the
// shard, pin it for the request, and tag the request's recorder with the
// shard key — before resolution, so a failed resolve (unknown dataset,
// invalid name) is still attributed to the shard it addressed when
// Server.finish counts the request.
func (s *Server) onShard(commit bool, h func(*shardRef, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, dataset := r.PathValue("tenant"), r.PathValue("ds")
		if tenant == "" && dataset == "" {
			tenant, dataset = s.defTenant, s.defDataset
		}
		setShard(w, tenant+"/"+dataset)
		sh, err := s.resolve(r, commit)
		if err != nil {
			writeError(w, err)
			return
		}
		defer sh.release()
		h(sh, w, r)
	}
}

// ServeHTTP implements http.Handler: body bounding, load shedding, and the
// per-request deadline wrap every route except the liveness, stats, and
// metrics endpoints — a saturated server must still answer health checks
// (or its orchestrator would shoot a box that is merely busy), stats
// probes, and scrapes. The exemption is trailing-slash tolerant: an
// orchestrator probing /healthz/ must never be shed for the extra slash.
// Every path through here — exempt, shed, or served — funnels into one
// finish call for per-shard counters, /metrics, and the request log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w}
	if p := exemptPath(r.URL.Path); p != "" {
		if p != r.URL.Path {
			// Canonicalize so the mux pattern matches the slashed spelling.
			r2 := r.Clone(r.Context())
			r2.URL.Path = p
			r = r2
		}
		s.mux.ServeHTTP(rec, r)
		s.finish(rec, r, start, "")
		return
	}
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		default:
			// Shed immediately: no queue means overload cannot pile up
			// latent work the client has long since abandoned.
			s.shed.Add(1)
			retry := s.cfg.RetryAfter
			if retry <= 0 {
				retry = time.Second
			}
			secs := int((retry + time.Second - 1) / time.Second)
			rec.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			writeJSON(rec, http.StatusTooManyRequests, errorJSON{
				Error: fmt.Sprintf("server at capacity (%d in flight); retry after %ds", s.cfg.MaxInFlight, secs),
			})
			rec.route, rec.shed = routeShed, true
			s.finish(rec, r, start, s.shardKeyForPath(r.URL.Path))
			return
		}
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.testDelay != nil {
		s.testDelay(r)
	}
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(rec, r)
	s.finish(rec, r, start, rec.shard)
}

// BeginDrain tells long-lived handlers (SSE streams, blocked long-polls on
// /timeline/watch) that shutdown has begun: they finish their current write
// and return, releasing their limiter slots inside the graceful-drain
// window instead of holding connections open until the force-close.
// Idempotent; called by the lifecycle (see Serve) at SIGTERM.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// Stats snapshots the summarize cache counters.
func (s *Server) Stats() Stats { return s.cache.Stats() }

// ShardServingStats is one shard's serve-layer request counters.
// Requests counts every request attributed to the shard — served, shed
// with 429, or failed at shard resolution — so traffic under overload is
// fully visible. Status breaks the same total down by status class
// ("2xx".."5xx"; classes with zero requests are omitted).
type ShardServingStats struct {
	Requests int64            `json:"requests"`
	Shed     int64            `json:"shed,omitempty"`
	Status   map[string]int64 `json:"status,omitempty"`
}

// ServingStats is a snapshot of the lifecycle counters: the concurrency
// cap (0 = unlimited), the requests currently holding a slot, the total
// shed with 429 since startup, and the per-shard request counts.
type ServingStats struct {
	MaxInFlight int                          `json:"maxInFlight"`
	InFlight    int64                        `json:"inFlight"`
	Shed        int64                        `json:"shed"`
	Shards      map[string]ShardServingStats `json:"shards,omitempty"`
}

// ServingStats snapshots the load-shedding and per-shard counters.
func (s *Server) ServingStats() ServingStats {
	st := ServingStats{
		MaxInFlight: s.cfg.MaxInFlight,
		InFlight:    s.inflight.Load(),
		Shed:        s.shed.Load(),
	}
	shards := map[string]ShardServingStats{}
	s.perShard.Range(func(k, v any) bool {
		c := v.(*shardCounters)
		sss := ShardServingStats{Requests: c.requests.Load(), Shed: c.shed.Load()}
		for i := range c.classes {
			if n := c.classes[i].Load(); n > 0 {
				if sss.Status == nil {
					sss.Status = map[string]int64{}
				}
				sss.Status[classNames[i]] = n
			}
		}
		shards[k.(string)] = sss
		return true
	})
	if len(shards) > 0 {
		st.Shards = shards
	}
	return st
}

// errorJSON is the uniform error envelope.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// statusClientClosedRequest is the (nginx-conventional) status logged when
// the client cancelled mid-request; the client is gone, so the code is for
// operators reading access logs, not for the wire.
const statusClientClosedRequest = 499

// writeError maps store/engine errors onto HTTP status codes: unknown ids
// and datasets are 404, lineage conflicts 409, an expired request deadline
// 503 (the server gave up under its own timeout — retryable), a shard or
// hub closed mid-request 503 (the hub evicted or is shutting down —
// retryable), a client cancellation 499, server-side damage — corrupt
// stored data, IO failures (persist hitting a full or broken disk) — 500,
// and everything else — malformed bodies, invalid names, CSV parse errors,
// engine option validation — 400.
func writeError(w http.ResponseWriter, err error) {
	var pathErr *fs.PathError
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		code = statusClientClosedRequest
	case errors.Is(err, store.ErrNotFound), errors.Is(err, store.ErrUnknownDataset):
		code = http.StatusNotFound
	case errors.Is(err, store.ErrLineageConflict):
		code = http.StatusConflict
	case errors.Is(err, store.ErrStoreClosed), errors.Is(err, store.ErrHubClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, store.ErrCorruptStore), errors.As(err, &pathErr):
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// commitRequest is the POST .../versions body.
type commitRequest struct {
	CSV     string   `json:"csv"`
	Key     []string `json:"key"`
	Parent  string   `json:"parent,omitempty"`
	Message string   `json:"message,omitempty"`
}

func (s *Server) handleCommit(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.CSV == "" || len(req.Key) == 0 {
		writeError(w, errors.New("commit needs csv and key"))
		return
	}
	t, err := csvio.Read(strings.NewReader(req.CSV), csvio.Options{Key: req.Key})
	if err != nil {
		writeError(w, err)
		return
	}
	v, err := sh.st.Commit(t, req.Parent, req.Message)
	if err != nil {
		writeError(w, err)
		return
	}
	if s.hub != nil {
		s.hub.MarkCommit(sh.tenant, sh.dataset)
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleLog(sh *shardRef, w http.ResponseWriter, _ *http.Request) {
	log := sh.st.Log()
	if log == nil {
		log = []*store.Version{}
	}
	writeJSON(w, http.StatusOK, log)
}

// versionResponse is the GET .../versions/{id} body: metadata plus lineage.
type versionResponse struct {
	*store.Version
	Lineage []string `json:"lineage"` // ids, newest first, self included
}

func (s *Server) handleVersion(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := sh.st.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	lineage, err := sh.st.Lineage(id)
	if err != nil {
		writeError(w, err)
		return
	}
	ids := make([]string, len(lineage))
	for i, lv := range lineage {
		ids[i] = lv.ID
	}
	writeJSON(w, http.StatusOK, versionResponse{Version: v, Lineage: ids})
}

func (s *Server) handleCheckout(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	blob, err := sh.st.Blob(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_, _ = w.Write(blob)
}

// diffResponse is the GET .../diff body. DeltaNative reports whether the
// answer was assembled straight from the store's delta packs (one parent
// checkout, no target reconstruction or alignment) or through the
// checkout+align fallback — the two paths return identical answers.
type diffResponse struct {
	From           string       `json:"from"`
	To             string       `json:"to"`
	DeltaNative    bool         `json:"deltaNative"`
	UpdateDistance int          `json:"updateDistance"`
	ChangedAttrs   []string     `json:"changedAttrs"`
	Removed        []string     `json:"removed,omitempty"`  // keys only in from
	Inserted       []string     `json:"inserted,omitempty"` // keys only in to
	Changes        []changeJSON `json:"changes,omitempty"`  // with &target=
}

type changeJSON struct {
	Key  string `json:"key"`
	Attr string `json:"attr"`
	Old  string `json:"old"`
	New  string `json:"new"`
}

func (s *Server) handleDiff(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	from, to := r.URL.Query().Get("from"), r.URL.Query().Get("to")
	if from == "" || to == "" {
		writeError(w, errors.New("diff needs from and to"))
		return
	}
	res, native, err := sh.st.DiffResult(from, to, timelineTol)
	if err != nil {
		writeError(w, err)
		return
	}
	attrs := res.ChangedAttrs
	if attrs == nil {
		attrs = []string{}
	}
	resp := diffResponse{
		From: from, To: to, DeltaNative: native,
		UpdateDistance: res.UpdateDistance, ChangedAttrs: attrs,
		Removed: res.Removed, Inserted: res.Inserted,
	}
	if target := r.URL.Query().Get("target"); target != "" {
		if !res.HasColumn(target) {
			writeError(w, fmt.Errorf("no column %q", target))
			return
		}
		for _, ch := range res.ChangesFor(target) {
			resp.Changes = append(resp.Changes, changeJSON{
				Key: ch.Key, Attr: ch.Attr, Old: ch.Old.String(), New: ch.New.String(),
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// changesResponse is the GET .../versions/{id}/changes body: the version's
// decoded delta ops, with patch and insert cells keyed by column name.
type changesResponse struct {
	Version      string          `json:"version"`
	Parent       string          `json:"parent,omitempty"`
	Materialized bool            `json:"materialized"`
	Columns      []string        `json:"columns,omitempty"`
	Removed      []string        `json:"removed,omitempty"`
	Inserted     []rowChangeJSON `json:"inserted,omitempty"`
	Patched      []rowChangeJSON `json:"patched,omitempty"`
}

type rowChangeJSON struct {
	Key   string            `json:"key"`
	Cells map[string]string `json:"cells"`
}

func (s *Server) handleChanges(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cs, err := sh.st.Changes(id)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := changesResponse{
		Version: cs.Version, Parent: cs.Base,
		Materialized: cs.Materialized,
		Columns:      cs.Columns,
		Removed:      cs.Removed,
	}
	colName := func(ci int) (string, bool) {
		if ci < 0 || ci >= len(cs.Columns) {
			return "", false
		}
		return cs.Columns[ci], true
	}
	for _, ins := range cs.Inserted {
		cells := map[string]string{}
		for ci, val := range ins.Cells {
			name, ok := colName(ci)
			if !ok {
				writeError(w, fmt.Errorf("%w: version %s: insert cell %d beyond header", store.ErrCorruptStore, id, ci))
				return
			}
			cells[name] = val
		}
		resp.Inserted = append(resp.Inserted, rowChangeJSON{Key: ins.Key, Cells: cells})
	}
	for _, p := range cs.Patched {
		cells := map[string]string{}
		for i, ci := range p.Cols {
			name, ok := colName(ci)
			if !ok {
				writeError(w, fmt.Errorf("%w: version %s: patch column %d beyond header", store.ErrCorruptStore, id, ci))
				return
			}
			cells[name] = p.Vals[i]
		}
		resp.Patched = append(resp.Patched, rowChangeJSON{Key: p.Key, Cells: cells})
	}
	writeJSON(w, http.StatusOK, resp)
}

// summarizeRequest is the POST .../summarize body. Omitted tuning fields
// take the engine defaults (c=3, t=2, α=0.5, top-10).
type summarizeRequest struct {
	From   string   `json:"from"`
	To     string   `json:"to"`
	Target string   `json:"target"`
	Alpha  *float64 `json:"alpha,omitempty"`
	C      *int     `json:"c,omitempty"`
	T      *int     `json:"t,omitempty"`
	TopK   *int     `json:"topk,omitempty"`
}

// summarizeResponse is the POST .../summarize body.
type summarizeResponse struct {
	From               string       `json:"from"`
	To                 string       `json:"to"`
	Target             string       `json:"target"`
	OptionsFingerprint string       `json:"optionsFingerprint"`
	Cached             bool         `json:"cached"`
	Ranked             []RankedJSON `json:"ranked"`
}

func (s *Server) handleSummarize(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	var req summarizeRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.From == "" || req.To == "" || req.Target == "" {
		writeError(w, errors.New("summarize needs from, to and target"))
		return
	}
	// Resolve ids up front so unknown versions 404 before touching the
	// cache (and so invalid requests never occupy a singleflight slot).
	if _, err := sh.st.Get(req.From); err != nil {
		writeError(w, err)
		return
	}
	if _, err := sh.st.Get(req.To); err != nil {
		writeError(w, err)
		return
	}
	opts := core.DefaultOptions(req.Target)
	if req.Alpha != nil {
		opts.Alpha = *req.Alpha
	}
	if req.C != nil {
		opts.C = *req.C
	}
	if req.T != nil {
		opts.T = *req.T
	}
	if req.TopK != nil {
		opts.TopK = *req.TopK
	}
	fp := opts.Fingerprint()
	key := sh.cacheKeyPrefix() + req.From + "|" + req.To + "|" + fp
	ctx := r.Context()
	val, hit, err := s.cache.Do(key, func() (any, error) {
		// A request that timed out or was abandoned while waiting its turn
		// must not start an engine run nobody will read.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return sh.st.Summarize(req.From, req.To, opts)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, summarizeResponse{
		From: req.From, To: req.To, Target: req.Target,
		OptionsFingerprint: fp,
		Cached:             hit,
		Ranked:             EncodeRanked(val.([]core.Ranked)),
	})
}

// handleDatasets lists the hub's tenant/dataset pairs. A single-store
// server reports its one (default) dataset.
func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	if s.hub == nil {
		writeJSON(w, http.StatusOK, []store.DatasetRef{
			{Tenant: s.defTenant, Dataset: s.defDataset},
		})
		return
	}
	refs, err := s.hub.Datasets()
	if err != nil {
		writeError(w, err)
		return
	}
	if refs == nil {
		refs = []store.DatasetRef{}
	}
	writeJSON(w, http.StatusOK, refs)
}

// statsResponse is the GET /stats body: the summarize-cache counters, the
// serving lifecycle (in-flight / shed / per-shard request) counters, and
// the storage side — the single store's counters, or in hub mode the full
// hub rollup (per-shard store stats, commit/read counters, shared memory
// budget) with the default shard mirrored into "store" for legacy readers.
type statsResponse struct {
	Stats
	Store   store.Stats     `json:"store"`
	Serving ServingStats    `json:"serving"`
	Hub     *store.HubStats `json:"hub,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Stats:   s.cache.Stats(),
		Serving: s.ServingStats(),
	}
	if s.hub == nil {
		resp.Store = s.store.Stats()
	} else {
		hs := s.hub.Stats()
		resp.Hub = &hs
		for _, sh := range hs.Shards {
			if sh.Tenant == s.defTenant && sh.Dataset == s.defDataset {
				resp.Store = sh.Store
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
