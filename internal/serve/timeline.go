package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"charles/internal/core"
	"charles/internal/diff"
	"charles/internal/history"
)

// timelineRequest is the POST /timeline body. Head defaults to the most
// recently committed version; with no Target every changed numeric attribute
// of every step is summarized. Tuning fields mirror POST /summarize.
type timelineRequest struct {
	Head   string   `json:"head,omitempty"`
	Target string   `json:"target,omitempty"`
	Alpha  *float64 `json:"alpha,omitempty"`
	C      *int     `json:"c,omitempty"`
	T      *int     `json:"t,omitempty"`
	TopK   *int     `json:"topk,omitempty"`
}

// timelineStepJSON is one consecutive version pair of one target's timeline.
type timelineStepJSON struct {
	From     string       `json:"from"`
	To       string       `json:"to"`
	NoChange bool         `json:"noChange,omitempty"`
	Cached   bool         `json:"cached,omitempty"`
	Ranked   []RankedJSON `json:"ranked,omitempty"`
}

// driftJSON mirrors history.Drift.
type driftJSON struct {
	StepA            int    `json:"stepA"`
	StepB            int    `json:"stepB"`
	SamePartitioning bool   `json:"samePartitioning"`
	Note             string `json:"note"`
}

// timelineTargetJSON is one attribute's summarized evolution.
type timelineTargetJSON struct {
	Target string             `json:"target"`
	Steps  []timelineStepJSON `json:"steps"`
	Drifts []driftJSON        `json:"drifts,omitempty"`
}

// timelineResponse is the POST /timeline body. Live reports the answer was
// assembled from the commit-maintained timeline (head-relative all-default
// requests; see live.go) rather than a request-time chain walk; Cached
// reports a live answer served whole from the memo for the same head.
type timelineResponse struct {
	Head     string               `json:"head"`
	Versions []string             `json:"versions"` // root → head
	Steps    int                  `json:"steps"`
	Live     bool                 `json:"live,omitempty"`
	Cached   bool                 `json:"cached,omitempty"`
	Targets  []timelineTargetJSON `json:"targets"`
	Skipped  map[string]string    `json:"skipped,omitempty"`
}

// timelineTol is the change tolerance of the lineage walk (the engine
// default, also used by GET /diff).
const timelineTol = 1e-9

// handleTimeline walks the store lineage head→root and summarizes every
// step, reusing the summarize LRU per step: each (from, to, target) triple
// is cached under the same (from, to, options-fingerprint) key POST
// /summarize uses, so a timeline request warms the pair cache and vice
// versa. Steps run concurrently; identical in-flight work is collapsed by
// the cache's singleflight.
func (s *Server) handleTimeline(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	var req timelineRequest
	// Every field is optional, so an absent body is the all-defaults
	// request, not an error.
	if err := decodeJSON(r, &req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, err)
		return
	}
	// The head-relative all-defaults question — "what does the timeline at
	// the current head look like?" — is answered from the live maintained
	// timeline and memoized per head version; explicit heads, targets, or
	// tuning fall through to the request-time walk below.
	if req.Head == "" && req.Target == "" &&
		req.Alpha == nil && req.C == nil && req.T == nil && req.TopK == nil {
		s.handleLiveTimeline(sh, w, r)
		return
	}
	head := req.Head
	if head == "" {
		hv, err := sh.st.Head()
		if err != nil {
			writeError(w, err)
			return
		}
		head = hv.ID
	}
	chain, err := sh.st.Chain(head)
	if err != nil {
		writeError(w, err)
		return
	}
	if len(chain) < 2 {
		writeError(w, errTimelineTooShort)
		return
	}
	steps := len(chain) - 1

	// Materialize each version exactly once and align the consecutive pairs
	// up front — Align never mutates its inputs, so a middle snapshot can
	// safely be one step's target and the next step's source. The chain is
	// materialized delta-natively: a cold walk checks out the root and
	// derives each next snapshot from its version's ChangeSet, so it parses
	// one CSV instead of one per version; cached snapshots short-circuit to
	// the warm clone path. changedBy[i] is the per-step changed-attribute
	// set.
	ctx := r.Context()
	ids := make([]string, len(chain))
	for i, v := range chain {
		ids[i] = v.ID
	}
	tables, err := history.MaterializeChainContext(ctx, sh.st, ids)
	if err != nil {
		writeError(w, err)
		return
	}
	aligned := make([]*diff.Aligned, steps)
	changedBy := make([]map[string]bool, steps)
	var schemaAttrs []string         // non-key attrs in schema order
	numeric := map[string]bool{}     // attr -> numeric?
	everChanged := map[string]bool{} // union across steps
	for i := 0; i < steps; i++ {
		a, err := diff.Align(tables[i], tables[i+1])
		if err != nil {
			writeError(w, err)
			return
		}
		aligned[i] = a
		if schemaAttrs == nil {
			keySet := map[string]bool{}
			for _, k := range a.Source.Key() {
				keySet[k] = true
			}
			for _, f := range a.Source.Schema() {
				if keySet[f.Name] {
					continue
				}
				schemaAttrs = append(schemaAttrs, f.Name)
				numeric[f.Name] = f.Type.Numeric()
			}
		}
		attrs, err := a.ChangedAttrs(timelineTol)
		if err != nil {
			writeError(w, err)
			return
		}
		changedBy[i] = map[string]bool{}
		for _, attr := range attrs {
			changedBy[i][attr] = true
			everChanged[attr] = true
		}
	}

	// Target set: the explicit request target (validated, so a typo reads
	// as an error rather than a fabricated all-no-change timeline), else
	// every changed numeric attribute in schema order (categorical changes
	// are reported skipped).
	var targets []string
	skipped := map[string]string{}
	if req.Target != "" {
		isNumeric, known := numeric[req.Target]
		switch {
		case !known:
			writeError(w, fmt.Errorf("unknown target attribute %q", req.Target))
			return
		case !isNumeric:
			writeError(w, fmt.Errorf("target attribute %q is not numeric (categorical changes cannot be summarized)", req.Target))
			return
		}
		targets = []string{req.Target}
	} else {
		for _, attr := range schemaAttrs {
			if !everChanged[attr] {
				continue
			}
			if !numeric[attr] {
				skipped[attr] = "non-numeric attribute (categorical change)"
				continue
			}
			targets = append(targets, attr)
		}
	}

	// Per-target engine options; the fingerprint keys the LRU.
	optsByTarget := make([]core.Options, len(targets))
	fpByTarget := make([]string, len(targets))
	for ti, target := range targets {
		opts := core.DefaultOptions(target)
		if req.Alpha != nil {
			opts.Alpha = *req.Alpha
		}
		if req.C != nil {
			opts.C = *req.C
		}
		if req.T != nil {
			opts.T = *req.T
		}
		if req.TopK != nil {
			opts.TopK = *req.TopK
		}
		if steps > 1 {
			// The step fan-out supplies the parallelism; single-threaded
			// engine runs keep total concurrency at GOMAXPROCS instead of
			// squaring it. Workers is excluded from the fingerprint and the
			// engine is worker-count-independent, so cached results stay
			// interchangeable with POST /summarize.
			opts.Workers = 1
		}
		optsByTarget[ti] = opts
		fpByTarget[ti] = opts.Fingerprint()
	}

	// Fan the steps out over a bounded pool. Within a step, the targets run
	// sequentially through one lazily built PairContext, so a cold walk
	// builds each pair's atom cache and split index once across all its
	// targets; every result still lands in the LRU under the same key POST
	// /summarize uses, so repeats cost nothing and concurrent duplicates
	// collapse to one execution.
	type cell struct {
		ranked []core.Ranked
		hit    bool
		err    error
		run    bool
	}
	cells := make([][]cell, len(targets))
	for ti := range targets {
		cells[ti] = make([]cell, steps)
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < steps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The pool gate observes the request context: a cancelled or
			// timed-out request stops dispatching steps instead of walking
			// the rest of the lineage for a reader that is gone.
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				for ti := range targets {
					cells[ti][i].err = ctx.Err()
				}
				return
			}
			defer func() { <-sem }()
			var pctx *core.PairContext // built on the step's first cache miss
			from, to := chain[i].ID, chain[i+1].ID
			for ti := range targets {
				if !changedBy[i][targets[ti]] {
					continue // NoChange step: no engine run
				}
				if err := ctx.Err(); err != nil {
					cells[ti][i].err = err
					return
				}
				key := sh.cacheKeyPrefix() + from + "|" + to + "|" + fpByTarget[ti]
				val, hit, err := s.cache.Do(key, func() (any, error) {
					if s.stepHook != nil {
						s.stepHook()
					}
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					if pctx == nil {
						var err error
						if pctx, err = core.NewPairContext(aligned[i]); err != nil {
							return nil, err
						}
					}
					return pctx.Summarize(optsByTarget[ti])
				})
				c := &cells[ti][i]
				c.run, c.hit, c.err = true, hit, err
				if err == nil {
					c.ranked = val.([]core.Ranked)
				}
			}
		}(i)
	}
	wg.Wait()
	// A dead request context outranks per-step errors: the walk was
	// abandoned, not broken.
	if err := ctx.Err(); err != nil {
		writeError(w, err)
		return
	}
	for ti := range targets {
		for i := range cells[ti] {
			if err := cells[ti][i].err; err != nil {
				writeError(w, err)
				return
			}
		}
	}

	resp := timelineResponse{Head: head, Steps: steps, Skipped: skipped}
	for _, v := range chain {
		resp.Versions = append(resp.Versions, v.ID)
	}
	for ti, target := range targets {
		tj := timelineTargetJSON{Target: target}
		// Assemble a history.Timeline alongside the wire steps so the drift
		// analysis is the library's, not a re-implementation.
		tl := &history.Timeline{Target: target}
		for i := 0; i < steps; i++ {
			c := cells[ti][i]
			sj := timelineStepJSON{From: chain[i].ID, To: chain[i+1].ID}
			hs := history.Step{From: i, To: i + 1}
			if !c.run {
				sj.NoChange, hs.NoChange = true, true
			} else {
				sj.Cached = c.hit
				sj.Ranked = EncodeRanked(c.ranked)
				hs.Ranked = c.ranked
				if len(c.ranked) > 0 && c.ranked[0].NoChange {
					sj.NoChange, hs.NoChange = true, true
				}
			}
			tj.Steps = append(tj.Steps, sj)
			tl.Steps = append(tl.Steps, hs)
		}
		for _, d := range tl.Drifts() {
			tj.Drifts = append(tj.Drifts, driftJSON{
				StepA: d.StepA, StepB: d.StepB,
				SamePartitioning: d.SamePartitioning,
				Note:             d.Note,
			})
		}
		resp.Targets = append(resp.Targets, tj)
	}
	writeJSON(w, http.StatusOK, resp)
}
