package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charles/internal/csvio"
	"charles/internal/store"
)

// commitLineage commits n single-numeric-column snapshots directly into st
// (salary moves every step, so a full timeline walk has exactly n-1 engine
// steps for exactly one target) and returns the version ids root→head.
func commitLineage(t *testing.T, st *store.Store, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	parent := ""
	for i := 0; i < n; i++ {
		csv := fmt.Sprintf("name,dept,salary\nanne,eng,%d\nbob,eng,%d\ncara,hr,%d\n",
			1000+10*i, 2000+20*i, 3000+30*i)
		tb, err := csvio.Read(strings.NewReader(csv), csvio.Options{Key: []string{"name"}})
		if err != nil {
			t.Fatal(err)
		}
		v, err := st.Commit(tb, parent, fmt.Sprintf("v%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	return ids
}

// TestClientCancelAbortsTimelineWalk is the serving half of the robustness
// acceptance: a client that disconnects mid-/timeline stops the walk — the
// step counter stops advancing instead of burning CPU on the remaining
// steps — and the limiter slot the request held is returned.
func TestClientCancelAbortsTimelineWalk(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	commitLineage(t, st, 40) // 39 steps x 15ms >> the cancellation latency
	srv := NewServerWith(st, Config{MaxInFlight: 1})
	var stepsRun atomic.Int64
	srv.stepHook = func() {
		stepsRun.Add(1)
		time.Sleep(15 * time.Millisecond)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/timeline", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	clientErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		clientErr <- err
	}()

	deadline := time.Now().Add(10 * time.Second)
	for stepsRun.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("timeline walk never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel() // client disconnects mid-walk
	if err := <-clientErr; err == nil {
		t.Fatal("cancelled client request reported success")
	}
	// The handler winds down and returns its limiter slot.
	for srv.ServingStats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler still in flight after client cancel")
		}
		time.Sleep(time.Millisecond)
	}
	n := stepsRun.Load()
	if n >= 39 {
		t.Fatalf("walk ran all %d steps despite mid-walk cancellation", n)
	}
	// The counter has genuinely stopped, not merely paused.
	time.Sleep(100 * time.Millisecond)
	if again := stepsRun.Load(); again != n {
		t.Fatalf("steps still advancing after handler exit: %d -> %d", n, again)
	}
	// With MaxInFlight=1, the next request only succeeds if the slot came back.
	resp, body := get(t, ts.URL+"/versions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after cancel: status %d: %s (limiter slot leaked?)", resp.StatusCode, body)
	}
}

// TestLimiterShedsAtCapacity pins the load-shedding contract: at
// MaxInFlight the next request is rejected immediately with 429 and a
// Retry-After header — never queued — while /healthz and /stats keep
// answering, and slots freed by finishing requests are reusable.
func TestLimiterShedsAtCapacity(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	commitLineage(t, st, 3)
	srv := NewServerWith(st, Config{MaxInFlight: 2, RetryAfter: 7 * time.Second})
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	srv.testDelay = func(*http.Request) {
		started <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/versions")
			if err != nil {
				done <- -1
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
	}
	<-started
	<-started // both slots held

	resp, body := get(t, ts.URL+"/versions")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", ra)
	}
	if !strings.Contains(string(body), "capacity") {
		t.Fatalf("shed body %q does not explain itself", body)
	}

	// Liveness and stats bypass the limiter — a busy box is not a dead box.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", resp.StatusCode)
	}
	resp, body = get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats under saturation: %d", resp.StatusCode)
	}
	var stats struct {
		Serving ServingStats `json:"serving"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Serving.MaxInFlight != 2 || stats.Serving.InFlight != 2 || stats.Serving.Shed != 1 {
		t.Fatalf("serving stats %+v, want cap 2, 2 in flight, 1 shed", stats.Serving)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("blocked request finished with %d", code)
		}
	}
	// Freed slots serve again instead of shedding.
	srv.testDelay = nil
	resp, _ = get(t, ts.URL+"/versions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after slots freed: %d", resp.StatusCode)
	}
	if got := srv.ServingStats().InFlight; got != 0 {
		t.Fatalf("in-flight count %d after all requests done (slot leak)", got)
	}
}

// TestRequestTimeoutReturns503 pins the per-request deadline: work that
// outlives RequestTimeout is cut off server-side and answered 503.
func TestRequestTimeoutReturns503(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	commitLineage(t, st, 3)
	srv := NewServerWith(st, Config{RequestTimeout: 50 * time.Millisecond})
	srv.stepHook = func() { time.Sleep(200 * time.Millisecond) } // outlive the deadline
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/timeline", map[string]any{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request answered %d, want 503: %s", resp.StatusCode, body)
	}
}

// TestGracefulDrainUnderLoad is the -race soak of limiter + drain: a fleet
// of clients hammers a small server (low MaxInFlight, so shedding happens
// constantly) while SIGTERM-equivalent cancellation lands mid-flight. Every
// request that got a response got a well-defined one (200 served, 429
// shed), Serve returns clean within the drain deadline, and no limiter
// slot leaks. Long-lived /timeline/watch subscribers ride along: an SSE
// stream and a blocked long-poll each hold a limiter slot through the
// drain and must be told about it — a "drain" event then clean EOF for
// the stream, a 200 draining body for the poll — instead of being
// force-closed at the deadline with their slots still held.
func TestGracefulDrainUnderLoad(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	ids := commitLineage(t, st, 6)
	// 4 slots: the two watch subscribers pin one each for the whole soak,
	// leaving two for the hammering clients — still few enough to shed.
	srv := NewServerWith(st, Config{MaxInFlight: 4, RequestTimeout: 5 * time.Second})
	hs := &http.Server{Handler: srv}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, hs, ln, 5*time.Second) }()
	base := "http://" + ln.Addr().String()

	var mu sync.Mutex
	var codes []int
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sumBody, _ := json.Marshal(summarizeRequest{From: ids[0], To: ids[1], Target: "salary"})
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				var err error
				switch i % 3 {
				case 0:
					resp, err = http.Get(base + "/healthz")
				case 1:
					resp, err = http.Get(base + "/versions")
				default:
					resp, err = http.Post(base+"/summarize", "application/json", bytes.NewReader(sumBody))
				}
				if err != nil {
					// The drain has closed the listener; nothing more to send.
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				codes = append(codes, resp.StatusCode)
				mu.Unlock()
			}
		}(i)
	}

	sseDrained := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/timeline/watch")
		if err != nil {
			sseDrained <- err
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body) // until the handler exits
		if err != nil {
			sseDrained <- fmt.Errorf("SSE read: %w", err)
			return
		}
		if !bytes.Contains(data, []byte("event: drain")) {
			sseDrained <- fmt.Errorf("SSE stream ended without a drain event:\n%s", data)
			return
		}
		sseDrained <- nil
	}()
	pollDrained := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/timeline/watch?since=" + ids[5])
		if err != nil {
			pollDrained <- err
			return
		}
		defer resp.Body.Close()
		var pr watchPollResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			pollDrained <- err
			return
		}
		if !pr.Draining {
			pollDrained <- fmt.Errorf("blocked poll answered %+v, want draining", pr)
			return
		}
		pollDrained <- nil
	}()
	// Both subscribers must be registered (and holding slots) before the
	// drain begins, or the test would not exercise their shutdown path.
	for deadline := time.Now().Add(10 * time.Second); srv.watchSubs.Load() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("watch subscribers never registered")
		}
		time.Sleep(time.Millisecond)
	}

	time.Sleep(100 * time.Millisecond) // let the load build
	cancel()                           // SIGTERM
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("drain returned %v, want clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("drain did not complete within the deadline")
	}
	close(stop)
	wg.Wait()

	if len(codes) == 0 {
		t.Fatal("soak produced no completed requests")
	}
	for _, c := range codes {
		if c != http.StatusOK && c != http.StatusTooManyRequests {
			t.Fatalf("request finished with %d during drain, want only 200/429", c)
		}
	}
	watchers := []struct {
		name string
		ch   chan error
	}{{"SSE watcher", sseDrained}, {"long-poll watcher", pollDrained}}
	for _, wtc := range watchers {
		select {
		case err := <-wtc.ch:
			if err != nil {
				t.Errorf("%s: %v", wtc.name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s did not finish after the drain", wtc.name)
		}
	}
	if got := srv.watchSubs.Load(); got != 0 {
		t.Fatalf("watch subscriber gauge %d after drain, want 0", got)
	}
	if got := srv.ServingStats().InFlight; got != 0 {
		t.Fatalf("in-flight count %d after drain (slot leak)", got)
	}
}
