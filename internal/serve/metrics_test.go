package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"charles/internal/gen"
	"charles/internal/metrics"
	"charles/internal/store"
)

// scrape fetches GET /metrics and lints the exposition text before
// returning it — every scrape in the suite doubles as a format check.
func scrape(t *testing.T, base string) []byte {
	t.Helper()
	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	if err := metrics.Lint(body); err != nil {
		t.Fatalf("metrics output fails lint: %v\n%s", err, body)
	}
	return body
}

// metricValue asserts a sample exists and returns it.
func metricValue(t *testing.T, body []byte, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := metrics.Value(body, name, labels)
	if !ok {
		t.Fatalf("metric %s%v not found in:\n%s", name, labels, body)
	}
	return v
}

// TestMetricsExactUnderHammer drives a known request mix — concurrently,
// under -race — at a hub server and requires the /metrics counters to be
// exact: per-route × per-shard × status-class request counts (404 shard
// resolves included), histogram observation counts, and store/hub gauges.
func TestMetricsExactUnderHammer(t *testing.T) {
	_, ts := newHubTestServer(t, store.HubOptions{MemoryBudget: 8 << 20})
	d1, d2 := gen.Toy()
	v1 := commitTo(t, ts.URL, "acme", "payroll", csvOf(t, d1), "", "2016")
	commitTo(t, ts.URL, "acme", "payroll", csvOf(t, d2), v1.ID, "2017")

	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// One good read and one against a dataset that does not
				// exist — the shard-resolve failure must be counted too.
				resp, _ := get(t, ts.URL+"/datasets/acme/payroll/versions")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("good read status %d", resp.StatusCode)
				}
				resp, _ = get(t, ts.URL+"/datasets/nope/miss/versions")
				if resp.StatusCode != http.StatusNotFound {
					t.Errorf("missing dataset status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()

	const reads = workers * perWorker // 100 per shard
	body := scrape(t, ts.URL)
	versionsRoute := "/datasets/{tenant}/{ds}/versions"
	if got := metricValue(t, body, "charles_http_requests_total",
		map[string]string{"route": versionsRoute, "shard": "acme/payroll", "class": "2xx"}); got != reads+2 {
		t.Errorf("acme/payroll 2xx = %v, want %d (%d reads + 2 commits)", got, reads+2, reads)
	}
	if got := metricValue(t, body, "charles_http_requests_total",
		map[string]string{"route": versionsRoute, "shard": "nope/miss", "class": "4xx"}); got != reads {
		t.Errorf("nope/miss 4xx = %v, want %d", got, reads)
	}
	// The latency histogram saw every request on the route: 100 good
	// reads + 100 failed resolves + 2 commits.
	if got := metricValue(t, body, "charles_http_request_duration_seconds_count",
		map[string]string{"route": versionsRoute}); got != 2*reads+2 {
		t.Errorf("duration count = %v, want %d", got, 2*reads+2)
	}
	// Store and hub gauges are collected at scrape time.
	if got := metricValue(t, body, "charles_store_versions",
		map[string]string{"shard": "acme/payroll"}); got != 2 {
		t.Errorf("store versions gauge = %v, want 2", got)
	}
	if got := metricValue(t, body, "charles_hub_shard_ops_total",
		map[string]string{"shard": "acme/payroll", "kind": "commit"}); got != 2 {
		t.Errorf("hub commit counter = %v, want 2", got)
	}
	if got := metricValue(t, body, "charles_hub_budget_used_bytes", nil); got <= 0 {
		t.Errorf("budget used = %v, want > 0 after commits", got)
	}
	metricValue(t, body, "charles_http_in_flight", nil)
	if got := metricValue(t, body, "charles_store_cache_events_total",
		map[string]string{"shard": "acme/payroll", "cache": "tables", "event": "hit"}); got < 0 {
		t.Errorf("cache events counter = %v", got)
	}
}

// TestShedAndResolveFailuresCountedPerShard is the undercounting
// regression test: with the limiter saturated, shed 429s — and a shed
// request addressed to a hub-spelled shard — show up in the per-shard
// counters with a status dimension, in ServingStats and /metrics alike.
func TestShedAndResolveFailuresCountedPerShard(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	commitLineage(t, st, 2)
	srv := NewServerWith(st, Config{MaxInFlight: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	srv.testDelay = func(*http.Request) {
		started <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/versions")
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-started // the one slot is held

	// Three sheds against the default shard (legacy route), one against a
	// hub-addressed shard: attribution works from the raw path alone.
	for i := 0; i < 3; i++ {
		if resp, _ := get(t, ts.URL+"/versions"); resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated request %d status %d, want 429", i, resp.StatusCode)
		}
	}
	if resp, _ := get(t, ts.URL+"/datasets/acme/payroll/versions"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hub-addressed saturated request status %d, want 429", resp.StatusCode)
	}

	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked request finished %d", code)
	}

	stats := srv.ServingStats()
	if stats.Shed != 4 {
		t.Errorf("global shed = %d, want 4", stats.Shed)
	}
	def := stats.Shards["default/default"]
	if def.Requests != 4 || def.Shed != 3 {
		t.Errorf("default shard = %+v, want 4 requests / 3 shed", def)
	}
	if def.Status["2xx"] != 1 || def.Status["4xx"] != 3 {
		t.Errorf("default shard status = %v, want 2xx:1 4xx:3", def.Status)
	}
	acme := stats.Shards["acme/payroll"]
	if acme.Requests != 1 || acme.Shed != 1 || acme.Status["4xx"] != 1 {
		t.Errorf("acme/payroll shard = %+v, want 1 request / 1 shed / 4xx:1", acme)
	}

	body := scrape(t, ts.URL)
	if got := metricValue(t, body, "charles_http_requests_total",
		map[string]string{"route": "(shed)", "shard": "default/default", "class": "4xx"}); got != 3 {
		t.Errorf("shed requests row = %v, want 3", got)
	}
	if got := metricValue(t, body, "charles_http_requests_total",
		map[string]string{"route": "(shed)", "shard": "acme/payroll", "class": "4xx"}); got != 1 {
		t.Errorf("hub-addressed shed row = %v, want 1", got)
	}
	if got := metricValue(t, body, "charles_http_shed_total", nil); got != 4 {
		t.Errorf("shed total = %v, want 4", got)
	}
}

// TestExemptRoutesTolerateTrailingSlash is the probe-spelling regression
// test: /healthz/, /stats/, and /metrics/ must bypass the limiter and
// answer exactly like their canonical spellings, even at capacity —
// before the fix the literal-path comparison let the slashed spelling
// fall through to the limited mux and be shed with 429.
func TestExemptRoutesTolerateTrailingSlash(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(st, Config{MaxInFlight: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	srv.testDelay = func(*http.Request) {
		started <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	parked := make(chan struct{})
	go func() {
		defer close(parked)
		resp, err := http.Get(ts.URL + "/versions")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started // server saturated

	for _, path := range []string{
		"/healthz", "/healthz/", "/stats", "/stats/", "/metrics", "/metrics/",
	} {
		resp, body := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s under saturation: status %d, want 200: %s", path, resp.StatusCode, body)
		}
	}
	// The slashed metrics spelling serves real exposition text.
	resp, body := get(t, ts.URL+"/metrics/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics/ status %d", resp.StatusCode)
	}
	if err := metrics.Lint(body); err != nil {
		t.Errorf("metrics/ output fails lint: %v", err)
	}
	close(gate)
	<-parked

	// No exempt probe was shed or counted against a shard.
	if got := srv.ServingStats().Shed; got != 0 {
		t.Errorf("shed = %d, want 0 (exempt probes were shed)", got)
	}
}

// TestRequestLogGolden pins the structured request log schema: one JSON
// line per request with method, route pattern, shard, status, bytes, and
// duration, matched against a golden file after the volatile fields
// (time, duration, bytes) are normalized.
func TestRequestLogGolden(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	srv := NewServerWith(st, Config{RequestLog: &logBuf})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	d1, _ := gen.Toy()
	commit(t, ts.URL, csvOf(t, d1), "", "2016") // POST /versions -> 200
	get(t, ts.URL+"/versions")                  // GET  /versions -> 200
	get(t, ts.URL+"/versions/nope")             // GET  {id} route -> 404
	get(t, ts.URL+"/healthz/")                  // exempt, normalized -> 200
	get(t, ts.URL+"/bogus")                     // unmatched -> 404
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/versions", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // wrong method -> 405

	var got bytes.Buffer
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		for _, k := range []string{"time", "method", "route", "path", "status", "bytes", "duration_ms"} {
			if _, ok := e[k]; !ok {
				t.Errorf("log line missing %q: %s", k, line)
			}
		}
		// Normalize the volatile fields; everything else must be exact.
		e["time"] = "TS"
		e["duration_ms"] = 0
		e["bytes"] = 0
		norm, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		got.Write(norm)
		got.WriteByte('\n')
	}

	goldenPath := filepath.Join("testdata", "requestlog.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("request log drifted from golden:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// mutexCounters replicates the pre-fix counter lookup — one exclusive
// mutex around the map fetch on every request — as the benchmark
// reference BenchmarkShardCounters pins the sync.Map win against.
type mutexCounters struct {
	mu sync.Mutex
	m  map[string]*shardCounters
}

func (c *mutexCounters) counters(key string) *shardCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc, ok := c.m[key]
	if !ok {
		sc = &shardCounters{}
		c.m[key] = sc
	}
	return sc
}

// benchKeys is a stable shard-key working set: a handful of hot shards,
// as in production, where the map stops growing almost immediately.
var benchKeys = [...]string{
	"acme/payroll", "acme/sales", "globex/events", "globex/payroll",
	"initech/tps", "initech/reports", "umbrella/labs", "umbrella/retail",
}

func BenchmarkShardCountersMutex(b *testing.B) {
	c := &mutexCounters{m: map[string]*shardCounters{}}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.counters(benchKeys[i%len(benchKeys)]).requests.Add(1)
			i++
		}
	})
}

func BenchmarkShardCountersSyncMap(b *testing.B) {
	st, err := store.Open("")
	if err != nil {
		b.Fatal(err)
	}
	s := NewServer(st, 8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.counters(benchKeys[i%len(benchKeys)]).requests.Add(1)
			i++
		}
	})
}

// TestMetricsStatsParity cross-checks the two observability surfaces:
// the per-shard totals /stats reports must equal what /metrics exposes.
func TestMetricsStatsParity(t *testing.T) {
	_, ts := newHubTestServer(t, store.HubOptions{})
	d1, _ := gen.Toy()
	commitTo(t, ts.URL, "acme", "payroll", csvOf(t, d1), "", "2016")
	get(t, ts.URL+"/datasets/acme/payroll/versions")
	get(t, ts.URL+"/datasets/acme/payroll/versions")

	resp, body := get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats struct {
		Serving ServingStats `json:"serving"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	sh := stats.Serving.Shards["acme/payroll"]
	if sh.Requests != 3 || sh.Status["2xx"] != 3 {
		t.Fatalf("serving stats = %+v, want 3 requests all 2xx", sh)
	}

	mbody := scrape(t, ts.URL)
	var metricTotal float64
	for _, route := range []string{"/datasets/{tenant}/{ds}/versions"} {
		if v, ok := metrics.Value(mbody, "charles_http_requests_total",
			map[string]string{"route": route, "shard": "acme/payroll", "class": "2xx"}); ok {
			metricTotal += v
		}
	}
	if int64(metricTotal) != sh.Requests {
		t.Errorf("metrics total %v != stats total %d", metricTotal, sh.Requests)
	}
}
