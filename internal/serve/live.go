// Live timelines: the serve-side consumer of the store's commit
// notifications. A liveRegistry keeps one liveShard per dataset; each shard
// owns an incrementally maintained history.TimelineMaintainer (extended by
// exactly one engine step per commit, rebuilt from the chain when the
// incremental step cannot apply — schema change, missed notes, branch
// switch) plus a bounded ring of watch events fanned out to /timeline/watch
// subscribers. Head-relative POST /timeline answers are assembled from the
// maintainer and memoized whole-response keyed by the head version id, so a
// warm answer costs one cache lookup regardless of chain length — the
// "query answering under updates" discipline applied end to end.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"charles/internal/core"
	"charles/internal/history"
	"charles/internal/store"
	"charles/internal/table"
)

// liveEventRing bounds the per-shard buffered watch events a late or
// reconnecting long-poller can still observe; older history is answered
// with resync=true (re-fetch POST /timeline from the head).
const liveEventRing = 64

// watcherBuffer is each subscriber's event channel capacity; a subscriber
// that falls behind has its oldest pending event dropped and the next
// delivered event marked resync.
const watcherBuffer = 8

// watchPollTimeout bounds a blocking long-poll: after this long with no
// commit the poll returns 200 with an empty event list and the client
// re-polls — never a 503, so pollers cannot distinguish idle from slow.
const watchPollTimeout = 25 * time.Second

// errTimelineTooShort is the shared too-few-versions error of both the
// legacy walk and the live maintainer path.
var errTimelineTooShort = errors.New("timeline needs a lineage of at least 2 versions")

// watchTargetJSON is one attribute's state after the newest step: whether
// the step changed it and the latest drift note (how the newest policy
// relates to the previous step's).
type watchTargetJSON struct {
	Target   string `json:"target"`
	NoChange bool   `json:"noChange,omitempty"`
	Drift    string `json:"drift,omitempty"`
}

// watchEvent is one commit's effect on a dataset's live timeline, as
// delivered to /timeline/watch subscribers (SSE "step" events and long-poll
// event lists).
type watchEvent struct {
	Seq     int64             `json:"seq"`               // per-shard event sequence
	Head    string            `json:"head"`              // new head version id
	Parent  string            `json:"parent,omitempty"`  // its parent
	Version int               `json:"version,omitempty"` // store commit seq
	Mode    string            `json:"mode"`              // "extend", "rebuild", or "skip"
	Steps   int               `json:"steps"`             // maintained steps after this commit
	Targets []watchTargetJSON `json:"targets,omitempty"`
	// Resync reports a gap: events were dropped before this one (slow
	// subscriber) — re-fetch POST /timeline for the authoritative state.
	Resync bool `json:"resync,omitempty"`
}

// watchPollResponse is the GET /timeline/watch?since= body.
type watchPollResponse struct {
	Head     string       `json:"head"`
	Seq      int64        `json:"seq"`
	Resync   bool         `json:"resync,omitempty"`
	Draining bool         `json:"draining,omitempty"`
	Events   []watchEvent `json:"events"`
}

// watchHeadJSON is the initial SSE "head" event payload.
type watchHeadJSON struct {
	Head string `json:"head"`
	Seq  int64  `json:"seq"`
}

// liveWatcher is one subscriber's delivery channel. missed (guarded by the
// shard mutex) records that an event could not be delivered, so the next
// one that can be is marked Resync.
type liveWatcher struct {
	ch     chan watchEvent
	missed bool
}

// liveShard is one dataset's live-timeline state. The mutex serializes
// maintenance (commit application, rebuilds) with readers; engine work runs
// under it, which is safe because it is a serve-layer lock — the store's
// own locks are never held while it is.
type liveShard struct {
	key string // "tenant/dataset"

	mu       sync.Mutex
	maint    *history.TimelineMaintainer // nil until a ≥2-version chain exists
	head     string                      // last observed head version id
	seq      int64                       // event sequence, 1-based
	events   []watchEvent                // ring of the last liveEventRing events
	watchers map[*liveWatcher]struct{}
}

// liveRegistry maps dataset keys to their live shards, created on first
// interest (a watch subscription or a head-relative timeline request).
type liveRegistry struct {
	mu     sync.Mutex
	shards map[string]*liveShard
}

func newLiveRegistry() *liveRegistry {
	return &liveRegistry{shards: map[string]*liveShard{}}
}

// shard returns (creating on first use) the key's live shard.
func (lr *liveRegistry) shard(key string) *liveShard {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	ls, ok := lr.shards[key]
	if !ok {
		ls = &liveShard{key: key, watchers: map[*liveWatcher]struct{}{}}
		lr.shards[key] = ls
	}
	return ls
}

// lookup returns the key's live shard, nil when nobody has shown interest.
func (lr *liveRegistry) lookup(key string) *liveShard {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.shards[key]
}

// pumpStore drives the single-store commit feed into the live registry. It
// exits when the store closes its subscription channel.
func (s *Server) pumpStore(sub *store.Subscription) {
	for note := range sub.C() {
		s.onCommit(s.defTenant, s.defDataset, note.Version)
	}
}

// pumpHub drives the hub-wide commit feed (every shard's commits, fanned in
// by the hub) into the live registry.
func (s *Server) pumpHub(sub *store.HubSubscription) {
	for note := range sub.C() {
		s.onCommit(note.Tenant, note.Dataset, note.Version)
	}
}

// onCommit applies one commit notification: always counted, and — when the
// dataset has a live shard (someone watched or asked for a live timeline) —
// the maintainer advances by exactly one engine step (mode "extend"),
// rebuilds from the chain when the step cannot apply (mode "rebuild"), or
// records the head move without a timeline (mode "skip": root commits,
// unmaterializable chains). The resulting event fans out to watchers.
func (s *Server) onCommit(tenant, dataset string, v *store.Version) {
	key := tenant + "/" + dataset
	s.metrics.notifications.With(key).Inc()
	ls := s.live.lookup(key)
	if ls == nil {
		return // nobody is live on this dataset; first interest seeds from the head
	}
	st := s.store
	if s.hub != nil {
		var release func()
		var err error
		st, release, err = s.hub.AcquireExisting(tenant, dataset)
		if err != nil {
			return // evicted or closing; the next reader reseeds
		}
		defer release()
	}
	mode := ls.applyCommit(st, v)
	s.metrics.maintenance.With(key, mode).Inc()
}

// applyCommit advances the shard's maintained timeline for one commit and
// publishes the resulting watch event. Returns the maintenance mode.
func (ls *liveShard) applyCommit(st *store.Store, v *store.Version) string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.head == v.ID {
		return "skip" // already observed (seeded from the head after this commit)
	}
	mode := ""
	if ls.maint != nil && ls.maint.Head() == v.ID {
		// A request-path build already absorbed this commit (the reader
		// raced the pump); just record the head move.
		mode = "skip"
		ls.head = v.ID
		ls.publishLocked(v, mode)
		return mode
	}
	if ls.maint != nil && ls.maint.Head() == v.Parent {
		if err := ls.maint.ExtendFromSource(st, v.ID); err == nil {
			mode = "extend"
		}
		// A failed extend (schema change) leaves the maintainer unchanged;
		// fall through to the rebuild.
	}
	if mode == "" {
		if m, err := rebuildMaintainer(st, v.ID); err == nil {
			ls.maint, mode = m, "rebuild"
		} else {
			ls.maint, mode = nil, "skip"
		}
	}
	ls.head = v.ID
	ls.publishLocked(v, mode)
	return mode
}

// rebuildMaintainer builds a maintainer from scratch over v's full chain —
// the fallback when the one-step extension cannot apply.
func rebuildMaintainer(st *store.Store, head string) (*history.TimelineMaintainer, error) {
	chain, err := st.Chain(head)
	if err != nil {
		return nil, err
	}
	if len(chain) < 2 {
		return nil, errTimelineTooShort
	}
	ids := make([]string, len(chain))
	for i, v := range chain {
		ids[i] = v.ID
	}
	mats, err := history.MaterializeChain(st, ids)
	if err != nil {
		return nil, err
	}
	return history.NewTimelineMaintainer(mats, ids, core.DefaultOptions(""))
}

// publishLocked (caller holds ls.mu) appends one event to the ring and fans
// it out. Delivery never blocks: a full subscriber loses its oldest pending
// event and the delivered copy is marked Resync; if even that cannot be
// sent the watcher is marked missed and its next delivered event resyncs.
func (ls *liveShard) publishLocked(v *store.Version, mode string) {
	ls.seq++
	ev := watchEvent{
		Seq: ls.seq, Head: v.ID, Parent: v.Parent, Version: v.Seq,
		Mode: mode,
	}
	if ls.maint != nil {
		mt := ls.maint.Timeline()
		ev.Steps = mt.Steps
		last := mt.Steps - 1
		for _, attr := range mt.Attrs {
			tl := mt.Timelines[attr]
			tj := watchTargetJSON{Target: attr, NoChange: tl.Steps[last].NoChange}
			if drifts := tl.Drifts(); len(drifts) > 0 {
				tj.Drift = drifts[len(drifts)-1].Note
			}
			ev.Targets = append(ev.Targets, tj)
		}
	}
	ls.events = append(ls.events, ev)
	if len(ls.events) > liveEventRing {
		ls.events = append(ls.events[:0], ls.events[len(ls.events)-liveEventRing:]...)
	}
	for w := range ls.watchers {
		out := ev
		if w.missed {
			out.Resync = true
		}
		select {
		case w.ch <- out:
			w.missed = false
		default:
			select {
			case <-w.ch:
			default:
			}
			out.Resync = true
			select {
			case w.ch <- out:
				w.missed = false
			default:
				w.missed = true
			}
		}
	}
}

// eventsSinceLocked (caller holds ls.mu) returns the buffered events after
// the one whose head is since. An unknown since (older than the ring, or a
// divergent id) returns everything buffered with resync=true.
func (ls *liveShard) eventsSinceLocked(since string) ([]watchEvent, bool) {
	if since == "" {
		return append([]watchEvent{}, ls.events...), false
	}
	for i := len(ls.events) - 1; i >= 0; i-- {
		if ls.events[i].Head == since {
			return append([]watchEvent{}, ls.events[i+1:]...), false
		}
	}
	return append([]watchEvent{}, ls.events...), true
}

// liveShardFor returns the request's live shard, seeding its head from the
// store on first touch so long-pollers have a version id to poll against
// before any commit lands post-subscription.
func (s *Server) liveShardFor(sh *shardRef) *liveShard {
	ls := s.live.shard(sh.tenant + "/" + sh.dataset)
	ls.seedHead(sh)
	return ls
}

// seedHead fills in the shard's head from the store on first touch.
func (ls *liveShard) seedHead(sh *shardRef) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.head == "" {
		if hv, err := sh.st.Head(); err == nil {
			ls.head = hv.ID
		}
	}
}

// beginPoll atomically answers a long-poll that can complete immediately
// (the head already moved past since) or registers a watcher for one that
// must wait. When immediate is false, resp carries the head/seq snapshot
// the caller echoes on timeout or drain, and wt must be released with
// dropWatcher.
func (ls *liveShard) beginPoll(since string) (resp watchPollResponse, immediate bool, wt *liveWatcher) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.head != since {
		events, resync := ls.eventsSinceLocked(since)
		return watchPollResponse{Head: ls.head, Seq: ls.seq, Resync: resync, Events: events}, true, nil
	}
	wt = &liveWatcher{ch: make(chan watchEvent, watcherBuffer)}
	ls.watchers[wt] = struct{}{}
	return watchPollResponse{Head: ls.head, Seq: ls.seq, Events: []watchEvent{}}, false, wt
}

// addWatcher registers a stream subscriber and snapshots the position it
// starts from.
func (ls *liveShard) addWatcher() (wt *liveWatcher, head string, seq int64) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	wt = &liveWatcher{ch: make(chan watchEvent, watcherBuffer)}
	ls.watchers[wt] = struct{}{}
	return wt, ls.head, ls.seq
}

// dropWatcher unregisters a subscriber added by beginPoll or addWatcher.
func (ls *liveShard) dropWatcher(wt *liveWatcher) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	delete(ls.watchers, wt)
}

// handleWatch is GET /timeline/watch: with ?since=<version> a single
// long-poll (immediate when the head already moved past since, otherwise
// blocking until the next commit, the drain, or the poll timeout); without
// it a server-sent-event stream of "head" (initial position), "step" (one
// event per commit), and "drain" (shutdown) events. Both spellings hold a
// limiter slot and end promptly when the server begins draining.
func (s *Server) handleWatch(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	ls := s.liveShardFor(sh)
	if r.URL.Query().Has("since") {
		s.watchPoll(ls, w, r)
		return
	}
	s.watchSSE(ls, w, r)
}

// watchPoll answers one long-poll cycle.
func (s *Server) watchPoll(ls *liveShard, w http.ResponseWriter, r *http.Request) {
	since := r.URL.Query().Get("since")
	resp, immediate, wt := ls.beginPoll(since)
	if immediate {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.watchSubs.Add(1)
	defer func() {
		ls.dropWatcher(wt)
		s.watchSubs.Add(-1)
	}()
	timer := time.NewTimer(watchPollTimeout)
	defer timer.Stop()
	select {
	case ev := <-wt.ch:
		writeJSON(w, http.StatusOK, watchPollResponse{
			Head: ev.Head, Seq: ev.Seq, Resync: ev.Resync, Events: []watchEvent{ev},
		})
	case <-s.drain:
		resp.Draining = true
		writeJSON(w, http.StatusOK, resp)
	case <-timer.C:
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Client gone (or the request deadline fired): nothing to write.
	}
}

// watchSSE streams events until the client disconnects or the server
// drains.
func (s *Server) watchSSE(ls *liveShard, w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	wt, head, seq := ls.addWatcher()
	s.watchSubs.Add(1)
	defer func() {
		ls.dropWatcher(wt)
		s.watchSubs.Add(-1)
	}()
	rc := http.NewResponseController(w)
	if err := writeSSE(w, "head", watchHeadJSON{Head: head, Seq: seq}); err != nil {
		return
	}
	_ = rc.Flush()
	for {
		select {
		case ev := <-wt.ch:
			if err := writeSSE(w, "step", ev); err != nil {
				return
			}
			_ = rc.Flush()
		case <-s.drain:
			_ = writeSSE(w, "drain", map[string]string{"reason": "server draining"})
			_ = rc.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE writes one server-sent event with a JSON data payload.
func writeSSE(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// handleLiveTimeline answers the head-relative all-defaults POST /timeline
// from the shard's maintained timeline: resolve the head, assemble (or
// reuse) the maintainer's state for it, and memoize the whole response
// keyed by the head version id — a warm answer is one cache lookup, no
// engine work, no chain walk, regardless of lineage length.
func (s *Server) handleLiveTimeline(sh *shardRef, w http.ResponseWriter, r *http.Request) {
	hv, err := sh.st.Head()
	if err != nil {
		writeError(w, err)
		return
	}
	ls := s.liveShardFor(sh)
	ctx := r.Context()
	key := sh.cacheKeyPrefix() + "timeline|" + hv.ID
	val, hit, err := s.cache.Do(key, func() (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mt, ids, err := s.liveTimelineAt(ctx, sh, ls, hv.ID)
		if err != nil {
			return nil, err
		}
		// Seed the per-step LRU under the same keys POST /summarize uses,
		// so a live timeline warms pair questions exactly like the legacy
		// walk did (and vice versa: nothing here re-runs warm pairs).
		s.seedStepCache(sh, ids, mt)
		return encodeLiveTimeline(hv.ID, ids, mt), nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	resp := val.(timelineResponse)
	resp.Cached = hit
	writeJSON(w, http.StatusOK, resp)
}

// liveTimelineAt returns the maintained MultiTimeline for head, building or
// rebuilding the shard's maintainer when needed. A maintainer that has
// already advanced past head (a commit raced the request) answers from its
// prefix, so the reader still gets a consistent timeline for the head it
// resolved.
func (s *Server) liveTimelineAt(ctx context.Context, sh *shardRef, ls *liveShard, head string) (*history.MultiTimeline, []string, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.maint != nil {
		if ls.maint.Head() == head {
			return ls.maint.Timeline(), ls.maint.Versions(), nil
		}
		if mt, ids, ok := ls.maint.TimelineAt(head); ok {
			return mt, ids, nil
		}
	}
	chain, err := sh.st.Chain(head)
	if err != nil {
		return nil, nil, err
	}
	if len(chain) < 2 {
		return nil, nil, errTimelineTooShort
	}
	ids := make([]string, len(chain))
	for i, v := range chain {
		ids[i] = v.ID
	}
	mats, err := history.MaterializeChainContext(ctx, sh.st, ids)
	if err != nil {
		return nil, nil, err
	}
	base := core.DefaultOptions("")
	var m *history.TimelineMaintainer
	if s.stepHook == nil {
		m, err = history.NewTimelineMaintainerContext(ctx, mats, ids, base)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// Test seam: build step by step so the hook observes (and can stall)
		// each engine step, mirroring the legacy walk's per-step hook.
		m, err = seededMaintainer(ctx, s.stepHook, mats, ids, base)
		if err != nil {
			return nil, nil, err
		}
	}
	ls.maint = m
	if ls.head == "" {
		ls.head = head
	}
	return m.Timeline(), m.Versions(), nil
}

// seededMaintainer builds a maintainer one step at a time, invoking hook
// before each engine step and honoring ctx between steps.
func seededMaintainer(ctx context.Context, hook func(), mats []*table.Table, ids []string, base core.Options) (*history.TimelineMaintainer, error) {
	hook()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := history.NewTimelineMaintainerContext(ctx, mats[:2], ids[:2], base)
	if err != nil {
		return nil, err
	}
	for i := 2; i < len(ids); i++ {
		hook()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := m.Extend(ids[i], mats[i]); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// seedStepCache inserts the maintainer's per-step rankings into the result
// LRU under the (from, to, options-fingerprint) keys the summarize and
// legacy timeline paths use. Do is a hit for already-present keys, so
// repeated seeding is cheap and never recomputes.
func (s *Server) seedStepCache(sh *shardRef, ids []string, mt *history.MultiTimeline) {
	for _, attr := range mt.Attrs {
		fp := core.DefaultOptions(attr).Fingerprint()
		tl := mt.Timelines[attr]
		for _, hs := range tl.Steps {
			if len(hs.Ranked) == 0 {
				continue
			}
			ranked := hs.Ranked
			key := sh.cacheKeyPrefix() + ids[hs.From] + "|" + ids[hs.To] + "|" + fp
			_, _, _ = s.cache.Do(key, func() (any, error) { return ranked, nil })
		}
	}
}

// encodeLiveTimeline renders a maintained MultiTimeline as the wire
// timelineResponse. Semantically equivalent to the legacy walk's response
// for the same chain (same targets, steps, no-change flags, drifts, skip
// reasons); per-step Cached flags are not populated — the whole response is
// cached as a unit instead.
func encodeLiveTimeline(head string, ids []string, mt *history.MultiTimeline) timelineResponse {
	resp := timelineResponse{
		Head: head, Versions: ids, Steps: mt.Steps,
		Skipped: mt.Skipped, Live: true,
	}
	for _, attr := range mt.Attrs {
		tl := mt.Timelines[attr]
		tj := timelineTargetJSON{Target: attr}
		for _, hs := range tl.Steps {
			sj := timelineStepJSON{From: ids[hs.From], To: ids[hs.To], NoChange: hs.NoChange}
			if len(hs.Ranked) > 0 {
				sj.Ranked = EncodeRanked(hs.Ranked)
			}
			tj.Steps = append(tj.Steps, sj)
		}
		for _, d := range tl.Drifts() {
			tj.Drifts = append(tj.Drifts, driftJSON{
				StepA: d.StepA, StepB: d.StepB,
				SamePartitioning: d.SamePartitioning,
				Note:             d.Note,
			})
		}
		resp.Targets = append(resp.Targets, tj)
	}
	return resp
}
