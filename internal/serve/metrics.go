package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"charles/internal/metrics"
	"charles/internal/store"
)

// Observability: every request — served, shed, or failed at shard
// resolution — flows through one statusRecorder and is accounted exactly
// once in Server.finish: per-shard status-class counters (ServingStats),
// the Prometheus registry behind GET /metrics, and the structured request
// log. The scrape-time half (store, hub, budget, cache gauges) is
// collected live from Stats() snapshots, so /metrics needs no background
// goroutine and is always current.

// routeShed is the route label for requests rejected by the concurrency
// limiter: they were shed before the mux could match a pattern.
const routeShed = "(shed)"

// routeUnmatched is the route label for requests no registered pattern
// matched (the mux's own 404s).
const routeUnmatched = "(unmatched)"

// noShardLabel is the shard label for requests that do not address a
// dataset (hub-wide routes, liveness, unmatched paths).
const noShardLabel = "-"

// statusRecorder wraps a ResponseWriter to capture what the handler
// actually answered: status code, body bytes, and — set by the matched
// handler wrappers — the route pattern and shard key the request resolved
// to. It is the one place request accounting reads from.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	route  string // mux pattern, e.g. "/datasets/{tenant}/{ds}/versions"
	shard  string // "tenant/dataset", "" when the route is not shard-scoped
	shed   bool
}

func (rec *statusRecorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(p []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	n, err := rec.ResponseWriter.Write(p)
	rec.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming responses keep
// working through the recorder.
func (rec *statusRecorder) Flush() {
	if f, ok := rec.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController passthrough.
func (rec *statusRecorder) Unwrap() http.ResponseWriter { return rec.ResponseWriter }

// setRoute / setShard tag the recorder from inside mux handlers (which
// only see the ResponseWriter interface).
func setRoute(w http.ResponseWriter, route string) {
	if rec, ok := w.(*statusRecorder); ok {
		rec.route = route
	}
}

func setShard(w http.ResponseWriter, shard string) {
	if rec, ok := w.(*statusRecorder); ok {
		rec.shard = shard
	}
}

// statusClass buckets an HTTP status into its hundreds class index
// (2 for 2xx, ...). Returns 0 for out-of-range codes.
func statusClass(status int) int {
	c := status / 100
	if c < 1 || c > 5 {
		return 0
	}
	return c
}

var classNames = [6]string{"0xx", "1xx", "2xx", "3xx", "4xx", "5xx"}

// exemptPath reports the canonical spelling of the routes that bypass the
// concurrency limiter and request deadline ("" = not exempt). Trailing
// slashes are normalized first: an orchestrator probing /healthz/ must
// never be shed just for the extra slash, and the same goes for /stats
// and /metrics scrapers.
func exemptPath(p string) string {
	p = strings.TrimRight(p, "/")
	switch p {
	case "/healthz", "/stats", "/metrics":
		return p
	}
	return ""
}

// shardKeyForPath attributes a raw request path to a shard before the mux
// has run — the shed path needs it, since a 429 never reaches a handler.
// Hub-wide and liveness routes return "".
func (s *Server) shardKeyForPath(path string) string {
	switch strings.TrimRight(path, "/") {
	case "/datasets", "/stats", "/healthz", "/metrics":
		return ""
	}
	if rest, ok := strings.CutPrefix(path, "/datasets/"); ok {
		parts := strings.SplitN(rest, "/", 3)
		if len(parts) == 3 && parts[0] != "" && parts[1] != "" {
			return parts[0] + "/" + parts[1]
		}
		return ""
	}
	// Legacy un-prefixed routes address the default dataset.
	return s.defTenant + "/" + s.defDataset
}

// serverMetrics is the live half of the /metrics surface: the families
// the request path bumps directly. Scrape-time collectors (store, hub,
// cache, lifecycle gauges) are registered on the same registry at
// construction.
type serverMetrics struct {
	reg      *metrics.Registry
	requests *metrics.CounterVec   // route, shard, class
	duration *metrics.HistogramVec // route
	// notifications counts commit notes the live-timeline pump consumed;
	// maintenance counts how each was applied (extend / rebuild / skip).
	notifications *metrics.CounterVec // shard
	maintenance   *metrics.CounterVec // shard, mode
}

// newServerMetrics builds the registry and registers the scrape-time
// collectors over the server's existing counters and stores.
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.NewCounterVec("charles_http_requests_total",
			"HTTP requests by route pattern, shard, and status class (shed requests count under route \"(shed)\")",
			"route", "shard", "class"),
		duration: reg.NewHistogramVec("charles_http_request_duration_seconds",
			"HTTP request latency by route pattern", nil, "route"),
		notifications: reg.NewCounterVec("charles_commit_notifications_total",
			"commit notifications fanned out to the live-timeline registry, by shard",
			"shard"),
		maintenance: reg.NewCounterVec("charles_timeline_maintenance_total",
			"live timeline maintenance operations by shard and mode (extend = one incremental engine step, rebuild = full chain rebuild, skip = head moved without a maintainable timeline)",
			"shard", "mode"),
	}
	reg.NewGaugeFunc("charles_watch_subscribers",
		"active /timeline/watch subscribers (SSE streams and blocked long-polls)", nil,
		func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(s.watchSubs.Load())}}
		})
	reg.NewGaugeFunc("charles_http_in_flight",
		"requests currently holding a limiter slot", nil,
		func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(s.inflight.Load())}}
		})
	reg.NewGaugeFunc("charles_http_max_in_flight",
		"configured concurrency cap (0 = unlimited)", nil,
		func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(s.cfg.MaxInFlight)}}
		})
	reg.NewCounterFunc("charles_http_shed_total",
		"requests shed with 429 by the concurrency limiter", nil,
		func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(s.shed.Load())}}
		})

	// Summarize result cache.
	reg.NewCounterFunc("charles_result_cache_events_total",
		"summarize result cache counters by event (hit, miss, execution, eviction)",
		[]string{"event"}, func() []metrics.Sample {
			st := s.cache.Stats()
			return []metrics.Sample{
				{LabelValues: []string{"hit"}, Value: float64(st.Hits)},
				{LabelValues: []string{"miss"}, Value: float64(st.Misses)},
				{LabelValues: []string{"execution"}, Value: float64(st.Executions)},
				{LabelValues: []string{"eviction"}, Value: float64(st.Evictions)},
			}
		})
	reg.NewGaugeFunc("charles_result_cache_entries",
		"summarize result cache resident entries", nil,
		func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(s.cache.Stats().Entries)}}
		})

	// Store gauges, one sample per shard. In hub mode the hub rollup is
	// walked per scrape; single-store mode reports the default shard.
	perStore := func(pick func(store.Stats) float64) func() []metrics.Sample {
		return func() []metrics.Sample {
			var out []metrics.Sample
			for key, st := range s.storeStats() {
				out = append(out, metrics.Sample{LabelValues: []string{key}, Value: pick(st)})
			}
			return out
		}
	}
	reg.NewGaugeFunc("charles_store_versions", "committed versions per shard",
		[]string{"shard"}, perStore(func(st store.Stats) float64 { return float64(st.Versions) }))
	reg.NewGaugeFunc("charles_store_pack_bytes", "pack file bytes on disk per shard",
		[]string{"shard"}, perStore(func(st store.Stats) float64 { return float64(st.PackBytes) }))
	reg.NewGaugeFunc("charles_store_logical_bytes", "logical (canonical CSV) bytes represented per shard",
		[]string{"shard"}, perStore(func(st store.Stats) float64 { return float64(st.LogicalBytes) }))
	reg.NewCounterFunc("charles_store_csv_parses_total", "CSV parses (table cache miss fills) per shard",
		[]string{"shard"}, perStore(func(st store.Stats) float64 { return float64(st.Parses) }))
	reg.NewCounterFunc("charles_store_cache_events_total",
		"store LRU counters by cache (tables, blobs, changes, results) and event (hit, miss)",
		[]string{"shard", "cache", "event"}, func() []metrics.Sample {
			var out []metrics.Sample
			for key, st := range s.storeStats() {
				for _, c := range []struct {
					name string
					cs   store.CacheStats
				}{
					{"tables", st.Tables}, {"blobs", st.Blobs},
					{"changes", st.Changes}, {"results", st.Results},
				} {
					out = append(out,
						metrics.Sample{LabelValues: []string{key, c.name, "hit"}, Value: float64(c.cs.Hits)},
						metrics.Sample{LabelValues: []string{key, c.name, "miss"}, Value: float64(c.cs.Misses)})
				}
			}
			return out
		})

	if s.hub != nil {
		reg.NewGaugeFunc("charles_hub_open_shards", "stores currently open in the hub", nil,
			func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(s.hub.Stats().OpenShards)}}
			})
		reg.NewGaugeFunc("charles_hub_budget_used_bytes",
			"bytes currently charged against the shared cache memory budget", nil,
			func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(s.hub.Stats().Budget.UsedBytes)}}
			})
		reg.NewGaugeFunc("charles_hub_budget_cap_bytes",
			"shared cache memory budget cap (0 = unlimited)", nil,
			func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(s.hub.Stats().Budget.CapBytes)}}
			})
		reg.NewCounterFunc("charles_hub_budget_evictions_total",
			"cache entries evicted to stay under the shared memory budget", nil,
			func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(s.hub.Stats().Budget.Evictions)}}
			})
		reg.NewCounterFunc("charles_hub_shard_ops_total",
			"hub shard operations by kind (commit, read)",
			[]string{"shard", "kind"}, func() []metrics.Sample {
				var out []metrics.Sample
				for _, sh := range s.hub.Stats().Shards {
					key := sh.Tenant + "/" + sh.Dataset
					out = append(out,
						metrics.Sample{LabelValues: []string{key, "commit"}, Value: float64(sh.Commits)},
						metrics.Sample{LabelValues: []string{key, "read"}, Value: float64(sh.Reads)})
				}
				return out
			})
	}
	return m
}

// storeStats snapshots per-shard store stats for the scrape-time
// collectors: the hub rollup in hub mode, the one store otherwise.
func (s *Server) storeStats() map[string]store.Stats {
	if s.hub == nil {
		return map[string]store.Stats{
			s.defTenant + "/" + s.defDataset: s.store.Stats(),
		}
	}
	hs := s.hub.Stats()
	out := make(map[string]store.Stats, len(hs.Shards))
	for _, sh := range hs.Shards {
		out[sh.Tenant+"/"+sh.Dataset] = sh.Store
	}
	return out
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. Exempt from the limiter: a scraper must see the saturated
// server, not be shed by it.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WriteText(w)
}

// finish is the single accounting sink: called exactly once per request
// after the response is written, with the shard key the request resolved
// (or was attributed) to — "" when the route is not shard-scoped.
func (s *Server) finish(rec *statusRecorder, r *http.Request, start time.Time, shardKey string) {
	if rec.status == 0 {
		// Handler wrote neither header nor body; net/http sends 200.
		rec.status = http.StatusOK
	}
	elapsed := time.Since(start)
	class := statusClass(rec.status)
	route := rec.route
	if route == "" {
		route = routeUnmatched
	}
	if shardKey != "" {
		c := s.counters(shardKey)
		c.requests.Add(1)
		c.classes[class].Add(1)
		if rec.shed {
			c.shed.Add(1)
		}
	}
	shardLabel := shardKey
	if shardLabel == "" {
		shardLabel = noShardLabel
	}
	s.metrics.requests.With(route, shardLabel, classNames[class]).Inc()
	s.metrics.duration.With(route).Observe(elapsed.Seconds())
	if s.reqLog != nil {
		s.reqLog.log(requestLogEntry{
			Time:       start.UTC().Format(time.RFC3339Nano),
			Method:     r.Method,
			Route:      route,
			Path:       r.URL.Path,
			Shard:      shardKey,
			Status:     rec.status,
			Bytes:      rec.bytes,
			DurationMS: float64(elapsed) / float64(time.Millisecond),
			Shed:       rec.shed,
		})
	}
}

// requestLogEntry is one structured (JSON-lines) request log record.
// Route is the mux pattern ("(shed)" / "(unmatched)" when no pattern
// applied), Shard the "tenant/dataset" key for dataset-scoped routes, and
// Bytes the response body size actually written.
type requestLogEntry struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Route      string  `json:"route"`
	Path       string  `json:"path"`
	Shard      string  `json:"shard,omitempty"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Shed       bool    `json:"shed,omitempty"`
}

// requestLogger serializes JSON-lines writes to the configured sink. A
// failed write disables the logger rather than failing requests: access
// logging is diagnostic, not load-bearing.
type requestLogger struct {
	mu     sync.Mutex
	w      io.Writer
	failed bool
}

func newRequestLogger(w io.Writer) *requestLogger {
	if w == nil {
		return nil
	}
	return &requestLogger{w: w}
}

func (l *requestLogger) log(e requestLogEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed {
		return
	}
	if _, err := l.w.Write(data); err != nil {
		l.failed = true
	}
}
