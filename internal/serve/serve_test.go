package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"charles/internal/csvio"
	"charles/internal/gen"
	"charles/internal/store"
	"charles/internal/table"
)

func csvOf(t *testing.T, tbl *table.Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := csvio.Write(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	// Big enough that a live timeline's seeded per-step entries plus its
	// whole-response memo all stay resident across the assertions.
	srv := NewServer(st, 64)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func commit(t *testing.T, base, csv, parent, msg string) store.Version {
	t.Helper()
	resp, body := postJSON(t, base+"/versions", commitRequest{
		CSV: csv, Key: []string{"name"}, Parent: parent, Message: msg,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit status %d: %s", resp.StatusCode, body)
	}
	var v store.Version
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEndToEnd commits two snapshots over HTTP and exercises every
// endpoint: log, metadata, checkout, diff, summarize (miss then hit).
func TestEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t)
	d1, d2 := gen.Toy()

	v1 := commit(t, ts.URL, csvOf(t, d1), "", "2016")
	if v1.Seq != 1 || v1.Parent != "" || v1.Rows != 9 {
		t.Fatalf("v1 = %+v", v1)
	}
	v2 := commit(t, ts.URL, csvOf(t, d2), v1.ID, "2017 raises")
	if v2.Seq != 2 || v2.Parent != v1.ID {
		t.Fatalf("v2 = %+v", v2)
	}

	// Log.
	resp, body := get(t, ts.URL+"/versions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("log status %d", resp.StatusCode)
	}
	var log []store.Version
	if err := json.Unmarshal(body, &log); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[0].ID != v1.ID || log[1].ID != v2.ID {
		t.Fatalf("log = %+v", log)
	}

	// Metadata + lineage.
	resp, body = get(t, ts.URL+"/versions/"+v2.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version status %d", resp.StatusCode)
	}
	var meta struct {
		store.Version
		Lineage []string `json:"lineage"`
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.ID != v2.ID || len(meta.Lineage) != 2 || meta.Lineage[1] != v1.ID {
		t.Fatalf("metadata = %+v", meta)
	}

	// Checkout round-trips through the canonical CSV.
	resp, body = get(t, ts.URL+"/versions/"+v2.ID+"/csv")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/csv" {
		t.Fatalf("checkout status %d type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	back, err := csvio.Read(bytes.NewReader(body), csvio.Options{Key: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 9 {
		t.Fatalf("checkout rows = %d", back.NumRows())
	}

	// Diff.
	resp, body = get(t, fmt.Sprintf("%s/diff?from=%s&to=%s&target=bonus", ts.URL, v1.ID, v2.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status %d: %s", resp.StatusCode, body)
	}
	var d diffResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.UpdateDistance == 0 || len(d.Changes) == 0 {
		t.Fatalf("diff = %+v", d)
	}

	// Summarize: first request misses and runs the engine.
	sumReq := map[string]any{"from": v1.ID, "to": v2.ID, "target": "bonus"}
	resp, body = postJSON(t, ts.URL+"/summarize", sumReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summarize status %d: %s", resp.StatusCode, body)
	}
	var sum summarizeResponse
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Cached {
		t.Error("first summarize reported cached")
	}
	if len(sum.Ranked) == 0 || len(sum.Ranked[0].Summary.CTs) != 3 {
		t.Fatalf("summarize ranked = %+v", sum.Ranked)
	}
	if sum.Ranked[0].Breakdown.Score < 0.85 {
		t.Errorf("top score = %v", sum.Ranked[0].Breakdown.Score)
	}
	if sum.OptionsFingerprint == "" {
		t.Error("missing options fingerprint")
	}

	// Second identical request is a cache hit with identical results.
	_, body2 := postJSON(t, ts.URL+"/summarize", sumReq)
	var sum2 summarizeResponse
	if err := json.Unmarshal(body2, &sum2); err != nil {
		t.Fatal(err)
	}
	if !sum2.Cached {
		t.Error("second identical summarize was not a cache hit")
	}
	sum.Cached, sum2.Cached = false, false
	a, _ := json.Marshal(sum)
	b, _ := json.Marshal(sum2)
	if !bytes.Equal(a, b) {
		t.Error("cached result differs from computed result")
	}

	// Different options → different fingerprint → separate cache slot.
	resp, body = postJSON(t, ts.URL+"/summarize",
		map[string]any{"from": v1.ID, "to": v2.ID, "target": "bonus", "topk": 1})
	var sum3 summarizeResponse
	if err := json.Unmarshal(body, &sum3); err != nil {
		t.Fatal(err)
	}
	if sum3.Cached {
		t.Error("different options reported cached")
	}
	if sum3.OptionsFingerprint == sum.OptionsFingerprint {
		t.Error("topk change did not move the options fingerprint")
	}

	st := srv.Stats()
	if st.Hits != 1 || st.Executions != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 executions", st)
	}

	// Stats endpoint mirrors the counters.
	resp, body = get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var viaHTTP Stats
	if err := json.Unmarshal(body, &viaHTTP); err != nil {
		t.Fatal(err)
	}
	if viaHTTP != st {
		t.Errorf("stats over HTTP = %+v, direct = %+v", viaHTTP, st)
	}

	// Healthz.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestConcurrentSummarizeSingleflight fires identical concurrent requests
// at an empty cache and checks the engine executed exactly once.
func TestConcurrentSummarizeSingleflight(t *testing.T) {
	srv, ts := newTestServer(t)
	d1, d2 := gen.Toy()
	v1 := commit(t, ts.URL, csvOf(t, d1), "", "2016")
	v2 := commit(t, ts.URL, csvOf(t, d2), v1.ID, "2017")

	const n = 8
	var wg sync.WaitGroup
	results := make([]summarizeResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(map[string]any{"from": v1.ID, "to": v2.ID, "target": "bonus"})
			resp, err := http.Post(ts.URL+"/summarize", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	first, _ := json.Marshal(results[0].Ranked)
	for i := 1; i < n; i++ {
		got, _ := json.Marshal(results[i].Ranked)
		if !bytes.Equal(first, got) {
			t.Errorf("request %d got different ranking", i)
		}
	}
	st := srv.Stats()
	if st.Executions != 1 {
		t.Errorf("executions = %d, want 1 (singleflight)", st.Executions)
	}
	if st.Hits+st.Misses != n {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, n)
	}
}

// TestErrorMapping checks the HTTP status codes for store/engine failures.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t)
	d1, d2 := gen.Toy()
	v1 := commit(t, ts.URL, csvOf(t, d1), "", "2016")
	v2 := commit(t, ts.URL, csvOf(t, d2), v1.ID, "2017")

	// Unknown version → 404 everywhere.
	for _, url := range []string{
		ts.URL + "/versions/nope",
		ts.URL + "/versions/nope/csv",
		ts.URL + "/diff?from=nope&to=" + v2.ID,
	} {
		if resp, _ := get(t, url); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", url, resp.StatusCode)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/summarize",
		map[string]any{"from": "nope", "to": v2.ID, "target": "bonus"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("summarize unknown id status %d, want 404", resp.StatusCode)
	}

	// Re-committing existing content under a different parent → 409.
	resp, body := postJSON(t, ts.URL+"/versions", commitRequest{
		CSV: csvOf(t, d2), Key: []string{"name"}, Message: "rebased",
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("lineage conflict status %d: %s", resp.StatusCode, body)
	}

	// Malformed body / missing fields → 400.
	r, err := http.Post(ts.URL+"/versions", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed commit status %d, want 400", r.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/summarize", map[string]any{"from": v1.ID})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("incomplete summarize status %d, want 400", resp.StatusCode)
	}
	// Non-numeric target → 400 from the engine's validation.
	resp, _ = postJSON(t, ts.URL+"/summarize",
		map[string]any{"from": v1.ID, "to": v2.ID, "target": "edu"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("categorical target status %d, want 400", resp.StatusCode)
	}
}

// TestCacheEviction checks the LRU bound holds and evictions are counted.
func TestCacheEviction(t *testing.T) {
	c := newResultCache(2)
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, hit, _ := c.Do(key, func() (any, error) { return i, nil }); hit {
			t.Errorf("fresh key %s hit", key)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 2 {
		t.Errorf("stats = %+v, want 2 entries / 2 evictions", st)
	}
	// k3 is still resident, k0 was evicted.
	if _, hit, _ := c.Do("k3", func() (any, error) { return nil, nil }); !hit {
		t.Error("k3 should be resident")
	}
	if _, hit, _ := c.Do("k0", func() (any, error) { return 0, nil }); hit {
		t.Error("k0 should have been evicted")
	}
}

// TestCacheDoesNotCacheErrors checks a failed computation is retried.
func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := newResultCache(2)
	calls := 0
	f := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient")
		}
		return "ok", nil
	}
	if _, _, err := c.Do("k", f); err == nil {
		t.Fatal("first call should fail")
	}
	v, hit, err := c.Do("k", f)
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry = (%v, %v, %v)", v, hit, err)
	}
	if _, hit, _ := c.Do("k", f); !hit {
		t.Error("successful value not cached")
	}
}

// TestCachePanicDoesNotDeadlock checks a panicking computation releases
// waiters and frees the key for a retry (net/http recovers handler panics,
// so without cleanup the key would be bricked until restart).
func TestCachePanicDoesNotDeadlock(t *testing.T) {
	c := newResultCache(2)
	func() {
		defer func() { _ = recover() }()
		_, _, _ = c.Do("k", func() (any, error) { panic("engine bug") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, hit, err := c.Do("k", func() (any, error) { return "ok", nil })
		if err != nil || hit || v != "ok" {
			t.Errorf("retry after panic = (%v, %v, %v)", v, hit, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cache key deadlocked after panic")
	}
}

// TestMethodNotAllowed drives a wrong-method request into every route and
// pins the uniform answer: 405, an Allow header listing what would work,
// and the JSON error envelope (not net/http's plain-text default).
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	d1, _ := gen.Toy()
	v1 := commit(t, ts.URL, csvOf(t, d1), "", "root")

	cases := []struct {
		method, path, allow string
	}{
		{http.MethodDelete, "/versions", "GET, POST"},
		{http.MethodPut, "/versions", "GET, POST"},
		{http.MethodPost, "/versions/" + v1.ID, "GET"},
		{http.MethodDelete, "/versions/" + v1.ID + "/csv", "GET"},
		{http.MethodPost, "/versions/" + v1.ID + "/changes", "GET"},
		{http.MethodPost, "/diff", "GET"},
		{http.MethodGet, "/summarize", "POST"},
		{http.MethodGet, "/timeline", "POST"},
		{http.MethodPost, "/stats", "GET"},
		{http.MethodPost, "/healthz", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		var e errorJSON
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s %s: body %q is not the JSON error envelope", tc.method, tc.path, body)
		}
	}
}

// TestChangesEndpoint pins GET /versions/{id}/changes: delta versions
// arrive as decoded ops with column-named cells, materialized versions say
// so, unknown ids 404.
func TestChangesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	d1, d2 := gen.Toy()
	v1 := commit(t, ts.URL, csvOf(t, d1), "", "2016")
	v2 := commit(t, ts.URL, csvOf(t, d2), v1.ID, "2017")

	resp, body := get(t, ts.URL+"/versions/"+v2.ID+"/changes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("changes status %d: %s", resp.StatusCode, body)
	}
	var cr changesResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Materialized || cr.Version != v2.ID || cr.Parent != v1.ID {
		t.Fatalf("changes header = %+v", cr)
	}
	if len(cr.Patched) == 0 || len(cr.Columns) == 0 {
		t.Fatalf("changes ops = %+v", cr)
	}
	for _, p := range cr.Patched {
		if p.Key == "" || len(p.Cells) == 0 {
			t.Fatalf("patch entry = %+v", p)
		}
		for col := range p.Cells {
			if col == "" {
				t.Fatalf("patch cell with empty column name: %+v", p)
			}
		}
	}

	resp, body = get(t, ts.URL+"/versions/"+v1.ID+"/changes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("root changes status %d: %s", resp.StatusCode, body)
	}
	var root changesResponse
	if err := json.Unmarshal(body, &root); err != nil {
		t.Fatal(err)
	}
	if !root.Materialized || len(root.Patched)+len(root.Removed)+len(root.Inserted) != 0 {
		t.Fatalf("root changes = %+v", root)
	}

	if resp, _ := get(t, ts.URL+"/versions/nope/changes"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", resp.StatusCode)
	}
}

// TestDiffReportsMembershipChanges pins the widened /diff semantics: a pair
// whose entity sets differ (previously a 400) now answers with the removed
// and inserted keys, delta-natively when the pair is delta-connected.
func TestDiffReportsMembershipChanges(t *testing.T) {
	_, ts := newTestServer(t)
	// Enough unchanged padding rows that the delta pack beats the full pack
	// (tiny tables legitimately fall back to full snapshots).
	var pad strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&pad, "pad%02d,%d.5\n", i, i)
	}
	csv1 := "name,bonus\nalice,100.5\nbob,200.5\ncarol,300.5\n" + pad.String()
	csv2 := "name,bonus\nalice,150.5\ncarol,300.5\ndave,400.5\n" + pad.String()
	v1 := commit(t, ts.URL, csv1, "", "v1")
	v2 := commit(t, ts.URL, csv2, v1.ID, "v2")

	resp, body := get(t, fmt.Sprintf("%s/diff?from=%s&to=%s&target=bonus", ts.URL, v1.ID, v2.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status %d: %s", resp.StatusCode, body)
	}
	var d diffResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.DeltaNative {
		t.Error("adjacent delta pair not served delta-natively")
	}
	if len(d.Removed) != 1 || d.Removed[0] != "bob" {
		t.Errorf("removed = %v, want [bob]", d.Removed)
	}
	if len(d.Inserted) != 1 || d.Inserted[0] != "dave" {
		t.Errorf("inserted = %v, want [dave]", d.Inserted)
	}
	if d.UpdateDistance != 1 || len(d.Changes) != 1 || d.Changes[0].Key != "alice" {
		t.Errorf("changes = %+v (distance %d)", d.Changes, d.UpdateDistance)
	}

	// An unknown target is still a 400.
	if resp, _ := get(t, fmt.Sprintf("%s/diff?from=%s&to=%s&target=nope", ts.URL, v1.ID, v2.ID)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown target status = %d, want 400", resp.StatusCode)
	}
}
