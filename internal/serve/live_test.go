package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"charles/internal/csvio"
	"charles/internal/gen"
	"charles/internal/metrics"
	"charles/internal/store"
	"charles/internal/table"
)

// defShard labels the single-store server's one shard in /metrics.
var defShard = map[string]string{"shard": DefaultDatasetName + "/" + DefaultDatasetName}

// commitOne commits one snapshot over HTTP on the default dataset.
func commitOne(t *testing.T, base string, snap *table.Table, parent string) store.Version {
	t.Helper()
	resp, body := postJSON(t, base+"/versions", commitRequest{
		CSV: csvOf(t, snap), Key: []string{"id"}, Parent: parent, Message: "live",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit status %d: %s", resp.StatusCode, body)
	}
	var v store.Version
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitMetric polls /metrics until name+labels reaches exactly want. The
// commit pump is asynchronous; tests use this to establish a happens-before
// with it instead of sleeping.
func waitMetric(t *testing.T, base, name string, labels map[string]string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := get(t, base+"/metrics")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d: %s", resp.StatusCode, body)
		}
		if v, ok := metrics.Value(body, name, labels); ok && v == want {
			return
		}
		if time.Now().After(deadline) {
			v, _ := metrics.Value(body, name, labels)
			t.Fatalf("metric %s%v = %v, want %v (timed out)", name, labels, v, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// pollWatch performs one GET /timeline/watch?since= long-poll cycle.
func pollWatch(t *testing.T, url string) watchPollResponse {
	t.Helper()
	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch poll status %d: %s", resp.StatusCode, body)
	}
	var pr watchPollResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("watch poll body: %v: %s", err, body)
	}
	return pr
}

type sseEvent struct {
	name string
	data string
}

// sseStream opens a /timeline/watch SSE stream and feeds its events into a
// channel; the returned func closes the stream (the channel closes after).
func sseStream(t *testing.T, url string) (<-chan sseEvent, func()) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("watch stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("watch stream content type %q", ct)
	}
	ch := make(chan sseEvent, 32)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case line == "" && ev.name != "":
				ch <- ev
				ev = sseEvent{}
			}
		}
	}()
	return ch, func() { resp.Body.Close() }
}

// nextEvent waits for the next SSE event and requires its name.
func nextEvent(t *testing.T, ch <-chan sseEvent, want string) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatalf("SSE stream closed waiting for %q event", want)
		}
		if ev.name != want {
			t.Fatalf("SSE event %q (data %s), want %q", ev.name, ev.data, want)
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for SSE %q event", want)
	}
	return sseEvent{}
}

// TestWatchSSEStreamsCommits subscribes an SSE stream and drives commits
// through it: the initial "head" event positions the subscriber, the first
// post-subscription commit rebuilds the maintained timeline, and each later
// commit extends it by exactly one step.
func TestWatchSSEStreamsCommits(t *testing.T) {
	_, ts := newTestServer(t)
	snaps, err := gen.Chain(gen.ChainConfig{N: 20, Steps: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	versions := commitChain(t, ts.URL, snaps[:2])
	// Let the pump drain the pre-subscription notes so the stream below
	// observes a deterministic sequence.
	waitMetric(t, ts.URL, "charles_commit_notifications_total", defShard, 2)

	events, closeStream := sseStream(t, ts.URL+"/timeline/watch")
	defer closeStream()

	var head watchHeadJSON
	if ev := nextEvent(t, events, "head"); json.Unmarshal([]byte(ev.data), &head) != nil {
		t.Fatalf("bad head event: %s", ev.data)
	}
	if head.Head != versions[1].ID {
		t.Fatalf("head event %q, want %q", head.Head, versions[1].ID)
	}

	v2 := commitOne(t, ts.URL, snaps[2], versions[1].ID)
	var step watchEvent
	if ev := nextEvent(t, events, "step"); json.Unmarshal([]byte(ev.data), &step) != nil {
		t.Fatalf("bad step event: %s", ev.data)
	}
	if step.Head != v2.ID || step.Parent != versions[1].ID {
		t.Errorf("step event head %q parent %q, want %q %q", step.Head, step.Parent, v2.ID, versions[1].ID)
	}
	if step.Mode != "rebuild" || step.Steps != 2 {
		t.Errorf("first maintained step mode %q steps %d, want rebuild/2", step.Mode, step.Steps)
	}

	v3 := commitOne(t, ts.URL, snaps[3], v2.ID)
	var step2 watchEvent
	if ev := nextEvent(t, events, "step"); json.Unmarshal([]byte(ev.data), &step2) != nil {
		t.Fatal("bad step event")
	}
	if step2.Head != v3.ID || step2.Mode != "extend" || step2.Steps != 3 {
		t.Errorf("second step head %q mode %q steps %d, want %q extend 3", step2.Head, step2.Mode, step2.Steps, v3.ID)
	}
	if step2.Seq != step.Seq+1 {
		t.Errorf("event seq %d after %d, want consecutive", step2.Seq, step.Seq)
	}
	if len(step2.Targets) == 0 {
		t.Error("extend event carries no targets")
	} else {
		found := false
		for _, tgt := range step2.Targets {
			if tgt.Target == "salary" {
				found = true
			}
		}
		if !found {
			t.Errorf("extend event targets %v lack salary", step2.Targets)
		}
	}
}

// TestWatchLongPoll covers the ?since= spelling: immediate catch-up when the
// head already moved, blocking until the next commit otherwise, and
// resync=true when the asked-for position has left the event ring.
func TestWatchLongPoll(t *testing.T) {
	_, ts := newTestServer(t)
	snaps, err := gen.Chain(gen.ChainConfig{N: 20, Steps: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	versions := commitChain(t, ts.URL, snaps[:2])
	waitMetric(t, ts.URL, "charles_commit_notifications_total", defShard, 2)

	// First interest: an empty since positions the poller at the head.
	pr := pollWatch(t, ts.URL+"/timeline/watch?since=")
	if pr.Head != versions[1].ID {
		t.Fatalf("poll head %q, want %q", pr.Head, versions[1].ID)
	}
	if pr.Resync || len(pr.Events) != 0 {
		t.Fatalf("initial poll resync=%v events=%d, want clean empty", pr.Resync, len(pr.Events))
	}

	// A poll at the current head blocks until the next commit delivers.
	type pollResult struct {
		pr  watchPollResponse
		err error
	}
	res := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/timeline/watch?since=" + versions[1].ID)
		if err != nil {
			res <- pollResult{err: err}
			return
		}
		defer resp.Body.Close()
		var pr watchPollResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		res <- pollResult{pr: pr, err: err}
	}()
	v2 := commitOne(t, ts.URL, snaps[2], versions[1].ID)
	select {
	case r := <-res:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.pr.Head != v2.ID || len(r.pr.Events) != 1 {
			t.Fatalf("blocked poll head %q events %d, want %q with 1 event", r.pr.Head, len(r.pr.Events), v2.ID)
		}
		if ev := r.pr.Events[0]; ev.Mode != "rebuild" || ev.Steps != 2 {
			t.Errorf("delivered event mode %q steps %d, want rebuild/2", ev.Mode, ev.Steps)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll did not return after commit")
	}

	// The root commit predates any interest, so polling from it finds no
	// event with that head in the ring: full catch-up plus resync.
	pr = pollWatch(t, ts.URL+"/timeline/watch?since="+versions[0].ID)
	if pr.Head != v2.ID || !pr.Resync {
		t.Errorf("stale poll head %q resync %v, want %q true", pr.Head, pr.Resync, v2.ID)
	}
	if len(pr.Events) == 0 || pr.Events[len(pr.Events)-1].Head != v2.ID {
		t.Errorf("stale poll events %v, want catch-up ending at %q", pr.Events, v2.ID)
	}
}

// TestLiveTimelineFollowsCommits pins the incremental-maintenance contract
// end to end: a head-relative POST /timeline is answered live and memoized,
// and after a commit the warm answer for the new head costs one incremental
// engine step plus two cache fills — not a chain-length walk.
func TestLiveTimelineFollowsCommits(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, 64)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	ids := commitLineage(t, st, 4)

	post := func() timelineResponse {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/timeline", timelineRequest{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("timeline status %d: %s", resp.StatusCode, body)
		}
		var tr timelineResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	waitMetric(t, ts.URL, "charles_commit_notifications_total", defShard, 4)
	tr := post()
	if !tr.Live || tr.Cached {
		t.Fatalf("first live answer live=%v cached=%v, want live uncached", tr.Live, tr.Cached)
	}
	if tr.Head != ids[3] || tr.Steps != 3 {
		t.Fatalf("live answer head %q steps %d, want %q/3", tr.Head, tr.Steps, ids[3])
	}
	if tr2 := post(); !tr2.Cached {
		t.Error("repeat live answer not served from the head memo")
	}

	csv := "name,dept,salary\nanne,eng,9999\nbob,eng,2222\ncara,hr,3333\n"
	tb, err := csvio.Read(strings.NewReader(csv), csvio.Options{Key: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.Commit(tb, ids[3], "one more")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the pump to absorb the commit incrementally before reading,
	// so the answer below is the maintainer's — not a request-path rebuild.
	waitMetric(t, ts.URL, "charles_timeline_maintenance_total",
		map[string]string{"shard": defShard["shard"], "mode": "extend"}, 1)

	execBefore := srv.Stats().Executions
	tr3 := post()
	if tr3.Head != v.ID || tr3.Steps != 4 || !tr3.Live {
		t.Fatalf("post-commit answer head %q steps %d live %v, want %q/4/true", tr3.Head, tr3.Steps, tr3.Live, v.ID)
	}
	// One fill for the new head's whole-response memo, one for the single
	// new step's seeded pair entry; every older step is already resident.
	if got := srv.Stats().Executions - execBefore; got > 2 {
		t.Errorf("post-commit warm answer cost %d cache fills, want ≤2 (memo + new step)", got)
	}
	if tr4 := post(); !tr4.Cached {
		t.Error("post-commit repeat not served from the new head memo")
	}
}

// TestWatchHammerExactCounters drives a hub shard through a commit sequence
// with SSE and long-poll subscribers attached, serializing each commit with
// its observation, and then requires the new metric families to be exact:
// one notification per commit, exactly one rebuild, every later commit an
// extend, and the subscriber gauge back to zero once the watchers are gone.
func TestWatchHammerExactCounters(t *testing.T) {
	_, ts := newHubTestServer(t, store.HubOptions{})
	shard := map[string]string{"shard": "acme/sales"}
	base := ts.URL + "/datasets/acme/sales/timeline/watch"

	// Watching an unknown dataset resolves like every other read route.
	if resp, _ := get(t, ts.URL+"/datasets/acme/ghost/timeline/watch?since="); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("watch on unknown dataset status %d, want 404", resp.StatusCode)
	}

	csv := func(i int) string {
		return fmt.Sprintf("name,dept,salary\nanne,eng,%d\nbob,eng,%d\ncara,hr,%d\n",
			1000+10*i, 2000+20*i, 3000+30*i)
	}
	v0 := commitTo(t, ts.URL, "acme", "sales", csv(0), "", "v0")
	waitMetric(t, ts.URL, "charles_commit_notifications_total", shard, 1)

	// First interest seeds the live shard at the current head; the root
	// commit predates it, so nothing is buffered.
	pr := pollWatch(t, base+"?since=")
	if pr.Head != v0.ID || len(pr.Events) != 0 {
		t.Fatalf("seed poll head %q events %d, want %q/0", pr.Head, len(pr.Events), v0.ID)
	}

	ch1, close1 := sseStream(t, base)
	ch2, close2 := sseStream(t, base)
	nextEvent(t, ch1, "head")
	nextEvent(t, ch2, "head")

	const commits = 8
	parent := v0.ID
	for i := 1; i <= commits; i++ {
		nv := commitTo(t, ts.URL, "acme", "sales", csv(i), parent, fmt.Sprintf("v%d", i))
		// Ride the commit with a long-poll before the next one, so the pump
		// never coalesces a note and the counters below stay exact.
		pw := pollWatch(t, base+"?since="+parent)
		if pw.Head != nv.ID {
			t.Fatalf("commit %d: poll head %q, want %q", i, pw.Head, nv.ID)
		}
		wantMode := "extend"
		if i == 1 {
			wantMode = "rebuild" // first maintained step after interest
		}
		if len(pw.Events) == 0 || pw.Events[len(pw.Events)-1].Mode != wantMode {
			t.Fatalf("commit %d: events %+v, want trailing mode %q", i, pw.Events, wantMode)
		}
		if got := pw.Events[len(pw.Events)-1].Steps; got != i {
			t.Errorf("commit %d: maintained steps %d, want %d", i, got, i)
		}
		parent = nv.ID
	}

	// Both SSE subscribers observed the full sequence, in order.
	close1()
	close2()
	for n, ch := range map[string]<-chan sseEvent{"ch1": ch1, "ch2": ch2} {
		var seen []watchEvent
		for ev := range ch {
			if ev.name != "step" {
				continue
			}
			var we watchEvent
			if err := json.Unmarshal([]byte(ev.data), &we); err != nil {
				t.Fatalf("%s: bad step event %s", n, ev.data)
			}
			seen = append(seen, we)
		}
		if len(seen) != commits {
			t.Fatalf("%s: saw %d step events, want %d", n, len(seen), commits)
		}
		for i := 1; i < len(seen); i++ {
			if seen[i].Seq != seen[i-1].Seq+1 {
				t.Errorf("%s: seq gap %d→%d", n, seen[i-1].Seq, seen[i].Seq)
			}
		}
		if last := seen[len(seen)-1]; last.Head != parent || last.Resync {
			t.Errorf("%s: final event head %q resync %v, want %q false", n, last.Head, last.Resync, parent)
		}
	}
	waitMetric(t, ts.URL, "charles_watch_subscribers", nil, 0)

	// A blocked long-poll is visible in the subscriber gauge, and the drain
	// back to zero is prompt once it is answered.
	type pollResult struct {
		pr  watchPollResponse
		err error
	}
	res := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(base + "?since=" + parent)
		if err != nil {
			res <- pollResult{err: err}
			return
		}
		defer resp.Body.Close()
		var pr watchPollResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		res <- pollResult{pr: pr, err: err}
	}()
	waitMetric(t, ts.URL, "charles_watch_subscribers", nil, 1)
	final := commitTo(t, ts.URL, "acme", "sales", csv(commits+1), parent, "final")
	select {
	case r := <-res:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.pr.Head != final.ID || len(r.pr.Events) != 1 || r.pr.Events[0].Mode != "extend" {
			t.Fatalf("final poll %+v, want extend event at %q", r.pr, final.ID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked poll did not return after final commit")
	}
	waitMetric(t, ts.URL, "charles_watch_subscribers", nil, 0)

	// Exact counters: every commit notified exactly once; the root commit
	// predated interest (no maintenance sample), the first maintained one
	// rebuilt, and every later commit was a single incremental extension.
	body := scrape(t, ts.URL)
	total := float64(commits + 2)
	if got := metricValue(t, body, "charles_commit_notifications_total", shard); got != total {
		t.Errorf("notifications = %v, want %v", got, total)
	}
	if got := metricValue(t, body, "charles_timeline_maintenance_total",
		map[string]string{"shard": shard["shard"], "mode": "rebuild"}); got != 1 {
		t.Errorf("rebuilds = %v, want exactly 1", got)
	}
	if got := metricValue(t, body, "charles_timeline_maintenance_total",
		map[string]string{"shard": shard["shard"], "mode": "extend"}); got != float64(commits) {
		t.Errorf("extends = %v, want %v", got, commits)
	}
	if v, ok := metrics.Value(body, "charles_timeline_maintenance_total",
		map[string]string{"shard": shard["shard"], "mode": "skip"}); ok && v != 0 {
		t.Errorf("skips = %v, want none", v)
	}
}
