package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Serve runs srv on ln until ctx is cancelled (typically by SIGTERM via
// signal.NotifyContext), then drains gracefully: no new connections are
// accepted, in-flight requests get up to drainTimeout to finish, and only
// then are the stragglers' request contexts cancelled and their connections
// force-closed. The return value is nil for a clean lifecycle —
// http.ErrServerClosed is the *expected* way a drained server's Serve loop
// ends, not a failure — and non-nil only for a real serve error (bad
// listener, accept failure) or a drain that had to force-close connections.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, drainTimeout time.Duration) error {
	// Base every request on a context the lifecycle owns: it stays alive
	// through the graceful drain window (cancelling it at SIGTERM would
	// abort the very requests the drain exists to finish) and is cancelled
	// only when the drain deadline expires, so handlers stuck in
	// context-aware work (timeline walks, history pools) stop instead of
	// leaking past the force-close.
	reqCtx, cancelReqs := context.WithCancel(context.Background()) //lint:allow ctxflow BaseContext must outlive ctx through the drain window; deriving from ctx would abort draining requests at SIGTERM
	defer cancelReqs()
	srv.BaseContext = func(net.Listener) context.Context { return reqCtx }

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve ended before any shutdown was requested: a real error.
		return err
	case <-ctx.Done():
	}

	// Tell the handler shutdown has begun before Shutdown starts waiting:
	// long-lived subscription handlers (/timeline/watch SSE streams and
	// blocked long-polls) would otherwise hold their connections — and
	// limiter slots — until the drain deadline force-closed them.
	if d, ok := srv.Handler.(interface{ BeginDrain() }); ok {
		d.BeginDrain()
	}

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout) //lint:allow ctxflow the drain deadline must keep running after ctx (the SIGTERM context) is already cancelled
	defer cancel()
	err := srv.Shutdown(dctx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Drain deadline hit: cancel the stragglers' contexts and cut the
		// connections. Still report the deadline error — requests were
		// aborted, the operator should know the drain window was too tight.
		cancelReqs()
		_ = srv.Close()
	}
	// The Serve goroutine returns ErrServerClosed once Shutdown/Close has
	// begun; that is the clean path, not an error.
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}
