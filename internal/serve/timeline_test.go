package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"charles/internal/core"
	"charles/internal/gen"
	"charles/internal/store"
	"charles/internal/table"
)

// commitChain commits the generated version chain and returns the versions
// in commit (root → head) order.
func commitChain(t *testing.T, base string, snaps []*table.Table) []store.Version {
	t.Helper()
	out := make([]store.Version, len(snaps))
	parent := ""
	for i, s := range snaps {
		resp, body := postJSON(t, base+"/versions", commitRequest{
			CSV: csvOf(t, s), Key: []string{"id"}, Parent: parent, Message: "step",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("commit %d status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &out[i]); err != nil {
			t.Fatal(err)
		}
		parent = out[i].ID
	}
	return out
}

func TestTimelineEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	snaps, err := gen.Chain(gen.ChainConfig{N: 40, Steps: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	versions := commitChain(t, ts.URL, snaps)

	// Default request: head = latest commit, every changed numeric attribute.
	resp, body := postJSON(t, ts.URL+"/timeline", timelineRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status %d: %s", resp.StatusCode, body)
	}
	var tr timelineResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Head != versions[len(versions)-1].ID {
		t.Errorf("head = %s, want latest commit", tr.Head)
	}
	if len(tr.Versions) != len(snaps) || tr.Steps != len(snaps)-1 {
		t.Fatalf("versions = %d, steps = %d", len(tr.Versions), tr.Steps)
	}
	for i, v := range versions {
		if tr.Versions[i] != v.ID {
			t.Errorf("versions[%d] = %s, want root→head order", i, tr.Versions[i])
		}
	}
	byTarget := map[string]timelineTargetJSON{}
	for _, tj := range tr.Targets {
		byTarget[tj.Target] = tj
		if len(tj.Steps) != tr.Steps {
			t.Errorf("%s: %d steps, want %d", tj.Target, len(tj.Steps), tr.Steps)
		}
		if len(tj.Drifts) != tr.Steps-1 {
			t.Errorf("%s: %d drifts, want %d", tj.Target, len(tj.Drifts), tr.Steps-1)
		}
	}
	for _, want := range []string{"salary", "bonus", "overtime"} {
		if _, ok := byTarget[want]; !ok {
			t.Errorf("target %s missing (got %v)", want, keysOf(byTarget))
		}
	}
	// salary changes every step; its steps must carry summaries.
	for i, step := range byTarget["salary"].Steps {
		if step.NoChange || len(step.Ranked) == 0 {
			t.Errorf("salary step %d: NoChange=%v ranked=%d", i, step.NoChange, len(step.Ranked))
		}
		if step.From != versions[i].ID || step.To != versions[i+1].ID {
			t.Errorf("salary step %d endpoints %s→%s", i, step.From, step.To)
		}
	}
	// overtime skips odd steps by construction (applied on even step
	// numbers only): there must be at least one NoChange step.
	quiet := 0
	for _, step := range byTarget["overtime"].Steps {
		if step.NoChange {
			quiet++
		}
	}
	if quiet == 0 {
		t.Error("overtime: expected a no-change step")
	}

	// The head-relative default request is answered live and memoized whole:
	// a second identical request is one cache lookup, zero engine runs.
	if !tr.Live {
		t.Error("head-relative default timeline not marked live")
	}
	execBefore := srv.Stats().Executions
	resp2, body2 := postJSON(t, ts.URL+"/timeline", timelineRequest{})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second timeline status %d: %s", resp2.StatusCode, body2)
	}
	var tr2 timelineResponse
	if err := json.Unmarshal(body2, &tr2); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Executions; got != execBefore {
		t.Errorf("second timeline ran %d engine executions, want 0 (cache)", got-execBefore)
	}
	if !tr2.Live || !tr2.Cached {
		t.Errorf("repeat live timeline: live=%v cached=%v, want both", tr2.Live, tr2.Cached)
	}

	// POST /summarize shares the same cache keys: a step summarize of an
	// already-walked pair is a hit.
	execBefore = srv.Stats().Executions
	respS, bodyS := postJSON(t, ts.URL+"/summarize", summarizeRequest{
		From: versions[0].ID, To: versions[1].ID, Target: "salary",
	})
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("summarize status %d: %s", respS.StatusCode, bodyS)
	}
	if got := srv.Stats().Executions; got != execBefore {
		t.Errorf("summarize after timeline re-ran the engine (%d executions)", got-execBefore)
	}

	// Explicit single-target request.
	respT, bodyT := postJSON(t, ts.URL+"/timeline", timelineRequest{Target: "bonus"})
	if respT.StatusCode != http.StatusOK {
		t.Fatalf("single-target status %d: %s", respT.StatusCode, bodyT)
	}
	var trT timelineResponse
	if err := json.Unmarshal(bodyT, &trT); err != nil {
		t.Fatal(err)
	}
	if len(trT.Targets) != 1 || trT.Targets[0].Target != "bonus" {
		t.Errorf("single-target response targets = %+v", trT.Targets)
	}
}

func TestTimelineValidation(t *testing.T) {
	_, ts := newTestServer(t)

	// Empty store: no head to default to.
	resp, _ := postJSON(t, ts.URL+"/timeline", timelineRequest{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("empty store status = %d, want 404", resp.StatusCode)
	}

	// Unknown head id.
	resp, _ = postJSON(t, ts.URL+"/timeline", timelineRequest{Head: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown head status = %d, want 404", resp.StatusCode)
	}

	// A single root version has no steps to summarize.
	snaps, err := gen.Chain(gen.ChainConfig{N: 20, Steps: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	commitChain(t, ts.URL, snaps[:1])
	resp, body := postJSON(t, ts.URL+"/timeline", timelineRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("single-version status = %d: %s", resp.StatusCode, body)
	}
}

// TestTimelineTargetValidation pins the explicit-target checks: a typo'd or
// non-numeric target must read as an error, never as a fabricated
// all-no-change timeline.
func TestTimelineTargetValidation(t *testing.T) {
	_, ts := newTestServer(t)
	snaps, err := gen.Chain(gen.ChainConfig{N: 20, Steps: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	commitChain(t, ts.URL, snaps)

	resp, body := postJSON(t, ts.URL+"/timeline", timelineRequest{Target: "bonsu"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown target status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown target attribute") {
		t.Errorf("unknown target message: %s", body)
	}
	resp, body = postJSON(t, ts.URL+"/timeline", timelineRequest{Target: "dept"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("categorical target status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "not numeric") {
		t.Errorf("categorical target message: %s", body)
	}
}

// TestTimelineAmortizesPairState asserts the cold-walk amortization: one
// POST /timeline over a fresh lineage builds each pair's atom cache / split
// index exactly once, no matter how many targets the pair has.
func TestTimelineAmortizesPairState(t *testing.T) {
	_, ts := newTestServer(t)
	snaps, err := gen.Chain(gen.ChainConfig{N: 30, Steps: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	commitChain(t, ts.URL, snaps)

	c0, i0 := core.AccelBuilds()
	resp, body := postJSON(t, ts.URL+"/timeline", timelineRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status %d: %s", resp.StatusCode, body)
	}
	c1, i1 := core.AccelBuilds()
	steps := uint64(len(snaps) - 1)
	if c1-c0 != steps || i1-i0 != steps {
		t.Errorf("cold walk built %d caches / %d indexes, want one per pair (%d)", c1-c0, i1-i0, steps)
	}
	var tr timelineResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	engineCells := 0
	for _, tj := range tr.Targets {
		for _, s := range tj.Steps {
			if len(s.Ranked) > 0 {
				engineCells++
			}
		}
	}
	if engineCells <= int(steps) {
		t.Fatalf("amortization claim trivial: %d engine cells over %d pairs", engineCells, steps)
	}
}

func keysOf(m map[string]timelineTargetJSON) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTimelineEmptyBody pins that a body-less POST /timeline is the
// all-defaults request (every field is optional), not a 400.
func TestTimelineEmptyBody(t *testing.T) {
	_, ts := newTestServer(t)
	snaps, err := gen.Chain(gen.ChainConfig{N: 20, Steps: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	commitChain(t, ts.URL, snaps)
	resp, err := http.Post(ts.URL+"/timeline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty-body status = %d, want 200", resp.StatusCode)
	}
}

// TestTimelineWarmWalkIsParseFree pins the delta-native materialization path
// behind POST /timeline: a cold walk checks out only the chain root and
// derives every later version by applying its ChangeSet — one CSV parse for
// the whole chain, not one per version — and any repeat walk (same request
// or a narrowed target) costs no additional parsing either. The counters
// arrive over GET /stats, whose store section is also pinned here.
func TestTimelineWarmWalkIsParseFree(t *testing.T) {
	_, ts := newTestServer(t)
	snaps, err := gen.Chain(gen.ChainConfig{N: 40, Steps: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	commitChain(t, ts.URL, snaps)

	storeStats := func() store.Stats {
		t.Helper()
		resp, body := get(t, ts.URL+"/stats")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", resp.StatusCode)
		}
		var sr statsResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr.Store
	}

	if resp, body := postJSON(t, ts.URL+"/timeline", timelineRequest{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold timeline status %d: %s", resp.StatusCode, body)
	}
	cold := storeStats()
	if cold.Parses != 1 {
		t.Fatalf("cold walk parsed %d versions, want 1 (root checkout + delta application)", cold.Parses)
	}
	if cold.Versions != len(snaps) || cold.DeltaPacks == 0 {
		t.Errorf("store stats = %+v, want %d versions with delta packs", cold, len(snaps))
	}

	if resp, body := postJSON(t, ts.URL+"/timeline", timelineRequest{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm timeline status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/timeline", timelineRequest{Target: "salary"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm single-target timeline status %d: %s", resp.StatusCode, body)
	}
	warm := storeStats()
	if warm.Parses != cold.Parses {
		t.Errorf("warm walks parsed %d more versions, want 0", warm.Parses-cold.Parses)
	}
	if warm.CacheHits <= cold.CacheHits {
		t.Errorf("warm walks recorded no cache hits (%d -> %d)", cold.CacheHits, warm.CacheHits)
	}
}
