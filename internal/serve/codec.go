// JSON codecs for the engine's result types. The internal structs stay
// wire-format-free (Predicate is an interface-heavy tree, Breakdown has no
// tags); these DTOs pin a stable, documented JSON shape for the service.
package serve

import (
	"charles/internal/core"
	"charles/internal/model"
	"charles/internal/score"
)

// BreakdownJSON mirrors score.Breakdown.
type BreakdownJSON struct {
	Score            float64 `json:"score"`
	Accuracy         float64 `json:"accuracy"`
	Interpretability float64 `json:"interpretability"`
	Size             float64 `json:"size"`
	CondSimplicity   float64 `json:"condSimplicity"`
	TranSimplicity   float64 `json:"tranSimplicity"`
	Coverage         float64 `json:"coverage"`
	Normality        float64 `json:"normality"`
	MAE              float64 `json:"mae"`
	Scale            float64 `json:"scale"`
}

// CTJSON is one conditional transformation: the display strings the CLI
// prints plus the structured pieces (inputs, coefficients) so clients can
// re-render or apply the transformation themselves.
type CTJSON struct {
	Condition      string    `json:"condition"`
	Transformation string    `json:"transformation"`
	NoChange       bool      `json:"noChange,omitempty"`
	Inputs         []string  `json:"inputs,omitempty"`
	Coef           []float64 `json:"coef,omitempty"`
	Intercept      float64   `json:"intercept,omitempty"`
	Rows           int       `json:"rows"`
	Coverage       float64   `json:"coverage"`
	MAE            float64   `json:"mae"`
}

// SummaryJSON is a set of CTs for one target attribute.
type SummaryJSON struct {
	Target    string   `json:"target"`
	CTs       []CTJSON `json:"cts"`
	CondAttrs []string `json:"condAttrs,omitempty"`
	TranAttrs []string `json:"tranAttrs,omitempty"`
}

// RankedJSON pairs a summary with its evaluated score.
type RankedJSON struct {
	Summary   SummaryJSON   `json:"summary"`
	Breakdown BreakdownJSON `json:"breakdown"`
	NoChange  bool          `json:"noChange,omitempty"`
}

func encodeBreakdown(b *score.Breakdown) BreakdownJSON {
	return BreakdownJSON{
		Score:            b.Score,
		Accuracy:         b.Accuracy,
		Interpretability: b.Interpretability,
		Size:             b.Size,
		CondSimplicity:   b.CondSimplicity,
		TranSimplicity:   b.TranSimplicity,
		Coverage:         b.Coverage,
		Normality:        b.Normality,
		MAE:              b.MAE,
		Scale:            b.Scale,
	}
}

func encodeCT(ct model.CT) CTJSON {
	out := CTJSON{
		Condition:      ct.Cond.String(),
		Transformation: ct.Tran.String(),
		NoChange:       ct.Tran.NoChange,
		Rows:           ct.Rows,
		Coverage:       ct.Coverage,
		MAE:            ct.MAE,
	}
	if !ct.Tran.NoChange {
		out.Inputs = ct.Tran.InputNames()
		out.Coef = ct.Tran.Coef
		out.Intercept = ct.Tran.Intercept
	}
	return out
}

func encodeSummary(s *model.Summary) SummaryJSON {
	cts := make([]CTJSON, len(s.CTs))
	for i, ct := range s.CTs {
		cts[i] = encodeCT(ct)
	}
	return SummaryJSON{
		Target:    s.Target,
		CTs:       cts,
		CondAttrs: s.CondAttrs,
		TranAttrs: s.TranAttrs,
	}
}

// EncodeRanked converts engine results to their wire form.
func EncodeRanked(ranked []core.Ranked) []RankedJSON {
	out := make([]RankedJSON, len(ranked))
	for i, r := range ranked {
		out[i] = RankedJSON{
			Summary:   encodeSummary(r.Summary),
			Breakdown: encodeBreakdown(r.Breakdown),
			NoChange:  r.NoChange,
		}
	}
	return out
}
