package model

import (
	"math"
	"testing"

	"charles/internal/table"
)

func featureTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "pay", Type: table.Float},
		{Name: "grade", Type: table.Int},
	})
	tbl.MustAppendRow(table.F(math.E), table.I(3))
	tbl.MustAppendRow(table.F(100), table.I(5))
	tbl.MustAppendRow(table.F(-4), table.I(2))
	tbl.MustAppendRow(table.Null(table.Float), table.I(1))
	return tbl
}

func TestFeatureEval(t *testing.T) {
	tbl := featureTable(t)
	cases := []struct {
		f    Feature
		row  int
		want float64
	}{
		{Lin("pay"), 1, 100},
		{Feature{Form: Log, Attr: "pay"}, 0, 1}, // ln(e) = 1
		{Feature{Form: Square, Attr: "pay"}, 1, 10000},
		{Feature{Form: Interaction, Attr: "pay", Attr2: "grade"}, 1, 500},
		{Feature{Form: Square, Attr: "pay"}, 2, 16},
	}
	for _, c := range cases {
		got, err := c.f.Eval(tbl, c.row)
		if err != nil {
			t.Fatalf("%s: %v", c.f.Name(), err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s row %d = %v, want %v", c.f.Name(), c.row, got, c.want)
		}
	}
}

func TestFeatureEvalDomainErrors(t *testing.T) {
	tbl := featureTable(t)
	// Log of a negative value is NaN (filtered by the engine's masks).
	v, err := Feature{Form: Log, Attr: "pay"}.Eval(tbl, 2)
	if err != nil || !math.IsNaN(v) {
		t.Errorf("log(-4) = %v, %v; want NaN", v, err)
	}
	// Null propagates as NaN.
	v, err = Lin("pay").Eval(tbl, 3)
	if err != nil || !math.IsNaN(v) {
		t.Errorf("null feature = %v, %v; want NaN", v, err)
	}
	// Unknown attribute is an error.
	if _, err := Lin("ghost").Eval(tbl, 0); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := (Feature{Form: Interaction, Attr: "pay", Attr2: "ghost"}).Eval(tbl, 0); err == nil {
		t.Error("unknown interaction attribute accepted")
	}
}

func TestFeatureNames(t *testing.T) {
	cases := map[string]Feature{
		"pay":       Lin("pay"),
		"ln(pay)":   {Form: Log, Attr: "pay"},
		"pay²":      {Form: Square, Attr: "pay"},
		"pay·grade": {Form: Interaction, Attr: "pay", Attr2: "grade"},
	}
	for want, f := range cases {
		if f.Name() != want {
			t.Errorf("Name = %q, want %q", f.Name(), want)
		}
	}
}

func TestFeatureAttrs(t *testing.T) {
	if got := Lin("pay").Attrs(); len(got) != 1 || got[0] != "pay" {
		t.Errorf("Attrs = %v", got)
	}
	inter := Feature{Form: Interaction, Attr: "a", Attr2: "b"}
	if got := inter.Attrs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("interaction Attrs = %v", got)
	}
}

func TestInteractionKeyCommutes(t *testing.T) {
	ab := Feature{Form: Interaction, Attr: "a", Attr2: "b"}
	ba := Feature{Form: Interaction, Attr: "b", Attr2: "a"}
	if ab.key() != ba.key() {
		t.Errorf("interaction keys should commute: %q vs %q", ab.key(), ba.key())
	}
	// But form still distinguishes.
	if Lin("a").key() == (Feature{Form: Square, Attr: "a"}).key() {
		t.Error("linear and square share a key")
	}
}

func TestFeatureTransformationApply(t *testing.T) {
	tbl := featureTable(t)
	tr := Transformation{
		Target:   "pay",
		Features: []Feature{Lin("pay"), {Form: Square, Attr: "pay"}},
		Coef:     []float64{1, 0.01},
	}
	got, err := tr.Apply(tbl, 1) // 100 + 0.01·10000 = 200
	if err != nil || got != 200 {
		t.Errorf("feature transformation Apply = %v, %v", got, err)
	}
	names := tr.InputNames()
	if len(names) != 2 || names[1] != "pay²" {
		t.Errorf("InputNames = %v", names)
	}
	if s := tr.String(); s != "new_pay = 1×pay + 0.01×pay²" {
		t.Errorf("String = %q", s)
	}
}

func TestFeatureVsInputsFingerprint(t *testing.T) {
	// Feature-form Lin(x) and Inputs-form "x" are the same transformation
	// and must share a fingerprint.
	a := Transformation{Target: "y", Features: []Feature{Lin("x")}, Coef: []float64{2}, Intercept: 1}
	b := Transformation{Target: "y", Inputs: []string{"x"}, Coef: []float64{2}, Intercept: 1}
	sa := &Summary{Target: "y", CTs: []CT{{Tran: a}}}
	sb := &Summary{Target: "y", CTs: []CT{{Tran: b}}}
	if sa.Fingerprint() != sb.Fingerprint() {
		t.Error("representations of the same transformation have different fingerprints")
	}
}
