package model

import (
	"math/rand"
	"strings"
	"testing"

	"charles/internal/predicate"
	"charles/internal/table"
)

func employeeTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "edu", Type: table.String},
		{Name: "bonus", Type: table.Float},
		{Name: "salary", Type: table.Float},
	})
	tbl.MustAppendRow(table.S("PhD"), table.F(23000), table.F(230000))
	tbl.MustAppendRow(table.S("MS"), table.F(16000), table.F(160000))
	tbl.MustAppendRow(table.S("BS"), table.F(11000), table.F(110000))
	return tbl
}

func TestTransformationApply(t *testing.T) {
	tbl := employeeTable(t)
	tr := Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000}
	got, err := tr.Apply(tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.05*23000+1000 {
		t.Errorf("Apply = %v", got)
	}
	multi := Transformation{Target: "bonus", Inputs: []string{"bonus", "salary"}, Coef: []float64{0.5, 0.01}, Intercept: 10}
	got, err = multi.Apply(tbl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5*16000+0.01*160000+10 {
		t.Errorf("multi Apply = %v", got)
	}
}

func TestIdentityTransformation(t *testing.T) {
	tbl := employeeTable(t)
	id := Identity("bonus")
	if !id.NoChange {
		t.Fatal("Identity should be NoChange")
	}
	got, err := id.Apply(tbl, 2)
	if err != nil || got != 11000 {
		t.Errorf("identity Apply = %v, %v", got, err)
	}
	if id.Complexity() != 0 || id.Constants() != nil {
		t.Error("identity has no variables or constants")
	}
	if id.String() != "no change" {
		t.Errorf("identity String = %q", id.String())
	}
}

func TestTransformationApplyUnknownAttr(t *testing.T) {
	tbl := employeeTable(t)
	tr := Transformation{Target: "bonus", Inputs: []string{"ghost"}, Coef: []float64{1}}
	if _, err := tr.Apply(tbl, 0); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestTransformationComplexityAndConstants(t *testing.T) {
	tr := Transformation{Target: "y", Inputs: []string{"a", "b", "c"}, Coef: []float64{1.05, 0, -2}, Intercept: 400}
	if tr.Complexity() != 2 {
		t.Errorf("Complexity = %d (zero coefficients must not count)", tr.Complexity())
	}
	consts := tr.Constants()
	if len(consts) != 3 {
		t.Errorf("Constants = %v", consts)
	}
	noIcpt := Transformation{Target: "y", Inputs: []string{"a"}, Coef: []float64{2}}
	if len(noIcpt.Constants()) != 1 {
		t.Error("zero intercept should not be a constant")
	}
}

func TestTransformationString(t *testing.T) {
	tr := Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000}
	if got := tr.String(); got != "new_bonus = 1.05×bonus + 1000" {
		t.Errorf("String = %q", got)
	}
	neg := Transformation{Target: "y", Inputs: []string{"x"}, Coef: []float64{-2}, Intercept: -3}
	if got := neg.String(); got != "new_y = -2×x - 3" {
		t.Errorf("negative String = %q", got)
	}
	constOnly := Transformation{Target: "y", Inputs: []string{"x"}, Coef: []float64{0}, Intercept: 7}
	if got := constOnly.String(); got != "new_y = 7" {
		t.Errorf("constant String = %q", got)
	}
}

func TestSummaryApplyFirstMatchWins(t *testing.T) {
	tbl := employeeTable(t)
	s := &Summary{
		Target: "bonus",
		CTs: []CT{
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "PhD")}},
				Tran: Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{2}},
			},
			{
				Cond: predicate.True(), // catches everything else, including PhD if ordered first
				Tran: Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{3}},
			},
		},
	}
	preds, covered, err := s.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] != 46000 {
		t.Errorf("PhD row should use the first CT: %v", preds[0])
	}
	if preds[1] != 48000 || preds[2] != 33000 {
		t.Errorf("fallthrough rows wrong: %v", preds)
	}
	for i, c := range covered {
		if !c {
			t.Errorf("row %d not covered", i)
		}
	}
}

func TestSummaryApplyUncoveredDefaultsToNoChange(t *testing.T) {
	tbl := employeeTable(t)
	s := &Summary{
		Target: "bonus",
		CTs: []CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "PhD")}},
			Tran: Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000},
		}},
	}
	preds, covered, err := s.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if covered[1] || covered[2] {
		t.Error("non-PhD rows should be uncovered")
	}
	if preds[1] != 16000 || preds[2] != 11000 {
		t.Errorf("uncovered rows should predict no change: %v", preds)
	}
}

func TestEmptySummaryIsIdentity(t *testing.T) {
	tbl := employeeTable(t)
	s := &Summary{Target: "bonus"}
	preds, covered, err := s.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if covered[i] {
			t.Error("empty summary covers nothing")
		}
		v, _ := tbl.Value(i, "bonus")
		if preds[i] != v.Float() {
			t.Errorf("row %d changed under empty summary", i)
		}
	}
}

func TestFingerprintOrderInsensitive(t *testing.T) {
	ct1 := CT{
		Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "PhD")}},
		Tran: Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000},
	}
	ct2 := CT{
		Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "MS")}},
		Tran: Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.04}, Intercept: 800},
	}
	a := &Summary{Target: "bonus", CTs: []CT{ct1, ct2}}
	b := &Summary{Target: "bonus", CTs: []CT{ct2, ct1}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint should be order-insensitive")
	}
	c := &Summary{Target: "bonus", CTs: []CT{ct1}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different summaries share a fingerprint")
	}
}

func TestFingerprintShuffleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var cts []CT
	for i := 0; i < 6; i++ {
		cts = append(cts, CT{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.NumAtom("x", predicate.Ge, float64(i))}},
			Tran: Transformation{Target: "y", Inputs: []string{"y"}, Coef: []float64{1 + float64(i)/100}},
		})
	}
	base := (&Summary{Target: "y", CTs: cts}).Fingerprint()
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]CT(nil), cts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if (&Summary{Target: "y", CTs: shuffled}).Fingerprint() != base {
			t.Fatal("shuffle changed fingerprint")
		}
	}
}

func TestIgnoredZeroCoefInFingerprint(t *testing.T) {
	a := Transformation{Target: "y", Inputs: []string{"p", "q"}, Coef: []float64{2, 0}, Intercept: 1}
	b := Transformation{Target: "y", Inputs: []string{"p"}, Coef: []float64{2}, Intercept: 1}
	sa := &Summary{Target: "y", CTs: []CT{{Cond: predicate.True(), Tran: a}}}
	sb := &Summary{Target: "y", CTs: []CT{{Cond: predicate.True(), Tran: b}}}
	if sa.Fingerprint() != sb.Fingerprint() {
		t.Error("zero-coefficient input should not alter the fingerprint")
	}
}

func TestSummaryString(t *testing.T) {
	s := &Summary{Target: "bonus", CTs: []CT{{
		Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "PhD")}},
		Tran: Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000},
	}}}
	out := s.String()
	if !strings.Contains(out, "CT1") || !strings.Contains(out, "edu = PhD") || !strings.Contains(out, "→") {
		t.Errorf("String = %q", out)
	}
	if s.Size() != 1 {
		t.Errorf("Size = %d", s.Size())
	}
}
