package model

import (
	"fmt"
	"strings"

	"charles/internal/predicate"
)

// SQL renders the summary as a sequence of SQL UPDATE statements that would
// replay the recovered evolution against the source snapshot, e.g.
//
//	UPDATE employees SET bonus = 1.05 * bonus + 1000 WHERE edu = 'PhD';
//
// Partitions are emitted in CT order; since the engine's partitions are
// disjoint the statements commute, but the order is kept for first-match
// faithfulness. Identity CTs emit a comment instead of a no-op UPDATE.
// The dialect is deliberately vanilla (ANSI, single quotes, standard
// operators) so the output runs on PostgreSQL, SQLite, MySQL, and DuckDB.
func (s *Summary) SQL(tableName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- ChARLES change summary for %s.%s (%d conditional transformations)\n",
		tableName, s.Target, len(s.CTs))
	for i, ct := range s.CTs {
		if ct.Tran.NoChange {
			fmt.Fprintf(&b, "-- CT%d: %s → no change\n", i+1, sqlCond(ct.Cond))
			continue
		}
		fmt.Fprintf(&b, "UPDATE %s SET %s = %s", tableName, quoteIdent(s.Target), sqlExpr(ct.Tran))
		if !ct.Cond.IsTrue() {
			fmt.Fprintf(&b, " WHERE %s", sqlCond(ct.Cond))
		}
		b.WriteString(";\n")
	}
	return b.String()
}

// sqlExpr renders the transformation's right-hand side.
func sqlExpr(tr Transformation) string {
	var terms []string
	for i, f := range tr.features() {
		c := tr.Coef[i]
		if c == 0 {
			continue
		}
		terms = append(terms, fmt.Sprintf("%s * %s", sqlNum(c), sqlFeature(f)))
	}
	if tr.Intercept != 0 || len(terms) == 0 {
		terms = append(terms, sqlNum(tr.Intercept))
	}
	out := terms[0]
	for _, t := range terms[1:] {
		if strings.HasPrefix(t, "-") {
			out += " - " + t[1:]
		} else {
			out += " + " + t
		}
	}
	return out
}

// sqlFeature renders a derived feature as a SQL expression.
func sqlFeature(f Feature) string {
	switch f.Form {
	case Log:
		return fmt.Sprintf("LN(%s)", quoteIdent(f.Attr))
	case Square:
		return fmt.Sprintf("%s * %s", quoteIdent(f.Attr), quoteIdent(f.Attr))
	case Interaction:
		return fmt.Sprintf("%s * %s", quoteIdent(f.Attr), quoteIdent(f.Attr2))
	default:
		return quoteIdent(f.Attr)
	}
}

// sqlCond renders a conjunctive predicate as a WHERE clause body.
func sqlCond(p predicate.Predicate) string {
	if p.IsTrue() {
		return "TRUE"
	}
	parts := make([]string, len(p.Atoms))
	for i, a := range p.Atoms {
		parts[i] = sqlAtom(a)
	}
	return strings.Join(parts, " AND ")
}

func sqlAtom(a predicate.Atom) string {
	if a.Numeric {
		op := map[predicate.Op]string{
			predicate.Eq: "=", predicate.Ne: "<>", predicate.Lt: "<", predicate.Ge: ">=",
		}[a.Op]
		return fmt.Sprintf("%s %s %s", quoteIdent(a.Attr), op, sqlNum(a.Num))
	}
	switch a.Op {
	case predicate.Eq:
		return fmt.Sprintf("%s = %s", quoteIdent(a.Attr), sqlStr(a.Str))
	case predicate.Ne:
		return fmt.Sprintf("%s <> %s", quoteIdent(a.Attr), sqlStr(a.Str))
	case predicate.In:
		vals := make([]string, len(a.Set))
		for i, v := range a.Set {
			vals[i] = sqlStr(v)
		}
		return fmt.Sprintf("%s IN (%s)", quoteIdent(a.Attr), strings.Join(vals, ", "))
	default:
		return "TRUE"
	}
}

// quoteIdent double-quotes identifiers that need it (non-alphanumeric or
// reserved-looking); plain lowercase identifiers pass through for
// readability.
func quoteIdent(name string) string {
	plain := true
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r == '_':
		case r >= '0' && r <= '9' && i > 0:
		default:
			plain = false
		}
	}
	if plain && name != "" {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// sqlStr single-quotes a string literal, doubling embedded quotes.
func sqlStr(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// sqlNum renders a numeric constant without scientific notation surprises.
func sqlNum(x float64) string {
	s := fmt.Sprintf("%g", x)
	if strings.ContainsAny(s, "eE") {
		s = fmt.Sprintf("%.10f", x)
		s = strings.TrimRight(s, "0")
		s = strings.TrimSuffix(s, ".")
	}
	return s
}
