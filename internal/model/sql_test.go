package model

import (
	"strings"
	"testing"

	"charles/internal/predicate"
)

func TestSQLBasicUpdate(t *testing.T) {
	s := &Summary{
		Target: "bonus",
		CTs: []CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "PhD")}},
			Tran: Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000},
		}},
	}
	got := s.SQL("employees")
	want := "UPDATE employees SET bonus = 1.05 * bonus + 1000 WHERE edu = 'PhD';"
	if !strings.Contains(got, want) {
		t.Errorf("SQL = %q, want to contain %q", got, want)
	}
}

func TestSQLNegativeTermsAndNumericAtoms(t *testing.T) {
	s := &Summary{
		Target: "pay",
		CTs: []CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{
				predicate.NumAtom("grade", predicate.Ge, 25),
				predicate.NumAtom("grade", predicate.Lt, 30),
			}},
			Tran: Transformation{Target: "pay", Inputs: []string{"pay", "grade"}, Coef: []float64{1.02, -50}, Intercept: -100},
		}},
	}
	got := s.SQL("t")
	if !strings.Contains(got, "SET pay = 1.02 * pay - 50 * grade - 100") {
		t.Errorf("expression rendering:\n%s", got)
	}
	if !strings.Contains(got, "grade >= 25 AND grade < 30") {
		t.Errorf("numeric atoms:\n%s", got)
	}
}

func TestSQLIdentityCTIsComment(t *testing.T) {
	s := &Summary{
		Target: "pay",
		CTs: []CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("dept", predicate.Eq, "HR")}},
			Tran: Identity("pay"),
		}},
	}
	got := s.SQL("t")
	if strings.Contains(got, "UPDATE") {
		t.Errorf("identity CT should not emit an UPDATE:\n%s", got)
	}
	if !strings.Contains(got, "-- CT1") || !strings.Contains(got, "no change") {
		t.Errorf("identity comment missing:\n%s", got)
	}
}

func TestSQLTrueConditionOmitsWhere(t *testing.T) {
	s := &Summary{
		Target: "pay",
		CTs: []CT{{
			Cond: predicate.True(),
			Tran: Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.02}},
		}},
	}
	got := s.SQL("t")
	if strings.Contains(got, "WHERE") {
		t.Errorf("TRUE condition should omit WHERE:\n%s", got)
	}
}

func TestSQLQuoting(t *testing.T) {
	s := &Summary{
		Target: "Base Salary",
		CTs: []CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("dept", predicate.Eq, "O'Brien & Co")}},
			Tran: Transformation{Target: "Base Salary", Inputs: []string{"Base Salary"}, Coef: []float64{1.1}},
		}},
	}
	got := s.SQL("t")
	if !strings.Contains(got, `"Base Salary"`) {
		t.Errorf("identifier quoting:\n%s", got)
	}
	if !strings.Contains(got, "'O''Brien & Co'") {
		t.Errorf("string escaping:\n%s", got)
	}
}

func TestSQLInAtom(t *testing.T) {
	s := &Summary{
		Target: "pay",
		CTs: []CT{{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.SetAtom("dept", []string{"POL", "FRS"})}},
			Tran: Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.04}},
		}},
	}
	got := s.SQL("t")
	if !strings.Contains(got, "dept IN ('FRS', 'POL')") {
		t.Errorf("IN rendering:\n%s", got)
	}
}

func TestSQLNumAvoidsScientificNotation(t *testing.T) {
	if got := sqlNum(0.0000015); strings.ContainsAny(got, "eE") {
		t.Errorf("sqlNum = %q", got)
	}
	if got := sqlNum(1.05); got != "1.05" {
		t.Errorf("sqlNum(1.05) = %q", got)
	}
	if got := sqlNum(-50); got != "-50" {
		t.Errorf("sqlNum(-50) = %q", got)
	}
}

func TestSQLConstantOnlyTransformation(t *testing.T) {
	s := &Summary{
		Target: "pay",
		CTs: []CT{{
			Cond: predicate.True(),
			Tran: Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{0}, Intercept: 42},
		}},
	}
	if !strings.Contains(s.SQL("t"), "SET pay = 42") {
		t.Errorf("constant transformation:\n%s", s.SQL("t"))
	}
}
