package model

import (
	"math"

	"charles/internal/table"
)

// This file holds the column-bound fast path for transformations. The naive
// path (Feature.Eval / Transformation.Apply) resolves columns by name for
// every row; the engine applies the same transformation to thousands of
// rows per candidate, so binding resolves each column once into a shared
// float view and row evaluation becomes pure arithmetic.

// BoundFeature is a Feature resolved against one table: the underlying
// column(s) are held as float views, so At(r) involves no lookups.
type BoundFeature struct {
	form Form
	x    []float64 // primary attribute values (NaN for nulls)
	x2   []float64 // Interaction only
}

// Bind resolves the feature's columns against src. The bound form is
// read-only and safe for concurrent use.
func (f Feature) Bind(src *table.Table) (BoundFeature, error) {
	col, err := src.Column(f.Attr)
	if err != nil {
		return BoundFeature{}, err
	}
	bf := BoundFeature{form: f.Form, x: col.FloatView()}
	if bf.x == nil {
		// Non-numeric column: Float(r) is NaN everywhere, like Feature.Eval.
		bf.x = nanSlice(src.NumRows())
	}
	if f.Form == Interaction {
		col2, err := src.Column(f.Attr2)
		if err != nil {
			return BoundFeature{}, err
		}
		bf.x2 = col2.FloatView()
		if bf.x2 == nil {
			bf.x2 = nanSlice(src.NumRows())
		}
	}
	return bf, nil
}

// At evaluates the feature for row r; results match Feature.Eval exactly
// (nulls and domain errors yield NaN).
func (bf BoundFeature) At(r int) float64 {
	x := bf.x[r]
	switch bf.form {
	case Linear:
		return x
	case Log:
		if x <= 0 {
			return math.NaN()
		}
		return math.Log(x)
	case Square:
		return x * x
	case Interaction:
		return x * bf.x2[r]
	default:
		return math.NaN()
	}
}

func nanSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.NaN()
	}
	return s
}

// CompiledTransformation is a Transformation bound to a table. Zero value is
// reusable scratch: CompileInto rebinds it in place without reallocating,
// so a scoring loop that compiles one CT at a time does zero steady-state
// allocations.
type CompiledTransformation struct {
	noChange  bool
	target    []float64
	intercept float64
	coef      []float64
	feats     []BoundFeature
}

// CompileInto binds tr against src, reusing dst's storage. The compiled
// form evaluates rows exactly like Transformation.Apply.
func (tr Transformation) CompileInto(dst *CompiledTransformation, src *table.Table) error {
	dst.noChange = tr.NoChange
	dst.feats = dst.feats[:0]
	if tr.NoChange {
		col, err := src.Column(tr.Target)
		if err != nil {
			return err
		}
		dst.target = col.FloatView()
		if dst.target == nil {
			dst.target = nanSlice(src.NumRows())
		}
		return nil
	}
	dst.intercept = tr.Intercept
	dst.coef = tr.Coef
	for _, f := range tr.features() {
		bf, err := f.Bind(src)
		if err != nil {
			return err
		}
		dst.feats = append(dst.feats, bf)
	}
	return nil
}

// Compile binds tr against src into a fresh compiled form.
func (tr Transformation) Compile(src *table.Table) (*CompiledTransformation, error) {
	c := &CompiledTransformation{}
	if err := tr.CompileInto(c, src); err != nil {
		return nil, err
	}
	return c, nil
}

// At evaluates the transformation for row r (same result as
// Transformation.Apply, same accumulation order).
func (c *CompiledTransformation) At(r int) float64 {
	if c.noChange {
		return c.target[r]
	}
	s := c.intercept
	for i, bf := range c.feats {
		s += c.coef[i] * bf.At(r)
	}
	return s
}
