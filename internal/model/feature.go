package model

import (
	"fmt"
	"math"

	"charles/internal/table"
)

// Form identifies the functional form of a derived regression feature. The
// paper's limitations section notes that ChARLES "relies on linear models
// ... this can be extended by augmenting the data with nonlinear features";
// Form is that extension: transformations stay linear *in the features*,
// and the features may be nonlinear in the attributes.
type Form int

const (
	// Linear is the attribute itself.
	Linear Form = iota
	// Log is the natural logarithm ln(attr); usable only when the
	// attribute is strictly positive over the fitted rows.
	Log
	// Square is attr².
	Square
	// Interaction is the product attr·attr2.
	Interaction
)

// Feature is one (possibly derived) regression input.
type Feature struct {
	Form  Form
	Attr  string
	Attr2 string // Interaction only
}

// Lin builds the identity feature for an attribute.
func Lin(attr string) Feature { return Feature{Form: Linear, Attr: attr} }

// Name returns the display / SQL-friendly name of the feature.
func (f Feature) Name() string {
	switch f.Form {
	case Linear:
		return f.Attr
	case Log:
		return fmt.Sprintf("ln(%s)", f.Attr)
	case Square:
		return fmt.Sprintf("%s²", f.Attr)
	case Interaction:
		return fmt.Sprintf("%s·%s", f.Attr, f.Attr2)
	default:
		return fmt.Sprintf("feature(%d,%s)", int(f.Form), f.Attr)
	}
}

// Attrs returns the underlying attribute names.
func (f Feature) Attrs() []string {
	if f.Form == Interaction {
		return []string{f.Attr, f.Attr2}
	}
	return []string{f.Attr}
}

// Eval computes the feature for row r of src. Nulls and domain errors
// (log of a non-positive value) yield NaN, which the engine's row masks
// filter out.
func (f Feature) Eval(src *table.Table, r int) (float64, error) {
	col, err := src.Column(f.Attr)
	if err != nil {
		return 0, err
	}
	x := col.Float(r)
	switch f.Form {
	case Linear:
		return x, nil
	case Log:
		if x <= 0 {
			return math.NaN(), nil
		}
		return math.Log(x), nil
	case Square:
		return x * x, nil
	case Interaction:
		col2, err := src.Column(f.Attr2)
		if err != nil {
			return 0, err
		}
		return x * col2.Float(r), nil
	default:
		return math.NaN(), nil
	}
}

// key is the canonical identity used in transformation fingerprints.
func (f Feature) key() string {
	if f.Form == Interaction {
		// Product commutes: canonicalize the attribute order.
		a, b := f.Attr, f.Attr2
		if b < a {
			a, b = b, a
		}
		return fmt.Sprintf("x(%s,%s)", a, b)
	}
	return fmt.Sprintf("%d(%s)", int(f.Form), f.Attr)
}
