// Package model defines the shared representation of ChARLES output: the
// conditional transformation (CT) and the change summary (a set of CTs).
// It sits below the scoring, tree-rendering, search, and baseline layers so
// they can exchange summaries without import cycles.
package model

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"charles/internal/predicate"
	"charles/internal/table"
)

// Transformation describes how the target attribute changed within one
// partition: new_target = Σ Coef[i]·feature_i(source row) + Intercept, or
// NoChange (identity). Features are read from the *source* snapshot, so
// `bonus` on the right-hand side means last year's bonus.
//
// The common linear case names plain attributes via Inputs; when the
// nonlinear extension is active, Features carries derived inputs
// (ln(pay), pay², pay·grade) and takes precedence over Inputs.
type Transformation struct {
	Target    string
	Inputs    []string  // attribute names (linear features); ignored when Features is set
	Features  []Feature // derived features; optional
	Coef      []float64 // aligned with Features if set, else with Inputs
	Intercept float64
	NoChange  bool
}

// features returns the effective feature list in either representation.
func (tr Transformation) features() []Feature {
	if tr.Features != nil {
		return tr.Features
	}
	fs := make([]Feature, len(tr.Inputs))
	for i, in := range tr.Inputs {
		fs[i] = Lin(in)
	}
	return fs
}

// InputNames returns the display names of the effective inputs.
func (tr Transformation) InputNames() []string {
	fs := tr.features()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name()
	}
	return names
}

// Identity returns the no-change transformation for the target attribute.
func Identity(target string) Transformation {
	return Transformation{Target: target, NoChange: true}
}

// Apply evaluates the transformation for row r of the source table.
func (tr Transformation) Apply(src *table.Table, r int) (float64, error) {
	if tr.NoChange {
		col, err := src.Column(tr.Target)
		if err != nil {
			return 0, err
		}
		return col.Float(r), nil
	}
	s := tr.Intercept
	for i, f := range tr.features() {
		v, err := f.Eval(src, r)
		if err != nil {
			return 0, err
		}
		s += tr.Coef[i] * v
	}
	return s, nil
}

// Complexity counts the variables in the linear equation (the paper's
// "transformation with fewer variables is preferred"). NoChange counts 0.
func (tr Transformation) Complexity() int {
	if tr.NoChange {
		return 0
	}
	n := 0
	for _, c := range tr.Coef {
		if c != 0 {
			n++
		}
	}
	return n
}

// Constants returns the numeric constants appearing in the transformation
// (nonzero coefficients and intercept), for normality scoring.
func (tr Transformation) Constants() []float64 {
	if tr.NoChange {
		return nil
	}
	var out []float64
	for _, c := range tr.Coef {
		if c != 0 {
			out = append(out, c)
		}
	}
	if tr.Intercept != 0 {
		out = append(out, tr.Intercept)
	}
	return out
}

// String renders e.g. "new_bonus = 1.05×bonus + 1000" or "no change".
func (tr Transformation) String() string {
	if tr.NoChange {
		return "no change"
	}
	rhs := ""
	for i, in := range tr.InputNames() {
		c := tr.Coef[i]
		if c == 0 {
			continue
		}
		term := fmt.Sprintf("%s×%s", fmtConst(math.Abs(c)), in)
		switch {
		case rhs == "" && c < 0:
			rhs = "-" + term
		case rhs == "":
			rhs = term
		case c < 0:
			rhs += " - " + term
		default:
			rhs += " + " + term
		}
	}
	switch {
	case rhs == "":
		rhs = fmtConst(tr.Intercept)
	case tr.Intercept > 0:
		rhs += " + " + fmtConst(tr.Intercept)
	case tr.Intercept < 0:
		rhs += " - " + fmtConst(-tr.Intercept)
	}
	return fmt.Sprintf("new_%s = %s", tr.Target, rhs)
}

func fmtConst(x float64) string { return fmt.Sprintf("%.6g", x) }

// fingerprint gives a canonical identity, with constants rounded so that
// numerically indistinguishable transformations collide.
func (tr Transformation) fingerprint() string {
	if tr.NoChange {
		return "id"
	}
	fs := tr.features()
	parts := make([]string, 0, len(fs)+1)
	for i, f := range fs {
		if tr.Coef[i] == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s*%.6g", f.key(), tr.Coef[i]))
	}
	sort.Strings(parts)
	parts = append(parts, fmt.Sprintf("+%.6g", tr.Intercept))
	return strings.Join(parts, "|")
}

// CT is a conditional transformation: the unit of explanation. The condition
// selects a data partition; the transformation describes the change there.
type CT struct {
	Cond predicate.Predicate
	Tran Transformation

	// Diagnostics filled by the search engine:
	Rows     int     // rows in the partition (source table)
	Coverage float64 // Rows / total rows
	MAE      float64 // mean absolute error of Tran on the partition
}

// String renders "edu = PhD  →  new_bonus = 1.05×bonus + 1000".
func (ct CT) String() string {
	return fmt.Sprintf("%s  →  %s", ct.Cond, ct.Tran)
}

// Summary is a set of CTs explaining the evolution of one target attribute
// between two snapshots.
type Summary struct {
	Target string
	CTs    []CT

	// Provenance: which attribute subsets generated this summary.
	CondAttrs []string
	TranAttrs []string
}

// Size returns the number of CTs.
func (s *Summary) Size() int { return len(s.CTs) }

// Fingerprint identifies semantically equal summaries (order-insensitive).
func (s *Summary) Fingerprint() string {
	parts := make([]string, len(s.CTs))
	for i, ct := range s.CTs {
		parts[i] = ct.Cond.Fingerprint() + "=>" + ct.Tran.fingerprint()
	}
	sort.Strings(parts)
	return s.Target + "::" + strings.Join(parts, ";;")
}

// Apply produces the predicted target column: for each source row, the first
// CT (in order) whose condition matches is applied; unmatched rows predict
// "no change". Returns the predictions and a mask of rows covered by some CT.
func (s *Summary) Apply(src *table.Table) ([]float64, []bool, error) {
	n := src.NumRows()
	preds := make([]float64, n)
	covered := make([]bool, n)
	tcol, err := src.Column(s.Target)
	if err != nil {
		return nil, nil, err
	}
	for r := 0; r < n; r++ {
		preds[r] = tcol.Float(r) // default: unchanged
		for _, ct := range s.CTs {
			ok, err := ct.Cond.Eval(src, r)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				v, err := ct.Tran.Apply(src, r)
				if err != nil {
					return nil, nil, err
				}
				preds[r] = v
				covered[r] = true
				break
			}
		}
	}
	return preds, covered, nil
}

// String renders the summary as one CT per line.
func (s *Summary) String() string {
	var b strings.Builder
	for i, ct := range s.CTs {
		fmt.Fprintf(&b, "CT%d: %s\n", i+1, ct.String())
	}
	return b.String()
}
