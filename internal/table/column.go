package table

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Column is a typed, nullable column of values stored contiguously.
// Exactly one of the payload slices is populated, according to Type.
type Column struct {
	Name string
	Type Type

	floats []float64
	ints   []int64
	strs   []string
	bools  []bool
	nulls  []bool

	// Lazily built encodings (see encode.go), guarded by mu so concurrent
	// readers (the engine's workers) can trigger the build safely.
	mu    sync.Mutex
	codes []uint32
	dict  []string
	fview []float64
}

// NewColumn creates an empty column with the given name and type.
func NewColumn(name string, t Type) *Column {
	return &Column{Name: name, Type: t}
}

// Len returns the number of values in the column.
func (c *Column) Len() int { return len(c.nulls) }

// compatible reports whether v can be stored in this column.
func (c *Column) compatible(v Value) error {
	if v.IsNull() {
		return nil
	}
	switch c.Type {
	case Float, Int:
		if !v.Type().Numeric() {
			return fmt.Errorf("table: column %q (%s): incompatible value type %s", c.Name, c.Type, v.Type())
		}
	default:
		if v.Type() != c.Type {
			return fmt.Errorf("table: column %q (%s): incompatible value type %s", c.Name, c.Type, v.Type())
		}
	}
	return nil
}

// Append adds a value, converting between numeric types as needed.
// It returns an error when the value is incompatible with the column type.
func (c *Column) Append(v Value) error {
	c.invalidate()
	if v.IsNull() {
		c.appendZero()
		c.nulls[len(c.nulls)-1] = true
		return nil
	}
	switch c.Type {
	case Float:
		if !v.Type().Numeric() {
			return fmt.Errorf("table: column %q (float): incompatible value type %s", c.Name, v.Type())
		}
		c.floats = append(c.floats, v.Float())
	case Int:
		if !v.Type().Numeric() {
			return fmt.Errorf("table: column %q (int): incompatible value type %s", c.Name, v.Type())
		}
		c.ints = append(c.ints, v.Int())
	case String:
		if v.Type() != String {
			return fmt.Errorf("table: column %q (string): incompatible value type %s", c.Name, v.Type())
		}
		c.strs = append(c.strs, v.Str())
	case Bool:
		if v.Type() != Bool {
			return fmt.Errorf("table: column %q (bool): incompatible value type %s", c.Name, v.Type())
		}
		c.bools = append(c.bools, v.Bool())
	}
	c.nulls = append(c.nulls, false)
	return nil
}

func (c *Column) appendZero() {
	switch c.Type {
	case Float:
		c.floats = append(c.floats, 0)
	case Int:
		c.ints = append(c.ints, 0)
	case String:
		c.strs = append(c.strs, "")
	case Bool:
		c.bools = append(c.bools, false)
	}
	c.nulls = append(c.nulls, false)
}

// Value returns the value at row i.
func (c *Column) Value(i int) Value {
	if c.nulls[i] {
		return Null(c.Type)
	}
	switch c.Type {
	case Float:
		return F(c.floats[i])
	case Int:
		return I(c.ints[i])
	case String:
		return S(c.strs[i])
	case Bool:
		return B(c.bools[i])
	}
	return Null(c.Type)
}

// Set overwrites the value at row i.
func (c *Column) Set(i int, v Value) error {
	c.invalidate()
	if v.IsNull() {
		c.nulls[i] = true
		return nil
	}
	switch c.Type {
	case Float:
		if !v.Type().Numeric() {
			return fmt.Errorf("table: column %q (float): incompatible value type %s", c.Name, v.Type())
		}
		c.floats[i] = v.Float()
	case Int:
		if !v.Type().Numeric() {
			return fmt.Errorf("table: column %q (int): incompatible value type %s", c.Name, v.Type())
		}
		c.ints[i] = v.Int()
	case String:
		if v.Type() != String {
			return fmt.Errorf("table: column %q (string): incompatible value type %s", c.Name, v.Type())
		}
		c.strs[i] = v.Str()
	case Bool:
		if v.Type() != Bool {
			return fmt.Errorf("table: column %q (bool): incompatible value type %s", c.Name, v.Type())
		}
		c.bools[i] = v.Bool()
	}
	c.nulls[i] = false
	return nil
}

// Float returns the numeric value at row i (NaN for nulls/non-numeric).
// It avoids the Value boxing on the hot paths (regression, clustering).
func (c *Column) Float(i int) float64 {
	if c.nulls[i] {
		return math.NaN()
	}
	switch c.Type {
	case Float:
		return c.floats[i]
	case Int:
		return float64(c.ints[i])
	default:
		return math.NaN()
	}
}

// Str returns the categorical representation at row i.
func (c *Column) Str(i int) string {
	if c.nulls[i] {
		return ""
	}
	switch c.Type {
	case String:
		return c.strs[i]
	default:
		return c.Value(i).Str()
	}
}

// IsNull reports whether row i is null.
func (c *Column) IsNull(i int) bool { return c.nulls[i] }

// Floats returns all numeric values as a fresh slice (NaN for nulls).
func (c *Column) Floats() []float64 {
	out := make([]float64, c.Len())
	for i := range out {
		out[i] = c.Float(i)
	}
	return out
}

// Distinct returns the distinct non-null categorical values, sorted.
func (c *Column) Distinct() []string {
	seen := map[string]bool{}
	for i := 0; i < c.Len(); i++ {
		if c.nulls[i] {
			continue
		}
		seen[c.Str(i)] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// clone returns a deep copy of the column.
func (c *Column) clone() *Column {
	d := &Column{Name: c.Name, Type: c.Type}
	d.floats = append([]float64(nil), c.floats...)
	d.ints = append([]int64(nil), c.ints...)
	d.strs = append([]string(nil), c.strs...)
	d.bools = append([]bool(nil), c.bools...)
	d.nulls = append([]bool(nil), c.nulls...)
	return d
}

// gather returns a new column containing rows[i] in order.
func (c *Column) gather(rows []int) *Column {
	d := &Column{Name: c.Name, Type: c.Type}
	for _, r := range rows {
		switch c.Type {
		case Float:
			d.floats = append(d.floats, c.floats[r])
		case Int:
			d.ints = append(d.ints, c.ints[r])
		case String:
			d.strs = append(d.strs, c.strs[r])
		case Bool:
			d.bools = append(d.bools, c.bools[r])
		}
		d.nulls = append(d.nulls, c.nulls[r])
	}
	return d
}

// ColumnStats summarizes a column's distribution.
type ColumnStats struct {
	Name     string
	Type     Type
	N        int     // non-null count
	Nulls    int     // null count
	Distinct int     // distinct non-null values
	Min      float64 // numeric only (NaN otherwise)
	Max      float64
	Mean     float64
	Std      float64 // population standard deviation
}

// Stats computes summary statistics for the column.
func (c *Column) Stats() ColumnStats {
	st := ColumnStats{Name: c.Name, Type: c.Type, Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(), Std: math.NaN()}
	st.Distinct = len(c.Distinct())
	for i := 0; i < c.Len(); i++ {
		if c.nulls[i] {
			st.Nulls++
		} else {
			st.N++
		}
	}
	if !c.Type.Numeric() || st.N == 0 {
		return st
	}
	var sum, sumsq float64
	st.Min, st.Max = math.Inf(1), math.Inf(-1)
	for i := 0; i < c.Len(); i++ {
		if c.nulls[i] {
			continue
		}
		x := c.Float(i)
		sum += x
		sumsq += x * x
		if x < st.Min {
			st.Min = x
		}
		if x > st.Max {
			st.Max = x
		}
	}
	n := float64(st.N)
	st.Mean = sum / n
	variance := sumsq/n - st.Mean*st.Mean
	if variance < 0 {
		variance = 0
	}
	st.Std = math.Sqrt(variance)
	return st
}
