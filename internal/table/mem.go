package table

// MemBytes estimates the resident memory of the column's payload and lazy
// encodings, in bytes. It is an accounting estimate (slice headers, map
// internals, and allocator slack are approximated by flat per-element
// overheads), not an exact measurement — its job is to let a shared cache
// budget compare entries consistently, so the same estimator is used on the
// way in and on the way out.
func (c *Column) MemBytes() int64 {
	const strOverhead = 16 // string header
	n := int64(len(c.Name)) + strOverhead
	n += int64(len(c.floats)) * 8
	n += int64(len(c.ints)) * 8
	n += int64(len(c.bools))
	n += int64(len(c.nulls))
	for _, s := range c.strs {
		n += int64(len(s)) + strOverhead
	}
	// The lazy encodings are built under mu by concurrent readers; size them
	// under the same lock.
	c.mu.Lock()
	defer c.mu.Unlock()
	n += int64(len(c.codes)) * 4
	n += int64(len(c.fview)) * 8
	for _, s := range c.dict {
		n += int64(len(s)) + strOverhead
	}
	return n
}

// MemBytes estimates the table's resident memory in bytes: every column's
// payload plus the key declaration and key index. See Column.MemBytes for
// the estimate's contract.
func (t *Table) MemBytes() int64 {
	const strOverhead = 16
	var n int64 = 64 // struct + slice headers
	for _, c := range t.cols {
		n += c.MemBytes()
	}
	for _, k := range t.key {
		n += int64(len(k)) + strOverhead
	}
	for k := range t.keyIndex {
		n += int64(len(k)) + strOverhead + 8
	}
	return n
}
