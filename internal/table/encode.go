package table

import (
	"math"
	"sort"
)

// NullCode is the dictionary code assigned to null rows by Codes.
const NullCode = ^uint32(0)

// Codes returns the dictionary encoding of the column: codes[r] is the index
// of row r's value in dict, and dict holds the distinct non-null values in
// sorted order (so code order equals sorted value order). Null rows carry
// NullCode. Values are compared via their categorical representation (Str),
// so the encoding is defined for every column type.
//
// The encoding is built lazily on first call, cached, and invalidated by
// mutations (Append/Set). The returned slices are shared views: callers must
// not modify them. Concurrent readers are safe; concurrent mutation is not
// (the same contract as the rest of the table package).
func (c *Column) Codes() ([]uint32, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.codes != nil {
		return c.codes, c.dict
	}
	n := c.Len()
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		if c.nulls[i] {
			continue
		}
		seen[c.Str(i)] = true
	}
	dict := make([]string, 0, len(seen))
	for s := range seen {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	lookup := make(map[string]uint32, len(dict))
	for i, s := range dict {
		lookup[s] = uint32(i)
	}
	codes := make([]uint32, n)
	for i := 0; i < n; i++ {
		if c.nulls[i] {
			codes[i] = NullCode
			continue
		}
		codes[i] = lookup[c.Str(i)]
	}
	c.codes, c.dict = codes, dict
	return codes, dict
}

// Code returns the dictionary code for value (true when present). It is the
// lookup companion of Codes: comparing integer codes replaces per-row string
// comparison in the compiled-predicate path.
func (c *Column) Code(value string) (uint32, bool) {
	_, dict := c.Codes()
	i := sort.SearchStrings(dict, value)
	if i < len(dict) && dict[i] == value {
		return uint32(i), true
	}
	return 0, false
}

// FloatView returns the column's numeric values as a cached slice with NaN
// in null slots — Float(r) for every row without the per-row call. The slice
// is a shared view: callers must not modify it. Non-numeric columns return
// nil. Invalidated by mutations, like Codes.
func (c *Column) FloatView() []float64 {
	if !c.Type.Numeric() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fview != nil {
		return c.fview
	}
	n := c.Len()
	v := make([]float64, n)
	switch c.Type {
	case Float:
		copy(v, c.floats)
	case Int:
		for i, x := range c.ints {
			v[i] = float64(x)
		}
	}
	for i := 0; i < n; i++ {
		if c.nulls[i] {
			v[i] = math.NaN()
		}
	}
	c.fview = v
	return v
}

// Nulls returns the per-row null mask as a shared view (callers must not
// modify it). It exists so columnar evaluation loops can test nullness
// without a method call per row.
func (c *Column) Nulls() []bool { return c.nulls }

// invalidate drops the lazily built encodings after a mutation.
func (c *Column) invalidate() {
	c.mu.Lock()
	c.codes, c.dict, c.fview = nil, nil, nil
	c.mu.Unlock()
}
