package table

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustNew(Schema{
		{Name: "id", Type: Int},
		{Name: "name", Type: String},
		{Name: "score", Type: Float},
		{Name: "active", Type: Bool},
	})
	tbl.MustAppendRow(I(1), S("ann"), F(9.5), B(true))
	tbl.MustAppendRow(I(2), S("bob"), F(7.25), B(false))
	tbl.MustAppendRow(I(3), S("cat"), Null(Float), B(true))
	if err := tbl.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewRejectsBadSchemas(t *testing.T) {
	if _, err := New(Schema{{Name: "", Type: Int}}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := New(Schema{{Name: "a", Type: Int}, {Name: "a", Type: Float}}); err == nil {
		t.Error("duplicate column name accepted")
	}
}

func TestAppendRowArityAndTypes(t *testing.T) {
	tbl := MustNew(Schema{{Name: "a", Type: Int}, {Name: "b", Type: String}})
	if err := tbl.AppendRow(I(1)); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.AppendRow(S("x"), S("y")); err == nil {
		t.Error("string into int column accepted")
	}
	if err := tbl.AppendRow(I(1), B(true)); err == nil {
		t.Error("bool into string column accepted")
	}
	// Numeric cross-type append converts.
	if err := tbl.AppendRow(F(2.9), S("ok")); err != nil {
		t.Fatalf("float into int column: %v", err)
	}
	v, err := tbl.Value(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 2 {
		t.Errorf("float truncation: got %d, want 2", v.Int())
	}
}

func TestValueAccessAndBounds(t *testing.T) {
	tbl := sampleTable(t)
	v, err := tbl.Value(1, "name")
	if err != nil || v.Str() != "bob" {
		t.Errorf("Value(1,name) = %v, %v", v, err)
	}
	if _, err := tbl.Value(0, "nope"); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := tbl.Value(99, "name"); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := tbl.Column("nope"); err == nil {
		t.Error("missing column lookup accepted")
	}
}

func TestNullHandling(t *testing.T) {
	tbl := sampleTable(t)
	col := tbl.MustColumn("score")
	if !col.IsNull(2) {
		t.Error("row 2 score should be null")
	}
	if !math.IsNaN(col.Float(2)) {
		t.Error("null Float() should be NaN")
	}
	v := col.Value(2)
	if !v.IsNull() || v.Type() != Float {
		t.Errorf("null value round-trip broken: %v", v)
	}
}

func TestKeyIndexAndDuplicates(t *testing.T) {
	tbl := sampleTable(t)
	k, err := tbl.KeyOf(1)
	if err != nil || k != "2" {
		t.Fatalf("KeyOf(1) = %q, %v", k, err)
	}
	row, err := tbl.RowByKey("3")
	if err != nil || row != 2 {
		t.Fatalf("RowByKey(3) = %d, %v", row, err)
	}
	row, err = tbl.RowByKey("404")
	if err != nil || row != -1 {
		t.Fatalf("missing key should give -1, got %d, %v", row, err)
	}

	dup := MustNew(Schema{{Name: "id", Type: Int}})
	dup.MustAppendRow(I(1))
	dup.MustAppendRow(I(1))
	if err := dup.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	if _, err := dup.RowByKey("1"); err == nil {
		t.Error("duplicate key index build should fail")
	}
}

func TestSetKeyValidation(t *testing.T) {
	tbl := sampleTable(t)
	if err := tbl.SetKey("ghost"); err == nil {
		t.Error("unknown key column accepted")
	}
	if _, err := MustNew(Schema{{Name: "a", Type: Int}}).KeyOf(0); err == nil {
		t.Error("KeyOf without key should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tbl := sampleTable(t)
	cp := tbl.Clone()
	if !tbl.Equal(cp) {
		t.Fatal("clone should equal original")
	}
	if err := cp.MustColumn("name").Set(0, S("zed")); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Value(0, "name"); v.Str() != "ann" {
		t.Error("mutating clone changed original")
	}
}

func TestFilterProjectGather(t *testing.T) {
	tbl := sampleTable(t)
	ft, err := tbl.Filter([]bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if ft.NumRows() != 2 {
		t.Fatalf("filter rows = %d, want 2", ft.NumRows())
	}
	if v, _ := ft.Value(1, "name"); v.Str() != "cat" {
		t.Errorf("filtered row 1 = %q, want cat", v.Str())
	}
	if _, err := tbl.Filter([]bool{true}); err == nil {
		t.Error("bad mask length accepted")
	}

	pt, err := tbl.Project("name", "score")
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumCols() != 2 || pt.Schema()[0].Name != "name" {
		t.Errorf("project schema wrong: %v", pt.Schema())
	}
	if _, err := tbl.Project("ghost"); err == nil {
		t.Error("projecting missing column accepted")
	}

	gt := tbl.Gather([]int{2, 0})
	if gt.NumRows() != 2 {
		t.Fatal("gather rows wrong")
	}
	if v, _ := gt.Value(0, "id"); v.Int() != 3 {
		t.Errorf("gather order wrong: %v", v)
	}
}

func TestSortByKey(t *testing.T) {
	tbl := MustNew(Schema{{Name: "k", Type: String}, {Name: "v", Type: Int}})
	tbl.MustAppendRow(S("b"), I(2))
	tbl.MustAppendRow(S("a"), I(1))
	tbl.MustAppendRow(S("c"), I(3))
	if err := tbl.SetKey("k"); err != nil {
		t.Fatal(err)
	}
	sorted, err := tbl.SortByKey()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if v, _ := sorted.Value(i, "k"); v.Str() != w {
			t.Errorf("row %d = %q, want %q", i, v.Str(), w)
		}
	}
	// Original unchanged.
	if v, _ := tbl.Value(0, "k"); v.Str() != "b" {
		t.Error("SortByKey mutated the receiver")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := sampleTable(t)
	b := sampleTable(t)
	if !a.Equal(b) {
		t.Fatal("identical tables unequal")
	}
	if err := b.MustColumn("score").Set(0, F(1)); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Error("cell difference not detected")
	}
	c := MustNew(Schema{{Name: "x", Type: Int}})
	if a.Equal(c) {
		t.Error("schema difference not detected")
	}
}

func TestColumnClassification(t *testing.T) {
	tbl := sampleTable(t)
	num := tbl.NumericColumns()
	if len(num) != 2 || num[0] != "id" || num[1] != "score" {
		t.Errorf("numeric columns = %v", num)
	}
	cat := tbl.CategoricalColumns()
	if len(cat) != 2 || cat[0] != "name" || cat[1] != "active" {
		t.Errorf("categorical columns = %v", cat)
	}
}

func TestColumnStats(t *testing.T) {
	tbl := sampleTable(t)
	st := tbl.MustColumn("score").Stats()
	if st.N != 2 || st.Nulls != 1 {
		t.Errorf("N=%d Nulls=%d, want 2,1", st.N, st.Nulls)
	}
	if st.Min != 7.25 || st.Max != 9.5 {
		t.Errorf("min/max = %v/%v", st.Min, st.Max)
	}
	if math.Abs(st.Mean-8.375) > 1e-12 {
		t.Errorf("mean = %v, want 8.375", st.Mean)
	}
	catStats := tbl.MustColumn("name").Stats()
	if catStats.Distinct != 3 || !math.IsNaN(catStats.Mean) {
		t.Errorf("categorical stats wrong: %+v", catStats)
	}
}

func TestDistinct(t *testing.T) {
	tbl := MustNew(Schema{{Name: "s", Type: String}})
	for _, v := range []string{"b", "a", "b", "c", "a"} {
		tbl.MustAppendRow(S(v))
	}
	got := tbl.MustColumn("s").Distinct()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("distinct[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStringRendering(t *testing.T) {
	tbl := sampleTable(t)
	out := tbl.String()
	if !strings.Contains(out, "ann") || !strings.Contains(out, "NULL") {
		t.Errorf("render missing content:\n%s", out)
	}
	big := MustNew(Schema{{Name: "n", Type: Int}})
	for i := 0; i < 30; i++ {
		big.MustAppendRow(I(int64(i)))
	}
	if !strings.Contains(big.String(), "more rows") {
		t.Error("large table should be truncated with a note")
	}
}

func TestColumnSetTypeChecks(t *testing.T) {
	tbl := sampleTable(t)
	if err := tbl.MustColumn("id").Set(0, S("x")); err == nil {
		t.Error("string into int column via Set accepted")
	}
	if err := tbl.MustColumn("score").Set(2, F(5)); err != nil {
		t.Fatal(err)
	}
	if tbl.MustColumn("score").IsNull(2) {
		t.Error("Set should clear null flag")
	}
	if err := tbl.MustColumn("score").Set(2, Null(Float)); err != nil {
		t.Fatal(err)
	}
	if !tbl.MustColumn("score").IsNull(2) {
		t.Error("Set(null) should set null flag")
	}
}

// TestEncodeKeyRoundTrip pins the escaped multi-part key encoding: distinct
// part tuples encode distinctly (even when cells contain the separator or
// the escape character) and DecodeKey inverts EncodeKey exactly.
func TestEncodeKeyRoundTrip(t *testing.T) {
	cases := [][]string{
		{"plain"},
		{"a", "b"},
		{"a" + KeySep + "b", "c"},
		{"a", "b" + KeySep + "c"},
		{"with\\backslash", "x"},
		{"\\", KeySep},
		{"", ""},
		{KeySep + KeySep, "", "x"},
		{"x\x1ey", "z"},
		{"\x1e", "\x1e" + KeySep},
	}
	seen := map[string][]string{}
	for _, parts := range cases {
		enc := EncodeKey(parts)
		if prev, dup := seen[enc]; dup {
			t.Fatalf("EncodeKey collision: %q and %q both encode to %q", prev, parts, enc)
		}
		seen[enc] = parts
		dec, err := DecodeKey(enc, len(parts))
		if err != nil {
			t.Fatalf("DecodeKey(%q, %d): %v", enc, len(parts), err)
		}
		if !reflect.DeepEqual(dec, parts) {
			t.Fatalf("DecodeKey(EncodeKey(%q)) = %q", parts, dec)
		}
	}
	// The two classic aliasing victims must not collide.
	if EncodeKey([]string{"a" + KeySep + "b", "c"}) == EncodeKey([]string{"a", "b" + KeySep + "c"}) {
		t.Fatal("separator-bearing keys alias")
	}
	if _, err := DecodeKey("a"+KeySep+"b", 3); err == nil {
		t.Error("DecodeKey with wrong part count should fail")
	}
	if _, err := DecodeKey("dangling\x1e", 2); err == nil {
		t.Error("DecodeKey with dangling escape should fail")
	}
	// Keys without either control character keep the historical raw-join
	// encoding, so existing stores' delta-op keys stay readable.
	if got := EncodeKey([]string{"C:\\data", "x"}); got != "C:\\data"+KeySep+"x" {
		t.Errorf("backslash key re-encoded to %q, want the raw join", got)
	}
}

// TestKeyForUsesEscapedEncoding pins KeyOf/KeyFor on the shared encoder: a
// cell containing the separator no longer makes two distinct rows collide.
func TestKeyForUsesEscapedEncoding(t *testing.T) {
	tbl := MustNew(Schema{{Name: "k1", Type: String}, {Name: "k2", Type: String}})
	tbl.MustAppendRow(S("a"+KeySep+"b"), S("c"))
	tbl.MustAppendRow(S("a"), S("b"+KeySep+"c"))
	if err := tbl.SetKey("k1", "k2"); err != nil {
		t.Fatal(err)
	}
	k0, err := tbl.KeyOf(0)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := tbl.KeyOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 {
		t.Fatalf("distinct multi-column keys alias to %q", k0)
	}
	idx, err := tbl.KeyIndexFor([]string{"k1", "k2"})
	if err != nil {
		t.Fatalf("KeyIndexFor rejected a valid table: %v", err)
	}
	if len(idx) != 2 {
		t.Fatalf("index has %d entries, want 2", len(idx))
	}
}
