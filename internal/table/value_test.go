package table

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v       Value
		typ     Type
		f       float64
		i       int64
		s       string
		b       bool
		null    bool
		display string
	}{
		{F(2.5), Float, 2.5, 2, "2.5", false, false, "2.5"},
		{I(42), Int, 42, 42, "42", false, false, "42"},
		{S("abc"), String, math.NaN(), 0, "abc", false, false, "abc"},
		{B(true), Bool, math.NaN(), 0, "true", true, false, "true"},
		{Null(Float), Float, math.NaN(), 0, "", false, true, "NULL"},
		{Null(String), String, math.NaN(), 0, "", false, true, "NULL"},
	}
	for _, c := range cases {
		if c.v.Type() != c.typ {
			t.Errorf("%v: Type() = %v, want %v", c.v, c.v.Type(), c.typ)
		}
		if got := c.v.Float(); !(math.IsNaN(got) && math.IsNaN(c.f)) && got != c.f {
			t.Errorf("%v: Float() = %v, want %v", c.v, got, c.f)
		}
		if got := c.v.Int(); got != c.i {
			t.Errorf("%v: Int() = %v, want %v", c.v, got, c.i)
		}
		if got := c.v.Str(); got != c.s {
			t.Errorf("%v: Str() = %q, want %q", c.v, got, c.s)
		}
		if got := c.v.Bool(); got != c.b {
			t.Errorf("%v: Bool() = %v, want %v", c.v, got, c.b)
		}
		if got := c.v.IsNull(); got != c.null {
			t.Errorf("%v: IsNull() = %v, want %v", c.v, got, c.null)
		}
		if got := c.v.String(); got != c.display {
			t.Errorf("String() = %q, want %q", got, c.display)
		}
	}
}

func TestValueEqualNumericCrossType(t *testing.T) {
	if !I(2).Equal(F(2)) {
		t.Error("I(2) should equal F(2)")
	}
	if !F(2).Equal(I(2)) {
		t.Error("F(2) should equal I(2)")
	}
	if I(2).Equal(F(2.5)) {
		t.Error("I(2) should not equal F(2.5)")
	}
}

func TestValueEqualNulls(t *testing.T) {
	if !Null(Float).Equal(Null(String)) {
		t.Error("nulls of any type compare equal")
	}
	if Null(Float).Equal(F(0)) {
		t.Error("null should not equal zero")
	}
	if F(0).Equal(Null(Float)) {
		t.Error("zero should not equal null")
	}
}

func TestValueEqualStringsAndBools(t *testing.T) {
	if !S("x").Equal(S("x")) || S("x").Equal(S("y")) {
		t.Error("string equality broken")
	}
	if !B(true).Equal(B(true)) || B(true).Equal(B(false)) {
		t.Error("bool equality broken")
	}
	if S("true").Equal(B(true)) {
		t.Error("string and bool must not compare equal")
	}
}

func TestValueEqualReflexiveProperty(t *testing.T) {
	f := func(x float64, n int64, s string, b bool) bool {
		if math.IsNaN(x) {
			return true // NaN != NaN by design, like SQL floats
		}
		return F(x).Equal(F(x)) && I(n).Equal(I(n)) && S(s).Equal(S(s)) && B(b).Equal(B(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{Float: "float", Int: "int", String: "string", Bool: "bool"}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("Type(%d).String() = %q, want %q", typ, typ.String(), s)
		}
	}
	if !Float.Numeric() || !Int.Numeric() || String.Numeric() || Bool.Numeric() {
		t.Error("Numeric() classification wrong")
	}
}
