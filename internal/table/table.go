package table

import (
	"fmt"
	"sort"
	"strings"
)

// Field describes one column of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields.
type Schema []Field

// Names returns the field names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, f := range s {
		out[i] = f.Name
	}
	return out
}

// Equal reports whether two schemas have identical names and types in order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Table is an in-memory relational table: an ordered set of typed columns of
// equal length, with an optional primary key for entity alignment.
type Table struct {
	schema Schema
	cols   []*Column
	byName map[string]int

	key      []string       // primary-key column names (may be empty)
	keyIndex map[string]int // encoded key -> row (built lazily)
}

// New creates an empty table with the given schema.
func New(schema Schema) (*Table, error) {
	t := &Table{schema: append(Schema(nil), schema...), byName: map[string]int{}}
	for i, f := range schema {
		if f.Name == "" {
			return nil, fmt.Errorf("table: field %d has empty name", i)
		}
		if _, dup := t.byName[f.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column name %q", f.Name)
		}
		t.byName[f.Name] = i
		t.cols = append(t.cols, NewColumn(f.Name, f.Type))
	}
	return t, nil
}

// MustNew is New, panicking on error. Intended for tests and literals.
func MustNew(schema Schema) *Table {
	t, err := New(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns a copy of the table schema.
func (t *Table) Schema() Schema { return append(Schema(nil), t.schema...) }

// NumRows returns the number of rows.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// HasColumn reports whether the named column exists.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// Column returns the named column, or an error if absent.
func (t *Table) Column(name string) (*Column, error) {
	i, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("table: no column %q", name)
	}
	return t.cols[i], nil
}

// MustColumn returns the named column, panicking if absent. For callers that
// have already validated the schema.
func (t *Table) MustColumn(name string) *Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// ColumnAt returns the column at position i.
func (t *Table) ColumnAt(i int) *Column { return t.cols[i] }

// AppendRow appends a row of values, one per column in schema order.
// The append is atomic: on a type error no column is modified.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("table: AppendRow got %d values, want %d", len(vals), len(t.cols))
	}
	for i, v := range vals {
		if err := t.cols[i].compatible(v); err != nil {
			return err
		}
	}
	for i, v := range vals {
		if err := t.cols[i].Append(v); err != nil {
			// Unreachable after the compatibility pass; re-validate anyway.
			return err
		}
	}
	t.keyIndex = nil
	return nil
}

// MustAppendRow is AppendRow, panicking on error.
func (t *Table) MustAppendRow(vals ...Value) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// Value returns the value at (row, column-name).
func (t *Table) Value(row int, name string) (Value, error) {
	c, err := t.Column(name)
	if err != nil {
		return Value{}, err
	}
	if row < 0 || row >= c.Len() {
		return Value{}, fmt.Errorf("table: row %d out of range [0,%d)", row, c.Len())
	}
	return c.Value(row), nil
}

// SetKey declares the primary-key columns used for entity alignment.
func (t *Table) SetKey(cols ...string) error {
	for _, c := range cols {
		if !t.HasColumn(c) {
			return fmt.Errorf("table: key column %q not in schema", c)
		}
	}
	t.key = append([]string(nil), cols...)
	t.keyIndex = nil
	return nil
}

// Key returns the primary-key column names (nil if unset).
func (t *Table) Key() []string { return append([]string(nil), t.key...) }

// KeyOf encodes the primary key of the given row as a string.
func (t *Table) KeyOf(row int) (string, error) {
	if len(t.key) == 0 {
		return "", fmt.Errorf("table: no primary key set")
	}
	return t.KeyFor(row, t.key)
}

// KeySep joins the per-column parts of a multi-column encoded key. Exported
// so code that re-derives keys from other representations of a row (the
// store's pack codec encodes them from raw canonical-CSV cells) provably
// matches KeyOf/KeyFor. Parts are escaped before joining (see EncodeKey), so
// a cell that itself contains the separator cannot alias another key.
const KeySep = "\x1f"

// keyEsc escapes KeySep and itself inside one part of an encoded key. It is
// a control character (like KeySep) rather than something common such as a
// backslash, so the escaped encoding coincides with the historical raw join
// for every key whose cells contain neither control character — existing
// stores keep their on-disk delta-op keys and sort order; only the
// separator/escape-bearing keys that used to alias (the bug being fixed)
// encode differently.
const keyEsc = '\x1e'

// EncodeKey joins per-column key parts into one encoded key string. A
// single-column key is the part verbatim (nothing is joined, so nothing can
// alias). Multi-column keys escape the separator and the escape character
// inside each part before joining — without the escaping, the two distinct
// keys ("a\x1fb", "c") and ("a", "b\x1fc") encoded identically, silently
// corrupting key matching in diff.MatchKeys and the store's delta encoder.
// EncodeKey is the single shared encoder: KeyOf/KeyFor and the store's pack
// codec all produce keys through it.
func EncodeKey(parts []string) string {
	if len(parts) == 1 {
		return parts[0]
	}
	clean := true
	for _, p := range parts {
		if strings.IndexByte(p, KeySep[0]) >= 0 || strings.IndexByte(p, keyEsc) >= 0 {
			clean = false
			break
		}
	}
	if clean {
		return strings.Join(parts, KeySep)
	}
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteString(KeySep)
		}
		for j := 0; j < len(p); j++ {
			if c := p[j]; c == keyEsc || c == KeySep[0] {
				b.WriteByte(keyEsc)
			}
			b.WriteByte(p[j])
		}
	}
	return b.String()
}

// DecodeKey splits an encoded key back into its n per-column parts, undoing
// EncodeKey's escaping. It errors when the encoding is malformed (dangling
// escape) or the part count disagrees with n.
func DecodeKey(encoded string, n int) ([]string, error) {
	if n == 1 {
		return []string{encoded}, nil
	}
	parts := make([]string, 0, n)
	var cur strings.Builder
	for i := 0; i < len(encoded); i++ {
		switch encoded[i] {
		case keyEsc:
			if i+1 >= len(encoded) {
				return nil, fmt.Errorf("table: malformed encoded key: dangling escape")
			}
			i++
			cur.WriteByte(encoded[i])
		case KeySep[0]:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(encoded[i])
		}
	}
	parts = append(parts, cur.String())
	if len(parts) != n {
		return nil, fmt.Errorf("table: encoded key has %d parts, want %d", len(parts), n)
	}
	return parts, nil
}

// KeyFor encodes the values of cols at row in the same format KeyOf uses for
// the declared key, without consulting or touching the key declaration — so
// a table can be matched against another table's key purely read-only.
func (t *Table) KeyFor(row int, cols []string) (string, error) {
	if len(cols) == 0 {
		return "", fmt.Errorf("table: KeyFor needs at least one column")
	}
	if len(cols) == 1 {
		// Single-column keys (the common case) skip the parts slice and
		// join — alignment encodes every row's key, so this is a hot path.
		v, err := t.Value(row, cols[0])
		if err != nil {
			return "", err
		}
		return v.Str(), nil
	}
	parts := make([]string, len(cols))
	for i, k := range cols {
		v, err := t.Value(row, k)
		if err != nil {
			return "", err
		}
		parts[i] = v.Str()
	}
	return EncodeKey(parts), nil
}

// KeyIndexFor builds and returns an encoded-key → row index over cols,
// rejecting duplicate keys. Unlike the lazy cache behind RowByKey it never
// mutates the table, so concurrent callers may index a shared table safely.
func (t *Table) KeyIndexFor(cols []string) (map[string]int, error) {
	idx := make(map[string]int, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		k, err := t.KeyFor(r, cols)
		if err != nil {
			return nil, err
		}
		if prev, dup := idx[k]; dup {
			return nil, fmt.Errorf("table: duplicate primary key %q at rows %d and %d", k, prev, r)
		}
		idx[k] = r
	}
	return idx, nil
}

// RowByKey returns the row index holding the given encoded key, or -1.
func (t *Table) RowByKey(key string) (int, error) {
	if t.keyIndex == nil {
		if err := t.buildKeyIndex(); err != nil {
			return -1, err
		}
	}
	row, ok := t.keyIndex[key]
	if !ok {
		return -1, nil
	}
	return row, nil
}

func (t *Table) buildKeyIndex() error {
	if len(t.key) == 0 {
		return fmt.Errorf("table: no primary key set")
	}
	idx, err := t.KeyIndexFor(t.key)
	if err != nil {
		return err
	}
	t.keyIndex = idx
	return nil
}

// Clone returns a deep copy of the table (including the key declaration).
func (t *Table) Clone() *Table {
	d := &Table{schema: t.Schema(), byName: map[string]int{}, key: append([]string(nil), t.key...)}
	for i, c := range t.cols {
		d.cols = append(d.cols, c.clone())
		d.byName[c.Name] = i
	}
	return d
}

// Gather returns a new table containing the given rows in order.
func (t *Table) Gather(rows []int) *Table {
	d := &Table{schema: t.Schema(), byName: map[string]int{}, key: append([]string(nil), t.key...)}
	for i, c := range t.cols {
		d.cols = append(d.cols, c.gather(rows))
		d.byName[c.Name] = i
	}
	return d
}

// Filter returns a new table with the rows where mask[i] is true.
func (t *Table) Filter(mask []bool) (*Table, error) {
	if len(mask) != t.NumRows() {
		return nil, fmt.Errorf("table: Filter mask length %d != rows %d", len(mask), t.NumRows())
	}
	var rows []int
	for i, keep := range mask {
		if keep {
			rows = append(rows, i)
		}
	}
	return t.Gather(rows), nil
}

// Project returns a new table containing only the named columns, in order.
func (t *Table) Project(names ...string) (*Table, error) {
	d := &Table{byName: map[string]int{}}
	for i, n := range names {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		d.schema = append(d.schema, Field{Name: n, Type: c.Type})
		d.cols = append(d.cols, c.clone())
		d.byName[n] = i
	}
	return d, nil
}

// SortByKey sorts rows by the encoded primary key (stable, lexicographic)
// and returns the sorted copy. The receiver is unchanged.
func (t *Table) SortByKey() (*Table, error) {
	if len(t.key) == 0 {
		return nil, fmt.Errorf("table: no primary key set")
	}
	n := t.NumRows()
	keys := make([]string, n)
	for r := 0; r < n; r++ {
		k, err := t.KeyOf(r)
		if err != nil {
			return nil, err
		}
		keys[r] = k
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	return t.Gather(order), nil
}

// Equal reports whether two tables have identical schemas and cell values in
// the same row order.
func (t *Table) Equal(o *Table) bool {
	if !t.schema.Equal(o.schema) || t.NumRows() != o.NumRows() {
		return false
	}
	for ci := range t.cols {
		a, b := t.cols[ci], o.cols[ci]
		for r := 0; r < a.Len(); r++ {
			if !a.Value(r).Equal(b.Value(r)) {
				return false
			}
		}
	}
	return true
}

// NumericColumns returns the names of all numeric (int/float) columns.
func (t *Table) NumericColumns() []string {
	var out []string
	for _, f := range t.schema {
		if f.Type.Numeric() {
			out = append(out, f.Name)
		}
	}
	return out
}

// CategoricalColumns returns the names of all string/bool columns.
func (t *Table) CategoricalColumns() []string {
	var out []string
	for _, f := range t.schema {
		if !f.Type.Numeric() {
			out = append(out, f.Name)
		}
	}
	return out
}

// String renders the table as a compact aligned-text grid (for debugging and
// small demo outputs). Large tables render only the first 20 rows.
func (t *Table) String() string {
	const maxRows = 20
	var b strings.Builder
	widths := make([]int, len(t.cols))
	for i, f := range t.schema {
		widths[i] = len(f.Name)
	}
	n := t.NumRows()
	shown := n
	if shown > maxRows {
		shown = maxRows
	}
	cells := make([][]string, shown)
	for r := 0; r < shown; r++ {
		cells[r] = make([]string, len(t.cols))
		for i, c := range t.cols {
			s := c.Value(r).String()
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, f := range t.schema {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], f.Name)
	}
	b.WriteByte('\n')
	for r := 0; r < shown; r++ {
		for i := range t.cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cells[r][i])
		}
		b.WriteByte('\n')
	}
	if n > shown {
		fmt.Fprintf(&b, "... (%d more rows)\n", n-shown)
	}
	return b.String()
}
