// Package table implements an in-memory columnar relational table engine.
//
// It is the "manual table handling" substrate for ChARLES: Go has no
// dataframe ecosystem, so snapshots of evolving relational data are
// represented here as typed, columnar tables with a primary-key index.
// The package supports schema definition, typed columns with nulls,
// row-level access, projection, selection, sorting, per-column statistics,
// and structural/semantic equality — everything the diff and search layers
// need, with no external dependencies.
package table

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies the dynamic type of a column or value.
type Type int

// The supported column types. Numeric computations treat Int columns as
// float64-convertible; Bool and String columns are categorical.
const (
	Float Type = iota
	Int
	String
	Bool
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Numeric reports whether values of this type can be used as regression
// features or targets.
func (t Type) Numeric() bool { return t == Float || t == Int }

// Value is a dynamically typed cell value. The zero Value is a null Float.
type Value struct {
	typ  Type
	f    float64
	i    int64
	s    string
	b    bool
	null bool
}

// F returns a float Value.
func F(x float64) Value { return Value{typ: Float, f: x} }

// I returns an int Value.
func I(x int64) Value { return Value{typ: Int, i: x} }

// S returns a string Value.
func S(x string) Value { return Value{typ: String, s: x} }

// B returns a bool Value.
func B(x bool) Value { return Value{typ: Bool, b: x} }

// Null returns a null Value of the given type.
func Null(t Type) Value { return Value{typ: t, null: true} }

// Type returns the value's type tag.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.null }

// Float returns the numeric value as float64. Int values convert; null and
// non-numeric values return NaN.
func (v Value) Float() float64 {
	if v.null {
		return math.NaN()
	}
	switch v.typ {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	default:
		return math.NaN()
	}
}

// Int returns the integer value. Float values truncate; others return 0.
func (v Value) Int() int64 {
	if v.null {
		return 0
	}
	switch v.typ {
	case Int:
		return v.i
	case Float:
		return int64(v.f)
	default:
		return 0
	}
}

// Str returns the string payload for String values, and a formatted
// representation for other types (used for categorical handling and keys).
func (v Value) Str() string {
	if v.null {
		return ""
	}
	switch v.typ {
	case String:
		return v.s
	case Bool:
		return strconv.FormatBool(v.b)
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return ""
	}
}

// Bool returns the boolean payload (false for non-Bool or null values).
func (v Value) Bool() bool {
	if v.null || v.typ != Bool {
		return false
	}
	return v.b
}

// Equal reports semantic equality: same type class (numeric types compare by
// value, so I(2) equals F(2)), same nullness, same payload.
func (v Value) Equal(o Value) bool {
	if v.null || o.null {
		return v.null == o.null
	}
	if v.typ.Numeric() && o.typ.Numeric() {
		return v.Float() == o.Float()
	}
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case String:
		return v.s == o.s
	case Bool:
		return v.b == o.b
	}
	return false
}

// String renders the value for display.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	return v.Str()
}
