package vfsdiscipline

import (
	"testing"

	"charles/internal/analysis/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "internal/store", "other")
}
