// Package vfsdiscipline enforces the crash-safety seam introduced with the
// fault-injection harness: inside internal/store, every filesystem
// operation must go through the injectable vfs.FS (Options.FS) or
// vfs.WriteAtomic, never the os package directly.
//
// The property test that power-cuts commits at every write-path operation
// proves crash safety only for operations the faultfs filesystem can see.
// A direct os.Create or os.Rename is invisible to it — the proof silently
// stops covering that write — and a direct os.ReadFile reads the real disk
// while the simulated store lives in memory, so reads are banned too.
package vfsdiscipline

import (
	"go/ast"
	"strings"

	"charles/internal/analysis"
)

// banned is every os-package filesystem entry point the vfs.FS seam
// replaces (or deliberately omits: store code has no business opening
// handles or touching permissions outside the seam).
var banned = map[string]bool{
	"Create": true, "Open": true, "OpenFile": true,
	"WriteFile": true, "ReadFile": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Stat": true, "Lstat": true,
	"Truncate": true, "Chmod": true, "Chtimes": true,
	"Symlink": true, "Link": true, "CreateTemp": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "vfsdiscipline",
	Doc:  "internal/store must do filesystem I/O through the vfs.FS seam, not the os package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Pkg.Path, "internal/store") {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		osName := analysis.ImportName(f, "os")
		if osName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := analysis.SelectorCall(call)
			if !ok || pkg != osName || !banned[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s bypasses the vfs.FS seam; use the store's Options.FS (or vfs.WriteAtomic) so fault injection keeps covering this path", name)
			return true
		})
	}
	return nil
}
