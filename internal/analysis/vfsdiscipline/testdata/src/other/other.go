// Fixture: the same calls outside internal/store are not the analyzer's
// business.
package other

import "os"

func write(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
