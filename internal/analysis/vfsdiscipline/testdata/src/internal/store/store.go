// Fixture for vfsdiscipline: direct os filesystem calls inside a package
// whose import path contains internal/store.
package store

import (
	"errors"
	"os"

	"charles/internal/vfs"
)

type fakeStore struct {
	fs vfs.FS
}

func (s *fakeStore) persistBad(path string, data []byte) error {
	f, err := os.Create(path) // want `direct os\.Create bypasses the vfs\.FS seam`
	if err != nil {
		return err
	}
	defer f.Close()
	if err := os.WriteFile(path, data, 0o644); err != nil { // want `direct os\.WriteFile bypasses the vfs\.FS seam`
		return err
	}
	if err := os.MkdirAll(path); err != nil { // want `direct os\.MkdirAll bypasses the vfs\.FS seam`
		return err
	}
	if err := os.Rename(path, path+".bak"); err != nil { // want `direct os\.Rename bypasses the vfs\.FS seam`
		return err
	}
	return os.Remove(path) // want `direct os\.Remove bypasses the vfs\.FS seam`
}

func (s *fakeStore) readBad(path string) ([]byte, error) {
	return os.ReadFile(path) // want `direct os\.ReadFile bypasses the vfs\.FS seam`
}

func (s *fakeStore) persistGood(path string, data []byte) error {
	// Going through the seam is the discipline the analyzer enforces.
	return vfs.WriteAtomic(s.fs, path, data)
}

func (s *fakeStore) readGood(path string) ([]byte, error) {
	b, err := s.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) { // value reference, not a call: fine
		return nil, err
	}
	return b, nil
}

func (s *fakeStore) exempted(path string) error {
	//lint:allow vfsdiscipline migration probe must look at the real filesystem
	_, err := os.Stat(path)
	return err
}
