// Fixture for corrupterr: error construction on read/decode-path functions
// inside internal/store.
package store

import (
	"errors"
	"fmt"
)

var ErrCorruptStore = errors.New("store: corrupt store")

func decodePack(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("empty pack") // want `untyped fmt\.Errorf on store read path decodePack`
	}
	if data[0] != 'p' {
		return errors.New("bad magic") // want `errors\.New on store read path decodePack`
	}
	return nil
}

func parseOps(body []byte) error {
	if len(body)%2 != 0 {
		return fmt.Errorf("%w: odd op body of %d bytes", ErrCorruptStore, len(body)) // typed: fine
	}
	return nil
}

func applyDelta(base []byte, n int) error {
	if n < 0 {
		//lint:allow corrupterr negative n is caller misuse, not on-disk corruption
		return fmt.Errorf("applyDelta: negative count %d", n)
	}
	return nil
}

// helperFormat does not match the read-path name heuristic, so ad-hoc
// errors are its own business.
func helperFormat(kind string) error {
	return fmt.Errorf("unsupported kind %q", kind)
}
