// Package corrupterr enforces the typed-corruption convention on the
// store's read and decode paths: an error constructed inside a function
// that decodes, parses, reconstructs, or otherwise reads persisted state
// must wrap a sentinel with %w (in practice ErrCorruptStore, per the PR 5
// convention of naming the offending version), never be a bare fmt.Errorf
// or errors.New.
//
// The store's contract is that every way a damaged pack, blob, or manifest
// can surface reports errors.Is(err, ErrCorruptStore) — serve maps that to
// HTTP 500, verify/repair tooling branches on it, and tests pin it. A bare
// error on a decode path silently exits that contract. Errors merely
// *propagated* (return err) are fine: the construction site is where the
// type is decided.
package corrupterr

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"charles/internal/analysis"
)

// readPathFunc matches function names on the store's read/decode surface.
// Deliberately broad — encode-side validation errors (unknown pack kinds)
// land in the same reconstruct call chains, so they carry the type too.
var readPathFunc = regexp.MustCompile(`(?i)(decode|parse|apply|reconstruct|plan|chain|blob|table|checkout|change|verify|open|migrate|key|pack|lineage)`)

var Analyzer = &analysis.Analyzer{
	Name: "corrupterr",
	Doc:  "store read/decode paths must wrap a typed sentinel (ErrCorruptStore) with %w, not return bare errors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Pkg.Path, "internal/store") {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		fmtName := analysis.ImportName(f, "fmt")
		errorsName := analysis.ImportName(f, "errors")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !readPathFunc.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := analysis.SelectorCall(call)
				if !ok {
					return true
				}
				switch {
				case errorsName != "" && pkg == errorsName && name == "New":
					pass.Reportf(call.Pos(),
						"errors.New on store read path %s: wrap ErrCorruptStore with %%w so callers can errors.Is the corruption", fd.Name.Name)
				case fmtName != "" && pkg == fmtName && name == "Errorf":
					if len(call.Args) == 0 {
						return true
					}
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%w") {
						return true
					}
					pass.Reportf(call.Pos(),
						"untyped fmt.Errorf on store read path %s: wrap ErrCorruptStore with %%w so callers can errors.Is the corruption", fd.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}
