package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Corpus is a parsed source tree: every non-test package under a root,
// one shared FileSet, and the lint:allow directive index the runner
// consults before surfacing findings.
type Corpus struct {
	Fset *token.FileSet
	Pkgs []*Package

	// allows maps "<filename>\x00<line>\x00<analyzer>" — a directive on a
	// line suppresses that analyzer's findings on the same line and the
	// line below.
	allows map[string]bool
}

// allowRe matches lint:allow directives in // or /* comments. Several
// analyzers may be named, comma-separated; everything after the names is
// the human reason.
var allowRe = regexp.MustCompile(`lint:allow\s+([A-Za-z0-9_,]+)`)

// Load parses every buildable non-test package under root. modulePrefix is
// prepended to directory-relative paths to form import paths ("charles" for
// the real module, "" for analysistest corpora whose fixtures use bare
// relative paths). Directories named testdata, vendor, or starting with "."
// or "_" are skipped, as are _test.go files: the lint invariants target
// production code, and tests legitimately use the banned patterns (direct
// os calls to arrange fixtures, context.Background, ad-hoc errors).
func Load(root, modulePrefix string) (*Corpus, error) {
	c := &Corpus{Fset: token.NewFileSet(), allows: map[string]bool{}}
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		byDir[dir] = append(byDir[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		files := byDir[dir]
		sort.Strings(files)
		pkg := &Package{Dir: dir, Path: importPathFor(root, modulePrefix, dir)}
		for _, fname := range files {
			f, err := parser.ParseFile(c.Fset, fname, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", fname, err)
			}
			if pkg.Name == "" {
				pkg.Name = f.Name.Name
			}
			if f.Name.Name != pkg.Name {
				// Mixed package clauses in one directory (stray main
				// fixtures); keep the first package and skip the stragglers
				// rather than failing the whole corpus.
				continue
			}
			pkg.Files = append(pkg.Files, f)
			c.indexAllows(fname, f)
		}
		if len(pkg.Files) > 0 {
			c.Pkgs = append(c.Pkgs, pkg)
		}
	}
	return c, nil
}

func importPathFor(root, modulePrefix, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modulePrefix
	}
	rel = filepath.ToSlash(rel)
	if modulePrefix == "" {
		return rel
	}
	return modulePrefix + "/" + rel
}

// indexAllows records every lint:allow directive in f.
func (c *Corpus) indexAllows(fname string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			m := allowRe.FindStringSubmatch(cm.Text)
			if m == nil {
				continue
			}
			line := c.Fset.Position(cm.Pos()).Line
			for _, name := range strings.Split(m[1], ",") {
				if name == "" {
					continue
				}
				c.allows[allowKey(fname, line, name)] = true
			}
		}
	}
}

func allowKey(file string, line int, analyzer string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", file, line, analyzer)
}

// allowed reports whether a finding by analyzer at pos is suppressed by a
// directive on its line or the line above.
func (c *Corpus) allowed(analyzer string, pos token.Position) bool {
	return c.allows[allowKey(pos.Filename, pos.Line, analyzer)] ||
		c.allows[allowKey(pos.Filename, pos.Line-1, analyzer)]
}

// Run applies every analyzer to every package and returns the surviving
// findings (directive-suppressed ones removed, duplicates collapsed),
// sorted by position.
func (c *Corpus) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range c.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: c.Fset, Pkg: pkg, sink: &all}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range all {
		if c.allowed(d.Analyzer, d.Pos) {
			continue
		}
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
