// Package analysistest is a golden-file harness for internal/analysis
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// packages live under the analyzer's testdata/src/, and every line that
// should produce a finding carries a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps for several findings on one line). The
// harness fails the test when a finding has no matching want, when a want
// matches no finding, or when counts on a line disagree. Lines carrying a
// lint:allow directive are suppressed by the runner before matching, so the
// escape hatch is tested by the *absence* of a want on those lines.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"charles/internal/analysis"
)

// wantRe captures the trailing want comment; quotedRe extracts each quoted
// regexp from it.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// Run loads testdata/src under dir, restricts the corpus to the named
// fixture package paths, runs the analyzer, and matches findings against
// the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root := filepath.Join(dir, "testdata", "src")
	corpus, err := analysis.Load(root, "")
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	keep := corpus.Pkgs[:0]
	want := map[string]bool{}
	for _, p := range pkgPaths {
		want[p] = true
	}
	for _, pkg := range corpus.Pkgs {
		if want[pkg.Path] {
			keep = append(keep, pkg)
			delete(want, pkg.Path)
		}
	}
	for p := range want {
		t.Fatalf("fixture package %q not found under %s", p, root)
	}
	corpus.Pkgs = keep

	diags, err := corpus.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type expectation struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	// file:line -> pending expectations.
	wants := map[string][]*expectation{}
	for _, pkg := range corpus.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					m := wantRe.FindStringSubmatch(cm.Text)
					if m == nil {
						continue
					}
					pos := corpus.Fset.Position(cm.Pos())
					key := lineKey(pos.Filename, pos.Line)
					for _, q := range quotedRe.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: pat})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := lineKey(d.Pos.Filename, d.Pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected finding: %s", a.Name, d)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no finding at %s matching %q", a.Name, key, exp.raw)
			}
		}
	}
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
