// Package sendhygiene enforces the never-block-under-lock send convention
// in internal/store and internal/serve: the commit-notification fan-outs
// (Store/Hub publishCommit, the live registry's publishLocked) all send to
// subscriber channels while holding the shard mutex. A blocking send there
// lets one slow consumer wedge every committer, pump, and request on the
// shard — the exact failure the feeds' drop-oldest coalescing contract
// exists to rule out.
//
// Rule: inside a lock-holding function scope, every channel send must be
// non-blocking — a select case with a default clause in the same select.
// A scope is lock-holding when the function body itself calls
// mu.Lock()/mu.RLock() on a mutex-named receiver, or when the function's
// name carries the Locked suffix (the repo's caller-holds-the-lock
// convention). Function literals are separate scopes: a goroutine spawned
// under a lock does not inherit the lock, and a send inside it is the
// goroutine's own business.
//
// This is a syntactic heuristic, like the rest of the suite: it cannot see
// that a manual mu.Unlock() ran before the send. That pattern (unlock, then
// block) is legitimate but rare; it carries a lint:allow sendhygiene
// directive explaining itself.
package sendhygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"charles/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "sendhygiene",
	Doc:  "channel sends in lock-holding scopes must be non-blocking (select with default)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Pkg.Path, "internal/store") && !strings.Contains(pass.Pkg.Path, "internal/serve") {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkScope(pass, n.Name.Name, n.Body)
				}
			case *ast.FuncLit:
				checkScope(pass, "", n.Body)
			}
			return true
		})
	}
	return nil
}

// checkScope applies the rule to one function body, stopping at nested
// function literals (they are their own scopes and get their own visit
// from run's walk).
func checkScope(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	locked := strings.HasSuffix(name, "Locked")
	var sends []*ast.SendStmt
	nonBlocking := map[*ast.SendStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if hasDefault(n) {
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						if s, ok := cc.Comm.(*ast.SendStmt); ok {
							nonBlocking[s] = true
						}
					}
				}
			}
		case *ast.SendStmt:
			sends = append(sends, n)
		case *ast.CallExpr:
			if _, method, ok := asMuCall(n); ok && (method == "Lock" || method == "RLock") {
				locked = true
			}
		}
		return true
	})
	if !locked {
		return
	}
	for _, s := range sends {
		if nonBlocking[s] {
			continue
		}
		pass.Reportf(s.Pos(),
			"blocking send on %s in a lock-holding scope; make it a select case with a default (drop or coalesce) or move it after the unlock (or lint:allow sendhygiene with a reason)",
			types.ExprString(s.Chan))
	}
}

// hasDefault reports whether sel carries a default clause (a CommClause
// with no communication).
func hasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// asMuCall unpacks a call recv.<method>() where recv's final component is
// a mutex-named field or variable (mu, subMu, muFoo...) — the same
// heuristic lockhygiene uses, so the two analyzers agree on what counts as
// a lock.
func asMuCall(call *ast.CallExpr) (recv string, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	var last string
	switch x := sel.X.(type) {
	case *ast.Ident:
		last = x.Name
	case *ast.SelectorExpr:
		last = x.Sel.Name
	default:
		return "", "", false
	}
	if !strings.Contains(strings.ToLower(last), "mu") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}
