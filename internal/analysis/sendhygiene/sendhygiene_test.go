package sendhygiene

import (
	"testing"

	"charles/internal/analysis/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "internal/serve", "internal/store")
}
