// Fixture for sendhygiene: sends in lock-holding scopes in a serve-shaped
// package.
package serve

import "sync"

type event struct{ seq uint64 }

type shard struct {
	mu       sync.Mutex
	watchers map[chan event]bool
	seq      uint64
}

// Bad: a bare send while holding the shard lock blocks every committer on
// one slow watcher.
func (s *shard) publish(ev event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.watchers {
		ch <- ev // want `blocking send on ch in a lock-holding scope`
	}
}

// Good: the non-blocking fan-out with drop-oldest coalescing.
func (s *shard) publishCoalescing(ev event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.watchers {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

// Bad: the Locked suffix means the caller holds the lock, so the send
// blocks under it just the same.
func (s *shard) publishLocked(ev event) {
	for ch := range s.watchers {
		ch <- ev // want `blocking send on ch in a lock-holding scope`
	}
}

// Bad: a select without a default is still a blocking send.
func (s *shard) publishWaiting(ev event, stop chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.watchers {
		select {
		case ch <- ev: // want `blocking send on ch in a lock-holding scope`
		case <-stop:
		}
	}
}

// Good: a goroutine is its own scope — it does not hold the spawning
// function's lock, so its send is free to block.
func (s *shard) notifyAsync(ev event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.watchers {
		ch := ch
		go func() { ch <- ev }()
	}
}

// Good: no lock in scope, a plain send is fine (workers, semaphores).
func pump(in, out chan event) {
	for ev := range in {
		out <- ev
	}
}

// Documented manual section: the lock is released before the blocking
// hand-off, which the analyzer cannot see, so the send carries the
// directive.
func (s *shard) handOff(ev event, sink chan event) {
	s.mu.Lock()
	s.seq = ev.seq
	s.mu.Unlock() //lint:allow lockhygiene unlock precedes the blocking hand-off below
	sink <- ev    //lint:allow sendhygiene the lock is released two lines up
}
