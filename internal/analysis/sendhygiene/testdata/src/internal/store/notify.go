// Fixture for sendhygiene: the store-shaped commit feed.
package store

import "sync"

type note struct{ id string }

type feed struct {
	subMu sync.RWMutex
	subs  map[chan note]bool
}

// Bad: RLock counts as holding the lock too.
func (f *feed) broadcast(n note) {
	f.subMu.RLock()
	defer f.subMu.RUnlock()
	for ch := range f.subs {
		ch <- n // want `blocking send on ch in a lock-holding scope`
	}
}

// Good: the committer's non-blocking publish.
func (f *feed) publish(n note) {
	f.subMu.Lock()
	defer f.subMu.Unlock()
	for ch := range f.subs {
		select {
		case ch <- n:
		default:
		}
	}
}
