// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to write
// project-specific static analyzers and run them over this module.
//
// The real x/tools framework is the obvious substrate for a lint suite, but
// this repository builds in a hermetic environment with no module network
// access, so the dependency is gated: the API surface here (Analyzer, Pass,
// Reportf, an analysistest-style golden harness) deliberately mirrors the
// x/tools shape so the analyzers port mechanically if/when the dependency
// becomes available.
//
// Analyzers here are purely syntactic (go/ast + go/token, no go/types):
// every invariant they enforce — the vfs write seam, typed corruption
// errors, context plumbing, key encoding, lock hygiene — is local enough
// that import-table plus AST shape identifies the pattern without type
// information. That keeps the suite fast (one parse of the module) and free
// of the type-checker's need for resolvable dependencies.
//
// Suppression: a finding is silenced by a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// on the same line as the finding or on the line directly above it. The
// reason is mandatory by convention (the analyzers' docs say why each
// exemption class exists); the runner only requires the analyzer name.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// An Analyzer is one named check. Run inspects a single package via the
// Pass and reports findings; returning an error aborts the whole run
// (reserved for analyzer bugs, not findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one package of the loaded corpus to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	sink *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding, with its resolved file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Package is one parsed package of the corpus: its module-relative import
// path, package name, and syntax trees (test files are excluded — the
// invariants guard production code, and tests legitimately use patterns
// like context.Background or direct os calls).
type Package struct {
	Path  string // import path ("charles/internal/store"; testdata corpora use bare relative paths)
	Name  string // package clause name
	Dir   string
	Files []*ast.File
}

// ImportName returns the local identifier by which f refers to the import
// whose path is exactly path or ends in "/"+path ("" when not imported, or
// imported blank/dot). Matching by suffix lets analyzer testdata stand in
// for real packages: a fixture importing "charles/internal/table" and the
// real code importing it resolve identically.
func ImportName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := importPath(imp)
		if p != path && !hasPathSuffix(p, path) {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := lastSlash(p); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

func importPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 && p[0] == '"' {
		p = p[1 : len(p)-1]
	}
	return p
}

func hasPathSuffix(p, suffix string) bool {
	return len(p) > len(suffix)+1 && p[len(p)-len(suffix)-1] == '/' && p[len(p)-len(suffix):] == suffix
}

func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}

// SelectorCall unpacks a call of the form ident.Name(...) — the shape of a
// qualified call on an imported package — into its two names. The caller
// decides whether ident is actually a package (by matching it against
// ImportName); without type information a local variable shadowing an
// import would fool this, which the analyzers accept as a heuristic.
func SelectorCall(call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	return id.Name, sel.Sel.Name, true
}
