// Fixture for keyenc: hand-rolled key composition with table.KeySep
// outside internal/table.
package consumer

import (
	"fmt"
	"strings"

	"charles/internal/table"
)

func badConcat(a, b string) string {
	return a + table.KeySep + b // want `concatenating with table\.KeySep aliases keys`
}

func badJoin(parts []string) string {
	return strings.Join(parts, table.KeySep) // want `strings\.Join with table\.KeySep aliases keys`
}

func badSprintf(a, b string) string {
	return fmt.Sprintf("%s%s%s", a, table.KeySep, b) // want `fmt\.Sprintf with table\.KeySep aliases keys`
}

func goodEncode(parts []string) string {
	return table.EncodeKey(parts)
}

// Reading the separator (splitting, comparing) is not composing a key.
func goodSplit(k string) []string {
	return strings.Split(k, table.KeySep)
}

func goodCompare(c string) bool {
	return c == table.KeySep
}

func exempted(a, b string) string {
	//lint:allow keyenc test fixture building a deliberately aliased key
	return a + table.KeySep + b
}
