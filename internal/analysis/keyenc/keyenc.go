// Package keyenc pins the multi-column key-aliasing fix forever: outside
// internal/table, composing an encoded key by hand — string concatenation
// or strings.Join (or a Sprintf) involving table.KeySep — is banned.
// Callers must use table.EncodeKey, which escapes the separator (and the
// escape character itself) inside each part.
//
// The bug this guards against: a cell that happens to contain the
// separator byte makes "a" + KeySep + "b\x1fc" collide with the key of
// ("a\x1fb", "c"). EncodeKey is the single place that knows the escaping;
// any ad-hoc concatenation reintroduces the aliasing silently, and no test
// catches it until two real keys collide.
package keyenc

import (
	"go/ast"
	"go/token"
	"strings"

	"charles/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "keyenc",
	Doc:  "composing keys with table.KeySep outside internal/table is banned; use table.EncodeKey",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.Contains(pass.Pkg.Path, "internal/table") {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		tableName := analysis.ImportName(f, "internal/table")
		if tableName == "" {
			continue
		}
		stringsName := analysis.ImportName(f, "strings")
		fmtName := analysis.ImportName(f, "fmt")
		mentionsKeySep := func(e ast.Expr) bool {
			found := false
			ast.Inspect(e, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "KeySep" {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == tableName {
						found = true
						return false
					}
				}
				return !found
			})
			return found
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.ADD && (mentionsKeySep(n.X) || mentionsKeySep(n.Y)) {
					pass.Reportf(n.Pos(),
						"concatenating with table.KeySep aliases keys whose cells contain the separator; use table.EncodeKey")
				}
			case *ast.CallExpr:
				pkg, name, ok := analysis.SelectorCall(n)
				if !ok {
					return true
				}
				joinish := (stringsName != "" && pkg == stringsName && name == "Join") ||
					(fmtName != "" && pkg == fmtName && strings.HasPrefix(name, "Sprint"))
				if !joinish {
					return true
				}
				for _, arg := range n.Args {
					if mentionsKeySep(arg) {
						pass.Reportf(n.Pos(),
							"%s.%s with table.KeySep aliases keys whose cells contain the separator; use table.EncodeKey", pkg, name)
						break
					}
				}
			}
			return true
		})
	}
	return nil
}
