// Fixture for ctxflow: root contexts in library code and ctx-dropping
// sibling calls.
package ctxlib

import "context"

func work(n int) int { return n }

// SummarizeAll is the compatibility-shim shape: a non-Context wrapper that
// deliberately owns a root context, exempted with a documented directive.
func SummarizeAll(n int) int {
	//lint:allow ctxflow compatibility shim for pre-context callers
	return SummarizeAllContext(context.Background(), n)
}

// SummarizeAllContext is the real implementation.
func SummarizeAllContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return work(n)
}

// Undocumented root contexts are findings.
func rogue(n int) int {
	ctx := context.Background() // want `context\.Background\(\) in library code severs the caller's cancellation`
	return SummarizeAllContext(ctx, n)
}

func rogueTODO(n int) int {
	return SummarizeAllContext(context.TODO(), n) // want `context\.TODO\(\) in library code severs the caller's cancellation`
}

// A ctx-receiving function calling the non-Context sibling drops the
// caller's cancellation: the rot mode shims invite.
func walk(ctx context.Context, n int) int {
	if n == 0 {
		return SummarizeAll(n) // want `walk receives a ctx but calls SummarizeAll, which drops it; call SummarizeAllContext\(ctx, \.\.\.\)`
	}
	return SummarizeAllContext(ctx, n)
}

// Calling a sibling that has no Context variant is fine.
func walkLeaf(ctx context.Context, n int) int {
	_ = ctx
	return work(n)
}
