// Fixture: package main owns its process lifetime; root contexts are the
// correct thing there and the analyzer stays silent.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
