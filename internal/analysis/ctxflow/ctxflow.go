// Package ctxflow enforces end-to-end context plumbing in library code.
//
// Two rules:
//
//  1. context.Background() / context.TODO() are banned in library packages
//     (anything that is not package main). A fresh root context severs the
//     caller's cancellation — the serving lifecycle depends on one context
//     flowing from the HTTP request down through the timeline walk, so a
//     Background() in the middle would quietly make the tail of the walk
//     uncancellable. Deliberate shims (the non-Context compatibility
//     wrappers in internal/history, the lifecycle's drain contexts) carry a
//     lint:allow directive documenting why they own a root context.
//
//  2. Inside a function that receives a ctx, calling a same-package sibling
//     F when a ctx-accepting variant FContext exists drops the caller's
//     context on the floor — the exact rot mode the compatibility wrappers
//     invite. The call must go to FContext(ctx, ...).
package ctxflow

import (
	"go/ast"

	"charles/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "library code must plumb contexts end to end: no context.Background/TODO, no dropping a received ctx",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	// Package-level function index for rule 2: which functions take a ctx
	// parameter, and which have a "Context" variant.
	hasCtxParam := map[string]bool{}
	declared := map[string]bool{}
	for _, f := range pass.Pkg.Files {
		ctxName := analysis.ImportName(f, "context")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			declared[fd.Name.Name] = true
			if ctxName != "" && len(ctxParamNames(fd.Type, ctxName)) > 0 {
				hasCtxParam[fd.Name.Name] = true
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		ctxName := analysis.ImportName(f, "context")
		if ctxName == "" {
			continue
		}
		// Rule 1: fresh root contexts anywhere in the file.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := analysis.SelectorCall(call); ok && pkg == ctxName && (name == "Background" || name == "TODO") {
				pass.Reportf(call.Pos(),
					"context.%s() in library code severs the caller's cancellation; accept a ctx parameter (lint:allow ctxflow for deliberate compatibility shims)", name)
			}
			return true
		})
		// Rule 2: ctx-receiving functions calling non-ctx siblings that
		// have a Context variant.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if len(ctxParamNames(fd.Type, ctxName)) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				name := callee.Name
				if !declared[name] || hasCtxParam[name] || !declared[name+"Context"] || !hasCtxParam[name+"Context"] {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s receives a ctx but calls %s, which drops it; call %sContext(ctx, ...) instead", fd.Name.Name, name, name)
				return true
			})
		}
	}
	return nil
}

// ctxParamNames returns the names of ft's parameters typed <ctxName>.Context.
func ctxParamNames(ft *ast.FuncType, ctxName string) []string {
	if ft.Params == nil {
		return nil
	}
	var names []string
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != ctxName {
			continue
		}
		for _, nm := range field.Names {
			names = append(names, nm.Name)
		}
		if len(field.Names) == 0 {
			names = append(names, "_")
		}
	}
	return names
}
