// Fixture for lockhygiene: defer pairing and guarded-field access in a
// serve-shaped package.
package serve

import "sync"

type cache struct {
	mu      sync.Mutex
	entries int
	items   map[string]int

	capacity int // separate group: not guarded by mu
}

// Good: the canonical scoped lock.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries
}

// Bad: manual unlock leaks the lock on any early return added later.
func (c *cache) Grow(n int) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not immediately followed by defer c\.mu\.Unlock\(\)`
	c.entries += n
	c.mu.Unlock()
}

// Bad: RLock pairs with RUnlock, not Unlock.
type rwcache struct {
	mu   sync.RWMutex
	data map[string]string
}

func (c *rwcache) Get(k string) string {
	c.mu.RLock() // want `c\.mu\.RLock\(\) is not immediately followed by defer c\.mu\.RUnlock\(\)`
	defer c.mu.Unlock()
	return c.data[k]
}

// Documented manual section: singleflight-style code must unlock before
// blocking, so it carries the directive.
func (c *cache) Swap(n int) int {
	c.mu.Lock() //lint:allow lockhygiene must unlock before the blocking wait below
	old := c.entries
	c.entries = n
	c.mu.Unlock()
	return old
}

// Bad: exported method reads a guarded field with no lock in sight.
func (c *cache) Peek() int {
	return c.entries // want `exported method Peek touches mu-guarded field c\.entries without locking c\.mu`
}

// Good: the unguarded group is free to read bare.
func (c *cache) Capacity() int {
	return c.capacity
}

// Good: the Locked suffix documents that the caller holds the lock.
func (c *cache) PeekLocked() int {
	return c.entries
}

// Good: unexported helpers are the callee side of the Locked convention.
func (c *cache) peek() int {
	return c.entries
}
