// Fixture for lockhygiene: hub-shaped code — a refcounted shard map behind
// one mutex, with the closure-scoped locking idiom the real hub uses so
// eviction callbacks and store closes can run off-lock.
package store

import "sync"

type shard struct {
	refs int
}

type hub struct {
	mu     sync.Mutex
	shards map[string]*shard
	order  []string

	maxOpen int // separate group: immutable after construction
}

// Good: the canonical scoped lock.
func (h *hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.shards)
}

// Good: the closure-scoped idiom — lock held only for the map touch, the
// expensive close happens after the closure returns.
func (h *hub) Drop(key string) {
	var victim *shard
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		victim = h.shards[key]
		delete(h.shards, key)
	}()
	_ = victim
}

// Bad: manual unlock around the refcount bump leaks the lock on any early
// return added later.
func (h *hub) Acquire(key string) *shard {
	h.mu.Lock() // want `h\.mu\.Lock\(\) is not immediately followed by defer h\.mu\.Unlock\(\)`
	sh := h.shards[key]
	sh.refs++
	h.mu.Unlock()
	return sh
}

// Bad: exported method walks the guarded shard map with no lock in sight.
func (h *hub) Keys() []string {
	return h.order // want `exported method Keys touches mu-guarded field h\.order without locking h\.mu`
}

// Good: the unguarded group is free to read bare.
func (h *hub) MaxOpen() int {
	return h.maxOpen
}

// Documented manual section: the singleflight open must unlock before
// blocking on the ready channel, so it carries the directive.
func (h *hub) swap(key string, sh *shard) *shard {
	h.mu.Lock() //lint:allow lockhygiene must unlock before blocking on the shard's ready channel
	old := h.shards[key]
	h.shards[key] = sh
	h.mu.Unlock()
	return old
}

// Good: unexported helpers are the callee side of the Locked convention.
func (h *hub) evictIdleLocked() {
	for key, sh := range h.shards {
		if sh.refs == 0 {
			delete(h.shards, key)
		}
	}
}
