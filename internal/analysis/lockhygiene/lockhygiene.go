// Package lockhygiene enforces two locking conventions in internal/store
// and internal/serve, where the RWMutex-per-store and singleflight cache
// concurrency bugs would surface as rare production races rather than test
// failures.
//
// Rule 1 — scoped locks: a statement mu.Lock() (or RLock) must be
// immediately followed by the matching defer mu.Unlock() (defer RUnlock)
// on the same receiver. Manual unlock sequences are where early returns
// leak locks; the handful of legitimate manual patterns (singleflight,
// which must unlock before blocking on another goroutine's computation)
// carry a lint:allow directive explaining themselves.
//
// Rule 2 — guarded fields: in a struct whose field list contains a mutex
// named mu, the fields in the same contiguous declaration group after mu
// are considered guarded by it (the standard Go layout convention, which
// this repo follows). An exported method that touches a guarded field
// without ever locking mu in its body is flagged. Unexported helpers and
// methods whose name ends in "Locked" are the documented
// caller-holds-the-lock convention and are skipped.
//
// Both rules are heuristics: they see syntax, not aliasing. They are tuned
// so the repo's real patterns pass and the known rot modes (new exported
// method reads s.versions bare; refactor drops a defer) are caught.
package lockhygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"charles/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockhygiene",
	Doc:  "mu.Lock() must pair with an immediate defer mu.Unlock(); exported methods must lock before touching mu-guarded fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Pkg.Path, "internal/store") && !strings.Contains(pass.Pkg.Path, "internal/serve") {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		checkDeferPairs(pass, f)
		checkGuardedFields(pass, f)
	}
	return nil
}

// unlockFor maps a lock method to its required unlock.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// asMuCall unpacks stmt as a call recv.<method>() where recv's final
// component is a mutex-named field or variable (mu, muFoo, fooMu...).
func asMuCall(e ast.Expr) (recv string, method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	var last string
	switch x := sel.X.(type) {
	case *ast.Ident:
		last = x.Name
	case *ast.SelectorExpr:
		last = x.Sel.Name
	default:
		return "", "", false
	}
	if !strings.Contains(strings.ToLower(last), "mu") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkDeferPairs walks every statement list and applies rule 1.
func checkDeferPairs(pass *analysis.Pass, f *ast.File) {
	checkList := func(stmts []ast.Stmt) {
		for i, st := range stmts {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			recv, method, ok := asMuCall(es.X)
			if !ok {
				continue
			}
			want, isLock := unlockFor[method]
			if !isLock {
				continue
			}
			if i+1 < len(stmts) {
				if d, ok := stmts[i+1].(*ast.DeferStmt); ok {
					drecv, dmethod, dok := asMuCall(d.Call)
					if dok && drecv == recv && dmethod == want {
						continue
					}
				}
			}
			pass.Reportf(es.Pos(),
				"%s.%s() is not immediately followed by defer %s.%s(); scope the critical section with a defer (or lint:allow lockhygiene with a reason)",
				recv, method, recv, want)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			checkList(n.List)
		case *ast.CaseClause:
			checkList(n.Body)
		case *ast.CommClause:
			checkList(n.Body)
		}
		return true
	})
}

// guardInfo records, per struct type, the fields the mu-below convention
// marks as guarded.
type guardInfo struct {
	fields map[string]bool
}

// checkGuardedFields applies rule 2 within one file: struct declarations
// and method bodies are matched textually, which is exactly the scope the
// convention promises ("guarded fields aren't touched off-lock in the same
// file's exported methods").
func checkGuardedFields(pass *analysis.Pass, f *ast.File) {
	guarded := map[string]*guardInfo{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			if gi := guardedGroup(pass, st); gi != nil {
				guarded[ts.Name.Name] = gi
			}
		}
	}
	if len(guarded) == 0 {
		return
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil {
			continue
		}
		if !fd.Name.IsExported() || strings.HasSuffix(fd.Name.Name, "Locked") {
			continue
		}
		recvName, typeName := recvInfo(fd)
		if recvName == "" || recvName == "_" {
			continue
		}
		gi := guarded[typeName]
		if gi == nil {
			continue
		}
		var badPos ast.Node
		var badField string
		locks := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != recvName {
				return true
			}
			if gi.fields[sel.Sel.Name] && badPos == nil {
				badPos, badField = sel, sel.Sel.Name
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, method, ok := asMuCall(call); ok {
				if _, isLock := unlockFor[method]; isLock && strings.HasPrefix(types.ExprString(call.Fun), recvName+".") {
					locks = true
					return false
				}
			}
			return true
		})
		if badPos != nil && !locks {
			pass.Reportf(badPos.Pos(),
				"exported method %s touches mu-guarded field %s.%s without locking %s.mu (rename with a Locked suffix if the caller holds the lock, or lint:allow lockhygiene with a reason)",
				fd.Name.Name, recvName, badField, recvName)
		}
	}
}

// guardedGroup finds a field named mu (or typed sync.Mutex/RWMutex) and
// returns the names of the fields in the same contiguous line group below
// it — the "mu guards the fields below" layout convention. A blank line
// ends the guarded group.
func guardedGroup(pass *analysis.Pass, st *ast.StructType) *guardInfo {
	fields := st.Fields.List
	muIdx := -1
	for i, fl := range fields {
		if isMutexField(fl) {
			muIdx = i
			break
		}
	}
	if muIdx < 0 || muIdx == len(fields)-1 {
		return nil
	}
	gi := &guardInfo{fields: map[string]bool{}}
	prevLine := pass.Fset.Position(fields[muIdx].End()).Line
	for _, fl := range fields[muIdx+1:] {
		line := pass.Fset.Position(fl.Pos()).Line
		if line > prevLine+1 {
			break // blank line (or comment gap): the guarded group ends
		}
		prevLine = pass.Fset.Position(fl.End()).Line
		for _, nm := range fl.Names {
			gi.fields[nm.Name] = true
		}
	}
	if len(gi.fields) == 0 {
		return nil
	}
	return gi
}

func isMutexField(fl *ast.Field) bool {
	for _, nm := range fl.Names {
		if nm.Name == "mu" {
			return true
		}
	}
	if sel, ok := fl.Type.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sync" &&
			(sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex") {
			return true
		}
	}
	return false
}

// recvInfo extracts the receiver variable name and base type name,
// unwrapping pointers and type parameters (lruCache[V]).
func recvInfo(fd *ast.FuncDecl) (recvName, typeName string) {
	if len(fd.Recv.List) != 1 {
		return "", ""
	}
	fl := fd.Recv.List[0]
	if len(fl.Names) == 1 {
		recvName = fl.Names[0].Name
	}
	t := fl.Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return recvName, tt.Name
		default:
			return recvName, ""
		}
	}
}
