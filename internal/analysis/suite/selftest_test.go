package suite

import (
	"os"
	"path/filepath"
	"testing"

	"charles/internal/analysis"
)

// TestRepoIsLintClean runs the full analyzer suite over the repository and
// requires zero findings — the merge gate from the lint issue, enforced as
// a tier-1 test so it cannot drift even where CI configuration isn't run.
// Every deliberate exemption in the tree is a lint:allow directive with a
// reason, which the runner honors; anything else is a regression.
func TestRepoIsLintClean(t *testing.T) {
	root := moduleRoot(t)
	corpus, err := analysis.Load(root, "charles")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := corpus.Run(All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("charles-lint found %d violation(s); fix them or add a documented lint:allow", len(diags))
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
