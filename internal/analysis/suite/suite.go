// Package suite is the registry of charles's project-specific analyzers —
// the single list cmd/charles-lint, CI, and the repo self-test all run.
package suite

import (
	"charles/internal/analysis"
	"charles/internal/analysis/corrupterr"
	"charles/internal/analysis/ctxflow"
	"charles/internal/analysis/keyenc"
	"charles/internal/analysis/lockhygiene"
	"charles/internal/analysis/sendhygiene"
	"charles/internal/analysis/vfsdiscipline"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		corrupterr.Analyzer,
		ctxflow.Analyzer,
		keyenc.Analyzer,
		lockhygiene.Analyzer,
		sendhygiene.Analyzer,
		vfsdiscipline.Analyzer,
	}
}
