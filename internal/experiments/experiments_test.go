package experiments

import (
	"strings"
	"testing"
)

// The experiment suite in quick mode is the integration test of record:
// each assertion below pins the *shape* of a paper artifact (who wins, by
// roughly what factor, where crossovers fall), per EXPERIMENTS.md.

func runQ(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := Run(id, Config{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return rep
}

func TestE1ToyRecovery(t *testing.T) {
	rep := runQ(t, "E1")
	if rep.Values["top_score"] < 0.85 {
		t.Errorf("top score = %v, want ≥ 0.85 (paper: 89%%)", rep.Values["top_score"])
	}
	if rep.Values["mean_jaccard"] < 0.99 {
		t.Errorf("partition recovery Jaccard = %v", rep.Values["mean_jaccard"])
	}
	if rep.Values["rule_f1"] < 0.99 {
		t.Errorf("rule F1 = %v", rep.Values["rule_f1"])
	}
	if rep.Values["summary_size"] != 3 {
		t.Errorf("summary size = %v, want 3 (R1-R3)", rep.Values["summary_size"])
	}
	if !strings.Contains(rep.Text, "1.05×bonus + 1000") {
		t.Error("R1 transformation not in report")
	}
	if !strings.Contains(rep.Text, "(no change)") {
		t.Error("Fig 2 None leaf not rendered")
	}
}

func TestE2RankedList(t *testing.T) {
	rep := runQ(t, "E2")
	if rep.Values["count"] != 10 {
		t.Errorf("summaries = %v, want the demo's top-10", rep.Values["count"])
	}
	if rep.Values["monotone"] != 1 {
		t.Error("ranking not monotone")
	}
	if rep.Values["top_score"] <= rep.Values["second_score"] {
		t.Error("top summary should strictly dominate")
	}
}

func TestE3AttributeSelection(t *testing.T) {
	rep := runQ(t, "E3")
	if rep.Values["cond_top_is_edu"] != 1 {
		t.Error("edu should top the condition ranking")
	}
	if rep.Values["tran_shortlist_ok"] != 1 {
		t.Error("transformation shortlist should be {bonus, salary}")
	}
	if rep.Values["tran_bonus"] < 0.9 {
		t.Errorf("bonus correlation = %v", rep.Values["tran_bonus"])
	}
	// Gender carries almost no signal about the change (the planted policy
	// ignores it) — it must rank below edu.
	if rep.Values["cond_gen"] >= rep.Values["cond_edu"] {
		t.Error("gen should rank below edu")
	}
}

func TestE4Treemap(t *testing.T) {
	rep := runQ(t, "E4")
	// The demo highlights a 33.3% top partition on the toy data.
	if v := rep.Values["max_coverage"]; v < 0.32 || v > 0.35 {
		t.Errorf("max coverage = %v, want ≈ 1/3", v)
	}
	// The BS employees (2/9) remain as the hatched no-change partition.
	if v := rep.Values["nochange"]; v < 0.21 || v > 0.24 {
		t.Errorf("no-change partition = %v, want ≈ 2/9", v)
	}
	if !strings.Contains(rep.Text, "░") {
		t.Error("no-change partition not hatched")
	}
}

func TestE5AlphaTradeoff(t *testing.T) {
	rep := runQ(t, "E5")
	// Crossover: small summaries win at low α, the exact 3-CT policy at
	// high α.
	if rep.Values["size_low_alpha"] >= rep.Values["size_high_alpha"] {
		t.Errorf("no interpretability→accuracy crossover: %v vs %v",
			rep.Values["size_low_alpha"], rep.Values["size_high_alpha"])
	}
	if rep.Values["size_high_alpha"] != 3 {
		t.Errorf("high-alpha size = %v, want 3", rep.Values["size_high_alpha"])
	}
	// Accuracy of the winner is monotone non-decreasing in α.
	prev := -1.0
	for i := 0; i <= 10; i++ {
		acc := rep.Values[keyA(i)]
		if acc < prev-1e-9 {
			t.Errorf("winner accuracy decreased at alpha=%d/10", i)
		}
		prev = acc
	}
}

func keyA(i int) string {
	return "acc_a" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestE6MontgomeryQuick(t *testing.T) {
	rep := runQ(t, "E6")
	if rep.Values["rule_f1_n1000"] < 0.99 {
		t.Errorf("Montgomery rule F1 = %v", rep.Values["rule_f1_n1000"])
	}
	if rep.Values["cell_f1_n1000"] < 0.99 {
		t.Errorf("Montgomery cell F1 = %v", rep.Values["cell_f1_n1000"])
	}
}

func TestE7SearchSpaceGrowth(t *testing.T) {
	rep := runQ(t, "E7")
	// Candidates grow with c and t.
	if !(rep.Values["cands_c1_t1"] < rep.Values["cands_c2_t1"] &&
		rep.Values["cands_c2_t1"] < rep.Values["cands_c3_t1"]) {
		t.Error("candidate count not growing in c")
	}
	if rep.Values["cands_c1_t1"] >= rep.Values["cands_c1_t2"] {
		t.Error("candidate count not growing in t")
	}
	// Quality: the depth-2 planted policy needs c ≥ 2 to be describable;
	// the score at c=3 must dominate c=1.
	if rep.Values["score_c3_t1"] <= rep.Values["score_c1_t1"] {
		t.Error("richer condition space should score higher")
	}
}

func TestE8BaselineOrdering(t *testing.T) {
	rep := runQ(t, "E8")
	ch := rep.Values["charles_score"]
	if ch <= rep.Values["global_score"] || ch <= rep.Values["celllist_score"] || ch <= rep.Values["nochange_score"] {
		t.Errorf("ChARLES (%.3f) must beat all baselines (global %.3f, cells %.3f, nochange %.3f)",
			ch, rep.Values["global_score"], rep.Values["celllist_score"], rep.Values["nochange_score"])
	}
	if rep.Values["celllist_accuracy"] < 1-1e-9 {
		t.Error("cell list must be perfectly accurate")
	}
	if rep.Values["update_distance"] <= 0 {
		t.Error("update distance should be positive")
	}
}

func TestE9NoiseGracefulDegradation(t *testing.T) {
	rep := runQ(t, "E9")
	// Rule recovery must survive moderate noise.
	if rep.Values["rule_f1_noise000_unch03"] < 0.99 {
		t.Errorf("clean rule F1 = %v", rep.Values["rule_f1_noise000_unch03"])
	}
	if rep.Values["rule_f1_noise010_unch03"] < 0.6 {
		t.Errorf("10%%-noise rule F1 = %v, degraded too fast", rep.Values["rule_f1_noise010_unch03"])
	}
}

func TestE10ScalabilityRuns(t *testing.T) {
	rep := runQ(t, "E10")
	if rep.Values["ms_n2000"] <= 0 {
		t.Error("no timing recorded")
	}
	// Sanity: quick sizes complete in seconds, not minutes.
	if rep.Values["ms_n2000"] > 60000 {
		t.Errorf("n=2000 took %vms", rep.Values["ms_n2000"])
	}
}

func TestE11Billionaires(t *testing.T) {
	rep := runQ(t, "E11")
	if rep.Values["rule_f1"] < 0.99 {
		t.Errorf("billionaires rule F1 = %v", rep.Values["rule_f1"])
	}
	if !strings.Contains(rep.Text, "sector = Tech") {
		t.Error("Tech rule not recovered")
	}
}

func TestE12Ablation(t *testing.T) {
	rep := runQ(t, "E12")
	full := rep.Values["score_full"]
	if rep.Values["score_norefine"] >= full {
		t.Errorf("refinement ablation should hurt: %v vs %v", rep.Values["score_norefine"], full)
	}
	if rep.Values["rule_f1_norefine"] >= rep.Values["rule_f1_full"] {
		t.Error("refinement ablation should hurt rule recovery")
	}
	if rep.Values["score_nosnap"] > full+1e-9 {
		t.Error("snapping ablation should not beat the full engine")
	}
	// Robustness protects coefficient fidelity under corruption.
	if rep.Values["coef_err_robust"] >= rep.Values["coef_err_norobust"] {
		t.Errorf("robust fit should have lower coefficient error: %v vs %v",
			rep.Values["coef_err_robust"], rep.Values["coef_err_norobust"])
	}
	if rep.Values["coef_err_robust"] > 0.01 {
		t.Errorf("robust coefficient error = %v, want ≈ 0", rep.Values["coef_err_robust"])
	}
}

func TestE13Nonlinear(t *testing.T) {
	rep := runQ(t, "E13")
	if rep.Values["acc_nonlinear"] < 0.99 {
		t.Errorf("nonlinear accuracy = %v", rep.Values["acc_nonlinear"])
	}
	if rep.Values["mae_nonlinear"] >= rep.Values["mae_linear"] {
		t.Errorf("nonlinear MAE %v should beat linear %v",
			rep.Values["mae_nonlinear"], rep.Values["mae_linear"])
	}
	if rep.Values["score_nonlinear"] <= rep.Values["score_linear"] {
		t.Error("nonlinear engine should win on a nonlinear policy")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	if _, err := Run("E999", Config{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Case-insensitive lookup.
	if _, err := Run("e1", Config{Quick: true}); err != nil {
		t.Errorf("case-insensitive run failed: %v", err)
	}
}

func TestReportRendering(t *testing.T) {
	rep := newReport("EX", "test")
	rep.printf("hello %d\n", 42)
	rep.Values["v"] = 1.5
	out := rep.String()
	if !strings.Contains(out, "=== EX — test ===") || !strings.Contains(out, "hello 42") || !strings.Contains(out, "v=1.5") {
		t.Errorf("report rendering:\n%s", out)
	}
}
