package experiments

import (
	"math/rand"

	"charles/internal/core"
	"charles/internal/eval"
	"charles/internal/gen"
	"charles/internal/table"
)

// E12Ablation quantifies each design choice the engine adds on top of the
// paper's sketch (DESIGN.md calls these out):
//
//   - EM-style cluster refinement (vs raw residual k-means labels),
//   - constant snapping (vs exact fitted constants),
//   - robust trimmed fitting (vs plain OLS, under injected corruptions),
//   - the partition-seeding strategy (residual vs delta vs ratio).
//
// Each row reports the top summary's blended score and its rule-level
// recovery against the planted policy.
func E12Ablation(cfg Config) (*Report, error) {
	r := newReport("E12", "ablation of engine design choices")
	n := 1500
	if cfg.Quick {
		n = 600
	}

	d, err := gen.Montgomery(7, n)
	if err != nil {
		return nil, err
	}
	base := core.DefaultOptions(d.Target)
	base.CondAttrs = []string{"department", "grade"}
	base.TranAttrs = d.TranAttrs

	r.printf("%-26s %-9s %-9s %-9s\n", "configuration", "score", "ruleF1", "interp")
	run := func(label, key string, opts core.Options, data *gen.PlantedData) error {
		ranked, err := core.Summarize(data.Src, data.Tgt, opts)
		if err != nil {
			return err
		}
		top := ranked[0]
		rm, err := eval.Rules(data.Truth, top.Summary, data.Src)
		if err != nil {
			return err
		}
		r.printf("%-26s %-9.4f %-9.3f %-9.4f\n", label, top.Breakdown.Score, rm.RuleF1, top.Breakdown.Interpretability)
		r.Values["score_"+key] = top.Breakdown.Score
		r.Values["rule_f1_"+key] = rm.RuleF1
		r.Values["interp_"+key] = top.Breakdown.Interpretability
		return nil
	}

	if err := run("full engine", "full", base, d); err != nil {
		return nil, err
	}

	noRefine := base
	noRefine.NoRefine = true
	if err := run("- refinement", "norefine", noRefine, d); err != nil {
		return nil, err
	}

	noSnap := base
	noSnap.SnapTolerance = 0
	if err := run("- snapping", "nosnap", noSnap, d); err != nil {
		return nil, err
	}

	deltaStrat := base
	deltaStrat.Strategy = core.DeltaKMeans
	if err := run("delta-kmeans seeding", "delta", deltaStrat, d); err != nil {
		return nil, err
	}
	ratioStrat := base
	ratioStrat.Strategy = core.RatioKMeans
	if err := run("ratio-kmeans seeding", "ratio", ratioStrat, d); err != nil {
		return nil, err
	}

	// Robustness ablation needs corrupted data: clone the Montgomery pair
	// and add moderate off-policy edits (+5000, about twice the mean policy
	// change) to 2% of the target rows — enough to bias plain OLS
	// intercepts, small enough that the L1 accuracy term is not dominated
	// by the corruptions themselves. The metric of interest is the maximum
	// coefficient error over the recovered rules.
	corrupted := &gen.PlantedData{
		Src: d.Src, Tgt: d.Tgt.Clone(), Truth: d.Truth,
		Target: d.Target, CondAttrs: d.CondAttrs, TranAttrs: d.TranAttrs,
	}
	rng := rand.New(rand.NewSource(99))
	col := corrupted.Tgt.MustColumn(d.Target)
	for i := 0; i < n/50; i++ {
		row := rng.Intn(corrupted.Tgt.NumRows())
		if err := col.Set(row, table.F(col.Float(row)+5000)); err != nil {
			return nil, err
		}
	}
	coefErr := func(opts core.Options, key string) error {
		ranked, err := core.Summarize(corrupted.Src, corrupted.Tgt, opts)
		if err != nil {
			return err
		}
		rm, err := eval.Rules(corrupted.Truth, ranked[0].Summary, corrupted.Src)
		if err != nil {
			return err
		}
		maxErr := 0.0
		for _, m := range rm.Matches {
			if m.GotIdx >= 0 && m.CoefErr > maxErr {
				maxErr = m.CoefErr
			}
		}
		r.printf("%-26s %-9.4f %-9.3f coefErr %.4f\n", "corrupted: "+key, ranked[0].Breakdown.Score, rm.RuleF1, maxErr)
		r.Values["coef_err_"+key] = maxErr
		r.Values["rule_f1_"+key+"_corrupt"] = rm.RuleF1
		return nil
	}
	if err := coefErr(base, "robust"); err != nil {
		return nil, err
	}
	noRobust := base
	noRobust.Robust = false
	if err := coefErr(noRobust, "norobust"); err != nil {
		return nil, err
	}

	r.printf("\nexpected shape: every ablation scores ≤ the full engine; refinement\nand robustness are load-bearing, snapping mostly affects interpretability.\n")
	return r, nil
}
