// Package experiments regenerates every figure and demo artifact of the
// ChARLES paper (see DESIGN.md's experiment index E1–E11), plus the
// robustness and scalability studies a full reproduction needs. Each
// experiment returns a Report with the formatted rows the paper shows and a
// bag of named values that tests and EXPERIMENTS.md assertions consume.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one experiment's outcome.
type Report struct {
	ID    string
	Title string
	// Text is the human-readable table/series mirroring the paper artifact.
	Text string
	// Values holds machine-checkable results ("top_score", "rule_f1", ...).
	Values map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: map[string]float64{}}
}

func (r *Report) printf(format string, args ...any) {
	r.Text += fmt.Sprintf(format, args...)
}

// String renders the report with a header.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	b.WriteString(r.Text)
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("values: ")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%.4g", k, r.Values[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Config tunes experiment cost. Quick mode shrinks data sizes so the whole
// suite runs in seconds (used by tests); full mode matches the paper's
// scale (used by cmd/charles-bench and the benchmarks).
type Config struct {
	Quick bool
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Report, error)
}

// All returns the experiment registry in order.
func All() []Runner {
	return []Runner{
		{"E1", "toy policy recovery (Fig 1, Fig 2, Example 1)", E1ToyRecovery},
		{"E2", "ranked summary list (demo step 8)", E2RankedSummaries},
		{"E3", "attribute selection (demo steps 4-5)", E3AttributeSelection},
		{"E4", "partition treemap (demo step 10)", E4Treemap},
		{"E5", "accuracy-interpretability tradeoff (alpha sweep)", E5AlphaSweep},
		{"E6", "Montgomery salary simulation (demo §3)", E6Montgomery},
		{"E7", "search-space growth in c and t (§2)", E7SearchSpace},
		{"E8", "baseline comparison (§1 related work)", E8Baselines},
		{"E9", "noise and unchanged-fraction robustness", E9Noise},
		{"E10", "scalability in rows", E10Scalability},
		{"E11", "billionaires simulation (demo §3, dataset [2])", E11Billionaires},
		{"E12", "ablation of engine design choices", E12Ablation},
		{"E13", "nonlinear feature extension (limitations §)", E13Nonlinear},
	}
}

// Run executes one experiment by id (case-insensitive).
func Run(id string, cfg Config) (*Report, error) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r.Run(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
