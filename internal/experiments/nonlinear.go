package experiments

import (
	"charles/internal/core"
	"charles/internal/eval"
	"charles/internal/gen"
)

// E13Nonlinear reproduces the extension sketched in the paper's limitations
// section: augmenting the data with nonlinear features lets the linear-model
// machinery capture log/quadratic policies. The experiment contrasts the
// linear-only engine with the augmented one on a planted nonlinear policy.
func E13Nonlinear(cfg Config) (*Report, error) {
	r := newReport("E13", "nonlinear feature extension (limitations §)")
	n := 1500
	if cfg.Quick {
		n = 600
	}
	d, err := gen.PlantedNonlinear(31, n)
	if err != nil {
		return nil, err
	}
	base := core.DefaultOptions(d.Target)
	base.CondAttrs = d.CondAttrs
	base.TranAttrs = d.TranAttrs

	r.printf("%-22s %-9s %-9s %-12s %s\n", "engine", "score", "accuracy", "MAE", "rule Jaccard")
	run := func(label, key string, opts core.Options) error {
		ranked, err := core.Summarize(d.Src, d.Tgt, opts)
		if err != nil {
			return err
		}
		top := ranked[0]
		rm, err := eval.Rules(d.Truth, top.Summary, d.Src)
		if err != nil {
			return err
		}
		r.printf("%-22s %-9.4f %-9.4f %-12.4g %.3f\n",
			label, top.Breakdown.Score, top.Breakdown.Accuracy, top.Breakdown.MAE, rm.MeanJaccard)
		r.Values["score_"+key] = top.Breakdown.Score
		r.Values["acc_"+key] = top.Breakdown.Accuracy
		r.Values["mae_"+key] = top.Breakdown.MAE
		r.Values["jaccard_"+key] = rm.MeanJaccard
		return nil
	}

	if err := run("linear only", "linear", base); err != nil {
		return nil, err
	}
	nl := base
	nl.Nonlinear = true
	nl.T = 3 // the planted policies jointly use ln(pay), pay, pay²
	if err := run("nonlinear features", "nonlinear", nl); err != nil {
		return nil, err
	}
	r.printf("\nplanted: seg=alpha → 8000·ln(pay); seg=beta → pay + 5e-6·pay²\n")
	return r, nil
}
