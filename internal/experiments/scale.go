package experiments

import (
	"fmt"
	"time"

	"charles/internal/baseline"
	"charles/internal/core"
	"charles/internal/diff"
	"charles/internal/eval"
	"charles/internal/gen"
	"charles/internal/score"
)

// recoveryMetrics runs the engine on a planted dataset and evaluates the top
// summary against the ground truth.
func recoveryMetrics(d *gen.PlantedData, opts core.Options) (top core.Ranked, rm *eval.RuleMetrics, cm *eval.CellMetrics, elapsed time.Duration, err error) {
	start := time.Now()
	ranked, err := core.Summarize(d.Src, d.Tgt, opts)
	elapsed = time.Since(start)
	if err != nil {
		return core.Ranked{}, nil, nil, elapsed, err
	}
	top = ranked[0]
	rm, err = eval.Rules(d.Truth, top.Summary, d.Src)
	if err != nil {
		return top, nil, nil, elapsed, err
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		return top, rm, nil, elapsed, err
	}
	_, newVals, err := a.Delta(d.Target)
	if err != nil {
		return top, rm, nil, elapsed, err
	}
	changed, err := a.ChangedMask(d.Target, 1e-9)
	if err != nil {
		return top, rm, nil, elapsed, err
	}
	// Tolerance: 10% of the mean change magnitude (loose enough that rule
	// recovery under injected noise is judged on structure, not on
	// reproducing the noise itself).
	tol := cellTolerance(d, newVals, changed)
	cm, err = eval.Cells(top.Summary, d.Src, newVals, changed, tol)
	return top, rm, cm, elapsed, err
}

func cellTolerance(d *gen.PlantedData, newVals []float64, changed []bool) float64 {
	oldCol := d.Src.MustColumn(d.Target)
	var sum float64
	var n int
	for r, ch := range changed {
		if ch {
			dv := newVals[r] - oldCol.Float(r)
			if dv < 0 {
				dv = -dv
			}
			sum += dv
			n++
		}
	}
	if n == 0 {
		return 1e-6
	}
	return 0.10 * sum / float64(n)
}

// E6Montgomery reproduces the demonstration's real-world scenario on the
// Montgomery County salary simulation: the engine must recover the planted
// 4-rule county pay policy at dataset scale (~9k employees; quick mode 1k).
func E6Montgomery(cfg Config) (*Report, error) {
	r := newReport("E6", "Montgomery salary simulation (demo §3)")
	sizes := []int{1000, 9000}
	if cfg.Quick {
		sizes = []int{1000}
	}
	r.printf("%-8s %-10s %-9s %-9s %-9s %s\n", "rows", "time", "score", "ruleF1", "cellF1", "top summary size")
	for _, n := range sizes {
		d, err := gen.Montgomery(7, n)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions(d.Target)
		opts.CondAttrs = d.CondAttrs
		opts.TranAttrs = d.TranAttrs
		top, rm, cm, elapsed, err := recoveryMetrics(d, opts)
		if err != nil {
			return nil, err
		}
		r.printf("%-8d %-10s %-9.4f %-9.3f %-9.3f %d\n",
			n, elapsed.Round(time.Millisecond), top.Breakdown.Score, rm.RuleF1, cm.F1, top.Summary.Size())
		r.Values[fmt.Sprintf("rule_f1_n%d", n)] = rm.RuleF1
		r.Values[fmt.Sprintf("cell_f1_n%d", n)] = cm.F1
		r.Values[fmt.Sprintf("score_n%d", n)] = top.Breakdown.Score
		r.Values[fmt.Sprintf("ms_n%d", n)] = float64(elapsed.Milliseconds())
	}
	return r, nil
}

// E7SearchSpace reproduces the §2 discussion of search-space growth in the
// user parameters c and t: candidate (C, T, k) combinations and wall time.
func E7SearchSpace(cfg Config) (*Report, error) {
	r := newReport("E7", "search-space growth in c and t (§2)")
	n := 2000
	if cfg.Quick {
		n = 500
	}
	d, err := gen.Planted(gen.PlantedConfig{N: n, Seed: 3, Rules: 3, RuleDepth: 2, UnchangedFrac: 0.3, Distractors: 2})
	if err != nil {
		return nil, err
	}
	condPool := []string{"seg", "tier", "region", "noisecat0"}
	tranPool := []string{"pay", "noisenum0"}
	r.printf("%-4s %-4s %-12s %-10s %s\n", "c", "t", "candidates", "time", "top score")
	for _, c := range []int{1, 2, 3} {
		for _, t := range []int{1, 2} {
			opts := core.DefaultOptions(d.Target)
			opts.CondAttrs = condPool
			opts.TranAttrs = tranPool
			opts.C, opts.T = c, t
			start := time.Now()
			ranked, err := core.Summarize(d.Src, d.Tgt, opts)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			cands := subsetCount(len(condPool), c) * subsetCount(len(tranPool), t) * opts.KMax
			r.printf("%-4d %-4d %-12d %-10s %.4f\n", c, t, cands, elapsed.Round(time.Millisecond), ranked[0].Breakdown.Score)
			r.Values[fmt.Sprintf("cands_c%d_t%d", c, t)] = float64(cands)
			r.Values[fmt.Sprintf("ms_c%d_t%d", c, t)] = float64(elapsed.Milliseconds())
			r.Values[fmt.Sprintf("score_c%d_t%d", c, t)] = ranked[0].Breakdown.Score
		}
	}
	return r, nil
}

// E8Baselines scores ChARLES against the related-work baselines on the same
// Score(S): the exhaustive cell list (perfectly accurate, unreadable), the
// global single regression (the paper's R4), the empty no-change summary,
// and the Müller update distance (reported as a count).
func E8Baselines(cfg Config) (*Report, error) {
	r := newReport("E8", "baseline comparison (§1 related work)")
	n := 2000
	if cfg.Quick {
		n = 500
	}
	d, err := gen.Planted(gen.PlantedConfig{N: n, Seed: 5, Rules: 3, RuleDepth: 1, UnchangedFrac: 0.3})
	if err != nil {
		return nil, err
	}
	a, err := diff.Align(d.Src, d.Tgt)
	if err != nil {
		return nil, err
	}
	_, newVals, err := a.Delta(d.Target)
	if err != nil {
		return nil, err
	}
	changed, err := a.ChangedMask(d.Target, 1e-9)
	if err != nil {
		return nil, err
	}

	opts := core.DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	ranked, err := core.SummarizeAligned(a, opts)
	if err != nil {
		return nil, err
	}
	charlesTop := ranked[0]

	global, err := baseline.GlobalRegression(a, d.Target, d.TranAttrs, 1e-9)
	if err != nil {
		return nil, err
	}
	cells, err := baseline.CellList(a, d.Target, 1e-9)
	if err != nil {
		return nil, err
	}
	nochange := baseline.NoChange(d.Target)
	ud, err := baseline.UpdateDistance(a, d.Target, 1e-9)
	if err != nil {
		return nil, err
	}

	w := score.DefaultWeights()
	r.printf("%-22s %-8s %-10s %-10s %s\n", "method", "size", "score", "accuracy", "interp")
	type entry struct {
		name string
		bd   *score.Breakdown
		size int
	}
	entries := []entry{{"ChARLES (top)", charlesTop.Breakdown, charlesTop.Summary.Size()}}
	gbd, err := score.Evaluate(global, d.Src, newVals, changed, opts.Alpha, w)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"global regression (R4)", gbd, global.Size()})
	cbd, err := score.Evaluate(cells, d.Src, newVals, changed, opts.Alpha, w)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"cell list", cbd, cells.Size()})
	nbd, err := score.Evaluate(nochange, d.Src, newVals, changed, opts.Alpha, w)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"no change", nbd, 0})
	for _, e := range entries {
		r.printf("%-22s %-8d %-10.4f %-10.4f %.4f\n", e.name, e.size, e.bd.Score, e.bd.Accuracy, e.bd.Interpretability)
	}
	r.printf("update distance (Müller et al.): %d cell updates\n", ud)

	r.Values["charles_score"] = charlesTop.Breakdown.Score
	r.Values["global_score"] = gbd.Score
	r.Values["celllist_score"] = cbd.Score
	r.Values["celllist_accuracy"] = cbd.Accuracy
	r.Values["nochange_score"] = nbd.Score
	r.Values["update_distance"] = float64(ud)
	return r, nil
}

// E9Noise measures recovery robustness as (a) Gaussian noise is added to
// the evolved values and (b) the unchanged fraction grows.
func E9Noise(cfg Config) (*Report, error) {
	r := newReport("E9", "noise and unchanged-fraction robustness")
	n := 2000
	if cfg.Quick {
		n = 600
	}
	r.printf("%-10s %-12s %-9s %-9s\n", "noise", "unchanged", "ruleF1", "cellF1")
	noises := []float64{0, 0.05, 0.1, 0.2}
	unchFracs := []float64{0.3}
	if !cfg.Quick {
		unchFracs = []float64{0, 0.3, 0.6}
	}
	for _, noise := range noises {
		for _, uf := range unchFracs {
			d, err := gen.Planted(gen.PlantedConfig{N: n, Seed: 9, Rules: 3, RuleDepth: 1, UnchangedFrac: uf, NoiseStd: noise})
			if err != nil {
				return nil, err
			}
			opts := core.DefaultOptions(d.Target)
			opts.CondAttrs = d.CondAttrs
			opts.TranAttrs = d.TranAttrs
			_, rm, cm, _, err := recoveryMetrics(d, opts)
			if err != nil {
				return nil, err
			}
			r.printf("%-10.2f %-12.2f %-9.3f %-9.3f\n", noise, uf, rm.RuleF1, cm.F1)
			r.Values[fmt.Sprintf("rule_f1_noise%03d_unch%02d", int(noise*100), int(uf*10))] = rm.RuleF1
		}
	}
	return r, nil
}

// E10Scalability measures end-to-end runtime as rows grow; per candidate
// (C, T, k) the pipeline is near-linear in n.
func E10Scalability(cfg Config) (*Report, error) {
	r := newReport("E10", "scalability in rows")
	sizes := []int{1000, 5000, 10000, 25000, 50000}
	if cfg.Quick {
		sizes = []int{500, 1000, 2000}
	}
	r.printf("%-8s %-12s %s\n", "rows", "time", "ms/row")
	var lastMS float64
	for _, n := range sizes {
		d, err := gen.Planted(gen.PlantedConfig{N: n, Seed: 13, Rules: 3, RuleDepth: 2, UnchangedFrac: 0.3})
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions(d.Target)
		opts.CondAttrs = d.CondAttrs
		opts.TranAttrs = d.TranAttrs
		start := time.Now()
		if _, err := core.Summarize(d.Src, d.Tgt, opts); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		ms := float64(elapsed.Milliseconds())
		r.printf("%-8d %-12s %.4f\n", n, elapsed.Round(time.Millisecond), ms/float64(n))
		r.Values[fmt.Sprintf("ms_n%d", n)] = ms
		lastMS = ms
	}
	r.Values["ms_last"] = lastMS
	return r, nil
}

// E11Billionaires runs the engine on the Forbes-billionaires simulation
// (the paper's "additional dataset [2]").
func E11Billionaires(cfg Config) (*Report, error) {
	r := newReport("E11", "billionaires simulation (demo §3, dataset [2])")
	n := 2500
	if cfg.Quick {
		n = 600
	}
	d, err := gen.Billionaires(11, n)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	top, rm, cm, elapsed, err := recoveryMetrics(d, opts)
	if err != nil {
		return nil, err
	}
	r.printf("rows %d, time %s\ntop summary (score %.4f):\n%s",
		n, elapsed.Round(time.Millisecond), top.Breakdown.Score, top.Summary)
	r.printf("rule F1 %.3f, cell F1 %.3f\n", rm.RuleF1, cm.F1)
	r.Values["rule_f1"] = rm.RuleF1
	r.Values["cell_f1"] = cm.F1
	r.Values["top_score"] = top.Breakdown.Score
	return r, nil
}

// subsetCount returns Σ_{i=1..k} C(n, i).
func subsetCount(n, k int) int {
	if k > n {
		k = n
	}
	total := 0
	for i := 1; i <= k; i++ {
		total += binom(n, i)
	}
	return total
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}
