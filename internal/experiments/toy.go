package experiments

import (
	"fmt"

	"charles/internal/assist"
	"charles/internal/core"
	"charles/internal/diff"
	"charles/internal/eval"
	"charles/internal/gen"
	"charles/internal/lmtree"
	"charles/internal/viz"
)

// E1ToyRecovery reproduces Figure 1 + Figure 2 + Example 1: run the engine
// on the toy employee snapshots and check that the top summary is the
// planted R1–R3 policy, rendered as a linear model tree.
func E1ToyRecovery(cfg Config) (*Report, error) {
	r := newReport("E1", "toy policy recovery (Fig 1, Fig 2, Example 1)")
	src, tgt := gen.Toy()
	truth := gen.ToyTruth()

	ranked, err := core.Summarize(src, tgt, core.DefaultOptions("bonus"))
	if err != nil {
		return nil, err
	}
	top := ranked[0]
	r.printf("top summary (score %.3f, accuracy %.3f, interpretability %.3f):\n%s\n",
		top.Breakdown.Score, top.Breakdown.Accuracy, top.Breakdown.Interpretability, top.Summary)
	r.printf("linear model tree (paper Fig 2):\n%s\n", lmtree.FromSummary(top.Summary).Render())

	rm, err := eval.Rules(truth, top.Summary, src)
	if err != nil {
		return nil, err
	}
	a, err := diff.Align(src, tgt)
	if err != nil {
		return nil, err
	}
	_, newVals, err := a.Delta("bonus")
	if err != nil {
		return nil, err
	}
	changed, err := a.ChangedMask("bonus", 1e-9)
	if err != nil {
		return nil, err
	}
	cm, err := eval.Cells(top.Summary, src, newVals, changed, 1.0)
	if err != nil {
		return nil, err
	}
	r.printf("rule recovery: mean partition Jaccard %.3f, rule F1 %.3f\n", rm.MeanJaccard, rm.RuleF1)
	r.printf("cell-level: precision %.3f, recall %.3f, F1 %.3f, MAE %.2f\n", cm.Precision, cm.Recall, cm.F1, cm.MAE)

	r.Values["top_score"] = top.Breakdown.Score
	r.Values["top_accuracy"] = top.Breakdown.Accuracy
	r.Values["mean_jaccard"] = rm.MeanJaccard
	r.Values["rule_f1"] = rm.RuleF1
	r.Values["cell_f1"] = cm.F1
	r.Values["summary_size"] = float64(top.Summary.Size())
	return r, nil
}

// E2RankedSummaries reproduces demo step 8: the ranked top-10 list with
// blended, accuracy, and interpretability scores; the paper reports the
// first summary at "a very high score of 89%".
func E2RankedSummaries(cfg Config) (*Report, error) {
	r := newReport("E2", "ranked summary list (demo step 8)")
	src, tgt := gen.Toy()
	ranked, err := core.Summarize(src, tgt, core.DefaultOptions("bonus"))
	if err != nil {
		return nil, err
	}
	for i, it := range ranked {
		r.Text += viz.SummaryCard(i+1, it.Summary, it.Breakdown)
	}
	r.Values["count"] = float64(len(ranked))
	r.Values["top_score"] = ranked[0].Breakdown.Score
	if len(ranked) > 1 {
		r.Values["second_score"] = ranked[1].Breakdown.Score
	}
	// Monotone ranking check.
	mono := 1.0
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Breakdown.Score > ranked[i-1].Breakdown.Score+1e-12 {
			mono = 0
		}
	}
	r.Values["monotone"] = mono
	return r, nil
}

// E3AttributeSelection reproduces demo steps 4–5: the setup assistant's
// ranked candidate lists. The demo selects {education, exp, gender} for
// conditions and {bonus, salary} for transformations; our correlation
// measure agrees on edu as the dominant condition signal and bonus/salary
// as the transformation attributes.
func E3AttributeSelection(cfg Config) (*Report, error) {
	r := newReport("E3", "attribute selection (demo steps 4-5)")
	src, tgt := gen.Toy()
	a, err := diff.Align(src, tgt)
	if err != nil {
		return nil, err
	}
	cond, err := assist.SuggestCondition(a, "bonus", 1e-9)
	if err != nil {
		return nil, err
	}
	tran, err := assist.SuggestTransformation(a, "bonus", 1e-9)
	if err != nil {
		return nil, err
	}
	r.printf("condition candidates (assoc with change):\n")
	for i, s := range cond {
		r.printf("  %d. %-8s %.3f\n", i+1, s.Attr, s.Score)
		r.Values["cond_"+s.Attr] = s.Score
	}
	r.printf("transformation candidates (corr with new value):\n")
	for i, s := range tran {
		r.printf("  %d. %-8s %.3f\n", i+1, s.Attr, s.Score)
		r.Values["tran_"+s.Attr] = s.Score
	}
	if len(cond) > 0 && cond[0].Attr == "edu" {
		r.Values["cond_top_is_edu"] = 1
	}
	shortTran := assist.Shortlist(tran, assist.DefaultThreshold, 2, 2)
	if len(shortTran) == 2 && contains(shortTran, "bonus") && contains(shortTran, "salary") {
		r.Values["tran_shortlist_ok"] = 1
	}
	return r, nil
}

// E4Treemap reproduces demo step 10: the partition visualization of the top
// summary — coverage-proportional rectangles with the no-change partition
// hatched. On the toy data the paper highlights a 33.3% partition.
func E4Treemap(cfg Config) (*Report, error) {
	r := newReport("E4", "partition treemap (demo step 10)")
	src, tgt := gen.Toy()
	ranked, err := core.Summarize(src, tgt, core.DefaultOptions("bonus"))
	if err != nil {
		return nil, err
	}
	top := ranked[0].Summary
	r.Text = viz.Treemap(top, 45)
	var covered float64
	var maxCov float64
	for i, ct := range top.CTs {
		r.Values[fmt.Sprintf("coverage_%d", i+1)] = ct.Coverage
		covered += ct.Coverage
		if ct.Coverage > maxCov {
			maxCov = ct.Coverage
		}
	}
	r.Values["covered"] = covered
	r.Values["nochange"] = 1 - covered
	r.Values["max_coverage"] = maxCov
	return r, nil
}

// E5AlphaSweep reproduces the §2 accuracy–interpretability tradeoff: as α
// falls, the winning summary shifts from the exact multi-CT policy to a
// coarser (eventually single- or zero-CT) summary.
func E5AlphaSweep(cfg Config) (*Report, error) {
	r := newReport("E5", "accuracy-interpretability tradeoff (alpha sweep)")
	src, tgt := gen.Toy()
	r.printf("%-6s %-10s %-10s %-10s %s\n", "alpha", "score", "accuracy", "interp", "size")
	var sizeLo, sizeHi float64
	for i := 0; i <= 10; i++ {
		alpha := float64(i) / 10
		opts := core.DefaultOptions("bonus")
		opts.Alpha = alpha
		ranked, err := core.Summarize(src, tgt, opts)
		if err != nil {
			return nil, err
		}
		top := ranked[0]
		size := float64(top.Summary.Size())
		r.printf("%-6.1f %-10.4f %-10.4f %-10.4f %d\n",
			alpha, top.Breakdown.Score, top.Breakdown.Accuracy, top.Breakdown.Interpretability, top.Summary.Size())
		r.Values[fmt.Sprintf("size_a%02d", i)] = size
		r.Values[fmt.Sprintf("acc_a%02d", i)] = top.Breakdown.Accuracy
		if i == 1 {
			sizeLo = size
		}
		if i == 9 {
			sizeHi = size
		}
	}
	r.Values["size_low_alpha"] = sizeLo
	r.Values["size_high_alpha"] = sizeHi
	return r, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
