package eval

import (
	"math"
	"testing"

	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/table"
)

func evalFixture(t *testing.T) (*table.Table, []float64, []bool, *model.Summary) {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "grp", Type: table.String},
		{Name: "pay", Type: table.Float},
	})
	for i, g := range []string{"a", "a", "b", "b", "c", "c"} {
		tbl.MustAppendRow(table.S(g), table.F(float64(1000*(i+1))))
	}
	// Truth: grp=a → ×1.1, grp=b → +500, grp=c unchanged.
	truth := &model.Summary{
		Target: "pay",
		CTs: []model.CT{
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("grp", predicate.Eq, "a")}},
				Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}},
			},
			{
				Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("grp", predicate.Eq, "b")}},
				Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1}, Intercept: 500},
			},
		},
	}
	actual := []float64{1100, 2200, 3500, 4500, 5000, 6000}
	changed := []bool{true, true, true, true, false, false}
	return tbl, actual, changed, truth
}

func TestCellsPerfectRecovery(t *testing.T) {
	tbl, actual, changed, truth := evalFixture(t)
	m, err := Cells(truth, tbl, actual, changed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect recovery: %+v", m)
	}
	if m.MAE > 1e-9 {
		t.Errorf("MAE = %v", m.MAE)
	}
}

func TestCellsEmptySummary(t *testing.T) {
	tbl, actual, changed, _ := evalFixture(t)
	m, err := Cells(&model.Summary{Target: "pay"}, tbl, actual, changed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Recall != 0 {
		t.Errorf("empty summary recall = %v", m.Recall)
	}
	if m.F1 != 0 {
		t.Errorf("empty summary F1 = %v", m.F1)
	}
}

func TestCellsWrongCoefficients(t *testing.T) {
	tbl, actual, changed, truth := evalFixture(t)
	wrong := &model.Summary{Target: "pay", CTs: []model.CT{
		{
			Cond: truth.CTs[0].Cond,
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{2}},
		},
	}}
	m, err := Cells(wrong, tbl, actual, changed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 0 {
		t.Errorf("wrong predictions should give precision 0, got %v", m.Precision)
	}
}

func TestCellsNoChangesAtAll(t *testing.T) {
	tbl, _, _, _ := evalFixture(t)
	actual := []float64{1000, 2000, 3000, 4000, 5000, 6000}
	changed := make([]bool, 6)
	m, err := Cells(&model.Summary{Target: "pay"}, tbl, actual, changed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 1 || m.Recall != 1 {
		t.Errorf("vacuous metrics should be 1: %+v", m)
	}
}

func TestRulesExactMatch(t *testing.T) {
	tbl, _, _, truth := evalFixture(t)
	rm, err := Rules(truth, truth, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rm.MeanJaccard != 1 || rm.RuleF1 != 1 {
		t.Errorf("self-match: %+v", rm)
	}
	for _, m := range rm.Matches {
		if !m.ExactShape || m.CoefErr > 1e-12 {
			t.Errorf("match not exact: %+v", m)
		}
	}
}

func TestRulesEquivalentConditionDifferentSyntax(t *testing.T) {
	tbl, _, _, truth := evalFixture(t)
	// Recovered condition "grp ≠ b ∧ grp ≠ c" selects the same rows as
	// "grp = a": Jaccard must be 1 even though fingerprints differ.
	got := &model.Summary{Target: "pay", CTs: []model.CT{
		{
			Cond: predicate.Predicate{Atoms: []predicate.Atom{
				predicate.StrAtom("grp", predicate.Ne, "b"), predicate.StrAtom("grp", predicate.Ne, "c"),
			}},
			Tran: truth.CTs[0].Tran,
		},
		truth.CTs[1],
	}}
	rm, err := Rules(truth, got, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rm.MeanJaccard != 1 || rm.RuleRecall != 1 {
		t.Errorf("semantic equivalence missed: %+v", rm)
	}
	if rm.Matches[0].ExactShape {
		t.Error("different syntax should not claim exact shape")
	}
}

func TestRulesPartialRecovery(t *testing.T) {
	tbl, _, _, truth := evalFixture(t)
	got := &model.Summary{Target: "pay", CTs: []model.CT{truth.CTs[0]}}
	rm, err := Rules(truth, got, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rm.RuleRecall != 0.5 {
		t.Errorf("recall = %v, want 0.5", rm.RuleRecall)
	}
	if rm.RulePrecision != 1 {
		t.Errorf("precision = %v, want 1", rm.RulePrecision)
	}
	wantF1 := 2 * 0.5 * 1 / 1.5
	if math.Abs(rm.RuleF1-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", rm.RuleF1, wantF1)
	}
}

func TestRulesCoefficientError(t *testing.T) {
	tbl, _, _, truth := evalFixture(t)
	offCoef := &model.Summary{Target: "pay", CTs: []model.CT{
		{
			Cond: truth.CTs[0].Cond,
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.21}},
		},
		truth.CTs[1],
	}}
	rm, err := Rules(truth, offCoef, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Matches[0].CoefErr < 0.05 {
		t.Errorf("10%% coefficient error underestimated: %v", rm.Matches[0].CoefErr)
	}
}

func TestRulesEmptyTruth(t *testing.T) {
	tbl, _, _, _ := evalFixture(t)
	empty := &model.Summary{Target: "pay"}
	rm, err := Rules(empty, empty, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rm.RuleF1 != 1 || rm.MeanJaccard != 1 {
		t.Errorf("empty-vs-empty should be perfect: %+v", rm)
	}
}

func TestRulesFirstMatchSemanticsInPartitions(t *testing.T) {
	tbl, _, _, _ := evalFixture(t)
	// Two overlapping recovered CTs: the first claims all rows, so the
	// second gets none; the truth rule for grp=a must match the first only.
	got := &model.Summary{Target: "pay", CTs: []model.CT{
		{Cond: predicate.True(), Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}}},
		{Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("grp", predicate.Eq, "a")}},
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}}},
	}}
	truth := &model.Summary{Target: "pay", CTs: []model.CT{
		{Cond: predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("grp", predicate.Eq, "a")}},
			Tran: model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}}},
	}}
	rm, err := Rules(truth, got, tbl)
	if err != nil {
		t.Fatal(err)
	}
	// TRUE claims all 6 rows; a-rows are 2 of them → Jaccard 2/6.
	if math.Abs(rm.Matches[0].Jaccard-1.0/3) > 1e-12 {
		t.Errorf("jaccard = %v, want 1/3", rm.Matches[0].Jaccard)
	}
}

func TestCoefErrIdentityVsLinear(t *testing.T) {
	id := model.Identity("pay")
	lin := model.Transformation{Target: "pay", Inputs: []string{"pay"}, Coef: []float64{1.1}}
	if coefErr(id, id) != 0 {
		t.Error("identity vs identity should be 0")
	}
	if !math.IsInf(coefErr(id, lin), 1) {
		t.Error("identity vs linear should be infinite")
	}
}
