// Package eval measures how well a recovered change summary matches a
// planted ground-truth policy. Two views are provided:
//
//   - cell-level: does the summary predict each row's evolved value?
//     (precision / recall / F1 over changed rows, within a tolerance)
//   - rule-level: greedy matching of recovered CTs to truth CTs by partition
//     overlap (Jaccard), with coefficient error on matched pairs.
package eval

import (
	"math"

	"charles/internal/model"
	"charles/internal/table"
)

// CellMetrics quantify row-level explanatory power.
type CellMetrics struct {
	// Precision: of the rows the summary claims changed (covered by a
	// non-identity CT), the fraction whose predicted value is within Tol of
	// the actual new value.
	Precision float64
	// Recall: of the rows that actually changed, the fraction covered and
	// predicted within Tol.
	Recall float64
	F1     float64
	// MAE over changed rows.
	MAE float64
}

// Cells compares summary predictions against the actual evolved values.
// actual is aligned to source rows; changed marks rows whose target really
// changed; tol is the absolute prediction tolerance.
func Cells(s *model.Summary, src *table.Table, actual []float64, changed []bool, tol float64) (*CellMetrics, error) {
	preds, covered, err := s.Apply(src)
	if err != nil {
		return nil, err
	}
	tcol, err := src.Column(s.Target)
	if err != nil {
		return nil, err
	}
	m := &CellMetrics{}
	var claimed, correctClaimed, actualChanged, recalled int
	var sae float64
	var nChanged int
	for r := range preds {
		within := math.Abs(preds[r]-actual[r]) <= tol
		claimsChange := covered[r] && math.Abs(preds[r]-tcol.Float(r)) > tol
		if claimsChange {
			claimed++
			if within {
				correctClaimed++
			}
		}
		if changed[r] {
			actualChanged++
			nChanged++
			sae += math.Abs(preds[r] - actual[r])
			if within {
				recalled++
			}
		}
	}
	if claimed > 0 {
		m.Precision = float64(correctClaimed) / float64(claimed)
	} else if actualChanged == 0 {
		m.Precision = 1
	}
	if actualChanged > 0 {
		m.Recall = float64(recalled) / float64(actualChanged)
		m.MAE = sae / float64(nChanged)
	} else {
		m.Recall = 1
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m, nil
}

// RuleMatch pairs one truth CT with its best recovered CT.
type RuleMatch struct {
	TruthIdx   int
	GotIdx     int     // -1 when unmatched
	Jaccard    float64 // partition overlap on src rows
	CoefErr    float64 // max relative error across coefficients+intercept (matched pairs only)
	ExactShape bool    // same condition fingerprint
}

// RuleMetrics aggregates rule-level recovery quality.
type RuleMetrics struct {
	Matches []RuleMatch
	// MeanJaccard over truth rules (unmatched = 0).
	MeanJaccard float64
	// RulePrecision / RuleRecall: a truth rule counts as recovered when its
	// best match has Jaccard ≥ 0.9; a recovered CT counts as correct when it
	// is some truth rule's best match at Jaccard ≥ 0.9.
	RulePrecision float64
	RuleRecall    float64
	RuleF1        float64
}

// Rules greedily matches recovered CTs to truth CTs by partition Jaccard on
// the source table.
func Rules(truth, got *model.Summary, src *table.Table) (*RuleMetrics, error) {
	truthRows, err := ctRows(truth, src)
	if err != nil {
		return nil, err
	}
	gotRows, err := ctRows(got, src)
	if err != nil {
		return nil, err
	}
	usedGot := map[int]bool{}
	rm := &RuleMetrics{}
	const threshold = 0.9
	var recovered int
	for ti := range truth.CTs {
		best, bestJ := -1, 0.0
		for gi := range got.CTs {
			if usedGot[gi] {
				continue
			}
			j := jaccard(truthRows[ti], gotRows[gi])
			if j > bestJ {
				best, bestJ = gi, j
			}
		}
		match := RuleMatch{TruthIdx: ti, GotIdx: best, Jaccard: bestJ}
		if best >= 0 {
			usedGot[best] = true
			match.CoefErr = coefErr(truth.CTs[ti].Tran, got.CTs[best].Tran)
			match.ExactShape = truth.CTs[ti].Cond.Fingerprint() == got.CTs[best].Cond.Fingerprint()
			if bestJ >= threshold {
				recovered++
			}
		}
		rm.Matches = append(rm.Matches, match)
		rm.MeanJaccard += bestJ
	}
	if len(truth.CTs) > 0 {
		rm.MeanJaccard /= float64(len(truth.CTs))
		rm.RuleRecall = float64(recovered) / float64(len(truth.CTs))
	} else {
		rm.MeanJaccard = 1
		rm.RuleRecall = 1
	}
	if len(got.CTs) > 0 {
		rm.RulePrecision = float64(recovered) / float64(len(got.CTs))
	} else if len(truth.CTs) == 0 {
		rm.RulePrecision = 1
	}
	if rm.RulePrecision+rm.RuleRecall > 0 {
		rm.RuleF1 = 2 * rm.RulePrecision * rm.RuleRecall / (rm.RulePrecision + rm.RuleRecall)
	}
	return rm, nil
}

func ctRows(s *model.Summary, src *table.Table) ([]map[int]bool, error) {
	out := make([]map[int]bool, len(s.CTs))
	claimed := make([]bool, src.NumRows())
	for i, ct := range s.CTs {
		rows := map[int]bool{}
		for r := 0; r < src.NumRows(); r++ {
			if claimed[r] {
				continue // first-match semantics, same as Summary.Apply
			}
			ok, err := ct.Cond.Eval(src, r)
			if err != nil {
				return nil, err
			}
			if ok {
				rows[r] = true
				claimed[r] = true
			}
		}
		out[i] = rows
	}
	return out, nil
}

func jaccard(a, b map[int]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for r := range a {
		if b[r] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// coefErr returns the maximum relative error between the constants of two
// transformations over the union of their input attributes.
func coefErr(truth, got model.Transformation) float64 {
	if truth.NoChange || got.NoChange {
		if truth.NoChange == got.NoChange {
			return 0
		}
		return math.Inf(1)
	}
	tc := coefMap(truth)
	gc := coefMap(got)
	maxErr := relErr(truth.Intercept, got.Intercept, scaleOf(truth))
	for attr, tv := range tc {
		maxErr = math.Max(maxErr, relErr(tv, gc[attr], math.Abs(tv)))
	}
	for attr, gv := range gc {
		if _, ok := tc[attr]; !ok {
			maxErr = math.Max(maxErr, relErr(0, gv, 1))
		}
	}
	return maxErr
}

func coefMap(t model.Transformation) map[string]float64 {
	m := map[string]float64{}
	// InputNames handles both representations: plain attributes and derived
	// features (whose display names — ln(pay), pay² — only ever match a
	// truth rule that uses the same feature).
	for i, in := range t.InputNames() {
		if t.Coef[i] != 0 {
			m[in] = t.Coef[i]
		}
	}
	return m
}

func relErr(want, got, scale float64) float64 {
	if scale <= 0 {
		scale = math.Max(math.Abs(want), 1)
	}
	return math.Abs(want-got) / scale
}

func scaleOf(t model.Transformation) float64 {
	s := math.Abs(t.Intercept)
	for _, c := range t.Coef {
		if a := math.Abs(c); a > s {
			s = a
		}
	}
	if s == 0 {
		return 1
	}
	return s
}
