// Package csvio loads and saves table.Table values as CSV with automatic
// type inference. It tolerates the formatting found in real payroll-style
// exports: currency symbols, thousands separators, percent signs, and empty
// cells (loaded as nulls).
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"charles/internal/table"
)

// Options control CSV reading.
type Options struct {
	// Comma is the field delimiter (default ',').
	Comma rune
	// Key names the primary-key columns to declare on the loaded table.
	Key []string
	// ForceString lists columns that must not be type-inferred (e.g. zip
	// codes or IDs with leading zeros).
	ForceString []string
}

// Read parses CSV from r into a table, inferring a column type from the
// values: int if every non-empty cell parses as an integer, float if every
// cell parses as a number (currency/percent decorations are stripped), bool
// if every cell is true/false, otherwise string.
func Read(r io.Reader, opts Options) (*table.Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvio: empty input (no header row)")
	}
	header := records[0]
	rows := records[1:]
	forced := map[string]bool{}
	for _, c := range opts.ForceString {
		forced[c] = true
	}

	schema := make(table.Schema, len(header))
	for ci, name := range header {
		name = strings.TrimSpace(name)
		if name == "" {
			name = fmt.Sprintf("col%d", ci)
		}
		t := table.String
		if !forced[name] {
			t = inferType(rows, ci)
		}
		schema[ci] = table.Field{Name: name, Type: t}
	}
	t, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	vals := make([]table.Value, len(header))
	for ri, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvio: row %d has %d fields, want %d", ri+2, len(rec), len(header))
		}
		for ci, cell := range rec {
			v, err := ParseCell(cell, schema[ci].Type)
			if err != nil {
				return nil, fmt.Errorf("csvio: row %d column %q: %w", ri+2, schema[ci].Name, err)
			}
			vals[ci] = v
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	if len(opts.Key) > 0 {
		if err := t.SetKey(opts.Key...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadFile loads a CSV file via Read.
func ReadFile(path string, opts Options) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, opts)
}

// Write serializes t as CSV with a header row. Null cells become empty.
func Write(w io.Writer, t *table.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for ci := 0; ci < t.NumCols(); ci++ {
			c := t.ColumnAt(ci)
			if c.IsNull(r) {
				rec[ci] = ""
			} else {
				rec[ci] = c.Value(r).Str()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile saves t as a CSV file. The file is fsynced before close, so a
// checkout that "succeeded" survives a power cut — without the sync, the
// data could still be sitting in the page cache when the machine dies,
// leaving a short or empty file behind a reported success.
func WriteFile(path string, t *table.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// typeGuess accumulates per-cell evidence for type inference. The zero value
// starts with every candidate type still possible.
type typeGuess struct {
	isInt, isFloat, isBool bool
	seen                   bool
	settled                bool // String decided; further cells are irrelevant
}

func newTypeGuess() typeGuess { return typeGuess{isInt: true, isFloat: true, isBool: true} }

// observe folds one raw cell into the guess. Empty (null) cells carry no
// evidence.
func (g *typeGuess) observe(cell string) {
	cell = strings.TrimSpace(cell)
	if cell == "" || g.settled {
		return
	}
	g.seen = true
	low := strings.ToLower(cell)
	if low != "true" && low != "false" {
		g.isBool = false
	}
	num, ok := normalizeNumber(cell)
	if !ok {
		g.isInt, g.isFloat = false, false
	} else {
		if _, err := strconv.ParseInt(num, 10, 64); err != nil {
			g.isInt = false
		}
		if _, err := strconv.ParseFloat(num, 64); err != nil {
			g.isFloat = false
		}
	}
	if !g.isBool && !g.isFloat {
		g.settled = true
	}
}

// result picks the narrowest surviving type: Bool ⊂ Int ⊂ Float ⊂ String.
func (g *typeGuess) result() table.Type {
	switch {
	case g.settled, !g.seen:
		return table.String
	case g.isBool:
		return table.Bool
	case g.isInt:
		return table.Int
	case g.isFloat:
		return table.Float
	default:
		return table.String
	}
}

// inferType chooses the narrowest type that parses every non-empty cell of
// column ci: Bool ⊂ Int ⊂ Float ⊂ String.
func inferType(rows [][]string, ci int) table.Type {
	g := newTypeGuess()
	for _, rec := range rows {
		if ci >= len(rec) {
			continue
		}
		g.observe(rec[ci])
		if g.settled {
			break
		}
	}
	return g.result()
}

// InferCells runs Read's column type inference over a bare cell slice — the
// same Bool ⊂ Int ⊂ Float ⊂ String lattice, empty cells skipped. Exported so
// delta-native snapshot materialization (diff.ApplyChangeSet) can reproduce
// exactly the type a checkout of the equivalent CSV would infer.
func InferCells(cells []string) table.Type {
	g := newTypeGuess()
	for _, cell := range cells {
		g.observe(cell)
		if g.settled {
			break
		}
	}
	return g.result()
}

// normalizeNumber strips currency symbols, thousands separators, percent
// signs, and surrounding parentheses (accounting negatives). It reports
// whether the remainder looks like a number candidate.
func normalizeNumber(s string) (string, bool) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		neg = true
		s = s[1 : len(s)-1]
	}
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimSuffix(s, "%")
	s = strings.ReplaceAll(s, ",", "")
	s = strings.TrimSpace(s)
	if s == "" {
		return "", false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && r != '.' && r != '-' && r != '+' && r != 'e' && r != 'E' {
			return "", false
		}
	}
	if neg {
		s = "-" + s
	}
	return s, true
}

// ParseCell converts one CSV cell to a Value of the target type, exactly as
// Read does for a typed column: cells are whitespace-trimmed, empty cells
// become nulls, and numeric decorations (currency, separators, percent) are
// normalized away. Exported so the delta-native diff path can turn delta-op
// cell texts into the same Values a checkout of the child snapshot yields.
func ParseCell(cell string, t table.Type) (table.Value, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return table.Null(t), nil
	}
	switch t {
	case table.Int:
		num, ok := normalizeNumber(cell)
		if !ok {
			return table.Value{}, fmt.Errorf("cannot parse %q as int", cell)
		}
		x, err := strconv.ParseInt(num, 10, 64)
		if err != nil {
			return table.Value{}, fmt.Errorf("cannot parse %q as int", cell)
		}
		return table.I(x), nil
	case table.Float:
		num, ok := normalizeNumber(cell)
		if !ok {
			return table.Value{}, fmt.Errorf("cannot parse %q as float", cell)
		}
		x, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return table.Value{}, fmt.Errorf("cannot parse %q as float", cell)
		}
		return table.F(x), nil
	case table.Bool:
		x, err := strconv.ParseBool(strings.ToLower(cell))
		if err != nil {
			return table.Value{}, fmt.Errorf("cannot parse %q as bool", cell)
		}
		return table.B(x), nil
	default:
		return table.S(cell), nil
	}
}
