package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
)

// RowReader streams the records of a CSV document one at a time, without
// materializing the whole document or inferring types — the raw-record
// layer under Read, built for the version store's delta application, which
// merges a parent snapshot with a change set row by row.
type RowReader struct {
	cr     *csv.Reader
	header []string
	err    error
}

// NewRowReader wraps r. The first record is treated as the header row.
func NewRowReader(r io.Reader) *RowReader {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = false // raw pass-through: bytes in, bytes out
	cr.ReuseRecord = false
	return &RowReader{cr: cr}
}

// Header returns the header record, reading it on first call.
func (r *RowReader) Header() ([]string, error) {
	if r.header == nil && r.err == nil {
		rec, err := r.cr.Read()
		if err == io.EOF {
			r.err = fmt.Errorf("csvio: empty input (no header row)")
		} else if err != nil {
			r.err = fmt.Errorf("csvio: %w", err)
		} else {
			r.header = rec
		}
	}
	return r.header, r.err
}

// Next returns the next data record, or io.EOF after the last one. The
// header is consumed implicitly if Header was not called first.
func (r *RowReader) Next() ([]string, error) {
	if _, err := r.Header(); err != nil {
		return nil, err
	}
	rec, err := r.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	return rec, nil
}

// RowWriter streams raw CSV records to w with the same canonical quoting
// Write uses, so a document reassembled record-by-record is byte-identical
// to one serialized in a single pass.
type RowWriter struct {
	cw *csv.Writer
}

// NewRowWriter wraps w.
func NewRowWriter(w io.Writer) *RowWriter {
	return &RowWriter{cw: csv.NewWriter(w)}
}

// Write appends one record.
func (w *RowWriter) Write(rec []string) error {
	return w.cw.Write(rec)
}

// Flush drains buffered output and reports any deferred write error.
func (w *RowWriter) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}
