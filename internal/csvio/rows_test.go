package csvio

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"charles/internal/table"
)

func TestRowReaderStreamsRecords(t *testing.T) {
	rr := NewRowReader(strings.NewReader("a,b\n1,x\n2,\"y,z\"\n"))
	header, err := rr.Header()
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "a" || header[1] != "b" {
		t.Fatalf("header = %v", header)
	}
	// Header is idempotent.
	again, err := rr.Header()
	if err != nil || again[0] != "a" {
		t.Fatalf("second Header() = %v, %v", again, err)
	}
	var rows [][]string
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, rec)
	}
	if len(rows) != 2 || rows[1][1] != "y,z" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRowReaderImplicitHeader(t *testing.T) {
	rr := NewRowReader(strings.NewReader("a\n1\n"))
	rec, err := rr.Next() // header consumed implicitly
	if err != nil || rec[0] != "1" {
		t.Fatalf("Next = %v, %v", rec, err)
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestRowReaderErrors(t *testing.T) {
	if _, err := NewRowReader(strings.NewReader("")).Header(); err == nil {
		t.Error("empty input accepted")
	}
	rr := NewRowReader(strings.NewReader("a,b\n1\n"))
	if _, err := rr.Next(); err == nil || err == io.EOF {
		t.Errorf("ragged row: err = %v, want parse error", err)
	}
}

// TestRowWriterMatchesWrite pins the byte-identity contract the store's
// delta application depends on: a document reassembled record-by-record
// through RowReader/RowWriter is identical to the csvio.Write serialization
// it was read from — quoting, newlines-in-cells, and all.
func TestRowWriterMatchesWrite(t *testing.T) {
	tbl := table.MustNew(table.Schema{
		{Name: "id", Type: table.String},
		{Name: "note", Type: table.String},
		{Name: "x", Type: table.Float},
	})
	tbl.MustAppendRow(table.S("a"), table.S("plain"), table.F(1.5))
	tbl.MustAppendRow(table.S("b"), table.S("with,comma"), table.F(2.25))
	tbl.MustAppendRow(table.S("c"), table.S(`quo"ted`), table.Null(table.Float))
	tbl.MustAppendRow(table.S("d"), table.S("multi\nline"), table.F(-3))
	tbl.MustAppendRow(table.S("e"), table.S(" leading space"), table.F(0.125))
	var want bytes.Buffer
	if err := Write(&want, tbl); err != nil {
		t.Fatal(err)
	}

	rr := NewRowReader(bytes.NewReader(want.Bytes()))
	var got bytes.Buffer
	ww := NewRowWriter(&got)
	header, err := rr.Header()
	if err != nil {
		t.Fatal(err)
	}
	if err := ww.Write(header); err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := ww.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("round-trip differs:\ngot:\n%q\nwant:\n%q", got.Bytes(), want.Bytes())
	}
}
