package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"charles/internal/table"
)

func TestReadInfersTypes(t *testing.T) {
	in := `id,name,salary,rate,active,grade
1,Anne,"$230,000",10%,true,12
2,Bob,"$250,000",9.5%,false,7
`
	tbl, err := Read(strings.NewReader(in), Options{Key: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]table.Type{
		"id": table.Int, "name": table.String, "salary": table.Int,
		"rate": table.Float, "active": table.Bool, "grade": table.Int,
	}
	for _, f := range tbl.Schema() {
		if want[f.Name] != f.Type {
			t.Errorf("column %q inferred %v, want %v", f.Name, f.Type, want[f.Name])
		}
	}
	v, err := tbl.Value(0, "salary")
	if err != nil || v.Int() != 230000 {
		t.Errorf("currency parse: %v, %v", v, err)
	}
	r, _ := tbl.Value(1, "rate")
	if r.Float() != 9.5 {
		t.Errorf("percent parse: %v", r)
	}
	if len(tbl.Key()) != 1 || tbl.Key()[0] != "id" {
		t.Errorf("key not set: %v", tbl.Key())
	}
}

func TestReadEmptyCellsBecomeNulls(t *testing.T) {
	in := "a,b\n1,\n,x\n"
	tbl, err := Read(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.MustColumn("b").IsNull(0) {
		t.Error("empty string cell should be null")
	}
	if !tbl.MustColumn("a").IsNull(1) {
		t.Error("empty numeric cell should be null")
	}
}

func TestReadForceString(t *testing.T) {
	in := "zip,v\n01234,1\n98765,2\n"
	tbl, err := Read(strings.NewReader(in), Options{ForceString: []string{"zip"}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema()[0].Type != table.String {
		t.Errorf("forced column inferred %v", tbl.Schema()[0].Type)
	}
	if v, _ := tbl.Value(0, "zip"); v.Str() != "01234" {
		t.Errorf("leading zero lost: %q", v.Str())
	}
}

func TestReadNegativeAccounting(t *testing.T) {
	in := "amt\n(1500)\n2000\n"
	tbl, err := Read(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Value(0, "amt"); v.Float() != -1500 {
		t.Errorf("accounting negative = %v, want -1500", v)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), Options{}); err == nil {
		t.Error("empty input accepted")
	}
	// encoding/csv already rejects ragged rows.
	if _, err := Read(strings.NewReader("a,b\n1\n"), Options{}); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := Read(strings.NewReader("a,b\n1,2\n"), Options{Key: []string{"ghost"}}); err == nil {
		t.Error("unknown key column accepted")
	}
}

func TestMixedColumnFallsBackToString(t *testing.T) {
	in := "x\n1\nhello\n2\n"
	tbl, err := Read(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema()[0].Type != table.String {
		t.Errorf("mixed column inferred %v, want string", tbl.Schema()[0].Type)
	}
}

func TestRoundTrip(t *testing.T) {
	src := table.MustNew(table.Schema{
		{Name: "id", Type: table.Int},
		{Name: "name", Type: table.String},
		{Name: "pay", Type: table.Float},
		{Name: "ok", Type: table.Bool},
	})
	src.MustAppendRow(table.I(1), table.S("ann"), table.F(10.5), table.B(true))
	src.MustAppendRow(table.I(2), table.S("bob"), table.Null(table.Float), table.B(false))

	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 {
		t.Fatalf("round-trip rows = %d", back.NumRows())
	}
	if v, _ := back.Value(0, "pay"); v.Float() != 10.5 {
		t.Errorf("pay round-trip = %v", v)
	}
	if !back.MustColumn("pay").IsNull(1) {
		t.Error("null did not round-trip")
	}
	if v, _ := back.Value(1, "ok"); v.Bool() != false {
		t.Errorf("bool round-trip = %v", v)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	src := table.MustNew(table.Schema{{Name: "a", Type: table.Int}})
	src.MustAppendRow(table.I(7))
	if err := WriteFile(path, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Value(0, "a"); v.Int() != 7 {
		t.Errorf("file round-trip = %v", v)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv"), Options{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNormalizeNumber(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"$1,234.50", "1234.50", true},
		{"12%", "12", true},
		{"(42)", "-42", true},
		{"1e3", "1e3", true},
		{"abc", "", false},
		{"$", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, ok := normalizeNumber(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("normalizeNumber(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}
