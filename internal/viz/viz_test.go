package viz

import (
	"strings"
	"testing"

	"charles/internal/model"
	"charles/internal/predicate"
	"charles/internal/score"
)

func sampleSummary() *model.Summary {
	return &model.Summary{
		Target: "bonus",
		CTs: []model.CT{
			{
				Cond:     predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "PhD")}},
				Tran:     model.Transformation{Target: "bonus", Inputs: []string{"bonus"}, Coef: []float64{1.05}, Intercept: 1000},
				Rows:     3,
				Coverage: 1.0 / 3,
				MAE:      0,
			},
			{
				Cond:     predicate.Predicate{Atoms: []predicate.Atom{predicate.StrAtom("edu", predicate.Eq, "MS")}},
				Tran:     model.Identity("bonus"),
				Rows:     4,
				Coverage: 4.0 / 9,
			},
		},
	}
}

func TestTreemapContents(t *testing.T) {
	out := Treemap(sampleSummary(), 45)
	if !strings.Contains(out, "P1 33.3%") {
		t.Errorf("first partition label missing:\n%s", out)
	}
	if !strings.Contains(out, "edu = PhD") || !strings.Contains(out, "1.05×bonus + 1000") {
		t.Errorf("partition details missing:\n%s", out)
	}
	// Residual no-change partition: 1 − 1/3 − 4/9 = 2/9 ≈ 22.2%.
	if !strings.Contains(out, "22.2%") {
		t.Errorf("residual partition missing:\n%s", out)
	}
	// The identity CT and the residual are hatched; the active one is solid.
	if !strings.Contains(out, "█") || !strings.Contains(out, "░") {
		t.Errorf("fill characters missing:\n%s", out)
	}
}

func TestTreemapBarWidthsProportional(t *testing.T) {
	out := Treemap(sampleSummary(), 90)
	lines := strings.Split(out, "\n")
	var w1, w2 int
	for _, l := range lines {
		if strings.HasPrefix(l, "P1") {
			w1 = strings.Count(l, "█")
		}
		if strings.HasPrefix(l, "P2") {
			w2 = strings.Count(l, "░")
		}
	}
	if w1 == 0 || w2 == 0 {
		t.Fatalf("bars not found:\n%s", out)
	}
	// P2 covers 4/9 > P1's 1/3.
	if w2 <= w1 {
		t.Errorf("bar widths not proportional: P1=%d, P2=%d", w1, w2)
	}
}

func TestTreemapMinWidthAndTinyPartitions(t *testing.T) {
	s := &model.Summary{Target: "x", CTs: []model.CT{{
		Cond:     predicate.True(),
		Tran:     model.Transformation{Target: "x", Inputs: []string{"x"}, Coef: []float64{2}},
		Coverage: 0.001,
	}}}
	out := Treemap(s, 5) // clamped to 20
	if !strings.Contains(out, "█") {
		t.Errorf("tiny partition should still render one cell:\n%s", out)
	}
}

func TestSummaryCard(t *testing.T) {
	bd := &score.Breakdown{Score: 0.89, Accuracy: 0.99, Interpretability: 0.79}
	out := SummaryCard(1, sampleSummary(), bd)
	for _, want := range []string{"#1", "score 89.0%", "accuracy 99.0%", "interpretability 79.0%", "edu = PhD"} {
		if !strings.Contains(out, want) {
			t.Errorf("card missing %q:\n%s", want, out)
		}
	}
	empty := SummaryCard(2, &model.Summary{Target: "x"}, bd)
	if !strings.Contains(empty, "(no change)") {
		t.Errorf("empty summary card:\n%s", empty)
	}
}
