// Package viz renders ChARLES output as terminal text: the partition
// treemap of demo step 10 (coverage-proportional rectangles, with the
// no-change partition hatched) and a detail card per summary. It is the
// CLI stand-in for the paper's interactive GUI.
package viz

import (
	"fmt"
	"strings"

	"charles/internal/model"
	"charles/internal/score"
)

// Treemap renders one rectangle per CT, width-proportional to coverage,
// plus a hatched rectangle for the residual no-change partition — the
// textual analogue of the demo's partition visualization. width is the
// total character width of the bars (≥ 20).
func Treemap(s *model.Summary, width int) string {
	if width < 20 {
		width = 20
	}
	var b strings.Builder
	var covered float64
	type bar struct {
		label    string
		detail   string
		coverage float64
		hatched  bool
	}
	var bars []bar
	for i, ct := range s.CTs {
		covered += ct.Coverage
		bars = append(bars, bar{
			label:    fmt.Sprintf("P%d %.1f%%", i+1, ct.Coverage*100),
			detail:   fmt.Sprintf("condition: %s | transformation: %s | rows: %d | MAE: %.4g", ct.Cond, ct.Tran, ct.Rows, ct.MAE),
			coverage: ct.Coverage,
			hatched:  ct.Tran.NoChange,
		})
	}
	if rem := 1 - covered; rem > 1e-9 {
		bars = append(bars, bar{
			label:    fmt.Sprintf("-- %.1f%%", rem*100),
			detail:   "no change observed",
			coverage: rem,
			hatched:  true,
		})
	}
	for _, bb := range bars {
		w := int(bb.coverage*float64(width) + 0.5)
		if w < 1 {
			w = 1
		}
		fill := "█"
		if bb.hatched {
			fill = "░"
		}
		fmt.Fprintf(&b, "%-14s |%s\n", bb.label, strings.Repeat(fill, w))
		fmt.Fprintf(&b, "%-14s   %s\n", "", bb.detail)
	}
	return b.String()
}

// SummaryCard renders a ranked summary as the demo's step-8 list entry:
// the CT list with scores for accuracy, interpretability, and the blend.
func SummaryCard(rank int, s *model.Summary, bd *score.Breakdown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d  score %.1f%%  (accuracy %.1f%%, interpretability %.1f%%)\n",
		rank, bd.Score*100, bd.Accuracy*100, bd.Interpretability*100)
	if len(s.CTs) == 0 {
		b.WriteString("    (no change)\n")
		return b.String()
	}
	for _, ct := range s.CTs {
		fmt.Fprintf(&b, "    [%s]  →  [%s]   (%.1f%% of rows)\n", ct.Cond, ct.Tran, ct.Coverage*100)
	}
	return b.String()
}

// RankedList renders the top summaries as the demo's result list.
func RankedList(items []struct {
	Summary   *model.Summary
	Breakdown *score.Breakdown
}) string {
	var b strings.Builder
	for i, it := range items {
		b.WriteString(SummaryCard(i+1, it.Summary, it.Breakdown))
	}
	return b.String()
}
