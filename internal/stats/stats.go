// Package stats provides the descriptive and correlation statistics behind
// the ChARLES setup assistant: Pearson and Spearman correlation for numeric
// attributes and the correlation ratio (η) for categorical→numeric
// association. NaN inputs are skipped pairwise.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of the finite values in xs (NaN if none).
func Mean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		s += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// Variance returns the population variance of the finite values in xs.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	s, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		d := x - m
		s += d * d
		n++
	}
	return s / float64(n)
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest finite values (NaNs if none).
func MinMax(xs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	seen := false
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		seen = true
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if !seen {
		return math.NaN(), math.NaN()
	}
	return lo, hi
}

// Pearson returns the Pearson correlation coefficient of the pairwise-finite
// entries of x and y (0 when either side is constant or fewer than 2 pairs).
func Pearson(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	var sx, sy float64
	cnt := 0
	for i := 0; i < n; i++ {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		sx += x[i]
		sy += y[i]
		cnt++
	}
	if cnt < 2 {
		return 0
	}
	mx, my := sx/float64(cnt), sy/float64(cnt)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation (Pearson on ranks, with
// average ranks for ties).
func Spearman(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	// Collect pairwise-finite entries.
	var xs, ys []float64
	for i := 0; i < n; i++ {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		xs = append(xs, x[i])
		ys = append(ys, y[i])
	}
	if len(xs) < 2 {
		return 0
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the average-rank transform of xs (1-based; ties share the
// mean of the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// CorrelationRatio computes η, the correlation ratio between a categorical
// variable (category label per row) and a numeric one: the square root of
// the between-group variance share. η ∈ [0,1]; 1 means the category fully
// determines the numeric value. Rows with NaN values are skipped.
func CorrelationRatio(categories []string, values []float64) float64 {
	n := len(categories)
	if len(values) < n {
		n = len(values)
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	var total float64
	cnt := 0
	for i := 0; i < n; i++ {
		if math.IsNaN(values[i]) {
			continue
		}
		sums[categories[i]] += values[i]
		counts[categories[i]]++
		total += values[i]
		cnt++
	}
	if cnt < 2 || len(counts) < 2 {
		return 0
	}
	grand := total / float64(cnt)
	var between, within float64
	means := map[string]float64{}
	// Iterate categories in sorted order: floating-point accumulation must
	// not depend on map iteration order, or equal inputs could produce
	// last-ulp-different results across runs.
	cats := make([]string, 0, len(sums))
	for c := range sums {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		means[c] = sums[c] / float64(counts[c])
		d := means[c] - grand
		between += float64(counts[c]) * d * d
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(values[i]) {
			continue
		}
		d := values[i] - means[categories[i]]
		within += d * d
	}
	tot := between + within
	if tot == 0 {
		return 0
	}
	return math.Sqrt(between / tot)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the finite values using
// linear interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	var v []float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			v = append(v, x)
		}
	}
	if len(v) == 0 {
		return math.NaN()
	}
	sort.Float64s(v)
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo]*(1-frac) + v[hi]*frac
}
