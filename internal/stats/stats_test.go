package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Errorf("variance = %v", Variance(xs))
	}
	if Std(xs) != 2 {
		t.Errorf("std = %v", Std(xs))
	}
}

func TestMeanSkipsNaN(t *testing.T) {
	xs := []float64{1, math.NaN(), 3}
	if Mean(xs) != 2 {
		t.Errorf("NaN-skipping mean = %v", Mean(xs))
	}
	if !math.IsNaN(Mean([]float64{math.NaN()})) {
		t.Error("all-NaN mean should be NaN")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, math.NaN(), -1, 7})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty MinMax should be NaN, NaN")
	}
}

func TestPearsonPerfectAndInverse(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if !almostEq(Pearson(x, y), 1, 1e-12) {
		t.Errorf("perfect corr = %v", Pearson(x, y))
	}
	inv := []float64{10, 8, 6, 4, 2}
	if !almostEq(Pearson(x, inv), -1, 1e-12) {
		t.Errorf("inverse corr = %v", Pearson(x, inv))
	}
}

func TestPearsonConstantAndShort(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("constant side should give 0")
	}
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Error("single pair should give 0")
	}
}

func TestPearsonSkipsNaNPairs(t *testing.T) {
	x := []float64{1, 2, math.NaN(), 4}
	y := []float64{2, 4, 100, 8}
	if !almostEq(Pearson(x, y), 1, 1e-12) {
		t.Errorf("NaN-pair skipping failed: %v", Pearson(x, y))
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		// Symmetry.
		return almostEq(r, Pearson(y, x), 1e-12)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform has perfect rank correlation.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // nonlinear but monotone
	}
	if !almostEq(Spearman(x, y), 1, 1e-12) {
		t.Errorf("monotone Spearman = %v", Spearman(x, y))
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("rank[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestCorrelationRatioDeterministic(t *testing.T) {
	cats := []string{"a", "a", "b", "b", "c", "c"}
	vals := []float64{1, 1, 5, 5, 9, 9}
	if !almostEq(CorrelationRatio(cats, vals), 1, 1e-12) {
		t.Errorf("deterministic eta = %v", CorrelationRatio(cats, vals))
	}
}

func TestCorrelationRatioNoSignal(t *testing.T) {
	cats := []string{"a", "a", "b", "b"}
	vals := []float64{1, 9, 1, 9}
	if eta := CorrelationRatio(cats, vals); !almostEq(eta, 0, 1e-12) {
		t.Errorf("no-signal eta = %v", eta)
	}
}

func TestCorrelationRatioDegenerate(t *testing.T) {
	if CorrelationRatio([]string{"a", "a"}, []float64{1, 2}) != 0 {
		t.Error("single category should give 0")
	}
	if CorrelationRatio([]string{"a"}, []float64{1}) != 0 {
		t.Error("single row should give 0")
	}
	if CorrelationRatio([]string{"a", "b"}, []float64{math.NaN(), math.NaN()}) != 0 {
		t.Error("all-NaN should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extremes wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if Quantile(xs, 0.25) != 2 {
		t.Errorf("q25 = %v", Quantile(xs, 0.25))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Interpolation.
	if got := Quantile([]float64{0, 10}, 0.75); got != 7.5 {
		t.Errorf("interpolated quantile = %v", got)
	}
}
