package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charles/internal/gen"
)

func TestHubAcquireCommitPersist(t *testing.T) {
	dir := t.TempDir()
	h, err := OpenHub(dir)
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := gen.Toy()
	v1, err := h.Commit("acme", "payroll", src, "", "2016")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Commit("acme", "payroll", tgt, v1.ID, "2017"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Commit("globex", "payroll", src, "", "2016"); err != nil {
		t.Fatal(err)
	}

	// Same dataset name under a different tenant is a different shard.
	st, release, err := h.AcquireExisting("acme", "payroll")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Log()); got != 2 {
		t.Errorf("acme/payroll has %d versions, want 2", got)
	}
	release()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Shards persist under <root>/<tenant>/<dataset> and reopen cleanly.
	h2, err := OpenHub(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	st, release, err = h2.AcquireExisting("globex", "payroll")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	back, err := st.Checkout(st.Log()[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != src.NumRows() {
		t.Errorf("reopened checkout rows = %d, want %d", back.NumRows(), src.NumRows())
	}
	refs, err := h2.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0] != (DatasetRef{"acme", "payroll"}) || refs[1] != (DatasetRef{"globex", "payroll"}) {
		t.Errorf("datasets = %+v", refs)
	}
}

func TestHubNameValidation(t *testing.T) {
	h, err := OpenHub("")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, bad := range []string{"", "..", ".hidden", "a/b", "a\\b", "a b", "über", "x\x00y"} {
		if _, _, err := h.Acquire(bad, "ds"); !errors.Is(err, ErrInvalidName) {
			t.Errorf("tenant %q: err = %v, want ErrInvalidName", bad, err)
		}
		if _, _, err := h.Acquire("t", bad); !errors.Is(err, ErrInvalidName) {
			t.Errorf("dataset %q: err = %v, want ErrInvalidName", bad, err)
		}
	}
	for _, good := range []string{"a", "Tenant-1", "data.set_2"} {
		_, release, err := h.Acquire(good, good)
		if err != nil {
			t.Errorf("name %q rejected: %v", good, err)
			continue
		}
		release()
	}
}

func TestHubAcquireExistingUnknown(t *testing.T) {
	h, err := OpenHub(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, _, err := h.AcquireExisting("no", "such"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("err = %v, want ErrUnknownDataset", err)
	}
	// A failed read-side acquire must not have created the dataset...
	refs, err := h.Datasets()
	if err != nil || len(refs) != 0 {
		t.Fatalf("datasets after failed acquire = %v, %v", refs, err)
	}
	// ...and a later create-side acquire of the same name succeeds.
	src, _ := gen.Toy()
	if _, err := h.Commit("no", "such", src, "", "now it exists"); err != nil {
		t.Fatal(err)
	}
	st, release, err := h.AcquireExisting("no", "such")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if len(st.Log()) != 1 {
		t.Errorf("log = %d entries, want 1", len(st.Log()))
	}
}

func TestHubIdleEvictionClosesShards(t *testing.T) {
	h, err := OpenHubWith(t.TempDir(), HubOptions{MaxOpen: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	src, _ := gen.Toy()
	var stores []*Store
	for i := 0; i < 3; i++ {
		st, release, err := h.Acquire("t", fmt.Sprintf("ds%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Commit(src, "", "seed"); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
		release()
	}
	// Opening the third shard evicted the least-recently-used first one,
	// and eviction actually closed it — a retained handle fails loudly.
	if _, err := stores[0].Head(); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("evicted shard Head err = %v, want ErrStoreClosed", err)
	}
	if _, err := stores[2].Head(); err != nil {
		t.Errorf("most recent shard closed early: %v", err)
	}
	if got := h.Stats().OpenShards; got != 2 {
		t.Errorf("open shards = %d, want 2", got)
	}
	// Re-acquiring the evicted dataset reopens it from disk.
	st, release, err := h.AcquireExisting("t", "ds0")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if len(st.Log()) != 1 {
		t.Errorf("reopened shard log = %d, want 1", len(st.Log()))
	}
}

func TestHubPinnedShardsSurviveEviction(t *testing.T) {
	h, err := OpenHubWith("", HubOptions{MaxOpen: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	stA, releaseA, err := h.Acquire("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	// Acquiring a second shard exceeds MaxOpen, but the pinned shard must
	// not be evicted out from under its holder (soft cap).
	_, releaseB, err := h.Acquire("t", "b")
	if err != nil {
		t.Fatal(err)
	}
	src, _ := gen.Toy()
	if _, err := stA.Commit(src, "", "while pinned"); err != nil {
		t.Errorf("pinned shard was closed: %v", err)
	}
	releaseB()
	releaseA()
	// Both released: the sweep on release trims back under the cap.
	if got := h.Stats().OpenShards; got != 1 {
		t.Errorf("open shards after release = %d, want 1", got)
	}
}

func TestHubSharedBudgetBoundsShards(t *testing.T) {
	const budget = 256 << 10 // deliberately small so eviction must happen
	h, err := OpenHubWith("", HubOptions{MaxOpen: 16, MemoryBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	chain, err := gen.Chain(gen.ChainConfig{N: 60, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Fill 16 shards' caches: commit a chain into each and walk it back so
	// the table/blob caches populate.
	for i := 0; i < 16; i++ {
		ds := fmt.Sprintf("ds%02d", i)
		parent := ""
		for j, snap := range chain {
			v, err := h.Commit("t", ds, snap, parent, fmt.Sprintf("step %d", j))
			if err != nil {
				t.Fatal(err)
			}
			parent = v.ID
		}
		st, release, err := h.AcquireExisting("t", ds)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range st.Log() {
			if _, err := st.Checkout(v.ID); err != nil {
				t.Fatal(err)
			}
		}
		release()
		if used := h.Budget().Used(); used > budget {
			t.Fatalf("after shard %d: budget used %d > cap %d", i, used, budget)
		}
	}
	bs := h.Budget().Stats()
	if bs.UsedBytes > budget {
		t.Errorf("final budget used %d > cap %d", bs.UsedBytes, budget)
	}
	if bs.Evictions == 0 {
		t.Error("16 shards under a small budget evicted nothing — budget not shared")
	}
	if got := h.Stats().OpenShards; got != 16 {
		t.Errorf("open shards = %d, want 16", got)
	}
}

// TestHubCrossShardCommitNonBlocking deterministically pins the no-shared-
// lock property: shard A's commit is held mid-flight (via the off-lock
// encode hook), and commits to shard B must complete while A is stuck. If
// any hub-level lock were held across a shard commit, B would deadlock.
func TestHubCrossShardCommitNonBlocking(t *testing.T) {
	h, err := OpenHub("")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	src, tgt := gen.Toy()

	stA, releaseA, err := h.Acquire("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	defer releaseA()
	hold := make(chan struct{})
	held := make(chan struct{})
	stA.testCommitHook = func() {
		close(held)
		<-hold
	}

	aDone := make(chan error, 1)
	go func() {
		_, err := h.Commit("t", "a", src, "", "blocked commit")
		aDone <- err
	}()
	<-held // shard A is now mid-commit and will not finish until released

	bDone := make(chan error, 1)
	go func() {
		v, err := h.Commit("t", "b", src, "", "first")
		if err == nil {
			_, err = h.Commit("t", "b", tgt, v.ID, "second")
		}
		bDone <- err
	}()
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("shard B commit failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard B commits blocked behind shard A's in-flight commit")
	}
	if got := shardCommits(h, "t", "b"); got != 2 {
		t.Errorf("shard B commit counter = %d, want 2", got)
	}
	if got := shardCommits(h, "t", "a"); got != 0 {
		t.Errorf("shard A commit counter = %d before release, want 0", got)
	}

	close(hold)
	if err := <-aDone; err != nil {
		t.Fatalf("shard A commit failed after release: %v", err)
	}
	if got := shardCommits(h, "t", "a"); got != 1 {
		t.Errorf("shard A commit counter = %d, want 1", got)
	}
}

// shardCommits reads one shard's commit counter out of HubStats.
func shardCommits(h *Hub, tenant, dataset string) int64 {
	for _, s := range h.Stats().Shards {
		if s.Tenant == tenant && s.Dataset == dataset {
			return s.Commits
		}
	}
	return -1
}

// TestHubHammer runs the multi-shard concurrency pin under -race: 8 shards
// take concurrent commit traffic while readers walk timelines on 8 other
// shards, with one additional shard's commit held hostage the whole time.
// Per-shard op counters prove every shard made full progress despite the
// stuck shard — zero cross-shard blocking — and the shared budget stays
// under its cap with all 17 shards open.
func TestHubHammer(t *testing.T) {
	const (
		writers     = 8
		readers     = 8
		commitsEach = 6
		budget      = 4 << 20
	)
	h, err := OpenHubWith("", HubOptions{MaxOpen: writers + readers + 1, MemoryBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	chain, err := gen.Chain(gen.ChainConfig{N: 40, Steps: commitsEach})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-seed the reader shards with full chains.
	for r := 0; r < readers; r++ {
		ds := fmt.Sprintf("read%d", r)
		parent := ""
		for j, snap := range chain {
			v, err := h.Commit("t", ds, snap, parent, fmt.Sprintf("seed %d", j))
			if err != nil {
				t.Fatal(err)
			}
			parent = v.ID
		}
	}

	// Hold one shard's commit mid-flight for the entire hammer.
	stuckSt, stuckRelease, err := h.Acquire("t", "stuck")
	if err != nil {
		t.Fatal(err)
	}
	defer stuckRelease()
	hold := make(chan struct{})
	held := make(chan struct{})
	stuckSt.testCommitHook = func() {
		close(held)
		<-hold
	}
	stuckDone := make(chan error, 1)
	go func() {
		_, err := h.Commit("t", "stuck", chain[0], "", "hostage")
		stuckDone <- err
	}()
	<-held

	var (
		wg       sync.WaitGroup
		writeOps [writers]atomic.Int64
		readOps  [readers]atomic.Int64
		failed   atomic.Bool
	)
	fail := func(format string, args ...any) {
		failed.Store(true)
		t.Errorf(format, args...)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := fmt.Sprintf("write%d", w)
			parent := ""
			for j := 0; j <= commitsEach; j++ {
				v, err := h.Commit("t", ds, chain[j], parent, fmt.Sprintf("commit %d", j))
				if err != nil {
					fail("writer %d commit %d: %v", w, j, err)
					return
				}
				parent = v.ID
				writeOps[w].Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ds := fmt.Sprintf("read%d", r)
			for pass := 0; pass < 3; pass++ {
				st, release, err := h.AcquireExisting("t", ds)
				if err != nil {
					fail("reader %d acquire: %v", r, err)
					return
				}
				log := st.Log()
				for _, v := range log {
					if _, err := st.Checkout(v.ID); err != nil {
						fail("reader %d checkout: %v", r, err)
						release()
						return
					}
					readOps[r].Add(1)
				}
				if _, _, err := st.DiffResult(log[0].ID, log[len(log)-1].ID, 0); err != nil {
					fail("reader %d diff: %v", r, err)
					release()
					return
				}
				readOps[r].Add(1)
				release()
			}
		}(r)
	}
	wg.Wait()
	if failed.Load() {
		return
	}

	// Every shard made full progress while "stuck" was mid-commit.
	for w := 0; w < writers; w++ {
		if got := writeOps[w].Load(); got != commitsEach+1 {
			t.Errorf("writer shard %d completed %d/%d commits", w, got, commitsEach+1)
		}
		if got := shardCommits(h, "t", fmt.Sprintf("write%d", w)); got != commitsEach+1 {
			t.Errorf("writer shard %d hub counter = %d, want %d", w, got, commitsEach+1)
		}
	}
	for r := 0; r < readers; r++ {
		want := int64(3 * (len(chain) + 1))
		if got := readOps[r].Load(); got != want {
			t.Errorf("reader shard %d completed %d/%d ops", r, got, want)
		}
	}
	if got := shardCommits(h, "t", "stuck"); got != 0 {
		t.Errorf("stuck shard counter = %d, want 0 while held", got)
	}
	if used := h.Budget().Used(); used > budget {
		t.Errorf("budget used %d > cap %d with %d shards open", used, budget, h.Stats().OpenShards)
	}

	close(hold)
	if err := <-stuckDone; err != nil {
		t.Fatalf("stuck shard commit failed after release: %v", err)
	}
}

func TestHubVerifyRepairGCAll(t *testing.T) {
	h, err := OpenHub(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	src, tgt := gen.Toy()
	for _, ref := range []DatasetRef{{"acme", "payroll"}, {"acme", "sales"}, {"globex", "payroll"}} {
		v, err := h.Commit(ref.Tenant, ref.Dataset, src, "", "a")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Commit(ref.Tenant, ref.Dataset, tgt, v.ID, "b"); err != nil {
			t.Fatal(err)
		}
	}
	vreps, err := h.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(vreps) != 3 {
		t.Fatalf("VerifyAll covered %d shards, want 3", len(vreps))
	}
	for key, rep := range vreps {
		if !rep.Clean() {
			t.Errorf("shard %s not clean: %+v", key, rep)
		}
		if rep.Versions != 2 {
			t.Errorf("shard %s checked %d versions, want 2", key, rep.Versions)
		}
	}
	greps, err := h.GCAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(greps) != 3 {
		t.Errorf("GCAll covered %d shards, want 3", len(greps))
	}
	rreps, err := h.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	for key, rep := range rreps {
		if len(rep.Quarantined) != 0 {
			t.Errorf("RepairAll quarantined %v in clean shard %s", rep.Quarantined, key)
		}
	}
}

func TestHubClose(t *testing.T) {
	h, err := OpenHub("")
	if err != nil {
		t.Fatal(err)
	}
	src, _ := gen.Toy()
	st, release, err := h.Acquire("t", "ds")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, _, err := h.Acquire("t", "ds"); !errors.Is(err, ErrHubClosed) {
		t.Errorf("Acquire after Close: %v, want ErrHubClosed", err)
	}
	if _, err := h.Datasets(); !errors.Is(err, ErrHubClosed) {
		t.Errorf("Datasets after Close: %v, want ErrHubClosed", err)
	}
	if _, err := st.Commit(src, "", "late"); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Commit on closed hub's store: %v, want ErrStoreClosed", err)
	}
}

func TestStoreCloseRejectsOps(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	src, _ := gen.Toy()
	v, err := s.Commit(src, "", "before close")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := s.Commit(src, "", "after"); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Commit: %v", err)
	}
	if _, err := s.Checkout(v.ID); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Checkout: %v", err)
	}
	if _, ok := s.CheckoutCached(v.ID); ok {
		t.Error("CheckoutCached hit after Close — cache not purged")
	}
	if _, err := s.Get(v.ID); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Get: %v", err)
	}
	if _, err := s.Blob(v.ID); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Blob: %v", err)
	}
	if _, err := s.Head(); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Head: %v", err)
	}
	if _, err := s.Lineage(v.ID); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Lineage: %v", err)
	}
	if _, err := s.Changes(v.ID); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Changes: %v", err)
	}
	if _, _, err := s.DiffResult(v.ID, v.ID, 0); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("DiffResult: %v", err)
	}
	if _, err := s.Verify(); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Verify: %v", err)
	}
	if _, err := s.Repair(); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Repair: %v", err)
	}
	if _, err := s.GC(); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("GC: %v", err)
	}
}
