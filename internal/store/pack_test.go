package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"charles/internal/core"
	"charles/internal/csvio"
	"charles/internal/gen"
	"charles/internal/table"
)

// commitChain commits snapshots as a parent-linked chain and returns the ids.
func commitChain(t *testing.T, s *Store, snaps []*table.Table) []string {
	t.Helper()
	ids := make([]string, 0, len(snaps))
	parent := ""
	for i, snap := range snaps {
		v, err := s.Commit(snap, parent, fmt.Sprintf("step %d", i))
		if err != nil {
			t.Fatalf("commit step %d: %v", i, err)
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	return ids
}

// verifyChain checks the round-trip invariants for every committed snapshot:
// Blob is byte-identical to the independent canonical serialization, and
// Checkout equals a fresh parse of that serialization (what the legacy
// full-CSV store returned).
func verifyChain(t *testing.T, s *Store, snaps []*table.Table, ids []string) {
	t.Helper()
	for i, snap := range snaps {
		want, err := canonicalCSV(snap)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Blob(ids[i])
		if err != nil {
			t.Fatalf("blob step %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("step %d: reconstructed blob differs from canonical CSV\ngot:\n%s\nwant:\n%s", i, got, want)
		}
		back, err := s.Checkout(ids[i])
		if err != nil {
			t.Fatalf("checkout step %d: %v", i, err)
		}
		ref, err := csvio.Read(bytes.NewReader(want), csvio.Options{Key: snap.Key()})
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(ref) {
			t.Fatalf("step %d: checkout differs from parsing the canonical CSV", i)
		}
	}
}

// TestPackPropertyRoundTrip is the property-based round-trip batch: random
// mutation chains (cell edits, inserts, deletes, adversarial string cells)
// must survive the delta codec byte-for-byte, across anchor boundaries, on
// warm and cold stores, for several seeds.
func TestPackPropertyRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			snaps, err := gen.MutateChain(gen.FuzzConfig{N: 40, Steps: 10, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			// AnchorEvery 3 forces several anchor boundaries inside 11 versions.
			s, err := OpenWith(dir, Options{AnchorEvery: 3, TableCache: 4})
			if err != nil {
				t.Fatal(err)
			}
			ids := commitChain(t, s, snaps)
			verifyChain(t, s, snaps, ids)

			st := s.Stats()
			if st.DeltaPacks == 0 {
				t.Error("mutation chain produced no delta packs")
			}
			if st.FullPacks < 2 {
				t.Errorf("AnchorEvery=3 over %d versions produced %d anchors, want >= 2", len(ids), st.FullPacks)
			}

			// Cold path: a fresh Open must reconstruct identically from disk.
			s2, err := OpenWith(dir, Options{AnchorEvery: 3})
			if err != nil {
				t.Fatal(err)
			}
			verifyChain(t, s2, snaps, ids)
		})
	}
}

// TestPackSchemaChangeFallsBackToFull pins the schema-identical precondition:
// a child whose schema differs from its parent cannot delta-encode and is
// stored as a full pack — and still round-trips.
func TestPackSchemaChangeFallsBackToFull(t *testing.T) {
	s, err := OpenWith("", Options{AnchorEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	first := table.MustNew(table.Schema{
		{Name: "id", Type: table.String},
		{Name: "x", Type: table.Float},
	})
	first.MustAppendRow(table.S("a"), table.F(1.5))
	first.MustAppendRow(table.S("b"), table.F(2.5))
	if err := first.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	widened := table.MustNew(table.Schema{
		{Name: "id", Type: table.String},
		{Name: "x", Type: table.Float},
		{Name: "y", Type: table.Int},
	})
	widened.MustAppendRow(table.S("a"), table.F(1.5), table.I(10))
	widened.MustAppendRow(table.S("b"), table.F(9.5), table.I(20))
	if err := widened.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	ids := commitChain(t, s, []*table.Table{first, widened})
	verifyChain(t, s, []*table.Table{first, widened}, ids)
	st := s.Stats()
	if st.FullPacks != 2 || st.DeltaPacks != 0 {
		t.Errorf("schema change: full=%d delta=%d, want 2 full / 0 delta", st.FullPacks, st.DeltaPacks)
	}
}

// TestPackCRLFCellsFallBackToFull pins the CRLF guard: Go's csv.Reader
// normalizes "\r\n" to "\n" inside quoted cells, so a parse→re-emit delta
// round-trip cannot be byte-identical for CR-bearing data — the encoder
// must store such versions as full packs (verbatim bytes), keeping
// reconstruction exact and content ids verifying. (The fuzz corpus excludes
// CR on purpose: one CR cell anywhere forces the whole chain full, which
// would gut the property suite's delta coverage.)
func TestPackCRLFCellsFallBackToFull(t *testing.T) {
	mk := func(note string) *table.Table {
		tbl := table.MustNew(table.Schema{
			{Name: "id", Type: table.String},
			{Name: "note", Type: table.String},
			{Name: "x", Type: table.Float},
		})
		tbl.MustAppendRow(table.S("a"), table.S("x\r\ny"), table.F(1.5))
		tbl.MustAppendRow(table.S("b"), table.S(note), table.F(2.5))
		if err := tbl.SetKey("id"); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	snaps := []*table.Table{mk("one"), mk("two"), mk("three\rcr")}
	// TableCache 1 keeps the commit-warmed blob cache from masking
	// reconstruction: Blob() below must actually replay packs.
	s, err := OpenWith("", Options{AnchorEvery: 8, TableCache: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := commitChain(t, s, snaps)
	verifyChain(t, s, snaps, ids)
	for i, id := range ids {
		want, err := canonicalCSV(snaps[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Blob(id)
		if err != nil {
			t.Fatal(err)
		}
		if gotID := contentID(got, snaps[i].Key()); gotID != id {
			t.Errorf("step %d: reconstructed blob hashes to %s, version id is %s", i, gotID, id)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("step %d: CRLF blob not byte-identical", i)
		}
	}
	if st := s.Stats(); st.DeltaPacks != 0 || st.FullPacks != len(ids) {
		t.Errorf("CR-bearing chain: %d full / %d delta packs, want all full", st.FullPacks, st.DeltaPacks)
	}
}

// writeLegacyLayout recreates the pre-pack on-disk layout: an array-shaped
// manifest plus one <id>.csv per version.
func writeLegacyLayout(t *testing.T, dir string, versions []*Version, blobs map[string][]byte) {
	t.Helper()
	for id, blob := range blobs {
		if err := os.WriteFile(filepath.Join(dir, id+".csv"), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.MarshalIndent(versions, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialDeltaVsLegacy feeds the same commit sequence to a
// delta-backed store and a legacy full-CSV store (migrated on Open) and
// requires identical Blob, Log, Lineage, Diff, and Summarize results —
// bit-identical rankings included.
func TestDifferentialDeltaVsLegacy(t *testing.T) {
	snaps, err := gen.Chain(gen.ChainConfig{N: 60, Steps: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	deltaStore, err := OpenWith(t.TempDir(), Options{AnchorEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids := commitChain(t, deltaStore, snaps)

	// Materialize the identical history in the legacy layout and let Open
	// migrate it.
	legacyDir := t.TempDir()
	blobs := map[string][]byte{}
	for _, id := range ids {
		blob, err := deltaStore.Blob(id)
		if err != nil {
			t.Fatal(err)
		}
		blobs[id] = blob
	}
	writeLegacyLayout(t, legacyDir, deltaStore.Log(), blobs)
	legacyStore, err := Open(legacyDir)
	if err != nil {
		t.Fatalf("migrating legacy store: %v", err)
	}

	if !reflect.DeepEqual(deltaStore.Log(), legacyStore.Log()) {
		t.Fatalf("Log differs:\n%+v\nvs\n%+v", deltaStore.Log(), legacyStore.Log())
	}
	head := ids[len(ids)-1]
	dl, err1 := deltaStore.Lineage(head)
	ll, err2 := legacyStore.Lineage(head)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(dl, ll) {
		t.Fatal("Lineage differs")
	}
	for _, id := range ids {
		db, err1 := deltaStore.Blob(id)
		lb, err2 := legacyStore.Blob(id)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(db, lb) {
			t.Fatalf("Blob(%s) differs between delta and legacy store", id)
		}
	}
	for i := 0; i+1 < len(ids); i++ {
		da, err1 := deltaStore.Diff(ids[i], ids[i+1])
		la, err2 := legacyStore.Diff(ids[i], ids[i+1])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		dud, _ := da.UpdateDistance(1e-9)
		lud, _ := la.UpdateDistance(1e-9)
		if dud != lud {
			t.Fatalf("step %d: update distance %d vs %d", i, dud, lud)
		}
		dattrs, _ := da.ChangedAttrs(1e-9)
		lattrs, _ := la.ChangedAttrs(1e-9)
		if !reflect.DeepEqual(dattrs, lattrs) {
			t.Fatalf("step %d: changed attrs %v vs %v", i, dattrs, lattrs)
		}
	}
	opts := core.DefaultOptions("salary")
	opts.CondAttrs = []string{"dept", "grade"}
	dr, err := deltaStore.Summarize(ids[0], ids[1], opts)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := legacyStore.Summarize(ids[0], ids[1], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dr, lr) {
		t.Fatal("Summarize rankings differ between delta and legacy store")
	}
	// The migrated store must be delta-encoded now, and GC must reclaim the
	// legacy CSVs it superseded.
	if st := legacyStore.Stats(); st.DeltaPacks == 0 {
		t.Error("migration produced no delta packs")
	}
	rep, err := legacyStore.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LegacyFiles != len(ids) || rep.BytesReclaimed == 0 {
		t.Errorf("GC report = %+v, want %d legacy files", rep, len(ids))
	}
	// Everything still reads after GC (packs are self-sufficient).
	for _, id := range ids {
		if _, err := legacyStore.Blob(id); err != nil {
			t.Fatalf("post-GC blob %s: %v", id, err)
		}
	}
}

// TestCheckoutNeverAliasesCache pins the LRU contract: mutating a table
// returned by Checkout must not leak into later checkouts of the same
// version (warm hits clone, never alias).
func TestCheckoutNeverAliasesCache(t *testing.T) {
	s, _ := Open("")
	d1, _ := gen.Toy()
	v, err := s.Commit(d1, "", "base")
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Checkout(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	row, err := first.RowByKey("Anne")
	if err != nil || row < 0 {
		t.Fatalf("Anne missing: %d %v", row, err)
	}
	if err := first.MustColumn("bonus").Set(row, table.F(-1)); err != nil {
		t.Fatal(err)
	}
	second, err := s.Checkout(v.ID) // warm: served from cache
	if err != nil {
		t.Fatal(err)
	}
	row2, _ := second.RowByKey("Anne")
	if got, _ := second.Value(row2, "bonus"); got.Float() == -1 {
		t.Fatal("cache hit returned a table aliasing a previously returned (mutated) table")
	}
}

// TestRaceSoakCommitCheckoutChain hammers one store from many goroutines
// under -race with a tiny table LRU, so hits, misses, evictions, and
// re-fills interleave with commits — and every returned table is private
// (mutating it never corrupts later checkouts).
func TestRaceSoakCommitCheckoutChain(t *testing.T) {
	snaps, err := gen.Chain(gen.ChainConfig{N: 30, Steps: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenWith("", Options{AnchorEvery: 3, TableCache: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := commitChain(t, s, snaps)
	head := ids[len(ids)-1]

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	// Committers: extend side branches with distinct content.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent := ids[w]
			for i := 0; i < 4; i++ {
				mod := snaps[w].Clone()
				if err := mod.MustColumn("salary").Set(0, table.F(float64(90000+w*100+i)+0.5)); err != nil {
					errc <- err
					return
				}
				v, err := s.Commit(mod, parent, "soak")
				if err != nil {
					errc <- err
					return
				}
				parent = v.ID
			}
		}(w)
	}
	// Checkout hammerers: repeatedly check out the whole chain, mutate the
	// returned tables in place, and verify a fresh checkout is unaffected.
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				for _, id := range ids {
					got, err := s.Checkout(id)
					if err != nil {
						errc <- err
						return
					}
					// Scribble over every numeric cell: if any later
					// checkout observes this, the cache leaked a buffer.
					if err := got.MustColumn("salary").Set(0, table.F(-12345)); err != nil {
						errc <- err
						return
					}
				}
				fresh, err := s.Checkout(ids[0])
				if err != nil {
					errc <- err
					return
				}
				if v, _ := fresh.Value(0, "salary"); v.Float() == -12345 {
					errc <- errors.New("checkout observed another goroutine's mutation: cache aliasing")
					return
				}
			}
		}()
	}
	// Chain walkers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := s.Chain(head); err != nil {
					errc <- err
					return
				}
				if _, err := s.Blob(head); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestOpenCorruptStore pins ErrCorruptStore: missing blobs, tampered blobs,
// missing packs, and index gaps all name the offending version instead of
// being skipped or reported anonymously.
func TestOpenCorruptStore(t *testing.T) {
	build := func(t *testing.T) (string, []string) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		d1, d2 := gen.Toy()
		v1, err := s.Commit(d1, "", "2016")
		if err != nil {
			t.Fatal(err)
		}
		v2, err := s.Commit(d2, v1.ID, "2017")
		if err != nil {
			t.Fatal(err)
		}
		return dir, []string{v1.ID, v2.ID}
	}

	t.Run("missing pack file", func(t *testing.T) {
		dir, ids := build(t)
		if err := os.Remove(filepath.Join(dir, "packs", ids[1]+".pack")); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir)
		if !errors.Is(err, ErrCorruptStore) {
			t.Fatalf("err = %v, want ErrCorruptStore", err)
		}
		if !strings.Contains(err.Error(), ids[1]) {
			t.Errorf("error %q does not name the corrupt version %s", err, ids[1])
		}
	})

	t.Run("corrupt pack body surfaces on read", func(t *testing.T) {
		dir, ids := build(t)
		if err := os.WriteFile(filepath.Join(dir, "packs", ids[0]+".pack"), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir) // presence check passes; decode fails lazily
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Blob(ids[0])
		if !errors.Is(err, ErrCorruptStore) || !strings.Contains(err.Error(), ids[0]) {
			t.Fatalf("Blob err = %v, want ErrCorruptStore naming %s", err, ids[0])
		}
		_, err = s.Checkout(ids[1]) // delta over the corrupt anchor
		if !errors.Is(err, ErrCorruptStore) {
			t.Fatalf("Checkout err = %v, want ErrCorruptStore", err)
		}
	})

	t.Run("tampered pack body that still decodes", func(t *testing.T) {
		dir, ids := build(t)
		s, _ := Open(dir)
		blob, err := s.Blob(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		// A perfectly well-formed pack holding subtly wrong data: one digit
		// altered, row count intact. Decode succeeds; only the content-hash
		// re-verification can catch it.
		evil := bytes.Replace(blob, []byte("23000"), []byte("23001"), 1)
		if bytes.Equal(evil, blob) {
			t.Fatal("tamper did not apply")
		}
		v, _ := s.Get(ids[0])
		pack, err := encodePack(packMeta{Format: packFormat, ID: ids[0], Kind: packFull, Rows: v.Rows}, evil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "packs", ids[0]+".pack"), pack, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir) // fresh store: no warm caches masking the read
		if err != nil {
			t.Fatal(err)
		}
		_, err = s2.Blob(ids[0])
		if !errors.Is(err, ErrCorruptStore) || !strings.Contains(err.Error(), ids[0]) {
			t.Fatalf("Blob err = %v, want ErrCorruptStore naming %s", err, ids[0])
		}
		// The delta above the tampered anchor fails the same way.
		if _, err := s2.Checkout(ids[1]); !errors.Is(err, ErrCorruptStore) {
			t.Fatalf("Checkout err = %v, want ErrCorruptStore", err)
		}
	})

	t.Run("legacy store with missing blob", func(t *testing.T) {
		dir, ids := build(t)
		s, _ := Open(dir)
		blobs := map[string][]byte{}
		for _, id := range ids {
			b, err := s.Blob(id)
			if err != nil {
				t.Fatal(err)
			}
			blobs[id] = b
		}
		legacyDir := t.TempDir()
		delete(blobs, ids[1])
		writeLegacyLayout(t, legacyDir, s.Log(), blobs)
		_, err := Open(legacyDir)
		if !errors.Is(err, ErrCorruptStore) || !strings.Contains(err.Error(), ids[1]) {
			t.Fatalf("err = %v, want ErrCorruptStore naming %s", err, ids[1])
		}
	})

	t.Run("legacy store with tampered blob", func(t *testing.T) {
		dir, ids := build(t)
		s, _ := Open(dir)
		blobs := map[string][]byte{}
		for _, id := range ids {
			b, err := s.Blob(id)
			if err != nil {
				t.Fatal(err)
			}
			blobs[id] = b
		}
		blobs[ids[0]] = append(blobs[ids[0]], []byte("Zoe,POL,1,1,1,1\n")...)
		legacyDir := t.TempDir()
		writeLegacyLayout(t, legacyDir, s.Log(), blobs)
		_, err := Open(legacyDir)
		if !errors.Is(err, ErrCorruptStore) || !strings.Contains(err.Error(), ids[0]) {
			t.Fatalf("err = %v, want ErrCorruptStore naming %s", err, ids[0])
		}
	})

	t.Run("manifest missing pack entry", func(t *testing.T) {
		dir, ids := build(t)
		path := filepath.Join(dir, "manifest.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mangled := bytes.Replace(data, []byte(`"`+ids[1]+`": {`), []byte(`"x`+ids[1][1:]+`": {`), 1)
		if bytes.Equal(mangled, data) {
			t.Fatal("mangling did not apply")
		}
		if err := os.WriteFile(path, mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(dir)
		if !errors.Is(err, ErrCorruptStore) {
			t.Fatalf("err = %v, want ErrCorruptStore", err)
		}
	})
}

// TestChainStorageShrinks pins the acceptance criterion: on the 8-step
// multi-target chain dataset, pack storage is at least 3x smaller than the
// per-version full CSVs the legacy layout kept.
func TestChainStorageShrinks(t *testing.T) {
	snaps, err := gen.Chain(gen.ChainConfig{}) // defaults: 120 entities, 8 steps
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	commitChain(t, s, snaps)
	st := s.Stats()
	if st.LogicalBytes == 0 || st.PackBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PackBytes*3 > st.LogicalBytes {
		t.Errorf("pack bytes %d not >= 3x smaller than logical bytes %d (compression %.2fx)",
			st.PackBytes, st.LogicalBytes, st.Compression)
	}
	if st.DeltaPacks == 0 || st.FullPacks == 0 {
		t.Errorf("packs = %d full / %d delta, want both kinds", st.FullPacks, st.DeltaPacks)
	}
}

// TestWarmCheckoutDoesNoParsing pins the lazy-cache acceptance criterion: a
// warm Checkout serves from the LRU — zero CSV parses, and far fewer
// allocations than the cold path.
func TestWarmCheckoutDoesNoParsing(t *testing.T) {
	snaps, err := gen.Chain(gen.ChainConfig{N: 60, Steps: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenWith("", Options{TableCache: len(snaps)})
	if err != nil {
		t.Fatal(err)
	}
	ids := commitChain(t, s, snaps)
	for _, id := range ids { // cold walk fills the cache
		if _, err := s.Checkout(id); err != nil {
			t.Fatal(err)
		}
	}
	cold := s.Stats().Parses
	if cold != int64(len(ids)) {
		t.Fatalf("cold walk parsed %d times, want %d", cold, len(ids))
	}
	for pass := 0; pass < 3; pass++ { // warm walks: no parsing at all
		for _, id := range ids {
			if _, err := s.Checkout(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if warm := s.Stats().Parses; warm != cold {
		t.Errorf("warm walks parsed %d more times, want 0", warm-cold)
	}
	// Allocation pin: a warm checkout is a clone, not a parse. Parsing this
	// snapshot costs thousands of allocations; the clone costs ~40.
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.Checkout(ids[0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 200 {
		t.Errorf("warm Checkout costs %.0f allocs, want the no-parse clone path (<= 200)", allocs)
	}
}
