// Package store is a minimal bolt-on version store for relational
// snapshots — the substrate the paper's related work attributes to
// OrpheusDB ("bolt-on versioning for relational databases"). It keeps a
// lineage of table versions, content-addressed by a SHA-256 of their
// canonical CSV serialization, and integrates with the ChARLES engine so
// any two versions in the history can be diffed and semantically
// summarized.
//
// Storage is deliberately simple and inspectable: each version is a full
// CSV blob plus a JSON manifest (id, parent, message, key, sequence); with
// a directory configured the store persists across processes, without one
// it is memory-only.
//
// A Store is safe for concurrent use: reads (Checkout, Get, Log, Lineage,
// Diff, Summarize) take a shared lock, Commit takes an exclusive lock, and
// the expensive summarization engine runs outside the lock entirely — so a
// long Summarize never blocks commits. Persistence happens under the write
// lock, serializing manifest updates.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"charles/internal/core"
	"charles/internal/csvio"
	"charles/internal/diff"
	"charles/internal/table"
)

// ErrNotFound is returned for unknown version ids.
var ErrNotFound = errors.New("store: version not found")

// ErrLineageConflict is returned by Commit when content addressing dedups
// to an existing version whose parent differs from the requested one: the
// caller asked for a lineage the store cannot honor without rewriting
// history, so the conflict is reported instead of silently returning a
// version with different ancestry.
var ErrLineageConflict = errors.New("store: lineage conflict")

// Version describes one committed snapshot.
type Version struct {
	ID      string   `json:"id"`
	Parent  string   `json:"parent,omitempty"`
	Message string   `json:"message"`
	Seq     int      `json:"seq"` // commit order, 1-based
	Key     []string `json:"key"`
	Rows    int      `json:"rows"`
	Cols    int      `json:"cols"`
}

// Store is a lineage of table versions. It is safe for concurrent use.
type Store struct {
	dir string // "" = memory only

	mu       sync.RWMutex
	versions map[string]*Version
	blobs    map[string][]byte // id -> canonical CSV
	order    []string          // ids in commit order
}

// Open creates a store. With a non-empty dir, existing versions are loaded
// and future commits are persisted there.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, versions: map[string]*Version{}, blobs: map[string][]byte{}}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	manifest := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(manifest)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var versions []*Version
	if err := json.Unmarshal(data, &versions); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest: %w", err)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i].Seq < versions[j].Seq })
	for _, v := range versions {
		blob, err := os.ReadFile(filepath.Join(dir, v.ID+".csv"))
		if err != nil {
			return nil, fmt.Errorf("store: version %s blob: %w", v.ID, err)
		}
		s.versions[v.ID] = v
		s.blobs[v.ID] = blob
		s.order = append(s.order, v.ID)
	}
	return s, nil
}

// Commit stores a snapshot and returns its version. The table's primary key
// declaration is recorded (and required — summarization needs it). Parent
// may be empty for a root version. Committing byte-identical content twice
// returns the existing version (content addressing) — unless the requested
// parent disagrees with the stored version's parent, which is reported as
// ErrLineageConflict rather than silently discarded.
func (s *Store) Commit(t *table.Table, parent, message string) (*Version, error) {
	if len(t.Key()) == 0 {
		return nil, fmt.Errorf("store: table has no primary key; SetKey before committing")
	}
	// Serialization is pure and the table is caller-owned, so hash outside
	// the lock; only the map/order/persist mutation is exclusive.
	blob, err := canonicalCSV(t)
	if err != nil {
		return nil, err
	}
	id := contentID(blob, t.Key())

	s.mu.Lock()
	defer s.mu.Unlock()
	if parent != "" {
		if _, ok := s.versions[parent]; !ok {
			return nil, fmt.Errorf("%w: parent %q", ErrNotFound, parent)
		}
	}
	if existing, ok := s.versions[id]; ok {
		if existing.Parent != parent {
			return nil, fmt.Errorf("%w: content %s already committed with parent %q, requested parent %q",
				ErrLineageConflict, id, existing.Parent, parent)
		}
		return existing, nil
	}
	v := &Version{
		ID: id, Parent: parent, Message: message,
		Seq: len(s.order) + 1, Key: t.Key(),
		Rows: t.NumRows(), Cols: t.NumCols(),
	}
	s.versions[id] = v
	s.blobs[id] = blob
	s.order = append(s.order, id)
	if s.dir != "" {
		if err := s.persist(v, blob); err != nil {
			// Roll the registration back: a version that never reached disk
			// must not linger in memory, or a retry would dedup to it and
			// leave the manifest referencing a blob that was never written
			// (making the store unopenable after restart).
			delete(s.versions, id)
			delete(s.blobs, id)
			s.order = s.order[:len(s.order)-1]
			return nil, err
		}
	}
	return v, nil
}

func (s *Store) persist(v *Version, blob []byte) error {
	if err := os.WriteFile(filepath.Join(s.dir, v.ID+".csv"), blob, 0o644); err != nil {
		return err
	}
	var versions []*Version
	for _, id := range s.order {
		versions = append(versions, s.versions[id])
	}
	data, err := json.MarshalIndent(versions, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.dir, "manifest.json"), data, 0o644)
}

// Blob returns the canonical CSV serialization stored under id. The bytes
// are immutable once committed; callers must not modify them.
func (s *Store) Blob(id string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	blob, ok := s.blobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return blob, nil
}

// Checkout reconstructs the table stored under id.
func (s *Store) Checkout(id string) (*table.Table, error) {
	s.mu.RLock()
	v, ok := s.versions[id]
	var blob []byte
	if ok {
		blob = s.blobs[id]
	}
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	// Blobs are immutable after commit, so parsing happens off-lock.
	t, err := csvio.Read(bytes.NewReader(blob), csvio.Options{Key: v.Key})
	if err != nil {
		return nil, fmt.Errorf("store: version %s: %w", id, err)
	}
	return t, nil
}

// Get returns the version metadata for id.
func (s *Store) Get(id string) (*Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.versions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return v, nil
}

// Log returns all versions in commit order.
func (s *Store) Log() []*Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Version, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.versions[id])
	}
	return out
}

// Lineage walks parents from id back to the root (inclusive, newest first).
// A parent cycle (only possible in a hand-edited or corrupt manifest —
// content addressing cannot create one) is reported as an error rather than
// looping forever.
func (s *Store) Lineage(id string) ([]*Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Version
	visited := make(map[string]bool)
	for id != "" {
		if visited[id] {
			return nil, fmt.Errorf("store: lineage cycle at %q", id)
		}
		visited[id] = true
		v, ok := s.versions[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		out = append(out, v)
		id = v.Parent
	}
	return out, nil
}

// Chain returns the version chain ending at headID, oldest first (root →
// head, inclusive) — the walking order of timeline summarization, which
// steps through consecutive (parent, child) pairs.
func (s *Store) Chain(headID string) ([]*Version, error) {
	lineage, err := s.Lineage(headID)
	if err != nil {
		return nil, err
	}
	out := make([]*Version, len(lineage))
	for i, v := range lineage {
		out[len(lineage)-1-i] = v
	}
	return out, nil
}

// Head returns the most recently committed version (ErrNotFound when the
// store is empty) — the default timeline endpoint.
func (s *Store) Head() (*Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.order) == 0 {
		return nil, fmt.Errorf("%w: store is empty", ErrNotFound)
	}
	return s.versions[s.order[len(s.order)-1]], nil
}

// Diff aligns two stored versions (by the snapshots' shared primary key).
func (s *Store) Diff(fromID, toID string) (*diff.Aligned, error) {
	src, err := s.Checkout(fromID)
	if err != nil {
		return nil, err
	}
	tgt, err := s.Checkout(toID)
	if err != nil {
		return nil, err
	}
	return diff.Align(src, tgt)
}

// Summarize runs the ChARLES engine between two stored versions.
func (s *Store) Summarize(fromID, toID string, opts core.Options) ([]core.Ranked, error) {
	a, err := s.Diff(fromID, toID)
	if err != nil {
		return nil, err
	}
	return core.SummarizeAligned(a, opts)
}

// canonicalCSV serializes a table deterministically (rows sorted by primary
// key) so identical relations get identical ids regardless of row order.
func canonicalCSV(t *table.Table) ([]byte, error) {
	sorted, err := t.SortByKey()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := csvio.Write(&buf, sorted); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// contentID hashes the canonical blob and key declaration.
func contentID(blob []byte, key []string) string {
	h := sha256.New()
	h.Write(blob)
	for _, k := range key {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}
