// Package store is a minimal bolt-on version store for relational
// snapshots — the substrate the paper's related work attributes to
// OrpheusDB ("bolt-on versioning for relational databases"). It keeps a
// lineage of table versions, content-addressed by a SHA-256 of their
// canonical CSV serialization, and integrates with the ChARLES engine so
// any two versions in the history can be diffed and semantically
// summarized.
//
// Storage is delta-encoded: each version is a gzip-compressed pack file
// holding either the full canonical CSV (an anchor) or the row-level
// changes — inserted, removed, and cell-patched rows keyed by the primary
// key — against its parent. Anchor snapshots recur every AnchorEvery
// commits so reconstruction chains stay bounded, and checkouts are served
// through a size-bounded LRU of decoded tables, so walking a version chain
// parses each snapshot at most once. Stores written by the legacy
// one-CSV-per-version layout are migrated to packs transparently on Open.
//
// A Store is safe for concurrent use: reads (Checkout, Get, Log, Lineage,
// Diff, Summarize) take a shared lock, Commit takes an exclusive lock, and
// the expensive summarization engine runs outside the lock entirely — so a
// long Summarize never blocks commits. Persistence happens under the write
// lock, serializing manifest updates.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"charles/internal/core"
	"charles/internal/csvio"
	"charles/internal/diff"
	"charles/internal/table"
	"charles/internal/vfs"
)

// ErrNotFound is returned for unknown version ids.
var ErrNotFound = errors.New("store: version not found")

// ErrLineageConflict is returned by Commit when content addressing dedups
// to an existing version with a different parent: the
// caller asked for a lineage the store cannot honor without rewriting
// history, so the conflict is reported instead of silently returning a
// version with different ancestry.
var ErrLineageConflict = errors.New("store: lineage conflict")

// ErrStoreClosed is returned by every operation on a store after Close.
// Closing purges (and stops refilling) all of the store's caches, so a Hub
// can evict an idle shard and actually get its memory back — a handle that
// escaped eviction fails loudly instead of silently resurrecting cache
// entries the budget no longer accounts for.
var ErrStoreClosed = errors.New("store: store is closed")

// ErrCorruptStore is returned (wrapped, with the offending version id) when
// a version's on-disk data is missing, unreadable, or inconsistent with the
// manifest — a store that would previously fail with an anonymous IO error,
// or worse, skip the version. Nothing is silently dropped: the caller
// learns exactly which version is damaged.
var ErrCorruptStore = errors.New("store: corrupt store")

// corruptf builds an ErrCorruptStore-typed error. Every error *constructed*
// on a read/decode path goes through it (machine-enforced by the corrupterr
// analyzer), so errors.Is(err, ErrCorruptStore) holds on every way damaged
// data can surface.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorruptStore}, args...)...)
}

// corruptVersion tags err with the offending version id, establishing the
// ErrCorruptStore chain if the inner error is not already typed (an os-level
// read failure) and preserving it without re-prefixing if it is (a decode
// helper's corruptf error).
func corruptVersion(id string, err error) error {
	if errors.Is(err, ErrCorruptStore) {
		return fmt.Errorf("version %s: %w", id, err)
	}
	return corruptf("version %s: %v", id, err)
}

// DefaultAnchorEvery is the default anchor interval: a delta chain reaching
// this length is cut by storing the next commit as a full snapshot.
const DefaultAnchorEvery = 8

// DefaultTableCache is the default Checkout LRU capacity (decoded tables).
const DefaultTableCache = 32

// storeFormat tags the v2 (pack-backed) manifest.
const storeFormat = "charles-store/2"

// Options tune a store opened with OpenWith.
type Options struct {
	// AnchorEvery bounds delta chains: a commit whose chain back to the
	// nearest full snapshot would reach this length is stored full instead.
	// 1 stores every version as a full pack (the legacy behavior, minus the
	// compression); 0 means DefaultAnchorEvery.
	AnchorEvery int
	// TableCache is the Checkout LRU capacity in decoded tables
	// (0 means DefaultTableCache).
	TableCache int
	// FS is the filesystem persistence goes through (nil means the real
	// OS filesystem with full fsync discipline). The seam exists for
	// fault-injection testing: internal/faultfs implements it with
	// simulated torn writes, rename failures, and power-cut truncation.
	FS vfs.FS
	// Budget, when non-nil, byte-accounts every cache entry (decoded
	// tables, reconstructed blobs, change sets, diff answers) into a
	// shared memory budget. The Hub hands every shard the same budget, so
	// N open stores share one cap instead of multiplying it. TableCache
	// still bounds entry counts; the budget bounds bytes.
	Budget *Budget
}

func (o Options) withDefaults() Options {
	if o.AnchorEvery <= 0 {
		o.AnchorEvery = DefaultAnchorEvery
	}
	if o.TableCache <= 0 {
		o.TableCache = DefaultTableCache
	}
	if o.FS == nil {
		o.FS = vfs.OS{}
	}
	return o
}

// Version describes one committed snapshot.
type Version struct {
	ID      string   `json:"id"`
	Parent  string   `json:"parent,omitempty"`
	Message string   `json:"message"`
	Seq     int      `json:"seq"` // commit order, 1-based
	Key     []string `json:"key"`
	Rows    int      `json:"rows"`
	Cols    int      `json:"cols"`
}

// manifestV2 is the on-disk manifest: version metadata plus the pack index
// (kind, base, depth, sizes) the reconstruction planner reads.
type manifestV2 struct {
	Format   string               `json:"format"`
	Versions []*Version           `json:"versions"`
	Packs    map[string]*packInfo `json:"packs"`
}

// Store is a lineage of table versions. It is safe for concurrent use.
type Store struct {
	dir  string // "" = memory only
	opts Options
	fs   vfs.FS // opts.FS; every persistence operation goes through it

	mu       sync.RWMutex
	versions map[string]*Version
	packs    map[string]*packInfo
	mem      map[string][]byte // id -> encoded pack (memory-only stores)
	order    []string          // ids in commit order

	tables  *lruCache[*table.Table] // decoded-table LRU behind Checkout
	blobs   *lruCache[[]byte]       // reconstructed-blob LRU behind Blob
	changes *lruCache[*ChangeSet]   // decoded delta-op LRU behind Changes/DeltaOps
	results *lruCache[*diffAnswer]  // change-query LRU behind DiffResult
	parses  atomic.Int64            // CSV parses performed (cache misses)
	closed  atomic.Bool             // set by Close; guard() rejects further ops

	// Commit-notification state (subscribe.go). subMu is independent of mu:
	// publishCommit runs after Commit's exclusive section, and delivery is
	// non-blocking, so subscribers can never stall a committer.
	subMu      sync.Mutex
	subs       map[*Subscription]struct{}
	closedSubs bool // set by closeSubs; further Subscribes get a closed channel

	// testCommitHook, when set (package tests only), runs during Commit's
	// off-lock encode phase — the seam the cross-shard concurrency pin
	// uses to hold one shard's commit mid-flight while another completes.
	testCommitHook func()
}

// diffAnswer is one memoized change query: versions are immutable once
// committed, so a (from, to, tol) answer never goes stale.
type diffAnswer struct {
	res    *diff.Result
	native bool
}

// Open creates a store with default options. With a non-empty dir, existing
// versions are loaded and future commits are persisted there; a legacy
// per-version-CSV directory is migrated to the pack layout.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith is Open with explicit anchor-interval and cache tuning.
func OpenWith(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		dir:      dir,
		opts:     opts,
		fs:       opts.FS,
		versions: map[string]*Version{},
		packs:    map[string]*packInfo{},
		tables:   newSizedLRU(opts.TableCache, tableBytes, opts.Budget),
		blobs:    newSizedLRU(opts.TableCache, blobBytes, opts.Budget),
		changes:  newSizedLRU(opts.TableCache, changeSetBytes, opts.Budget),
		results:  newSizedLRU(opts.TableCache, diffAnswerBytes, opts.Budget),
	}
	if dir == "" {
		s.mem = map[string][]byte{}
		return s, nil
	}
	if err := s.fs.MkdirAll(s.packDir()); err != nil {
		return nil, err
	}
	data, err := s.fs.ReadFile(filepath.Join(dir, "manifest.json"))
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeftFunc(data, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' })
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := s.migrateLegacy(trimmed); err != nil {
			return nil, err
		}
		return s, nil
	}
	var m manifestV2
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest: %w", err)
	}
	if m.Format != storeFormat {
		// Version skew, not damage: a newer tool wrote this store. Typing it
		// ErrCorruptStore would tell the operator to restore from backup when
		// the right fix is upgrading the binary.
		return nil, fmt.Errorf("store: manifest format %q unsupported", m.Format) //lint:allow corrupterr format skew is not corruption
	}
	sort.Slice(m.Versions, func(i, j int) bool { return m.Versions[i].Seq < m.Versions[j].Seq })
	for _, v := range m.Versions {
		pi := m.Packs[v.ID]
		if pi == nil {
			return nil, fmt.Errorf("%w: version %s has no pack index entry", ErrCorruptStore, v.ID)
		}
		if _, err := s.fs.Stat(s.packPath(v.ID)); err != nil {
			return nil, fmt.Errorf("%w: version %s: pack file: %v", ErrCorruptStore, v.ID, err)
		}
		s.versions[v.ID] = v
		s.packs[v.ID] = pi
		s.order = append(s.order, v.ID)
	}
	return s, nil
}

// Close releases the store's cache memory — every LRU is purged, its
// budget charges returned — and rejects all subsequent operations with
// ErrStoreClosed. In-flight operations that raced Close cannot repopulate
// the caches (the purge disables them), so a closed store holds no cache
// memory, ever. Close is idempotent; it never touches disk state, which
// stays valid for a later re-Open.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.tables.disable()
	s.blobs.disable()
	s.changes.disable()
	s.results.disable()
	s.closeSubs()
	return nil
}

// guard rejects operations on a closed store. Every public entry point
// that reads or writes store state calls it first.
func (s *Store) guard() error {
	if s.closed.Load() {
		return ErrStoreClosed
	}
	return nil
}

func (s *Store) packDir() string             { return filepath.Join(s.dir, "packs") }
func (s *Store) packPath(id string) string   { return filepath.Join(s.packDir(), id+".pack") }
func (s *Store) legacyPath(id string) string { return filepath.Join(s.dir, id+".csv") }

// migrateLegacy converts a legacy per-version-CSV directory (array-shaped
// manifest, one <id>.csv per version) into the pack layout: each version is
// re-encoded as a delta against its parent where possible, the v2 manifest
// is written, and the legacy CSV files are left in place for GC to reclaim.
// A version whose CSV is missing, unreadable, or hash-inconsistent with its
// id surfaces as ErrCorruptStore instead of being skipped.
func (s *Store) migrateLegacy(manifest []byte) error {
	var versions []*Version
	if err := json.Unmarshal(manifest, &versions); err != nil {
		return fmt.Errorf("store: corrupt manifest: %w", err)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i].Seq < versions[j].Seq })
	blobs := make(map[string][]byte, len(versions))
	for _, v := range versions {
		blob, err := s.fs.ReadFile(s.legacyPath(v.ID))
		if err != nil {
			return fmt.Errorf("%w: version %s: blob: %v", ErrCorruptStore, v.ID, err)
		}
		if got := contentID(blob, v.Key); got != v.ID {
			return fmt.Errorf("%w: version %s: blob content hashes to %s", ErrCorruptStore, v.ID, got)
		}
		blobs[v.ID] = blob
	}
	for _, v := range versions {
		data, pi, err := s.buildPack(v, blobs[v.ID], s.versions[v.Parent], s.packs[v.Parent], blobs[v.Parent])
		if err != nil {
			return fmt.Errorf("store: migrating version %s: %w", v.ID, err)
		}
		if err := vfs.WriteAtomic(s.fs, s.packPath(v.ID), data); err != nil {
			return err
		}
		s.versions[v.ID] = v
		s.packs[v.ID] = pi
		s.order = append(s.order, v.ID)
	}
	return s.writeManifest()
}

// buildPack encodes a version's pack: a delta against its parent when the
// parent exists, shares the key declaration, stays under the anchor
// interval, and actually delta-encodes (same schema, unique keys) — and a
// full anchor otherwise. When a delta would be larger than the compressed
// full snapshot (pathological churn), the full pack wins. Parent state is
// passed in explicitly (version metadata, pack index entry, reconstructed
// blob — all immutable once committed), so encoding needs no store lock.
func (s *Store) buildPack(v *Version, blob []byte, pv *Version, pi *packInfo, pblob []byte) ([]byte, *packInfo, error) {
	meta := packMeta{Format: packFormat, ID: v.ID, Kind: packFull, Rows: v.Rows}
	info := &packInfo{Kind: packFull, Logical: int64(len(blob))}
	var deltaData []byte
	if v.Parent != "" && pv != nil && pi != nil &&
		pi.Depth+1 < s.opts.AnchorEvery && equalKey(pv.Key, v.Key) && pblob != nil {
		ops, ok, err := encodeDelta(pblob, blob, v.Key)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			dmeta := meta
			dmeta.Kind, dmeta.Base = packDelta, v.Parent
			deltaData, err = encodePack(dmeta, nil, ops)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	fullData, err := encodePack(meta, blob, nil)
	if err != nil {
		return nil, nil, err
	}
	if deltaData != nil && len(deltaData) < len(fullData) {
		info.Kind, info.Base = packDelta, v.Parent
		info.Depth = pi.Depth + 1
		info.Size = int64(len(deltaData))
		return deltaData, info, nil
	}
	info.Size = int64(len(fullData))
	return fullData, info, nil
}

func equalKey(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Commit stores a snapshot and returns its version. The table's primary key
// declaration is recorded (and required — summarization needs it). Parent
// may be empty for a root version. Committing byte-identical content twice
// returns the existing version (content addressing) — unless the requested
// parent disagrees with the stored version's parent, which is reported as
// ErrLineageConflict rather than silently discarded.
func (s *Store) Commit(t *table.Table, parent, message string) (*Version, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	if len(t.Key()) == 0 {
		return nil, fmt.Errorf("store: table has no primary key; SetKey before committing")
	}
	// Serialization, hashing, and pack encoding are all pure functions of
	// immutable inputs (the caller-owned table, the parent's already
	// committed pack chain), so they run outside the exclusive lock; only
	// validation and the map/order/persist mutation are locked.
	blob, err := canonicalCSV(t)
	if err != nil {
		return nil, err
	}
	id := contentID(blob, t.Key())

	// Phase 1 (shared lock): validate the parent and snapshot the parent
	// state the encoder needs. The closure scopes the critical section so
	// the lock is defer-released even if the lookups grow early returns.
	var (
		parentOK bool
		existing *Version
		pv       *Version
		ppi      *packInfo
	)
	func() {
		s.mu.RLock()
		defer s.mu.RUnlock()
		parentOK = parent == ""
		existing = s.versions[id]
		if parent != "" {
			if pv = s.versions[parent]; pv != nil {
				parentOK = true
				ppi = s.packs[parent]
			}
		}
	}()
	if !parentOK {
		return nil, fmt.Errorf("%w: parent %q", ErrNotFound, parent)
	}
	if existing != nil {
		// Early dedup/conflict: the content is already committed, so skip
		// the encode entirely. (Version records are immutable once
		// registered; phase 3 re-checks for commits racing this one.)
		if existing.Parent != parent {
			return nil, fmt.Errorf("%w: content %s already committed with parent %q, requested parent %q",
				ErrLineageConflict, id, existing.Parent, parent)
		}
		return existing, nil
	}

	// Phase 2 (no lock): fetch the parent blob — usually a blob-cache hit,
	// since chain workloads just committed it — and encode the pack. Packs
	// are immutable once committed, so nothing here can go stale.
	var pblob []byte
	if ppi != nil && pv != nil && ppi.Depth+1 < s.opts.AnchorEvery && equalKey(pv.Key, t.Key()) {
		if pblob, err = s.blobFor(parent); err != nil {
			return nil, err
		}
	}
	v := &Version{
		ID: id, Parent: parent, Message: message,
		Key:  t.Key(),
		Rows: t.NumRows(), Cols: t.NumCols(),
	}
	pack, pi, err := s.buildPack(v, blob, pv, ppi, pblob)
	if err != nil {
		return nil, err
	}
	if s.testCommitHook != nil {
		s.testCommitHook()
	}

	// Phase 3 (exclusive lock): re-check dedup/conflict — a concurrent
	// commit may have landed the same content meanwhile — then register
	// and persist. The closure scopes the critical section so the commit
	// notification below is published strictly after the lock is released.
	out, isNew, err := func() (*Version, bool, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if existing, ok := s.versions[id]; ok {
			if existing.Parent != parent {
				return nil, false, fmt.Errorf("%w: content %s already committed with parent %q, requested parent %q",
					ErrLineageConflict, id, existing.Parent, parent)
			}
			return existing, false, nil
		}
		v.Seq = len(s.order) + 1
		s.versions[id] = v
		s.packs[id] = pi
		s.order = append(s.order, id)
		if s.dir == "" {
			s.mem[id] = pack
		} else if err := s.persist(v, pack); err != nil {
			// Roll the registration back: a version that never reached disk
			// must not linger in memory, or a retry would dedup to it and
			// leave the manifest referencing a pack that was never written
			// (making the store unopenable after restart).
			delete(s.versions, id)
			delete(s.packs, id)
			s.order = s.order[:len(s.order)-1]
			return nil, false, err
		}
		// Warm the blob cache: a chain workload's next commit delta-encodes
		// against exactly this blob, and serve's CSV endpoint is likely to ask
		// for the newest version first.
		s.blobs.add(id, blob)
		return v, true, nil
	}()
	if err != nil {
		return nil, err
	}
	// Off-lock, and only for genuinely new versions: dedup'd commits (both
	// the phase-1 early return and the phase-3 re-check) notify nobody, so
	// subscribers see each version id at most once.
	if isNew {
		s.publishCommit(out)
	}
	return out, nil
}

// persist is the two-phase durable commit. Phase one STAGES: the pack is
// atomically written (temp → fsync → rename → dir fsync) under its
// content-addressed name in packs/, where nothing references it yet — a
// crash here leaves an invisible orphan that GC reclaims, never a torn or
// half-visible version. Phase two PUBLISHES: the manifest, which is the
// sole source of truth for which versions exist, is atomically replaced
// with one that references the already-durable pack. A crash between the
// phases (or anywhere inside either) reopens as the previous manifest
// state plus at most one orphaned pack file.
func (s *Store) persist(v *Version, pack []byte) error {
	if err := vfs.WriteAtomic(s.fs, s.packPath(v.ID), pack); err != nil {
		return err
	}
	return s.writeManifest()
}

// writeManifest atomically replaces the v2 manifest: write-to-temp, fsync
// the file, rename over manifest.json, fsync the directory — so neither a
// crash mid-write (torn JSON) nor a power cut right after the rename (the
// rename itself not yet durable) can leave the store unopenable or roll it
// back to a state referencing missing packs. Caller holds the write lock
// (or is single-threaded in Open).
func (s *Store) writeManifest() error {
	m := manifestV2{Format: storeFormat, Packs: s.packs}
	for _, id := range s.order {
		m.Versions = append(m.Versions, s.versions[id])
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return vfs.WriteAtomic(s.fs, filepath.Join(s.dir, "manifest.json"), data)
}

// packLink is one step of a reconstruction plan: the pack to decode and the
// metadata needed to apply it.
type packLink struct {
	id   string
	mem  []byte // encoded pack for memory stores (nil on disk stores)
	key  []string
	rows int
}

// chainLocked plans the reconstruction of id: the pack chain from id back
// to its nearest full anchor (id first). Caller holds s.mu (read or write).
func (s *Store) chainLocked(id string) ([]packLink, error) {
	var chain []packLink
	cur := id
	for {
		v, vok := s.versions[cur]
		pi, pok := s.packs[cur]
		if !vok || !pok {
			return nil, fmt.Errorf("%w: version %s: pack chain references unknown version %s", ErrCorruptStore, id, cur)
		}
		chain = append(chain, packLink{id: cur, mem: s.mem[cur], key: v.Key, rows: v.Rows})
		if pi.Kind == packFull {
			return chain, nil
		}
		if pi.Base == "" || len(chain) > len(s.packs) {
			return nil, fmt.Errorf("%w: version %s: delta chain is cyclic or unanchored", ErrCorruptStore, id)
		}
		cur = pi.Base
	}
}

// reconstruct materializes the canonical CSV blob of chain[0] by decoding
// the anchor and applying the deltas forward. It takes no locks: pack files
// and memory pack slices are immutable once committed.
func (s *Store) reconstruct(chain []packLink) ([]byte, error) {
	var blob []byte
	for i := len(chain) - 1; i >= 0; i-- {
		link := chain[i]
		data := link.mem
		if data == nil {
			var err error
			data, err = s.fs.ReadFile(s.packPath(link.id))
			if err != nil {
				return nil, fmt.Errorf("%w: version %s: pack file: %v", ErrCorruptStore, link.id, err)
			}
		}
		meta, body, err := decodePack(data)
		if err != nil {
			return nil, corruptVersion(link.id, err)
		}
		if meta.ID != link.id {
			return nil, fmt.Errorf("%w: version %s: pack holds %s", ErrCorruptStore, link.id, meta.ID)
		}
		switch meta.Kind {
		case packFull:
			blob = body
		case packDelta:
			if blob == nil {
				return nil, fmt.Errorf("%w: version %s: delta pack with no anchor below it", ErrCorruptStore, link.id)
			}
			ops, err := parseOps(body)
			if err != nil {
				return nil, corruptVersion(link.id, err)
			}
			blob, err = applyDelta(blob, ops, link.key, link.rows)
			if err != nil {
				return nil, corruptVersion(link.id, err)
			}
		default:
			return nil, fmt.Errorf("%w: version %s: unknown pack kind %q", ErrCorruptStore, link.id, meta.Kind)
		}
	}
	return blob, nil
}

// plan looks id up and snapshots its reconstruction chain under the shared
// lock, so the (slow, immutable-input) decode can run off-lock. Unknown ids
// report ErrNotFound before any corruption diagnosis.
func (s *Store) plan(id string) (*Version, []packLink, error) {
	var (
		v     *Version
		ok    bool
		chain []packLink
		err   error
	)
	func() {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if v, ok = s.versions[id]; ok {
			chain, err = s.chainLocked(id)
		}
	}()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if err != nil {
		return nil, nil, err
	}
	return v, chain, nil
}

// blobFor returns id's canonical blob through the blob LRU, reconstructing
// (and caching) it on a miss. The returned bytes are shared and immutable.
func (s *Store) blobFor(id string) ([]byte, error) {
	if blob, ok := s.blobs.get(id); ok {
		return blob, nil
	}
	v, chain, err := s.plan(id)
	if err != nil {
		return nil, err
	}
	// Pack data is immutable once committed, so decoding runs off-lock.
	blob, err := s.reconstruct(chain)
	if err != nil {
		return nil, err
	}
	// The version id IS the hash of the canonical blob, so re-hashing
	// catches any decodable-but-wrong reconstruction (tampered pack body,
	// codec regression) before the bytes are cached or served — not just
	// the packs that fail to decode.
	if got := contentID(blob, v.Key); got != id {
		return nil, fmt.Errorf("%w: version %s: reconstructed blob hashes to %s", ErrCorruptStore, id, got)
	}
	s.blobs.add(id, blob)
	return blob, nil
}

// Blob returns the canonical CSV serialization stored under id,
// reconstructing it from the pack chain on a cache miss. The bytes are
// immutable once committed; callers must not modify them.
func (s *Store) Blob(id string) ([]byte, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return s.blobFor(id)
}

// tableFor returns id's decoded table through the table LRU, parsing (and
// caching) it on a miss. The returned table is the cache's shared instance:
// callers must treat it as strictly read-only (Checkout clones it before
// handing it out; the delta-native diff path reads it in place).
func (s *Store) tableFor(id string) (*table.Table, error) {
	if t, ok := s.tables.get(id); ok {
		return t, nil
	}
	v, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	blob, err := s.blobFor(id)
	if err != nil {
		return nil, err
	}
	s.parses.Add(1)
	t, err := csvio.Read(bytes.NewReader(blob), csvio.Options{Key: v.Key})
	if err != nil {
		// The blob already passed the content-hash check, so a parse
		// failure means the stored data itself is bad, not the request.
		return nil, fmt.Errorf("%w: version %s: %v", ErrCorruptStore, id, err)
	}
	s.tables.add(id, t)
	return t, nil
}

// Checkout reconstructs the table stored under id. Decoded tables are kept
// in an LRU, and every caller gets a private clone — a warm checkout does
// no CSV parsing, and no two callers ever share mutable buffers.
func (s *Store) Checkout(id string) (*table.Table, error) {
	t, err := s.tableFor(id)
	if err != nil {
		return nil, err
	}
	return t.Clone(), nil
}

// CheckoutCached returns a private clone of id's table if (and only if) it
// is already resident in the table LRU — no reconstruction, no parsing.
// Chain materializers use it to prefer the warm path over re-applying
// deltas.
func (s *Store) CheckoutCached(id string) (*table.Table, bool) {
	t, ok := s.tables.get(id)
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// Get returns the version metadata for id.
func (s *Store) Get(id string) (*Version, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.versions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return v, nil
}

// Log returns all versions in commit order.
func (s *Store) Log() []*Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Version, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.versions[id])
	}
	return out
}

// Lineage walks parents from id back to the root (inclusive, newest first).
// A parent cycle (only possible in a hand-edited or corrupt manifest —
// content addressing cannot create one) is reported as an error rather than
// looping forever.
func (s *Store) Lineage(id string) ([]*Version, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Version
	visited := make(map[string]bool)
	for id != "" {
		if visited[id] {
			return nil, corruptf("lineage cycle at %q", id)
		}
		visited[id] = true
		v, ok := s.versions[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		out = append(out, v)
		id = v.Parent
	}
	return out, nil
}

// Chain returns the version chain ending at headID, oldest first (root →
// head, inclusive) — the walking order of timeline summarization, which
// steps through consecutive (parent, child) pairs.
func (s *Store) Chain(headID string) ([]*Version, error) {
	lineage, err := s.Lineage(headID)
	if err != nil {
		return nil, err
	}
	out := make([]*Version, len(lineage))
	for i, v := range lineage {
		out[len(lineage)-1-i] = v
	}
	return out, nil
}

// Head returns the most recently committed version (ErrNotFound when the
// store is empty) — the default timeline endpoint.
func (s *Store) Head() (*Version, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.order) == 0 {
		return nil, fmt.Errorf("%w: store is empty", ErrNotFound)
	}
	return s.versions[s.order[len(s.order)-1]], nil
}

// Diff aligns two stored versions (by the snapshots' shared primary key).
func (s *Store) Diff(fromID, toID string) (*diff.Aligned, error) {
	src, err := s.Checkout(fromID)
	if err != nil {
		return nil, err
	}
	tgt, err := s.Checkout(toID)
	if err != nil {
		return nil, err
	}
	return diff.Align(src, tgt)
}

// Summarize runs the ChARLES engine between two stored versions.
func (s *Store) Summarize(fromID, toID string, opts core.Options) ([]core.Ranked, error) {
	a, err := s.Diff(fromID, toID)
	if err != nil {
		return nil, err
	}
	return core.SummarizeAligned(a, opts)
}

// CacheStats is one LRU's counters: requests served from the cache,
// requests that had to fill, and the resident/capacity entry counts.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
}

// Stats reports the storage and cache state: how many packs are full
// anchors vs deltas, how many bytes the packs occupy against the logical
// (canonical CSV) bytes they represent, and every read cache's counters —
// the decoded-table LRU behind Checkout, the reconstructed-blob LRU
// behind Blob, the decoded delta-op LRU behind Changes, and the
// change-query answer LRU behind DiffResult. The flat Cache* fields
// mirror Tables for compatibility with pre-observability readers.
type Stats struct {
	Versions      int        `json:"versions"`
	FullPacks     int        `json:"fullPacks"`
	DeltaPacks    int        `json:"deltaPacks"`
	PackBytes     int64      `json:"packBytes"`
	LogicalBytes  int64      `json:"logicalBytes"`
	Compression   float64    `json:"compression"` // LogicalBytes / PackBytes
	CacheHits     int64      `json:"cacheHits"`
	CacheMisses   int64      `json:"cacheMisses"`
	Parses        int64      `json:"parses"` // CSV parses (each a cache miss filled)
	CacheEntries  int        `json:"cacheEntries"`
	CacheCapacity int        `json:"cacheCapacity"`
	Tables        CacheStats `json:"tables"`
	Blobs         CacheStats `json:"blobs"`
	Changes       CacheStats `json:"changes"`
	Results       CacheStats `json:"results"`
}

// Stats snapshots the store's storage and cache counters.
func (s *Store) Stats() Stats {
	var st Stats
	func() {
		s.mu.RLock()
		defer s.mu.RUnlock()
		st.Versions = len(s.order)
		for _, pi := range s.packs {
			if pi.Kind == packDelta {
				st.DeltaPacks++
			} else {
				st.FullPacks++
			}
			st.PackBytes += pi.Size
			st.LogicalBytes += pi.Logical
		}
	}()
	if st.PackBytes > 0 {
		st.Compression = float64(st.LogicalBytes) / float64(st.PackBytes)
	} else {
		// An empty store compresses nothing: report the identity ratio
		// rather than 0/0 (which a naive division would render as NaN —
		// not even valid JSON — in the /stats endpoint).
		st.Compression = 1.0
	}
	st.Tables = cacheStatsOf(s.tables)
	st.Blobs = cacheStatsOf(s.blobs)
	st.Changes = cacheStatsOf(s.changes)
	st.Results = cacheStatsOf(s.results)
	st.CacheHits, st.CacheMisses = st.Tables.Hits, st.Tables.Misses
	st.CacheEntries, st.CacheCapacity = st.Tables.Entries, st.Tables.Capacity
	st.Parses = s.parses.Load()
	return st
}

func cacheStatsOf[V any](c *lruCache[V]) CacheStats {
	hits, misses, entries, capacity := c.stats()
	return CacheStats{Hits: hits, Misses: misses, Entries: entries, Capacity: capacity}
}

// GCReport summarizes what GC reclaimed.
type GCReport struct {
	LegacyFiles    int   `json:"legacyFiles"` // migrated per-version CSVs removed
	OrphanPacks    int   `json:"orphanPacks"` // pack files no manifest entry references
	TempFiles      int   `json:"tempFiles"`   // stale atomic-write temps from crashed publishes
	BytesReclaimed int64 `json:"bytesReclaimed"`
}

// GC removes storage the pack layout has superseded: legacy <id>.csv blobs
// left behind by migration, orphaned pack files (from rolled-back commits
// or crashes between the stage and publish phases) that no manifest entry
// references, and stale .tmp files a crashed atomic write left behind.
// Memory-only stores have nothing to collect.
func (s *Store) GC() (GCReport, error) {
	if err := s.guard(); err != nil {
		return GCReport{}, err
	}
	var rep GCReport
	if s.dir == "" {
		return rep, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".csv"):
			id := strings.TrimSuffix(name, ".csv")
			if _, ok := s.versions[id]; !ok {
				continue // not ours: leave stray user files alone
			}
			info, err := e.Info()
			if err != nil {
				return rep, err
			}
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				return rep, err
			}
			rep.LegacyFiles++
			rep.BytesReclaimed += info.Size()
		case strings.HasSuffix(name, ".tmp"):
			info, err := e.Info()
			if err != nil {
				return rep, err
			}
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				return rep, err
			}
			rep.TempFiles++
			rep.BytesReclaimed += info.Size()
		}
	}
	packs, err := s.fs.ReadDir(s.packDir())
	if err != nil {
		return rep, err
	}
	for _, e := range packs {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		isTemp := strings.HasSuffix(name, ".tmp")
		if !isTemp && !strings.HasSuffix(name, ".pack") {
			continue
		}
		if !isTemp {
			if _, ok := s.packs[strings.TrimSuffix(name, ".pack")]; ok {
				continue
			}
		}
		info, err := e.Info()
		if err != nil {
			return rep, err
		}
		if err := s.fs.Remove(filepath.Join(s.packDir(), name)); err != nil {
			return rep, err
		}
		if isTemp {
			rep.TempFiles++
		} else {
			rep.OrphanPacks++
		}
		rep.BytesReclaimed += info.Size()
	}
	return rep, nil
}

// VerifySnapshot checks that t carries exactly the content committed under
// id: its canonical serialization must hash back to the content id — the
// same guarantee Checkout enforces on reconstructed blobs, applied to a
// snapshot materialized outside the store (history's delta-native chain
// walks). Snapshots whose cell texts are not canonical (programmatic
// commits of untrimmed strings) cannot be re-serialized byte-identically
// and fail verification even when correct; callers treat a failure as
// "fall back to Checkout", which re-verifies from the raw bytes.
func (s *Store) VerifySnapshot(id string, t *table.Table) error {
	v, err := s.Get(id)
	if err != nil {
		return err
	}
	blob, err := canonicalCSV(t)
	if err != nil {
		return err
	}
	if got := contentID(blob, v.Key); got != id {
		return fmt.Errorf("%w: version %s: materialized snapshot hashes to %s", ErrCorruptStore, id, got)
	}
	return nil
}

// AdmitSnapshot verifies an externally materialized snapshot (see
// VerifySnapshot) and, on success, adopts a private clone of it into the
// table LRU — so a delta-native chain walk warms the same cache a parsing
// checkout would, and the next walk is served by CheckoutCached clones.
// Failed verification admits nothing and returns the error.
func (s *Store) AdmitSnapshot(id string, t *table.Table) error {
	if err := s.VerifySnapshot(id, t); err != nil {
		return err
	}
	s.tables.add(id, t.Clone())
	return nil
}

// canonicalCSV serializes a table deterministically (rows sorted by primary
// key) so identical relations get identical ids regardless of row order.
func canonicalCSV(t *table.Table) ([]byte, error) {
	sorted, err := t.SortByKey()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := csvio.Write(&buf, sorted); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// contentID hashes the canonical blob and key declaration.
func contentID(blob []byte, key []string) string {
	h := sha256.New()
	h.Write(blob)
	for _, k := range key {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}
