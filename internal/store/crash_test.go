package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"charles/internal/faultfs"
	"charles/internal/gen"
	"charles/internal/table"
	"charles/internal/vfs"
)

// commitChain commits the chain into st, returning the ids of every commit
// that SUCCEEDED (stopping at the first error, which is returned too).
func crashCommitChain(st *Store, chain []*table.Table) ([]string, error) {
	var ids []string
	parent := ""
	for i, tb := range chain {
		v, err := st.Commit(tb, parent, fmt.Sprintf("step %d", i))
		if err != nil {
			return ids, err
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	return ids, nil
}

// TestCrashInjectionPropertySuite is the acceptance pin for crash-safe
// storage: a 5-seed gen.MutateChain commit sequence is crashed at EVERY
// injected fault point of the write path (create, write, sync, rename,
// remove, dir-sync — learned by a fault-free probe run), and after each
// crash the store must reopen from its durable state and verify completely
// clean. Additionally, every commit that had already returned success
// before the fault must still be present after the crash — Commit's return
// is a durability promise.
func TestCrashInjectionPropertySuite(t *testing.T) {
	opts := Options{AnchorEvery: 3, TableCache: 4}
	runCrashInjectionSuite(t, func(fsys vfs.FS) (*Store, error) {
		o := opts
		o.FS = fsys
		return OpenWith("db", o)
	})
}

// TestHubShardCrashInjection runs the same property suite against a store
// opened through a Hub by dataset name: the namespace layer must not change
// the crash-safety story — every fault point still surfaces as an error,
// and the shard's durable state (under the hub's <tenant>/<dataset> tree)
// reopens clean with all acknowledged commits intact.
func TestHubShardCrashInjection(t *testing.T) {
	runCrashInjectionSuite(t, func(fsys vfs.FS) (*Store, error) {
		h, err := OpenHubWith("hub", HubOptions{
			Store: Options{AnchorEvery: 3, TableCache: 4, FS: fsys},
		})
		if err != nil {
			return nil, err
		}
		st, _, err := h.Acquire("acme", "events")
		return st, err
	})
}

// runCrashInjectionSuite is the suite body, parameterized by how a store is
// opened over a given filesystem — directly, or through a hub shard.
func runCrashInjectionSuite(t *testing.T, openStore func(fsys vfs.FS) (*Store, error)) {
	for seed := int64(1); seed <= 5; seed++ {
		chain, err := gen.MutateChain(gen.FuzzConfig{N: 20, Steps: 5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}

		// Probe run: count the fault points of the whole sequence.
		probe := faultfs.New()
		pst, err := openStore(probe)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := crashCommitChain(pst, chain); err != nil {
			t.Fatal(err)
		}
		points := probe.Ops()
		if points < 10 {
			t.Fatalf("seed %d: implausibly few fault points (%d) — is persistence still going through the FS seam?", seed, points)
		}

		for point := 0; point < points; point++ {
			fsys := faultfs.New()
			fsys.FailAt(point)
			var committed []string
			st, err := openStore(fsys)
			if err == nil {
				committed, err = crashCommitChain(st, chain)
			}
			if err == nil {
				t.Fatalf("seed %d point %d: fault never surfaced as an error", seed, point)
			}
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("seed %d point %d: error %v does not wrap the injected fault", seed, point, err)
			}

			// Power cut, reboot: reopen from the durable state.
			after := fsys.Crash()
			st2, err := openStore(after)
			if err != nil {
				t.Fatalf("seed %d point %d: reopen after crash: %v", seed, point, err)
			}
			rep, err := st2.Verify()
			if err != nil {
				t.Fatalf("seed %d point %d: verify: %v", seed, point, err)
			}
			if !rep.Clean() {
				t.Fatalf("seed %d point %d: store corrupt after crash: %+v", seed, point, rep.Issues)
			}
			// Durability: every successfully returned commit survived.
			for _, id := range committed {
				if _, err := st2.Get(id); err != nil {
					t.Fatalf("seed %d point %d: committed version %s lost in crash: %v", seed, point, id, err)
				}
			}
			// And the survivors still reconstruct to the exact snapshots.
			for i, id := range committed {
				got, err := st2.Blob(id)
				if err != nil {
					t.Fatalf("seed %d point %d: blob %s: %v", seed, point, id, err)
				}
				want, err := canonicalCSV(chain[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d point %d: version %s content drifted after crash", seed, point, id)
				}
			}
		}
	}
}

// TestVerifyCleanAndTamperDetection pins Verify both ways on a real disk
// store: a healthy chain verifies clean, a tampered pack is reported
// against the right version (and its delta descendants), and the healthy
// prefix keeps verifying.
func TestVerifyCleanAndTamperDetection(t *testing.T) {
	dir := t.TempDir()
	chain, err := gen.MutateChain(gen.FuzzConfig{N: 20, Steps: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenWith(dir, Options{AnchorEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := crashCommitChain(st, chain)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Verified != len(ids) {
		t.Fatalf("healthy store did not verify clean: %+v", rep)
	}

	// Tamper: flip bytes in the middle of version 2's pack body.
	victim := ids[2]
	path := filepath.Join(dir, "packs", victim+".pack")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh open (cold caches) must see the damage.
	st2, err := OpenWith(dir, Options{AnchorEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = st2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("tampered store verified clean")
	}
	flagged := map[string]bool{}
	for _, iss := range rep.Issues {
		flagged[iss.Version] = true
	}
	if !flagged[victim] {
		t.Fatalf("issues %+v do not name the tampered version %s", rep.Issues, victim)
	}
	// Versions before the victim are independent of its pack and stay clean.
	for _, id := range ids[:2] {
		if flagged[id] {
			t.Fatalf("healthy ancestor %s flagged: %+v", id, rep.Issues)
		}
	}
}

// TestRepairQuarantinesAndRestoresConsistency pins Repair end to end: after
// tampering with a mid-chain pack, Repair drops the corrupt version plus
// its dependents, moves their packs (and any strays) into quarantine/, and
// the repaired store — including after a fresh reopen — verifies clean and
// still serves the surviving prefix.
func TestRepairQuarantinesAndRestoresConsistency(t *testing.T) {
	dir := t.TempDir()
	chain, err := gen.MutateChain(gen.FuzzConfig{N: 20, Steps: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenWith(dir, Options{AnchorEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := crashCommitChain(st, chain)
	if err != nil {
		t.Fatal(err)
	}
	victim := ids[2]
	path := filepath.Join(dir, "packs", victim+".pack")
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Plus a stray orphan pack and a stale temp from a "crashed" publish.
	if err := os.WriteFile(filepath.Join(dir, "packs", "deadbeef.pack"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenWith(dir, Options{AnchorEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st2.Repair()
	if err != nil {
		t.Fatal(err)
	}
	// The victim and every version downstream of it must be dropped: their
	// lineage (and possibly delta chains) run through the damage.
	wantDropped := map[string]bool{}
	for _, id := range ids[2:] {
		wantDropped[id] = true
	}
	gotDropped := map[string]bool{}
	for _, id := range rep.Dropped {
		gotDropped[id] = true
	}
	for id := range wantDropped {
		if !gotDropped[id] {
			t.Fatalf("dropped %v, want %s among them", rep.Dropped, id)
		}
	}
	for _, id := range ids[:2] {
		if gotDropped[id] {
			t.Fatalf("healthy version %s dropped: %v", id, rep.Dropped)
		}
	}
	if len(rep.Quarantined) == 0 {
		t.Fatal("nothing quarantined")
	}

	// The repaired store verifies clean and serves the survivors.
	vrep, err := st2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !vrep.Clean() || len(vrep.StrayFiles) != 0 {
		t.Fatalf("store not clean after repair: %+v", vrep)
	}
	for i, id := range ids[:2] {
		got, err := st2.Blob(id)
		if err != nil {
			t.Fatalf("blob %s after repair: %v", id, err)
		}
		want, err := canonicalCSV(chain[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("version %s content wrong after repair", id)
		}
	}
	if _, err := st2.Get(victim); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quarantined version still resolvable: %v", err)
	}

	// And so does a fresh process over the repaired directory.
	st3, err := OpenWith(dir, Options{AnchorEvery: 3})
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	vrep, err = st3.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !vrep.Clean() {
		t.Fatalf("reopened repaired store not clean: %+v", vrep)
	}
	// Quarantined evidence is preserved on disk, not deleted.
	qentries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qentries) == 0 {
		t.Fatalf("quarantine directory missing or empty: %v", err)
	}
}

// TestVerifyReportsStrayFiles pins that orphans and temps show up as
// strays (not corruption) and GC reclaims them.
func TestVerifyReportsStrayFiles(t *testing.T) {
	dir := t.TempDir()
	src, _ := gen.Toy()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(src, "", "root"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "packs", "orphan.pack"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "packs", "orphan.pack.tmp"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("strays misreported as corruption: %+v", rep.Issues)
	}
	if len(rep.StrayFiles) != 2 {
		t.Fatalf("stray files = %v, want the orphan pack and the temp", rep.StrayFiles)
	}
	gc, err := st.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gc.OrphanPacks != 1 || gc.TempFiles != 1 {
		t.Fatalf("GC report %+v, want 1 orphan + 1 temp", gc)
	}
	rep, err = st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StrayFiles) != 0 {
		t.Fatalf("strays survived GC: %v", rep.StrayFiles)
	}
}
