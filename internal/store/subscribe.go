// Commit notifications: the seam that lets upper layers (the serving
// live-timeline registry, CLIs in -follow mode) observe every acked commit
// without polling. Delivery is strictly off the commit lock and never
// blocks: a subscriber that falls behind has its oldest pending note
// dropped (coalesced) rather than stalling the committer — consumers that
// observe Dropped() > 0 resynchronize from the store head, which is always
// authoritative.

package store

import (
	"sync/atomic"
)

// DefaultSubscribeBuffer is the per-subscription channel capacity used when
// Subscribe is called with buf <= 0.
const DefaultSubscribeBuffer = 16

// CommitNote is one commit-notification event: the version that was newly
// registered by Commit. Dedup'd commits (content addressing returning an
// existing version) do not produce notes — subscribers see each version id
// at most once.
type CommitNote struct {
	Version *Version
}

// Subscription is one subscriber's handle on a Store's commit feed. Receive
// from C(); Close when done. The channel is closed by Close and by
// Store.Close, so ranging over C() terminates at shutdown.
type Subscription struct {
	st      *Store
	ch      chan CommitNote
	dropped atomic.Int64
}

// C returns the note channel. Notes arrive in commit order; under
// slow-subscriber coalescing some may be dropped (count via Dropped).
func (sub *Subscription) C() <-chan CommitNote { return sub.ch }

// Dropped reports how many notes were discarded because the subscriber's
// buffer was full. Any nonzero value means the feed has gaps and the
// consumer should resync from the store head.
func (sub *Subscription) Dropped() int64 { return sub.dropped.Load() }

// Close detaches the subscription and closes its channel. Idempotent, and
// safe to race with Store.Close.
func (sub *Subscription) Close() {
	sub.st.subMu.Lock()
	defer sub.st.subMu.Unlock()
	if _, ok := sub.st.subs[sub]; ok {
		delete(sub.st.subs, sub)
		close(sub.ch)
	}
}

// Subscribe registers a commit-notification subscriber with the given
// channel capacity (<= 0 uses DefaultSubscribeBuffer). Subscribing to a
// closed store returns a subscription whose channel is already closed.
func (s *Store) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = DefaultSubscribeBuffer
	}
	sub := &Subscription{st: s, ch: make(chan CommitNote, buf)}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.closedSubs {
		close(sub.ch)
		return sub
	}
	if s.subs == nil {
		s.subs = make(map[*Subscription]struct{})
	}
	s.subs[sub] = struct{}{}
	return sub
}

// closeSubs closes every live subscription; called by Store.Close.
func (s *Store) closeSubs() {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for sub := range s.subs {
		close(sub.ch)
	}
	s.subs = nil
	s.closedSubs = true
}

// publishCommit fans a freshly registered version out to every subscriber.
// Called by Commit after the exclusive lock is released, so a slow consumer
// can never extend the critical section. Every send is non-blocking: when a
// subscriber's buffer is full its oldest pending note is dropped to make
// room (coalescing), and if the send still cannot proceed the new note is
// dropped instead — either way the committer never waits.
func (s *Store) publishCommit(v *Version) {
	note := CommitNote{Version: v}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for sub := range s.subs {
		select {
		case sub.ch <- note:
		default:
			select {
			case <-sub.ch:
				sub.dropped.Add(1)
			default:
			}
			select {
			case sub.ch <- note:
			default:
				sub.dropped.Add(1)
			}
		}
	}
}

// HubCommitNote is one hub-level commit event: which shard committed, and
// the new version. The hub feed is the fan-in of every open shard's store
// feed, so one subscription observes commits across all tenants/datasets.
type HubCommitNote struct {
	Tenant  string
	Dataset string
	Version *Version
}

// HubSubscription is one subscriber's handle on a Hub's commit feed.
type HubSubscription struct {
	h       *Hub
	ch      chan HubCommitNote
	dropped atomic.Int64
}

// C returns the note channel (closed by Close and by Hub.Close).
func (sub *HubSubscription) C() <-chan HubCommitNote { return sub.ch }

// Dropped reports notes discarded under slow-subscriber coalescing.
func (sub *HubSubscription) Dropped() int64 { return sub.dropped.Load() }

// Close detaches the subscription and closes its channel. Idempotent.
func (sub *HubSubscription) Close() {
	sub.h.subMu.Lock()
	defer sub.h.subMu.Unlock()
	if _, ok := sub.h.subs[sub]; ok {
		delete(sub.h.subs, sub)
		close(sub.ch)
	}
}

// Subscribe registers a hub-wide commit subscriber (buf <= 0 uses
// DefaultSubscribeBuffer). Notes carry the tenant/dataset of the shard that
// committed. Subscribing to a closed hub returns an already-closed channel.
func (h *Hub) Subscribe(buf int) *HubSubscription {
	if buf <= 0 {
		buf = DefaultSubscribeBuffer
	}
	sub := &HubSubscription{h: h, ch: make(chan HubCommitNote, buf)}
	h.subMu.Lock()
	defer h.subMu.Unlock()
	if h.closedSubs {
		close(sub.ch)
		return sub
	}
	if h.subs == nil {
		h.subs = make(map[*HubSubscription]struct{})
	}
	h.subs[sub] = struct{}{}
	return sub
}

// closeHubSubs closes every live hub subscription; called by Hub.Close.
func (h *Hub) closeHubSubs() {
	h.subMu.Lock()
	defer h.subMu.Unlock()
	for sub := range h.subs {
		close(sub.ch)
	}
	h.subs = nil
	h.closedSubs = true
}

// publishCommit fans one shard's commit out to every hub subscriber, with
// the same never-block drop-oldest coalescing as the store-level feed.
func (h *Hub) publishCommit(tenant, dataset string, v *Version) {
	note := HubCommitNote{Tenant: tenant, Dataset: dataset, Version: v}
	h.subMu.Lock()
	defer h.subMu.Unlock()
	for sub := range h.subs {
		select {
		case sub.ch <- note:
		default:
			select {
			case <-sub.ch:
				sub.dropped.Add(1)
			default:
			}
			select {
			case sub.ch <- note:
			default:
				sub.dropped.Add(1)
			}
		}
	}
}

// forwardShard bridges one shard's store-level feed into the hub feed. It
// runs as a goroutine spawned when the shard opens and exits when the
// shard's store is closed (eviction or hub shutdown closes the store-level
// channel). A re-opened shard spawns a fresh forwarder.
func (h *Hub) forwardShard(tenant, dataset string, sub *Subscription) {
	for note := range sub.C() {
		h.publishCommit(tenant, dataset, note.Version)
	}
}
