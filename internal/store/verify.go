package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"charles/internal/csvio"
)

// VerifyIssue is one problem Verify found with one version.
type VerifyIssue struct {
	Version string `json:"version"`
	Problem string `json:"problem"`
}

// VerifyReport is the result of a full fsck-style store walk.
type VerifyReport struct {
	// Versions is how many manifest entries were checked.
	Versions int `json:"versions"`
	// Verified is how many reconstructed and hashed back to their
	// content id.
	Verified int `json:"verified"`
	// Issues lists every version that failed: missing or undecodable
	// packs, broken delta chains, reconstructions that no longer hash to
	// the version id, or metadata that disagrees with the data.
	Issues []VerifyIssue `json:"issues,omitempty"`
	// StrayFiles lists files in the store that no manifest entry
	// references — orphaned packs from crashed or rolled-back commits and
	// stale atomic-write temps. They are not corruption (the store serves
	// correctly with them present); GC reclaims them, Repair quarantines
	// them.
	StrayFiles []string `json:"strayFiles,omitempty"`
}

// Clean reports whether every version verified.
func (r *VerifyReport) Clean() bool { return len(r.Issues) == 0 }

// Verify is the store's fsck: it re-reads every version's pack chain from
// storage (bypassing all caches), reconstructs the canonical blob, checks
// it hashes back to the content id, re-parses it, and cross-checks the
// row/column counts the manifest declares. Every problem is collected per
// version rather than aborting at the first, so one torn pack does not
// hide a second. Safe to run on a live store: it takes only shared locks.
func (s *Store) Verify() (*VerifyReport, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	rep := &VerifyReport{}
	ids := s.orderSnapshot()
	rep.Versions = len(ids)
	for _, id := range ids {
		if problem := s.verifyVersion(id); problem != "" {
			rep.Issues = append(rep.Issues, VerifyIssue{Version: id, Problem: problem})
			continue
		}
		rep.Verified++
	}
	strays, err := s.strayFiles()
	if err != nil {
		return nil, err
	}
	rep.StrayFiles = strays
	return rep, nil
}

// verifyVersion checks one version end to end and describes the first
// failure ("" = clean). It deliberately bypasses the blob/table caches:
// verification is about what is durably on disk, not what is resident.
func (s *Store) verifyVersion(id string) string {
	var (
		v     *Version
		ok    bool
		chain []packLink
		err   error
	)
	func() {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if v, ok = s.versions[id]; ok {
			chain, err = s.chainLocked(id)
		}
	}()
	if !ok {
		return "version vanished from manifest mid-verify"
	}
	if err != nil {
		return err.Error()
	}
	blob, err := s.reconstruct(chain)
	if err != nil {
		return err.Error()
	}
	if got := contentID(blob, v.Key); got != id {
		return fmt.Sprintf("reconstructed blob hashes to %s", got)
	}
	t, err := csvio.Read(bytes.NewReader(blob), csvio.Options{Key: v.Key})
	if err != nil {
		return fmt.Sprintf("blob does not parse: %v", err)
	}
	if t.NumRows() != v.Rows || t.NumCols() != v.Cols {
		return fmt.Sprintf("data is %dx%d, manifest declares %dx%d",
			t.NumRows(), t.NumCols(), v.Rows, v.Cols)
	}
	return ""
}

// orderSnapshot copies the commit order under the shared lock, so slow
// per-version walks (Verify, Repair) can iterate without holding it.
func (s *Store) orderSnapshot() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// strayFiles lists unreferenced pack files and stale temp files (relative
// to the store directory). Memory-only stores have none.
func (s *Store) strayFiles() ([]string, error) {
	if s.dir == "" {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var strays []string
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			strays = append(strays, e.Name())
		}
	}
	packs, err := s.fs.ReadDir(s.packDir())
	if err != nil {
		return nil, err
	}
	for _, e := range packs {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			strays = append(strays, filepath.Join("packs", name))
			continue
		}
		if strings.HasSuffix(name, ".pack") {
			if _, ok := s.packs[strings.TrimSuffix(name, ".pack")]; !ok {
				strays = append(strays, filepath.Join("packs", name))
			}
		}
	}
	sort.Strings(strays)
	return strays, nil
}

// RepairReport summarizes what Repair changed.
type RepairReport struct {
	// Quarantined lists the files moved into the quarantine directory
	// (paths relative to the store directory).
	Quarantined []string `json:"quarantined,omitempty"`
	// Dropped lists the version ids removed from the manifest: the
	// corrupt versions themselves plus every version whose lineage or
	// delta chain depended on one.
	Dropped []string `json:"dropped,omitempty"`
	// QuarantineDir is where the quarantined files went ("" when nothing
	// was quarantined).
	QuarantineDir string `json:"quarantineDir,omitempty"`
}

// quarantineDirName is where Repair moves damaged and unreferenced files,
// preserving the evidence instead of deleting it.
const quarantineDirName = "quarantine"

// Repair restores a damaged store to a self-consistent state: every
// version that fails verification — and, transitively, every version
// whose parent lineage or delta chain runs through one — is dropped from
// the manifest, and its pack file (plus any stray unreferenced packs and
// stale temps) is moved into a quarantine/ directory rather than deleted,
// so nothing is destroyed that a human might still want to salvage. The
// rewritten manifest is published with the same atomic-write discipline
// as a commit, and all caches are purged. Healthy stores are a no-op.
func (s *Store) Repair() (*RepairReport, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	rep := &RepairReport{}
	// Find the damaged versions first (shared locks only, slow part).
	ids := s.orderSnapshot()
	bad := map[string]bool{}
	for _, id := range ids {
		if problem := s.verifyVersion(id); problem != "" {
			bad[id] = true
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Close the damage transitively: a version whose parent is dropped
	// has no lineage, and one whose pack base is dropped cannot
	// reconstruct. Iterate to a fixed point (chains can be long).
	for changed := true; changed; {
		changed = false
		for _, id := range s.order {
			if bad[id] {
				continue
			}
			v := s.versions[id]
			pi := s.packs[id]
			if (v.Parent != "" && (bad[v.Parent] || s.versions[v.Parent] == nil)) ||
				(pi != nil && pi.Base != "" && bad[pi.Base]) {
				bad[id] = true
				changed = true
			}
		}
	}
	if len(bad) == 0 {
		// Nothing corrupt; still sweep strays into quarantine so a
		// "repair" leaves the directory exactly manifest-shaped.
		return rep, s.quarantineStraysLocked(rep)
	}

	// Rebuild the surviving manifest state.
	var order []string
	for _, id := range s.order {
		if bad[id] {
			rep.Dropped = append(rep.Dropped, id)
			continue
		}
		order = append(order, id)
	}
	versions := make(map[string]*Version, len(order))
	packs := make(map[string]*packInfo, len(order))
	for _, id := range order {
		versions[id] = s.versions[id]
		packs[id] = s.packs[id]
	}
	oldVersions, oldPacks, oldOrder := s.versions, s.packs, s.order
	s.versions, s.packs, s.order = versions, packs, order

	// Quarantine the dropped versions' packs, then publish the repaired
	// manifest. Order matters for crash safety the same way commits
	// stage-then-publish: a crash mid-quarantine reopens with the OLD
	// manifest still referencing a now-missing pack — which Verify
	// reports and a re-run of Repair finishes — never a manifest that
	// references quarantined data as live.
	if s.dir != "" {
		for _, id := range rep.Dropped {
			if err := s.quarantineLocked(filepath.Join("packs", id+".pack"), rep); err != nil {
				s.versions, s.packs, s.order = oldVersions, oldPacks, oldOrder
				return nil, err
			}
		}
		if err := s.writeManifest(); err != nil {
			s.versions, s.packs, s.order = oldVersions, oldPacks, oldOrder
			return nil, err
		}
	} else {
		for _, id := range rep.Dropped {
			delete(s.mem, id)
		}
	}
	if err := s.quarantineStraysLocked(rep); err != nil {
		return nil, err
	}
	// Every cache may hold data derived from dropped versions (diff
	// answers are keyed by pairs, change sets by chains) — purge them all
	// rather than reason about reachability.
	s.tables.purge()
	s.blobs.purge()
	s.changes.purge()
	s.results.purge()
	sort.Strings(rep.Dropped)
	return rep, nil
}

// quarantineStraysLocked moves unreferenced packs and stale temps into
// quarantine. Caller holds the write lock.
func (s *Store) quarantineStraysLocked(rep *RepairReport) error {
	if s.dir == "" {
		return nil
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if err := s.quarantineLocked(e.Name(), rep); err != nil {
				return err
			}
		}
	}
	packs, err := s.fs.ReadDir(s.packDir())
	if err != nil {
		return err
	}
	for _, e := range packs {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		stray := strings.HasSuffix(name, ".tmp")
		if !stray && strings.HasSuffix(name, ".pack") {
			_, ok := s.packs[strings.TrimSuffix(name, ".pack")]
			stray = !ok
		}
		if stray {
			if err := s.quarantineLocked(filepath.Join("packs", name), rep); err != nil {
				return err
			}
		}
	}
	return nil
}

// quarantineLocked moves one store-relative file into quarantine/ (flat,
// name-collision-safe via the relative path with separators flattened).
// A file that is already gone is fine — quarantine is idempotent. Caller
// holds the write lock.
func (s *Store) quarantineLocked(rel string, rep *RepairReport) error {
	src := filepath.Join(s.dir, rel)
	if _, err := s.fs.Stat(src); err != nil {
		return nil // already gone (e.g. pack lost in the crash being repaired)
	}
	qdir := filepath.Join(s.dir, quarantineDirName)
	if err := s.fs.MkdirAll(qdir); err != nil {
		return err
	}
	dst := filepath.Join(qdir, strings.ReplaceAll(rel, string(filepath.Separator), "__"))
	if err := s.fs.Rename(src, dst); err != nil {
		return err
	}
	if err := s.fs.SyncDir(filepath.Dir(src)); err != nil {
		return err
	}
	if err := s.fs.SyncDir(qdir); err != nil {
		return err
	}
	rep.Quarantined = append(rep.Quarantined, rel)
	rep.QuarantineDir = qdir
	return nil
}
