package store

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"os"
	"testing"

	"charles/internal/csvio"
)

// commitCSV parses csvText (primary key "id") and commits it.
func commitCSV(t *testing.T, s *Store, csvText, parent, msg string) *Version {
	t.Helper()
	tab, err := csvio.Read(bytes.NewReader([]byte(csvText)), csvio.Options{Key: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Commit(tab, parent, msg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// writeRawFile overwrites a store file directly, simulating on-disk damage
// behind the store's back.
func writeRawFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// gzipped wraps raw bytes in a gzip stream, bypassing encodePack — these
// tests hand-craft damaged pack files.
func gzipped(t *testing.T, raw string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Every error a pack decode path constructs must be ErrCorruptStore-typed,
// so callers can errors.Is their way to "restore from backup" without
// string-matching. Each case below pins one construction site that was
// formerly a bare fmt.Errorf/errors.New.
func TestPackDecodeErrorsAreCorruptStoreTyped(t *testing.T) {
	parent := []byte("id,v\n1,a\n2,b\n")
	key := []string{"id"}

	cases := []struct {
		name string
		err  func() error
	}{
		{"encodePack unknown op kind", func() error {
			_, err := encodePack(packMeta{Format: packFormat, Kind: packDelta},
				nil, []deltaOp{{key: "k", kind: '?'}})
			return err
		}},
		{"encodePack unknown pack kind", func() error {
			_, err := encodePack(packMeta{Format: packFormat, Kind: "bogus"}, nil, nil)
			return err
		}},
		{"decodePack torn gzip", func() error {
			_, _, err := decodePack([]byte("not a gzip stream"))
			return err
		}},
		{"decodePack truncated header", func() error {
			_, _, err := decodePack(gzipped(t, `{"format":"charles-pack/1"`))
			return err
		}},
		{"decodePack malformed header JSON", func() error {
			_, _, err := decodePack(gzipped(t, "not json\n"))
			return err
		}},
		{"decodePack unsupported format", func() error {
			_, _, err := decodePack(gzipped(t, `{"format":"charles-pack/999"}`+"\n"))
			return err
		}},
		{"parseOps malformed CSV", func() error {
			_, err := parseOps([]byte("-,k\n\"unterminated"))
			return err
		}},
		{"parseOps short record", func() error {
			_, err := parseOps([]byte("-\n"))
			return err
		}},
		{"parseOps update with odd fields", func() error {
			_, err := parseOps([]byte("~,k,3\n"))
			return err
		}},
		{"parseOps update with non-numeric column", func() error {
			_, err := parseOps([]byte("~,k,x,val\n"))
			return err
		}},
		{"parseOps update with negative column", func() error {
			_, err := parseOps([]byte("~,k,-1,val\n"))
			return err
		}},
		{"parseOps unknown op", func() error {
			_, err := parseOps([]byte("z,k\n"))
			return err
		}},
		{"keyIndices missing key column", func() error {
			_, err := keyIndices([]string{"a", "b"}, []string{"id"})
			return err
		}},
		{"applyDelta non-insert op absent from base", func() error {
			_, err := applyDelta(parent, []deltaOp{{key: "0", kind: '-'}}, key, 2)
			return err
		}},
		{"applyDelta insert with wrong width", func() error {
			_, err := applyDelta(parent, []deltaOp{{key: "0", kind: '+', row: []string{"0"}}}, key, 3)
			return err
		}},
		{"applyDelta update column out of range", func() error {
			_, err := applyDelta(parent,
				[]deltaOp{{key: "1", kind: '~', cols: []int{5}, vals: []string{"x"}}}, key, 2)
			return err
		}},
		{"applyDelta insert already present", func() error {
			_, err := applyDelta(parent,
				[]deltaOp{{key: "1", kind: '+', row: []string{"1", "z"}}}, key, 2)
			return err
		}},
		{"applyDelta row count mismatch", func() error {
			_, err := applyDelta(parent, nil, key, 99)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, ErrCorruptStore) {
				t.Fatalf("error is not ErrCorruptStore-typed: %v", err)
			}
		})
	}
}

// Version-level wrapping: a store whose pack file is damaged on disk must
// surface ErrCorruptStore naming the version, end to end through Checkout
// and Changes — not just from the decode helpers in isolation.
func TestDamagedPackSurfacesTypedErrorEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Big enough that the child's one-cell delta beats a full pack, so v2 is
	// stored as a delta and Changes must decode its pack file.
	var base, child bytes.Buffer
	base.WriteString("id,v\n")
	child.WriteString("id,v\n")
	for i := 10; i < 60; i++ {
		fmt.Fprintf(&base, "%d,row-%d-padding-padding-padding\n", i, i)
		val := i
		if i == 25 {
			val = -1
		}
		fmt.Fprintf(&child, "%d,row-%d-padding-padding-padding\n", i, val)
	}
	v1 := commitCSV(t, s, base.String(), "", "root")
	v2 := commitCSV(t, s, child.String(), v1.ID, "child")
	if s.packs[v2.ID].Kind != packDelta {
		t.Fatalf("test setup: v2 should be delta-encoded, got %q", s.packs[v2.ID].Kind)
	}

	// Corrupt v2's pack in place and reopen so no cache can mask the damage.
	if err := writeRawFile(s.packPath(v2.ID), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, call := range map[string]func() error{
		"Checkout": func() error { _, err := s2.Checkout(v2.ID); return err },
		"Blob":     func() error { _, err := s2.Blob(v2.ID); return err },
		"Changes":  func() error { _, err := s2.Changes(v2.ID); return err },
	} {
		err := call()
		if err == nil {
			t.Fatalf("%s: expected an error for the damaged pack", name)
		}
		if !errors.Is(err, ErrCorruptStore) {
			t.Fatalf("%s: error is not ErrCorruptStore-typed: %v", name, err)
		}
		if !bytes.Contains([]byte(err.Error()), []byte(v2.ID)) {
			t.Fatalf("%s: error does not name the damaged version: %v", name, err)
		}
	}
}
