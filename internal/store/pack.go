package store

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"charles/internal/csvio"
	"charles/internal/diff"
	"charles/internal/table"
)

// packFormat tags every pack file so future layout changes stay detectable.
const packFormat = "charles-pack/1"

// Pack kinds. A full pack carries the complete canonical CSV (an anchor); a
// delta pack carries only the row-level changes against its base version.
const (
	packFull  = "full"
	packDelta = "delta"
)

// packMeta is the JSON header line of a pack file (inside the gzip stream).
type packMeta struct {
	Format string `json:"format"`
	ID     string `json:"id"`
	Kind   string `json:"kind"`           // packFull | packDelta
	Base   string `json:"base,omitempty"` // delta: version the ops apply to
	Rows   int    `json:"rows"`           // data rows of the encoded version
}

// packInfo is the manifest-resident index entry for one pack: everything the
// store needs to plan reconstruction without opening the file.
type packInfo struct {
	Kind    string `json:"kind"`
	Base    string `json:"base,omitempty"`
	Depth   int    `json:"depth"`   // delta-chain length back to the anchor (0 = full)
	Size    int64  `json:"size"`    // encoded pack bytes
	Logical int64  `json:"logical"` // canonical CSV bytes the pack represents
}

// deltaOp is one row-level change. Ops are keyed by the encoded primary key
// and stored sorted, so application is a single merge pass over the base.
type deltaOp struct {
	key  string
	kind byte     // '-' remove, '+' insert, '~' update
	row  []string // '+': the full CSV record
	cols []int    // '~': changed column indices
	vals []string // '~': new cell texts, parallel to cols
}

// encodePack assembles and compresses a pack file: the JSON meta line
// followed by either the canonical CSV (full) or the CSV-encoded op list
// (delta).
func encodePack(meta packMeta, full []byte, ops []deltaOp) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	head, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	head = append(head, '\n')
	if _, err := zw.Write(head); err != nil {
		return nil, err
	}
	switch meta.Kind {
	case packFull:
		if _, err := zw.Write(full); err != nil {
			return nil, err
		}
	case packDelta:
		cw := csv.NewWriter(zw)
		for _, op := range ops {
			var rec []string
			switch op.kind {
			case '-':
				rec = []string{"-", op.key}
			case '+':
				rec = append([]string{"+", op.key}, op.row...)
			case '~':
				rec = []string{"~", op.key}
				for i, c := range op.cols {
					rec = append(rec, strconv.Itoa(c), op.vals[i])
				}
			default:
				return nil, corruptf("unknown delta op %q", op.kind)
			}
			if err := cw.Write(rec); err != nil {
				return nil, err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return nil, err
		}
	default:
		return nil, corruptf("unknown pack kind %q", meta.Kind)
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodePack decompresses a pack file into its meta line and raw body.
// Every failure — a torn gzip stream, an unreadable header, a format the
// code does not know — is ErrCorruptStore-typed at the construction site:
// callers add version context with corruptVersion, never re-type.
func decodePack(data []byte) (packMeta, []byte, error) {
	var meta packMeta
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return meta, nil, corruptf("pack gzip: %v", err)
	}
	defer zr.Close()
	br := bufio.NewReader(zr)
	head, err := br.ReadBytes('\n')
	if err != nil {
		return meta, nil, corruptf("pack header: %v", err)
	}
	if err := json.Unmarshal(head, &meta); err != nil {
		return meta, nil, corruptf("pack header: %v", err)
	}
	if meta.Format != packFormat {
		return meta, nil, corruptf("pack format %q unsupported", meta.Format)
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return meta, nil, corruptf("pack body: %v", err)
	}
	return meta, body, nil
}

// parseOps decodes a delta pack body back into its op list.
func parseOps(body []byte) ([]deltaOp, error) {
	cr := csv.NewReader(bytes.NewReader(body))
	cr.FieldsPerRecord = -1
	var ops []deltaOp
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return nil, corruptf("delta ops: %v", err)
		}
		if len(rec) < 2 {
			return nil, corruptf("delta op with %d fields", len(rec))
		}
		op := deltaOp{key: rec[1]}
		switch rec[0] {
		case "-":
			op.kind = '-'
		case "+":
			op.kind = '+'
			op.row = rec[2:]
		case "~":
			op.kind = '~'
			rest := rec[2:]
			if len(rest) == 0 || len(rest)%2 != 0 {
				return nil, corruptf("update op for key %q has %d fields", op.key, len(rest))
			}
			for i := 0; i < len(rest); i += 2 {
				c, err := strconv.Atoi(rest[i])
				if err != nil || c < 0 {
					return nil, corruptf("update op for key %q: bad column index %q", op.key, rest[i])
				}
				op.cols = append(op.cols, c)
				op.vals = append(op.vals, rest[i+1])
			}
		default:
			return nil, corruptf("unknown delta op %q", rec[0])
		}
		ops = append(ops, op)
	}
}

// parseBlob splits a canonical CSV blob into its header and data records.
func parseBlob(blob []byte) (header []string, rows [][]string, err error) {
	rr := csvio.NewRowReader(bytes.NewReader(blob))
	header, err = rr.Header()
	if err != nil {
		return nil, nil, err
	}
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			return header, rows, nil
		}
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, rec)
	}
}

// keyIndices maps key column names to positions in the header record.
// Canonical blobs write schema names verbatim, so the match is exact — a
// fuzzy (trimmed) match could bind the key to a similarly named column and
// silently misorder the reconstruction merge.
func keyIndices(header, key []string) ([]int, error) {
	idx := make([]int, len(key))
	for i, k := range key {
		pos := -1
		for ci, name := range header {
			if name == k {
				pos = ci
				break
			}
		}
		if pos < 0 {
			return nil, corruptf("key column %q not in header", k)
		}
		idx[i] = pos
	}
	return idx, nil
}

// recordKey encodes the primary key of one CSV record exactly as
// table.KeyFor encodes it from a table row — canonical CSV cells are written
// with Value.Str, and both go through table.EncodeKey (which escapes the
// part separator, so a cell containing it cannot alias another key).
func recordKey(rec []string, keyIdx []int) string {
	if len(keyIdx) == 1 {
		return rec[keyIdx[0]]
	}
	parts := make([]string, len(keyIdx))
	for i, ci := range keyIdx {
		parts[i] = rec[ci]
	}
	return table.EncodeKey(parts)
}

// recordKeys encodes every record's key.
func recordKeys(rows [][]string, keyIdx []int) []string {
	out := make([]string, len(rows))
	for i, rec := range rows {
		out[i] = recordKey(rec, keyIdx)
	}
	return out
}

// encodeDelta computes the row-level ops transforming the parent blob into
// the child blob, matching rows on the encoded primary key. It reports
// ok=false (with no error) when the pair is not delta-encodable: differing
// headers (schema change) or duplicate keys on either side — the commit then
// falls back to a full pack.
func encodeDelta(parentBlob, childBlob []byte, key []string) (ops []deltaOp, ok bool, err error) {
	// CR anywhere in either blob forces a full pack: Go's csv.Reader
	// normalizes "\r\n" to "\n" inside quoted cells, so a parse→re-emit
	// round-trip of CR-bearing rows would NOT be byte-identical and the
	// reconstructed blob would no longer hash to the version's content id.
	// Full packs store the canonical bytes verbatim and are immune.
	if bytes.IndexByte(parentBlob, '\r') >= 0 || bytes.IndexByte(childBlob, '\r') >= 0 {
		return nil, false, nil
	}
	ph, prows, err := parseBlob(parentBlob)
	if err != nil {
		return nil, false, err
	}
	ch, crows, err := parseBlob(childBlob)
	if err != nil {
		return nil, false, err
	}
	if len(ph) != len(ch) {
		return nil, false, nil
	}
	for i := range ph {
		if ph[i] != ch[i] {
			return nil, false, nil
		}
	}
	keyIdx, err := keyIndices(ch, key)
	if err != nil {
		return nil, false, nil // key not resolvable against this schema: full pack
	}
	pkeys := recordKeys(prows, keyIdx)
	ckeys := recordKeys(crows, keyIdx)
	m, err := diff.MatchKeys(pkeys, ckeys)
	if err != nil {
		return nil, false, nil // duplicate keys: row identity is ambiguous, full pack
	}
	for _, r := range m.SrcOnly {
		ops = append(ops, deltaOp{key: pkeys[r], kind: '-'})
	}
	for _, r := range m.TgtOnly {
		ops = append(ops, deltaOp{key: ckeys[r], kind: '+', row: crows[r]})
	}
	for _, p := range m.Pairs {
		prec, crec := prows[p[0]], crows[p[1]]
		var cols []int
		var vals []string
		for ci := range prec {
			if prec[ci] != crec[ci] {
				cols = append(cols, ci)
				vals = append(vals, crec[ci])
			}
		}
		if len(cols) > 0 {
			ops = append(ops, deltaOp{key: ckeys[p[1]], kind: '~', cols: cols, vals: vals})
		}
	}
	// Both blobs are key-sorted, so a key-sorted op list lets application be
	// a single streaming merge.
	sort.Slice(ops, func(i, j int) bool { return ops[i].key < ops[j].key })
	return ops, true, nil
}

// applyDelta reconstructs a child blob by merging the parent blob with a
// key-sorted op list in one streaming pass. Both the parent and the output
// are canonical (key-sorted, csv.Writer quoting), so the result is
// byte-identical to the child's original canonical serialization. wantRows
// guards against truncated or mismatched packs.
func applyDelta(parentBlob []byte, ops []deltaOp, key []string, wantRows int) ([]byte, error) {
	rr := csvio.NewRowReader(bytes.NewReader(parentBlob))
	header, err := rr.Header()
	if err != nil {
		return nil, err
	}
	keyIdx, err := keyIndices(header, key)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	ww := csvio.NewRowWriter(&buf)
	if err := ww.Write(header); err != nil {
		return nil, err
	}
	rows := 0
	emit := func(rec []string) error {
		rows++
		return ww.Write(rec)
	}
	oi := 0
	// insertsBefore drains '+' ops whose key sorts before limit (or all
	// remaining when limit is empty). Any non-insert op encountered refers
	// to a key the parent does not have — a corrupt pack.
	insertsBefore := func(limit string, bounded bool) error {
		for oi < len(ops) && (!bounded || ops[oi].key < limit) {
			op := ops[oi]
			if op.kind != '+' {
				return corruptf("op %q for key %q not present in base", op.kind, op.key)
			}
			if len(op.row) != len(header) {
				return corruptf("insert for key %q has %d fields, want %d", op.key, len(op.row), len(header))
			}
			oi++
			if err := emit(op.row); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		k := recordKey(rec, keyIdx)
		if err := insertsBefore(k, true); err != nil {
			return nil, err
		}
		if oi < len(ops) && ops[oi].key == k {
			op := ops[oi]
			oi++
			switch op.kind {
			case '-':
				continue
			case '~':
				patched := append([]string(nil), rec...)
				for i, ci := range op.cols {
					if ci < 0 || ci >= len(patched) {
						return nil, corruptf("update for key %q: column %d out of range", k, ci)
					}
					patched[ci] = op.vals[i]
				}
				if err := emit(patched); err != nil {
					return nil, err
				}
			case '+':
				return nil, corruptf("insert for key %q already present in base", k)
			}
			continue
		}
		if err := emit(rec); err != nil {
			return nil, err
		}
	}
	if err := insertsBefore("", false); err != nil {
		return nil, err
	}
	if err := ww.Flush(); err != nil {
		return nil, err
	}
	if rows != wantRows {
		return nil, corruptf("reconstructed %d rows, pack declares %d", rows, wantRows)
	}
	return buf.Bytes(), nil
}
