package store

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"charles/internal/core"
	"charles/internal/gen"
	"charles/internal/table"
)

func TestCommitCheckoutRoundTrip(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	src, _ := gen.Toy()
	v, err := s.Commit(src, "", "2016 snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if v.Rows != 9 || v.Seq != 1 || v.Parent != "" {
		t.Errorf("version = %+v", v)
	}
	back, err := s.Checkout(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 9 {
		t.Errorf("checkout rows = %d", back.NumRows())
	}
	// Values survive (canonical order may differ from insertion order).
	row, err := back.RowByKey("Anne")
	if err != nil || row < 0 {
		t.Fatalf("Anne missing after round-trip: %d, %v", row, err)
	}
	val, err := back.Value(row, "bonus")
	if err != nil || val.Float() != 23000 {
		t.Errorf("Anne bonus = %v", val)
	}
}

func TestContentAddressing(t *testing.T) {
	s, _ := Open("")
	src, _ := gen.Toy()
	v1, err := s.Commit(src, "", "first")
	if err != nil {
		t.Fatal(err)
	}
	// Identical content commits to the same id (and does not duplicate).
	v2, err := s.Commit(src.Clone(), "", "dup")
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID != v2.ID {
		t.Errorf("identical content produced different ids: %s vs %s", v1.ID, v2.ID)
	}
	if len(s.Log()) != 1 {
		t.Errorf("log has %d entries, want 1", len(s.Log()))
	}
	// Row order does not matter: permuted rows hash identically.
	perm := src.Gather([]int{8, 7, 6, 5, 4, 3, 2, 1, 0})
	v3, err := s.Commit(perm, "", "permuted")
	if err != nil {
		t.Fatal(err)
	}
	if v3.ID != v1.ID {
		t.Error("row permutation changed the content id")
	}
}

func TestLineageAndLog(t *testing.T) {
	s, _ := Open("")
	d1, d2 := gen.Toy()
	v1, err := s.Commit(d1, "", "2016")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(d2, v1.ID, "2017")
	if err != nil {
		t.Fatal(err)
	}
	lineage, err := s.Lineage(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(lineage) != 2 || lineage[0].ID != v2.ID || lineage[1].ID != v1.ID {
		t.Errorf("lineage = %+v", lineage)
	}
	log := s.Log()
	if len(log) != 2 || log[0].Seq != 1 || log[1].Seq != 2 {
		t.Errorf("log = %+v", log)
	}
}

func TestCommitValidation(t *testing.T) {
	s, _ := Open("")
	noKey := table.MustNew(table.Schema{{Name: "x", Type: table.Int}})
	noKey.MustAppendRow(table.I(1))
	if _, err := s.Commit(noKey, "", "bad"); err == nil {
		t.Error("keyless table accepted")
	}
	src, _ := gen.Toy()
	if _, err := s.Commit(src, "nonexistent", "orphan"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown parent: %v", err)
	}
	if _, err := s.Checkout("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown checkout: %v", err)
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown get: %v", err)
	}
}

func TestDiffAndSummarizeBetweenVersions(t *testing.T) {
	s, _ := Open("")
	d1, d2 := gen.Toy()
	v1, err := s.Commit(d1, "", "2016")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(d2, v1.ID, "2017 raises")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Diff(v1.ID, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	ud, err := a.UpdateDistance(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ud == 0 {
		t.Error("versions should differ")
	}
	ranked, err := s.Summarize(v1.ID, v2.ID, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Breakdown.Score < 0.85 {
		t.Errorf("cross-version summary score = %v", ranked[0].Breakdown.Score)
	}
	if ranked[0].Summary.Size() != 3 {
		t.Errorf("cross-version summary size = %d", ranked[0].Summary.Size())
	}
}

func TestPersistenceAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := gen.Toy()
	v1, err := s1.Commit(d1, "", "2016")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s1.Commit(d2, v1.ID, "2017")
	if err != nil {
		t.Fatal(err)
	}

	// Re-open from disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	log := s2.Log()
	if len(log) != 2 {
		t.Fatalf("reloaded log = %d entries", len(log))
	}
	if log[1].ID != v2.ID || log[1].Parent != v1.ID || log[1].Message != "2017" {
		t.Errorf("reloaded metadata = %+v", log[1])
	}
	back, err := s2.Checkout(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	row, err := back.RowByKey("Anne")
	if err != nil {
		t.Fatal(err)
	}
	val, _ := back.Value(row, "bonus")
	if val.Float() != 25150 {
		t.Errorf("reloaded Anne 2017 bonus = %v", val)
	}
	// And summarization still works on the reloaded store.
	ranked, err := s2.Summarize(v1.ID, v2.ID, core.DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Summary.Size() != 3 {
		t.Errorf("post-reload summary size = %d", ranked[0].Summary.Size())
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(dir+"/manifest.json", "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestCommitDedupLineageConflict(t *testing.T) {
	s, _ := Open("")
	d1, d2 := gen.Toy()
	v1, err := s.Commit(d1, "", "2016")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(d2, v1.ID, "2017")
	if err != nil {
		t.Fatal(err)
	}
	// Re-committing identical content with the *same* parent dedups quietly.
	again, err := s.Commit(d2.Clone(), v1.ID, "2017 again")
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != v2.ID {
		t.Errorf("dedup returned %s, want %s", again.ID, v2.ID)
	}
	// Re-committing identical content with a *different* parent is a
	// lineage conflict, not a silent rewrite.
	if _, err := s.Commit(d2.Clone(), "", "orphaned 2017"); !errors.Is(err, ErrLineageConflict) {
		t.Errorf("conflicting parent: got %v, want ErrLineageConflict", err)
	}
	if _, err := s.Commit(d1.Clone(), v2.ID, "2016 rebased"); !errors.Is(err, ErrLineageConflict) {
		t.Errorf("conflicting parent: got %v, want ErrLineageConflict", err)
	}
	if len(s.Log()) != 2 {
		t.Errorf("conflicting commits changed the log: %d entries", len(s.Log()))
	}
}

func TestLineageCycleDetected(t *testing.T) {
	s, _ := Open("")
	d1, d2 := gen.Toy()
	v1, err := s.Commit(d1, "", "2016")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(d2, v1.ID, "2017")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a hand-edited/corrupt manifest: point the root back at the
	// child, forming a cycle. (Content addressing can't create this.)
	s.versions[v1.ID].Parent = v2.ID
	if _, err := s.Lineage(v2.ID); err == nil || !strings.Contains(err.Error(), "lineage cycle") {
		t.Errorf("cyclic lineage: got %v, want lineage cycle error", err)
	}
	// Self-cycle, too.
	s.versions[v1.ID].Parent = v1.ID
	if _, err := s.Lineage(v1.ID); err == nil || !strings.Contains(err.Error(), "lineage cycle") {
		t.Errorf("self-cycle: got %v, want lineage cycle error", err)
	}
}

// TestConcurrentStoreHammer exercises one Store from many goroutines under
// -race: concurrent commits of distinct content, checkouts, log walks,
// lineage walks, and full engine summarizations.
func TestConcurrentStoreHammer(t *testing.T) {
	s, _ := Open("")
	d1, d2 := gen.Toy()
	v1, err := s.Commit(d1, "", "2016")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(d2, v1.ID, "2017")
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers = 4, 8
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers+2)

	// Writers: distinct content per goroutine (perturb one bonus cell).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent := v2.ID
			for i := 0; i < 5; i++ {
				mod := d2.Clone()
				row, err := mod.RowByKey("Anne")
				if err != nil {
					errc <- err
					return
				}
				if err := mod.MustColumn("bonus").Set(row, table.F(float64(30000+w*1000+i))); err != nil {
					errc <- err
					return
				}
				v, err := s.Commit(mod, parent, "hammer")
				if err != nil {
					errc <- err
					return
				}
				parent = v.ID
			}
		}(w)
	}
	// Readers: checkout, log, get, lineage on whatever exists.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, v := range s.Log() {
					if _, err := s.Get(v.ID); err != nil {
						errc <- err
						return
					}
				}
				if _, err := s.Checkout(v2.ID); err != nil {
					errc <- err
					return
				}
				if _, err := s.Lineage(v2.ID); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	// Summarizers: run the engine across the two fixed versions while
	// commits land.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Summarize(v1.ID, v2.ID, core.DefaultOptions("bonus")); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// All writer commits landed with distinct content → distinct versions.
	want := 2 + writers*5
	if got := len(s.Log()); got != want {
		t.Errorf("log has %d entries, want %d", got, want)
	}
	seqs := map[int]bool{}
	for _, v := range s.Log() {
		if seqs[v.Seq] {
			t.Errorf("duplicate seq %d", v.Seq)
		}
		seqs[v.Seq] = true
	}
}

// TestChainAndHead pins the lineage-walk helpers behind POST /timeline:
// Chain returns root→head order (Lineage reversed), Head the latest commit.
func TestChainAndHead(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Head(); !errors.Is(err, ErrNotFound) {
		t.Errorf("empty store Head err = %v, want ErrNotFound", err)
	}
	snaps, err := gen.Chain(gen.ChainConfig{N: 20, Steps: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	parent := ""
	for _, snap := range snaps {
		v, err := s.Commit(snap, parent, "step")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	head, err := s.Head()
	if err != nil {
		t.Fatal(err)
	}
	if head.ID != ids[len(ids)-1] {
		t.Errorf("head = %s, want %s", head.ID, ids[len(ids)-1])
	}
	chain, err := s.Chain(head.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != len(ids) {
		t.Fatalf("chain length = %d, want %d", len(chain), len(ids))
	}
	for i, v := range chain {
		if v.ID != ids[i] {
			t.Errorf("chain[%d] = %s, want root→head order %s", i, v.ID, ids[i])
		}
	}
	if _, err := s.Chain("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown head err = %v", err)
	}
}
