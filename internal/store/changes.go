package store

import (
	"bytes"
	"fmt"

	"charles/internal/csvio"
	"charles/internal/diff"
)

// ChangeSet is the first-class decoded-delta surface of one version: the
// exact row-level ops (removed keys, inserted rows, cell patches) its delta
// pack persists, or Materialized=true for versions stored as full snapshots
// (anchors, roots, full-pack fallbacks). It is diff.ChangeSet, so the diff
// layer can answer change queries and materialize snapshots from it without
// importing the store.
type ChangeSet = diff.ChangeSet

// changeSetFor returns id's decoded ops through the change-set LRU. The
// returned set is shared and must not be mutated; Columns is left empty
// (Changes resolves it for presentation callers).
func (s *Store) changeSetFor(id string) (*ChangeSet, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	if cs, ok := s.changes.get(id); ok {
		return cs, nil
	}
	var (
		vok, pok bool
		pi       *packInfo
		mem      []byte
	)
	func() {
		s.mu.RLock()
		defer s.mu.RUnlock()
		_, vok = s.versions[id]
		pi, pok = s.packs[id]
		mem = s.mem[id]
	}()
	if !vok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !pok {
		return nil, fmt.Errorf("%w: version %s has no pack index entry", ErrCorruptStore, id)
	}
	cs := &ChangeSet{Version: id}
	if pi.Kind != packDelta {
		cs.Materialized = true
		s.changes.add(id, cs)
		return cs, nil
	}
	cs.Base = pi.Base
	data := mem
	if data == nil {
		var err error
		// Through the vfs seam, like every read the crash-injection suite
		// must be able to fault — a direct os.ReadFile here would read the
		// real filesystem out from under a faultfs-backed store.
		data, err = s.fs.ReadFile(s.packPath(id))
		if err != nil {
			return nil, fmt.Errorf("%w: version %s: pack file: %v", ErrCorruptStore, id, err)
		}
	}
	meta, body, err := decodePack(data)
	if err != nil {
		return nil, corruptVersion(id, err)
	}
	if meta.ID != id {
		return nil, fmt.Errorf("%w: version %s: pack holds %s", ErrCorruptStore, id, meta.ID)
	}
	if meta.Kind != packDelta {
		return nil, fmt.Errorf("%w: version %s: manifest says delta, pack says %q", ErrCorruptStore, id, meta.Kind)
	}
	ops, err := parseOps(body)
	if err != nil {
		return nil, corruptVersion(id, err)
	}
	for _, op := range ops {
		switch op.kind {
		case '-':
			cs.Removed = append(cs.Removed, op.key)
		case '+':
			cs.Inserted = append(cs.Inserted, diff.InsertedRow{Key: op.key, Cells: op.row})
		case '~':
			cs.Patched = append(cs.Patched, diff.RowPatch{Key: op.key, Cols: op.cols, Vals: op.vals})
		}
	}
	s.changes.add(id, cs)
	return cs, nil
}

// Changes returns version id's decoded delta ops: what changed, row by row
// and cell by cell, between its parent and itself — served straight from the
// delta pack, without reconstructing either snapshot. Versions stored whole
// report Materialized=true and carry no ops. For delta versions the result's
// Columns names the canonical header, so patch column indices are
// interpretable. The returned set is shared with the store's cache: callers
// must treat it as read-only.
func (s *Store) Changes(id string) (*ChangeSet, error) {
	cs, err := s.changeSetFor(id)
	if err != nil {
		return nil, err
	}
	if cs.Materialized || cs.Columns != nil {
		return cs, nil
	}
	// Resolve the canonical header once: from the base's decoded table when
	// it happens to be resident, else from its (cached, hash-verified) blob.
	// The column-enriched set replaces the cache entry — cached instances
	// are immutable, so later calls are O(1) and concurrent readers of the
	// bare instance are unaffected.
	var header []string
	if t, ok := s.tables.get(cs.Base); ok {
		header = t.Schema().Names()
	} else {
		blob, err := s.blobFor(cs.Base)
		if err != nil {
			return nil, err
		}
		if header, err = csvio.NewRowReader(bytes.NewReader(blob)).Header(); err != nil {
			return nil, fmt.Errorf("%w: version %s: base header: %v", ErrCorruptStore, cs.Base, err)
		}
	}
	out := *cs // shallow copy: never mutate the cached instance
	out.Columns = header
	s.changes.add(id, &out)
	return &out, nil
}

// DeltaOps is the lightweight form of Changes the history layer's chain
// materializer consumes (history.DeltaSource): the cached op set with no
// column-name resolution. Callers must not mutate the result.
func (s *Store) DeltaOps(id string) (*ChangeSet, error) {
	return s.changeSetFor(id)
}

// deltaPath reports whether toID is reachable from fromID through delta
// packs alone (every hop a delta, no anchor in between) and returns the hop
// ids oldest-first. fromID == toID is trivially connected with no hops.
func (s *Store) deltaPath(fromID, toID string) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var hops []string
	cur := toID
	for cur != fromID {
		pi := s.packs[cur]
		if pi == nil || pi.Kind != packDelta || pi.Base == "" || len(hops) > len(s.packs) {
			return nil, false
		}
		hops = append(hops, cur)
		cur = pi.Base
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return hops, true
}

// DiffResult answers a change query between two stored versions: removed and
// inserted entities plus every modified cell, compared with the given
// absolute tolerance. When toID is delta-connected to fromID (every pack on
// the path is a delta), the answer is assembled straight from the decoded
// delta ops and one checkout of fromID — no reconstruction or parse of toID,
// no full row alignment — and deltaNative reports true. Otherwise (anchor on
// the path, diff against an ancestor's ancestor across an anchor, unrelated
// versions, or ops the delta evaluator cannot faithfully answer) it falls
// back to the checkout+align path, which returns the bit-identical result
// on every schema-stable pair (see diff.ResultFromChangeSets for the one
// deliberate asymmetry: type-narrowing deltas are answered delta-natively
// under the source schema, where the align path refuses the pair).
// Answers are memoized in an LRU keyed (from, to, tol) — version content is
// immutable, so a computed answer never goes stale and a repeated query is a
// cache hit. The returned Result is shared: callers must not mutate it.
func (s *Store) DiffResult(fromID, toID string, tol float64) (res *diff.Result, deltaNative bool, err error) {
	if _, err := s.Get(fromID); err != nil {
		return nil, false, err
	}
	if _, err := s.Get(toID); err != nil {
		return nil, false, err
	}
	cacheKey := fmt.Sprintf("%s|%s|%g", fromID, toID, tol)
	if ans, ok := s.results.get(cacheKey); ok {
		return ans.res, ans.native, nil
	}
	defer func() {
		if err == nil {
			s.results.add(cacheKey, &diffAnswer{res: res, native: deltaNative})
		}
	}()
	if hops, ok := s.deltaPath(fromID, toID); ok {
		sets := make([]*ChangeSet, len(hops))
		for i, id := range hops {
			if sets[i], err = s.changeSetFor(id); err != nil {
				return nil, false, err
			}
		}
		parent, err := s.tableFor(fromID)
		if err != nil {
			return nil, false, err
		}
		if res, rerr := diff.ResultFromChangeSets(parent, sets, tol); rerr == nil {
			// Trust the ops only once toID's reconstruction has been
			// content-verified: blobFor re-hashes the blob the very ops on
			// this path compose into, so a decodable-but-tampered delta
			// pack errors here exactly as it would on Checkout instead of
			// slipping a fabricated answer through. The blob LRU makes
			// this a cache hit on warm stores and a one-time (parse-free)
			// check on cold ones.
			if _, verr := s.blobFor(toID); verr != nil {
				return nil, false, verr
			}
			return res, true, nil
		}
		// Not answerable from deltas (non-canonical cells, compose
		// anomaly): the align path below re-derives the answer from the
		// materialized snapshots and surfaces any real corruption.
	}
	src, err := s.tableFor(fromID)
	if err != nil {
		return nil, false, err
	}
	tgt, err := s.tableFor(toID)
	if err != nil {
		return nil, false, err
	}
	res, err = diff.ResultFromPair(src, tgt, tol)
	return res, false, err
}
