package store

import (
	"container/list"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"charles/internal/table"
	"charles/internal/vfs"
)

// ErrHubClosed is returned by every operation on a hub after Close.
var ErrHubClosed = errors.New("store: hub is closed")

// ErrInvalidName rejects tenant/dataset components that could escape the
// hub's directory tree (path separators, "..", hidden/empty names). The hub
// builds shard paths by joining these components, so validation is the only
// thing standing between a request URL and a directory traversal.
var ErrInvalidName = errors.New("store: invalid tenant or dataset name")

// ErrUnknownDataset is returned when a read-side acquire names a dataset
// the hub has never seen: unlike Acquire, the read path must not invent an
// empty store (and a directory) for every typo'd URL.
var ErrUnknownDataset = errors.New("store: unknown dataset")

// DefaultMaxOpen is the default cap on simultaneously open shards.
const DefaultMaxOpen = 32

// HubOptions tune a hub opened with OpenHubWith.
type HubOptions struct {
	// MaxOpen caps how many shards stay open at once (0 means
	// DefaultMaxOpen). It is a soft cap: shards pinned by in-flight
	// requests are never evicted, so a burst touching more than MaxOpen
	// distinct datasets temporarily exceeds it; idle shards beyond the cap
	// are closed least-recently-used first.
	MaxOpen int
	// MemoryBudget, when positive, is the total byte budget shared by
	// every open shard's caches (decoded tables, blobs, change sets, diff
	// answers). One cap for the whole hub — opening more shards does not
	// multiply the memory ceiling. 0 means unlimited.
	MemoryBudget int64
	// Store configures each shard's Store. Store.Budget is overridden by
	// the hub's shared budget.
	Store Options
}

func (o HubOptions) withDefaults() HubOptions {
	if o.MaxOpen <= 0 {
		o.MaxOpen = DefaultMaxOpen
	}
	return o
}

// Hub is a namespace of pack stores: tenant/dataset → *Store, each shard in
// its own directory under the hub root with its own lock. Commits to
// different shards share no mutex — only the byte-accounted memory budget —
// so they proceed fully concurrently. Shards open lazily on first use and
// the least-recently-used idle shards are closed once more than MaxOpen are
// open. A Hub is safe for concurrent use.
type Hub struct {
	dir    string // "" = memory-only shards (tests)
	opts   HubOptions
	fs     vfs.FS
	budget *Budget // shared across every shard's caches; nil = unlimited

	mu     sync.Mutex
	shards map[string]*shard // key = tenant + "/" + dataset
	ll     *list.List        // *shard recency; front = most recently used
	closed bool

	// Hub-level commit-notification state (subscribe.go): the fan-in of
	// every open shard's store feed. Guarded by its own subMu — delivery
	// never runs under the hub lock.
	subMu      sync.Mutex
	subs       map[*HubSubscription]struct{}
	closedSubs bool
}

// shard is one open store plus its hub bookkeeping. refs counts in-flight
// acquisitions: only refs==0 shards are evictable. ready is closed once the
// opening goroutine has populated st/err, so concurrent acquirers of a
// shard being opened block on the channel, not on the hub lock.
type shard struct {
	key     string
	tenant  string
	dataset string

	ready chan struct{} // closed when open finished; then st/err are frozen
	st    *Store
	err   error

	el      *list.Element // position in Hub.ll (guarded by Hub.mu)
	refs    int           // guarded by Hub.mu
	commits atomic.Int64  // successful commits through Hub.Commit
	reads   atomic.Int64  // read-side operations through hub helpers
}

// OpenHub opens (creating if needed) a hub rooted at dir with defaults.
func OpenHub(dir string) (*Hub, error) {
	return OpenHubWith(dir, HubOptions{})
}

// OpenHubWith opens a hub rooted at dir. An empty dir makes every shard
// memory-only (nothing persists — the test configuration). Shard stores
// live at dir/<tenant>/<dataset>/.
func OpenHubWith(dir string, opts HubOptions) (*Hub, error) {
	opts = opts.withDefaults()
	fs := opts.Store.FS
	if fs == nil {
		fs = vfs.OS{}
	}
	if dir != "" {
		if err := fs.MkdirAll(dir); err != nil {
			return nil, fmt.Errorf("store: create hub dir: %w", err)
		}
	}
	return &Hub{
		dir:    dir,
		opts:   opts,
		fs:     fs,
		budget: NewBudget(opts.MemoryBudget),
		shards: map[string]*shard{},
		ll:     list.New(),
	}, nil
}

// validateName admits path-safe tenant/dataset components: ASCII letters,
// digits, '-', '_', '.', length 1..128, and no leading dot (which also
// rules out "." and "..").
func validateName(name string) error {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return fmt.Errorf("%w: %q", ErrInvalidName, name)
		}
	}
	return nil
}

// shardDir returns the shard's directory, or "" for a memory-only hub.
func (h *Hub) shardDir(tenant, dataset string) string {
	if h.dir == "" {
		return ""
	}
	return filepath.Join(h.dir, tenant, dataset)
}

// Acquire returns the shard store for tenant/dataset, opening (and, on
// first use, creating) it as needed, plus a release func the caller MUST
// call when done — a held shard is pinned against idle eviction. The
// returned store may be closed by the hub after release; re-acquire rather
// than retaining it.
func (h *Hub) Acquire(tenant, dataset string) (*Store, func(), error) {
	sh, err := h.acquire(tenant, dataset, true)
	if err != nil {
		return nil, nil, err
	}
	return sh.st, func() { h.release(sh) }, nil
}

// AcquireExisting is Acquire for read paths: a dataset that was never
// committed to is reported as ErrUnknownDataset instead of being created.
func (h *Hub) AcquireExisting(tenant, dataset string) (*Store, func(), error) {
	sh, err := h.acquire(tenant, dataset, false)
	if err != nil {
		return nil, nil, err
	}
	return sh.st, func() { h.release(sh) }, nil
}

func (h *Hub) acquire(tenant, dataset string, create bool) (*shard, error) {
	if err := validateName(tenant); err != nil {
		return nil, err
	}
	if err := validateName(dataset); err != nil {
		return nil, err
	}
	key := tenant + "/" + dataset
	var (
		sh      *shard
		created bool
		errOut  error
	)
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.closed {
			errOut = ErrHubClosed
			return
		}
		if existing, ok := h.shards[key]; ok {
			existing.refs++
			h.ll.MoveToFront(existing.el)
			sh = existing
			return
		}
		sh = &shard{key: key, tenant: tenant, dataset: dataset, refs: 1, ready: make(chan struct{})}
		sh.el = h.ll.PushFront(sh)
		h.shards[key] = sh
		created = true
	}()
	if errOut != nil {
		return nil, errOut
	}
	if created {
		sh.st, sh.err = h.openShard(tenant, dataset, create)
		close(sh.ready)
		if sh.err != nil {
			// Un-register the failed shard so the next acquire retries
			// (e.g. the dataset gets created after a read-side miss).
			func() {
				h.mu.Lock()
				defer h.mu.Unlock()
				if cur, ok := h.shards[key]; ok && cur == sh {
					h.ll.Remove(sh.el)
					delete(h.shards, key)
				}
			}()
			return nil, sh.err
		}
		// Bridge the new shard's commit feed into the hub-level feed. The
		// forwarder exits when the shard store is closed (idle eviction or
		// hub shutdown closes the subscription channel); a re-opened shard
		// spawns a fresh one.
		go h.forwardShard(sh.tenant, sh.dataset, sh.st.Subscribe(0))
		h.evictIdle()
		return sh, nil
	}
	<-sh.ready
	if sh.err != nil {
		// The opener already un-registered the shard; just drop our pin.
		func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			sh.refs--
		}()
		return nil, sh.err
	}
	return sh, nil
}

// openShard opens one shard store, off the hub lock (store opening reads
// and possibly migrates the manifest — far too slow to serialize the hub).
func (h *Hub) openShard(tenant, dataset string, create bool) (*Store, error) {
	dir := h.shardDir(tenant, dataset)
	if dir == "" {
		if !create {
			return nil, fmt.Errorf("%w: %s/%s", ErrUnknownDataset, tenant, dataset)
		}
		return OpenWith("", h.storeOptions())
	}
	if !create {
		if _, err := h.fs.Stat(dir); err != nil {
			return nil, fmt.Errorf("%w: %s/%s", ErrUnknownDataset, tenant, dataset)
		}
	}
	return OpenWith(dir, h.storeOptions())
}

// storeOptions is the per-shard Options: the configured store options with
// the hub's shared budget substituted in.
func (h *Hub) storeOptions() Options {
	o := h.opts.Store
	o.Budget = h.budget
	return o
}

// release drops one acquisition pin and sweeps idle shards over the cap.
func (h *Hub) release(sh *shard) {
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		sh.refs--
	}()
	h.evictIdle()
}

// evictIdle closes least-recently-used shards with no holders until at
// most MaxOpen remain open. Store.Close purges the shard's caches, so the
// shared budget gets the memory back immediately.
func (h *Hub) evictIdle() {
	var victims []*Store
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.closed {
			return
		}
		for h.ll.Len() > h.opts.MaxOpen {
			var victim *list.Element
			for el := h.ll.Back(); el != nil; el = el.Prev() {
				if sh := el.Value.(*shard); sh.refs == 0 && sh.err == nil {
					victim = el
					break
				}
			}
			if victim == nil {
				return // everything over the cap is pinned; soft cap yields
			}
			sh := victim.Value.(*shard)
			h.ll.Remove(victim)
			delete(h.shards, sh.key)
			victims = append(victims, sh.st)
		}
	}()
	for _, st := range victims {
		st.Close()
	}
}

// Commit acquires the shard and commits t, bumping the shard's commit
// counter on success. The counters let tests (and /stats) pin that commit
// traffic to one shard makes progress independently of every other shard.
func (h *Hub) Commit(tenant, dataset string, t *table.Table, parent, message string) (*Version, error) {
	sh, err := h.acquire(tenant, dataset, true)
	if err != nil {
		return nil, err
	}
	defer h.release(sh)
	v, err := sh.st.Commit(t, parent, message)
	if err != nil {
		return nil, err
	}
	sh.commits.Add(1)
	return v, nil
}

// MarkRead bumps the shard's read counter (the serve layer calls it once
// per read-side request it resolves to this shard).
func (h *Hub) MarkRead(tenant, dataset string) {
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if sh, ok := h.shards[tenant+"/"+dataset]; ok {
			sh.reads.Add(1)
		}
	}()
}

// MarkCommit bumps the shard's commit counter (the serve layer calls it
// after a successful commit through an acquired shard; Hub.Commit counts
// its own).
func (h *Hub) MarkCommit(tenant, dataset string) {
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if sh, ok := h.shards[tenant+"/"+dataset]; ok {
			sh.commits.Add(1)
		}
	}()
}

// DatasetRef names one dataset in the hub.
type DatasetRef struct {
	Tenant  string `json:"tenant"`
	Dataset string `json:"dataset"`
}

// Datasets lists every dataset the hub knows: all tenant/dataset
// directories under the root, plus (for memory-only hubs) every open
// shard. Sorted by tenant then dataset.
func (h *Hub) Datasets() ([]DatasetRef, error) {
	seen := map[string]DatasetRef{}
	errOut := func() error {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.closed {
			return ErrHubClosed
		}
		for _, sh := range h.shards {
			seen[sh.key] = DatasetRef{Tenant: sh.tenant, Dataset: sh.dataset}
		}
		return nil
	}()
	if errOut != nil {
		return nil, errOut
	}
	if h.dir != "" {
		tenants, err := h.fs.ReadDir(h.dir)
		if err != nil {
			return nil, fmt.Errorf("store: list hub dir: %w", err)
		}
		for _, te := range tenants {
			if !te.IsDir() || validateName(te.Name()) != nil {
				continue
			}
			dss, err := h.fs.ReadDir(filepath.Join(h.dir, te.Name()))
			if err != nil {
				return nil, fmt.Errorf("store: list tenant %s: %w", te.Name(), err)
			}
			for _, de := range dss {
				if !de.IsDir() || validateName(de.Name()) != nil {
					continue
				}
				seen[te.Name()+"/"+de.Name()] = DatasetRef{Tenant: te.Name(), Dataset: de.Name()}
			}
		}
	}
	refs := make([]DatasetRef, 0, len(seen))
	for _, r := range seen {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Tenant != refs[j].Tenant {
			return refs[i].Tenant < refs[j].Tenant
		}
		return refs[i].Dataset < refs[j].Dataset
	})
	return refs, nil
}

// ShardStats is one open shard's stats as reported by HubStats.
type ShardStats struct {
	Tenant  string `json:"tenant"`
	Dataset string `json:"dataset"`
	Refs    int    `json:"refs"`
	Commits int64  `json:"commits"`
	Reads   int64  `json:"reads"`
	Store   Stats  `json:"store"`
}

// HubStats snapshots the hub: which shards are open, their per-shard
// counters, and the shared memory budget's byte accounting.
type HubStats struct {
	OpenShards int          `json:"openShards"`
	MaxOpen    int          `json:"maxOpen"`
	Budget     BudgetStats  `json:"budget"`
	Shards     []ShardStats `json:"shards"`
}

// Stats snapshots the hub's shard table and budget accounting.
func (h *Hub) Stats() HubStats {
	type open struct {
		sh *shard
	}
	var opened []open
	st := HubStats{MaxOpen: h.opts.MaxOpen, Budget: h.budget.Stats()}
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		st.OpenShards = len(h.shards)
		for _, sh := range h.shards {
			opened = append(opened, open{sh})
		}
	}()
	for _, o := range opened {
		sh := o.sh
		select {
		case <-sh.ready:
		default:
			continue // still opening; skip rather than block stats
		}
		if sh.err != nil {
			continue
		}
		ss := ShardStats{
			Tenant: sh.tenant, Dataset: sh.dataset,
			Commits: sh.commits.Load(), Reads: sh.reads.Load(),
			Store: sh.st.Stats(),
		}
		func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			ss.Refs = sh.refs
		}()
		st.Shards = append(st.Shards, ss)
	}
	sort.Slice(st.Shards, func(i, j int) bool {
		if st.Shards[i].Tenant != st.Shards[j].Tenant {
			return st.Shards[i].Tenant < st.Shards[j].Tenant
		}
		return st.Shards[i].Dataset < st.Shards[j].Dataset
	})
	return st
}

// Budget returns the hub's shared memory budget (nil when unlimited).
func (h *Hub) Budget() *Budget { return h.budget }

// sweep runs fn against every dataset in the hub, one shard at a time,
// keyed by "tenant/dataset". Each shard's operation sees only that shard's
// directory — the store layer has no idea the hub exists — so a sweep can
// never cross shard boundaries.
func hubSweep[R any](h *Hub, fn func(*Store) (R, error)) (map[string]R, error) {
	refs, err := h.Datasets()
	if err != nil {
		return nil, err
	}
	out := make(map[string]R, len(refs))
	for _, r := range refs {
		st, release, err := h.Acquire(r.Tenant, r.Dataset)
		if err != nil {
			return out, fmt.Errorf("%s/%s: %w", r.Tenant, r.Dataset, err)
		}
		rep, err := fn(st)
		release()
		if err != nil {
			return out, fmt.Errorf("%s/%s: %w", r.Tenant, r.Dataset, err)
		}
		out[r.Tenant+"/"+r.Dataset] = rep
	}
	return out, nil
}

// VerifyAll verifies every dataset in the hub, shard by shard. The partial
// result map is returned even on error, so operators see how far the sweep
// got and which shard stopped it.
func (h *Hub) VerifyAll() (map[string]*VerifyReport, error) {
	return hubSweep(h, func(s *Store) (*VerifyReport, error) { return s.Verify() })
}

// RepairAll repairs every dataset in the hub, shard by shard.
func (h *Hub) RepairAll() (map[string]*RepairReport, error) {
	return hubSweep(h, func(s *Store) (*RepairReport, error) { return s.Repair() })
}

// GCAll garbage-collects every dataset in the hub, shard by shard.
func (h *Hub) GCAll() (map[string]GCReport, error) {
	return hubSweep(h, func(s *Store) (GCReport, error) { return s.GC() })
}

// Close closes every open shard (releasing all cache memory back to the
// budget) and rejects further hub operations with ErrHubClosed. Shards
// still pinned by in-flight requests are closed too: their holders get
// ErrStoreClosed, which is the contract during shutdown.
func (h *Hub) Close() error {
	var victims []*Store
	func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.closed {
			return
		}
		h.closed = true
		for _, sh := range h.shards {
			select {
			case <-sh.ready:
				if sh.err == nil {
					victims = append(victims, sh.st)
				}
			default:
				// Still opening: the opener holds a ref and will finish; its
				// store is brand new and unclosed, acceptable at shutdown.
			}
		}
		h.shards = map[string]*shard{}
		h.ll.Init()
	}()
	for _, st := range victims {
		st.Close()
	}
	h.closeHubSubs()
	return nil
}
