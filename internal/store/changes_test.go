package store

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"charles/internal/diff"
	"charles/internal/gen"
	"charles/internal/table"
)

// TestChangesDecodesOps pins the first-class ChangeSet surface: a delta
// version's ops arrive decoded (with column names resolved), anchors and
// roots report Materialized, unknown ids are ErrNotFound.
func TestChangesDecodesOps(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	schema := table.Schema{
		{Name: "id", Type: table.String},
		{Name: "pay", Type: table.Float},
	}
	v1t := table.MustNew(schema)
	for i := 0; i < 6; i++ {
		v1t.MustAppendRow(table.S(fmt.Sprintf("k%d", i)), table.F(float64(i)+0.5))
	}
	if err := v1t.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	v2t := v1t.Clone()
	if err := v2t.MustColumn("pay").Set(2, table.F(99.5)); err != nil {
		t.Fatal(err)
	}
	v1, err := s.Commit(v1t, "", "root")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(v2t, v1.ID, "patch")
	if err != nil {
		t.Fatal(err)
	}

	cs, err := s.Changes(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Materialized || cs.Base != v1.ID || cs.Version != v2.ID {
		t.Fatalf("change set header = %+v", cs)
	}
	if !reflect.DeepEqual(cs.Columns, []string{"id", "pay"}) {
		t.Errorf("columns = %v", cs.Columns)
	}
	if len(cs.Removed) != 0 || len(cs.Inserted) != 0 || len(cs.Patched) != 1 {
		t.Fatalf("ops = %+v", cs)
	}
	p := cs.Patched[0]
	if p.Key != "k2" || !reflect.DeepEqual(p.Cols, []int{1}) || !reflect.DeepEqual(p.Vals, []string{"99.5"}) {
		t.Errorf("patch = %+v", p)
	}

	root, err := s.Changes(v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !root.Materialized || len(root.Patched) != 0 {
		t.Errorf("root change set = %+v", root)
	}
	if _, err := s.Changes("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id: err = %v", err)
	}
}

// TestDiffResultDeltaVsAlignFuzz is the 5-seed differential batch: on random
// mutation chains (cell edits, inserts, deletes, adversarial string cells),
// the delta-native answer must be bit-identical to the checkout+align
// answer for every version pair — adjacent pairs, multi-hop delta-connected
// pairs, anchor-crossing pairs (align fallback), reversed pairs, and the
// trivial self-pair.
func TestDiffResultDeltaVsAlignFuzz(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s, err := OpenWith("", Options{AnchorEvery: 4, TableCache: 64})
		if err != nil {
			t.Fatal(err)
		}
		snaps, err := gen.MutateChain(gen.FuzzConfig{N: 30, Steps: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids := commitChain(t, s, snaps)
		native, fallback := 0, 0
		for i := 0; i < len(ids); i++ {
			for j := i; j < len(ids); j++ {
				got, viaDelta, err := s.DiffResult(ids[i], ids[j], 1e-9)
				if err != nil {
					t.Fatalf("seed %d: DiffResult(%d,%d): %v", seed, i, j, err)
				}
				src, err := s.Checkout(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				tgt, err := s.Checkout(ids[j])
				if err != nil {
					t.Fatal(err)
				}
				want, err := diff.ResultFromPair(src, tgt, 1e-9)
				if err != nil {
					t.Fatalf("seed %d: reference(%d,%d): %v", seed, i, j, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: pair (%d,%d) delta=%v differs\ngot:  %+v\nwant: %+v",
						seed, i, j, viaDelta, got, want)
				}
				if viaDelta {
					native++
				} else if i != j {
					fallback++
				}
				// Reversed direction is never delta-connected (deltas point
				// child→parent) but must agree with its own reference.
				if j == i+1 {
					rev, viaDelta, err := s.DiffResult(ids[j], ids[i], 1e-9)
					if err != nil {
						t.Fatal(err)
					}
					if viaDelta {
						t.Fatalf("seed %d: reverse pair (%d,%d) claimed delta-native", seed, j, i)
					}
					wantRev, err := diff.ResultFromPair(tgt, src, 1e-9)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(rev, wantRev) {
						t.Fatalf("seed %d: reverse pair (%d,%d) differs", seed, j, i)
					}
				}
			}
		}
		if native == 0 || fallback == 0 {
			t.Fatalf("seed %d: exercised %d delta-native and %d fallback pairs; want both paths covered",
				seed, native, fallback)
		}
	}
}

// TestDiffResultCRFallback pins the full-pack fallback: CR-bearing blobs are
// stored whole (no deltas exist), so change queries take the align path —
// and still answer correctly.
func TestDiffResultCRFallback(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	schema := table.Schema{{Name: "id", Type: table.String}, {Name: "note", Type: table.String}}
	v1t := table.MustNew(schema)
	v1t.MustAppendRow(table.S("a"), table.S("line1\r\nline2"))
	v1t.MustAppendRow(table.S("b"), table.S("plain"))
	if err := v1t.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	v2t := v1t.Clone()
	if err := v2t.MustColumn("note").Set(1, table.S("edited")); err != nil {
		t.Fatal(err)
	}
	v1, err := s.Commit(v1t, "", "root")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(v2t, v1.ID, "edit")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DeltaPacks != 0 {
		t.Fatalf("CR chain stored %d delta packs, want 0", st.DeltaPacks)
	}
	cs, err := s.Changes(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Materialized {
		t.Error("CR-forced full pack should report Materialized")
	}
	res, native, err := s.DiffResult(v1.ID, v2.ID, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if native {
		t.Error("full-pack pair claimed delta-native")
	}
	if res.UpdateDistance != 1 || res.Changes[0].Key != "b" {
		t.Errorf("fallback result = %+v", res)
	}
}

// TestDeltaEncodingWithSeparatorKeys is the store half of the key-aliasing
// regression: multi-column keys whose cells contain table.KeySep must still
// delta-encode and answer delta-native change queries correctly.
func TestDeltaEncodingWithSeparatorKeys(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	schema := table.Schema{
		{Name: "k1", Type: table.String},
		{Name: "k2", Type: table.String},
		{Name: "pay", Type: table.Float},
	}
	v1t := table.MustNew(schema)
	v1t.MustAppendRow(table.S("a"+table.KeySep+"b"), table.S("c"), table.F(1.5))
	v1t.MustAppendRow(table.S("a"), table.S("b"+table.KeySep+"c"), table.F(2.5))
	for i := 0; i < 10; i++ {
		v1t.MustAppendRow(table.S(fmt.Sprintf("p%d", i)), table.S("q"), table.F(float64(i)+0.5))
	}
	if err := v1t.SetKey("k1", "k2"); err != nil {
		t.Fatal(err)
	}
	v2t := v1t.Clone()
	if err := v2t.MustColumn("pay").Set(0, table.F(9.5)); err != nil {
		t.Fatal(err)
	}
	v1, err := s.Commit(v1t, "", "root")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(v2t, v1.ID, "edit")
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fix, the aliased keys read as duplicates and forced a full pack.
	if st := s.Stats(); st.DeltaPacks != 1 {
		t.Fatalf("separator-bearing keys fell back to full packs: %+v", st)
	}
	back, err := s.Checkout(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Checkout(v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	res, native, err := s.DiffResult(v1.ID, v2.ID, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := diff.ResultFromPair(ref, back, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !native || !reflect.DeepEqual(res, want) {
		t.Fatalf("delta-native diff over separator keys: native=%v\ngot:  %+v\nwant: %+v", native, res, want)
	}
	if res.UpdateDistance != 1 {
		t.Errorf("update distance = %d, want 1", res.UpdateDistance)
	}
}

// TestStatsEmptyStoreCompression pins the empty-store ratio: 1.0, not a 0/0
// NaN that would poison the /stats JSON.
func TestStatsEmptyStoreCompression(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compression != 1.0 {
		t.Fatalf("empty-store compression = %v, want 1.0", st.Compression)
	}
	if data, err := json.Marshal(st); err != nil {
		t.Fatalf("stats must serialize: %v (%s)", err, data)
	}
}

// TestDecodeErrorsAreTypedCorruption audits the decode paths: every way a
// pack can fail to decode must surface as ErrCorruptStore naming the
// offending version, from Checkout, Blob, and Changes alike.
func TestDecodeErrorsAreTypedCorruption(t *testing.T) {
	newDiskChain := func(t *testing.T) (*Store, []string, []*table.Table) {
		t.Helper()
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		snaps, err := gen.MutateChain(gen.FuzzConfig{N: 12, Steps: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ids := commitChain(t, s, snaps)
		return s, ids, snaps
	}
	reopen := func(t *testing.T, s *Store) *Store {
		t.Helper()
		fresh, err := Open(s.dir)
		if err != nil {
			t.Fatal(err)
		}
		return fresh
	}
	deltaID := func(t *testing.T, s *Store, ids []string) string {
		t.Helper()
		for _, id := range ids {
			if s.packs[id].Kind == packDelta {
				return id
			}
		}
		t.Fatal("chain has no delta pack")
		return ""
	}
	check := func(t *testing.T, what, id string, err error) {
		t.Helper()
		if !errors.Is(err, ErrCorruptStore) {
			t.Errorf("%s: err = %v, want ErrCorruptStore", what, err)
		}
		if err == nil || !strings.Contains(err.Error(), id) {
			t.Errorf("%s: error %q does not name version %s", what, err, id)
		}
	}

	t.Run("garbage pack bytes", func(t *testing.T) {
		s, ids, _ := newDiskChain(t)
		id := deltaID(t, s, ids)
		if err := os.WriteFile(s.packPath(id), []byte("not gzip"), 0o644); err != nil {
			t.Fatal(err)
		}
		s = reopen(t, s)
		_, err := s.Changes(id)
		check(t, "Changes", id, err)
		_, err = s.Checkout(id)
		check(t, "Checkout", id, err)
		_, err = s.Blob(id)
		check(t, "Blob", id, err)
	})

	t.Run("undecodable delta ops", func(t *testing.T) {
		s, ids, _ := newDiskChain(t)
		id := deltaID(t, s, ids)
		// A well-formed gzip pack whose op list is malformed CSV ops.
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		head, err := json.Marshal(packMeta{Format: packFormat, ID: id, Kind: packDelta, Base: s.packs[id].Base, Rows: 1})
		if err != nil {
			t.Fatal(err)
		}
		zw.Write(append(head, '\n'))
		zw.Write([]byte("justonefield\n"))
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.packPath(id), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		s = reopen(t, s)
		_, err = s.Changes(id)
		check(t, "Changes", id, err)
		_, err = s.Checkout(id)
		check(t, "Checkout", id, err)
	})

	t.Run("pack holds wrong version", func(t *testing.T) {
		s, ids, _ := newDiskChain(t)
		id := deltaID(t, s, ids)
		other := ids[0]
		data, err := os.ReadFile(s.packPath(other))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.packPath(id), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s = reopen(t, s)
		_, err = s.Changes(id)
		check(t, "Changes", id, err)
		_, err = s.Checkout(id)
		check(t, "Checkout", id, err)
	})

	t.Run("missing pack file", func(t *testing.T) {
		s, ids, _ := newDiskChain(t)
		id := deltaID(t, s, ids)
		// Remove behind an already-open store. Checkout may still be served
		// from the commit-warmed blob cache (by design), but the decode path
		// and a re-open must both report typed corruption.
		if err := os.Remove(s.packPath(id)); err != nil {
			t.Fatal(err)
		}
		_, err := s.Changes(id)
		check(t, "Changes", id, err)
		_, err = Open(s.dir)
		check(t, "Open", id, err)
	})
}

// TestDiffResultSelfPair pins the trivial case: a version diffed against
// itself is empty and delta-native.
func TestDiffResultSelfPair(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := gen.MutateChain(gen.FuzzConfig{N: 10, Steps: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids := commitChain(t, s, snaps)
	res, native, err := s.DiffResult(ids[0], ids[0], 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !native || res.UpdateDistance != 0 || len(res.Removed)+len(res.Inserted) != 0 {
		t.Fatalf("self diff = %+v (native %v)", res, native)
	}
	if _, _, err := s.DiffResult("nope", ids[0], 1e-9); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown from: err = %v", err)
	}
}

// TestDiffResultRejectsTamperedOps pins the tamper gate on the delta-native
// path: a delta pack that still decodes but whose op values were altered
// must error like every other read path (the reconstruction no longer
// hashes to the content id), not serve a fabricated answer.
func TestDiffResultRejectsTamperedOps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := gen.MutateChain(gen.FuzzConfig{N: 15, Steps: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ids := commitChain(t, s, snaps)
	var child string
	for _, id := range ids {
		if s.packs[id].Kind == packDelta {
			child = id
			break
		}
	}
	if child == "" {
		t.Fatal("chain has no delta pack")
	}
	parent := s.versions[child].Parent

	// Rewrite the pack with one op value flipped; it still decodes fine.
	data, err := os.ReadFile(s.packPath(child))
	if err != nil {
		t.Fatal(err)
	}
	meta, body, err := decodePack(data)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := parseOps(body)
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for i := range ops {
		if ops[i].kind == '~' && len(ops[i].vals) > 0 {
			ops[i].vals[0] += "tampered"
			tampered = true
			break
		}
	}
	if !tampered {
		t.Skip("no patch op to tamper with in this chain")
	}
	repacked, err := encodePack(meta, nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.packPath(child), repacked, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(dir) // cold caches: nothing pre-verified
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fresh.DiffResult(parent, child, 1e-9); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("tampered delta pack: DiffResult err = %v, want ErrCorruptStore", err)
	}
	if _, err := fresh.Checkout(child); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("tampered delta pack: Checkout err = %v, want ErrCorruptStore", err)
	}
}

// TestParseOpsRejectsNegativeColumnIndex pins the decode-level guard: a
// hand-edited op with a negative column index must fail to decode (it could
// otherwise panic every consumer that indexes the header by it).
func TestParseOpsRejectsNegativeColumnIndex(t *testing.T) {
	if _, err := parseOps([]byte("~,k,-1,v\n")); err == nil {
		t.Fatal("negative column index decoded")
	}
	if _, err := parseOps([]byte("~,k,1,v\n")); err != nil {
		t.Fatalf("valid op rejected: %v", err)
	}
}
