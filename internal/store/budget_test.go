package store

import (
	"fmt"
	"testing"
)

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(100)
	var evicted []string
	ins := func(name string, size int64) {
		t.Helper()
		_, ok := b.insert(size, func() { evicted = append(evicted, name) })
		if !ok {
			t.Fatalf("insert %s refused", name)
		}
	}
	ins("a", 40)
	ins("b", 40)
	if got := b.Used(); got != 80 {
		t.Fatalf("used = %d, want 80", got)
	}
	// Overflow evicts the least recently used (a) first.
	ins("c", 40)
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted = %v, want [a]", evicted)
	}
	if got := b.Used(); got != 80 {
		t.Fatalf("used after eviction = %d, want 80", got)
	}
	st := b.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.CapBytes != 100 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBudgetTouchProtectsRecency(t *testing.T) {
	b := NewBudget(100)
	var evicted []string
	elA, _ := b.insert(40, func() { evicted = append(evicted, "a") })
	if _, ok := b.insert(40, func() { evicted = append(evicted, "b") }); !ok {
		t.Fatal("insert b refused")
	}
	b.touch(elA) // a is now most recent; overflow must evict b
	if _, ok := b.insert(40, func() { evicted = append(evicted, "c") }); !ok {
		t.Fatal("insert c refused")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("evicted = %v, want [b]", evicted)
	}
}

func TestBudgetReleaseIdempotent(t *testing.T) {
	b := NewBudget(100)
	el, _ := b.insert(60, func() {})
	b.release(el)
	b.release(el) // double release must not go negative
	if got := b.Used(); got != 0 {
		t.Errorf("used = %d, want 0", got)
	}
	b.touch(el) // touch after release must not resurrect
	if st := b.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d, want 0", st.Entries)
	}
}

func TestBudgetRefusesOversized(t *testing.T) {
	b := NewBudget(100)
	if el, ok := b.insert(101, func() { t.Error("oversized entry evicted") }); ok || el != nil {
		t.Fatal("oversized entry admitted")
	}
	if got := b.Used(); got != 0 {
		t.Errorf("used = %d after refused insert", got)
	}
}

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	el, ok := b.insert(1<<40, func() { t.Error("nil budget evicted") })
	if !ok || el != nil {
		t.Fatalf("nil budget insert = %v, %v", el, ok)
	}
	b.touch(nil)
	b.release(nil)
	if st := b.Stats(); st != (BudgetStats{}) {
		t.Errorf("nil budget stats = %+v", st)
	}
	if NewBudget(0) != nil || NewBudget(-5) != nil {
		t.Error("non-positive cap should mean nil (unlimited) budget")
	}
}

func TestSizedLRUChargesAndReleases(t *testing.T) {
	b := NewBudget(1000)
	c := newSizedLRU(8, func(v []byte) int64 { return int64(len(v)) }, b)
	c.add("x", make([]byte, 300))
	c.add("y", make([]byte, 300))
	if got := b.Used(); got != 600 {
		t.Fatalf("used = %d, want 600", got)
	}
	// Refresh replaces the old charge instead of double counting.
	c.add("x", make([]byte, 100))
	if got := b.Used(); got != 400 {
		t.Fatalf("used after refresh = %d, want 400", got)
	}
	// Count-cap displacement releases the displaced entry's charge.
	small := newSizedLRU(1, func(v []byte) int64 { return int64(len(v)) }, b)
	small.add("p", make([]byte, 100))
	small.add("q", make([]byte, 100))
	if got := b.Used(); got != 500 {
		t.Fatalf("used after displacement = %d, want 500 (400 + one 100-byte entry)", got)
	}
	c.purge()
	small.purge()
	if got := b.Used(); got != 0 {
		t.Fatalf("used after purge = %d, want 0", got)
	}
}

func TestBudgetEvictsAcrossCaches(t *testing.T) {
	// Two caches sharing one budget: filling the second one evicts the
	// first cache's entries — the global, cross-cache recency order that
	// gives a hub's shards one collective ceiling.
	b := NewBudget(500)
	c1 := newSizedLRU(16, func(v []byte) int64 { return int64(len(v)) }, b)
	c2 := newSizedLRU(16, func(v []byte) int64 { return int64(len(v)) }, b)
	for i := 0; i < 4; i++ {
		c1.add(fmt.Sprintf("a%d", i), make([]byte, 100))
	}
	for i := 0; i < 4; i++ {
		c2.add(fmt.Sprintf("b%d", i), make([]byte, 100))
	}
	if got := b.Used(); got > 500 {
		t.Fatalf("used = %d > cap 500", got)
	}
	if _, ok := c1.get("a0"); ok {
		t.Error("globally coldest entry a0 survived cross-cache eviction")
	}
	if _, ok := c2.get("b3"); !ok {
		t.Error("hottest entry b3 was evicted")
	}
	_, _, entries1, _ := c1.stats()
	_, _, entries2, _ := c2.stats()
	if entries1+entries2 != b.Stats().Entries {
		t.Errorf("cache entries %d+%d != budget entries %d", entries1, entries2, b.Stats().Entries)
	}
}

func TestDisabledCacheRefusesAdds(t *testing.T) {
	b := NewBudget(1000)
	c := newSizedLRU(8, func(v []byte) int64 { return int64(len(v)) }, b)
	c.add("x", make([]byte, 100))
	c.disable()
	if got := b.Used(); got != 0 {
		t.Fatalf("used after disable = %d, want 0", got)
	}
	c.add("y", make([]byte, 100)) // racing late add: must stay uncharged
	if _, ok := c.get("y"); ok {
		t.Error("disabled cache accepted an add")
	}
	if got := b.Used(); got != 0 {
		t.Errorf("used after late add = %d, want 0", got)
	}
}
