package store

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded cache keyed by version id, shared by the
// decoded-table cache behind Checkout and the reconstructed-blob cache
// behind Blob. Cached values are the cache's own: table callers clone on
// the way out (so a hit can never hand two callers aliased mutable
// buffers), blob callers treat the bytes as immutable. The zero capacity
// is normalized to 1.
//
// A cache may additionally participate in a shared Budget: each admitted
// entry is charged its sizeOf estimate into the budget, which keeps one
// recency order across every participating cache and calls back (via
// dropElem) to evict the globally coldest entries when the byte cap is
// exceeded. The entry-count capacity and the byte budget both apply.
type lruCache[V any] struct {
	cap    int
	sizeOf func(V) int64 // nil = entries are not byte-accounted
	budget *Budget       // nil = no shared budget

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	disabled     bool // set by disable(): add becomes a no-op (Store.Close)
	hits, misses int64
}

type lruEntry[V any] struct {
	id  string
	val V
	bh  *list.Element // budget handle (nil until charged, or uncharged)
}

func newLRU[V any](capacity int) *lruCache[V] {
	return newSizedLRU[V](capacity, nil, nil)
}

// newSizedLRU creates a cache whose entries are byte-accounted by sizeOf
// into the shared budget (both may be nil for a plain count-bounded cache).
func newSizedLRU[V any](capacity int, sizeOf func(V) int64, budget *Budget) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{
		cap: capacity, sizeOf: sizeOf, budget: budget,
		ll: list.New(), items: map[string]*list.Element{},
	}
}

// get returns the cached value for id (the cache's instance — see the type
// comment for the ownership contract) and whether it was present.
func (c *lruCache[V]) get(id string) (V, bool) {
	var (
		val V
		ok  bool
		bh  *list.Element
	)
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		el, found := c.items[id]
		if !found {
			c.misses++
			return
		}
		c.hits++
		c.ll.MoveToFront(el)
		ent := el.Value.(*lruEntry[V])
		val, ok, bh = ent.val, true, ent.bh
	}()
	if ok {
		c.budget.touch(bh)
	}
	return val, ok
}

// add inserts (or refreshes) id's value, evicting the least recently used
// entries beyond capacity and charging the new entry into the shared
// budget. The caller hands over ownership: it must not mutate the value
// afterwards. A value bigger than the entire budget is returned to the
// caller's use but not cached at all — caching it could never respect the
// byte cap.
func (c *lruCache[V]) add(id string, v V) {
	var size int64
	if c.sizeOf != nil {
		size = c.sizeOf(v)
	}
	var (
		el       *list.Element
		released []*list.Element // budget handles of entries displaced here
		skip     bool
	)
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.disabled {
			skip = true
			return
		}
		if old, ok := c.items[id]; ok {
			// Refresh: swap the value and re-charge below (the size may have
			// changed); the old charge is released off-lock.
			c.ll.MoveToFront(old)
			ent := old.Value.(*lruEntry[V])
			ent.val = v
			released = append(released, ent.bh)
			ent.bh = nil
			el = old
			return
		}
		el = c.ll.PushFront(&lruEntry[V]{id: id, val: v})
		c.items[id] = el
		for c.ll.Len() > c.cap {
			last := c.ll.Back()
			c.ll.Remove(last)
			ent := last.Value.(*lruEntry[V])
			delete(c.items, ent.id)
			released = append(released, ent.bh)
		}
	}()
	for _, bh := range released {
		c.budget.release(bh)
	}
	if skip || c.budget == nil {
		return
	}
	// Charge the entry and attach the handle. The budget may evict it (or a
	// concurrent add may displace it) between these steps, so the attach
	// re-checks identity and releases the handle if the entry is gone.
	bh, admitted := c.budget.insert(size, func() { c.dropElem(id, el) })
	if !admitted {
		c.dropElem(id, el)
		return
	}
	var stale bool
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		cur, ok := c.items[id]
		if !ok || cur != el || cur.Value.(*lruEntry[V]).bh != nil {
			stale = true
			return
		}
		cur.Value.(*lruEntry[V]).bh = bh
	}()
	if stale {
		c.budget.release(bh)
	}
}

// dropElem removes one specific entry (identity-checked, so a re-added id
// is untouched). It is the budget's evict callback and runs with no budget
// lock held; the idempotent release covers the cache-initiated path.
func (c *lruCache[V]) dropElem(id string, el *list.Element) {
	var bh *list.Element
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		cur, ok := c.items[id]
		if !ok || cur != el {
			return
		}
		c.ll.Remove(el)
		delete(c.items, id)
		bh = el.Value.(*lruEntry[V]).bh
	}()
	c.budget.release(bh)
}

// purge drops every entry (counters are kept) and releases their budget
// charges. Repair uses it after rewriting the manifest, so no cache can
// serve data for a version that was just quarantined.
func (c *lruCache[V]) purge() {
	var released []*list.Element
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, el := range c.items {
			released = append(released, el.Value.(*lruEntry[V]).bh)
		}
		c.ll.Init()
		c.items = map[string]*list.Element{}
	}()
	for _, bh := range released {
		c.budget.release(bh)
	}
}

// disable purges the cache and makes every future add a no-op — the
// Store.Close path: a racing in-flight read must not repopulate (and
// re-charge) a cache whose store has been closed.
func (c *lruCache[V]) disable() {
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.disabled = true
	}()
	c.purge()
}

// stats snapshots the counters.
func (c *lruCache[V]) stats() (hits, misses int64, entries, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.cap
}
