package store

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded cache keyed by version id, shared by the
// decoded-table cache behind Checkout and the reconstructed-blob cache
// behind Blob. Cached values are the cache's own: table callers clone on
// the way out (so a hit can never hand two callers aliased mutable
// buffers), blob callers treat the bytes as immutable. The zero capacity
// is normalized to 1.
type lruCache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses int64
}

type lruEntry[V any] struct {
	id  string
	val V
}

func newLRU[V any](capacity int) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached value for id (the cache's instance — see the type
// comment for the ownership contract) and whether it was present.
func (c *lruCache[V]) get(id string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[id]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// add inserts (or refreshes) id's value, evicting the least recently used
// entries beyond capacity. The caller hands over ownership: it must not
// mutate the value afterwards.
func (c *lruCache[V]) add(id string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = v
		return
	}
	c.items[id] = c.ll.PushFront(&lruEntry[V]{id: id, val: v})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry[V]).id)
	}
}

// purge drops every entry (counters are kept). Repair uses it after
// rewriting the manifest, so no cache can serve data for a version that
// was just quarantined.
func (c *lruCache[V]) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
}

// stats snapshots the counters.
func (c *lruCache[V]) stats() (hits, misses int64, entries, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.cap
}
