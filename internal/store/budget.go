package store

import (
	"container/list"
	"sync"

	"charles/internal/table"
)

// Budget is a shared byte-accounted memory budget for cache entries. Every
// participating lruCache charges each admitted entry's estimated size into
// the budget and registers an evict callback; the budget keeps one global
// recency order across all of them, and when the cap is exceeded it evicts
// the globally least-recently-used entries — whichever cache, whichever
// shard, they live in. That is how a Hub gives N shards' table/blob/
// change-set/diff caches ONE memory ceiling instead of N.
//
// A nil *Budget is valid and means "unlimited": every method is nil-safe,
// so single-store setups pay nothing.
//
// Lock ordering: a cache's mu is always acquired before the budget's mu
// (caches call in while holding their lock via release, and the budget
// never calls a cache back while holding its own lock — evict callbacks
// run after it unlocks), so the two can never deadlock.
type Budget struct {
	capBytes int64

	mu        sync.Mutex
	used      int64
	ll        *list.List // *budgetEntry; front = most recently used
	evictions int64
}

// budgetEntry is one charged cache entry: its accounted size and the
// callback that detaches it from its owning cache. gone marks entries
// already released or evicted, making release idempotent — the budget and
// the owning cache may both try to let go of the same entry.
type budgetEntry struct {
	size  int64
	gone  bool
	evict func()
}

// NewBudget creates a budget capped at capBytes. A non-positive cap
// returns nil — the unlimited budget.
func NewBudget(capBytes int64) *Budget {
	if capBytes <= 0 {
		return nil
	}
	return &Budget{capBytes: capBytes, ll: list.New()}
}

// insert charges one entry and returns its handle, evicting the globally
// least-recently-used entries (via their callbacks, after the lock is
// released) until the total is back under the cap. An entry bigger than
// the whole cap is refused (nil handle, admitted=false): admitting it
// could never satisfy the invariant, so the caller must not cache it.
func (b *Budget) insert(size int64, evict func()) (*list.Element, bool) {
	if b == nil {
		return nil, true
	}
	if size > b.capBytes {
		return nil, false
	}
	var victims []*budgetEntry
	var el *list.Element
	func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		el = b.ll.PushFront(&budgetEntry{size: size, evict: evict})
		b.used += size
		for b.used > b.capBytes {
			last := b.ll.Back()
			if last == nil || last == el {
				break // cannot evict the entry being admitted
			}
			e := last.Value.(*budgetEntry)
			e.gone = true
			b.ll.Remove(last)
			b.used -= e.size
			b.evictions++
			victims = append(victims, e)
		}
	}()
	// Run the evictions off-lock: each callback takes its own cache's lock,
	// and holding b.mu across that would invert the cache→budget order.
	for _, v := range victims {
		v.evict()
	}
	return el, true
}

// touch refreshes an entry's recency. Nil-safe both ways (no budget, entry
// never admitted).
func (b *Budget) touch(el *list.Element) {
	if b == nil || el == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !el.Value.(*budgetEntry).gone {
		b.ll.MoveToFront(el)
	}
}

// release uncharges an entry (cache-side eviction, purge, refresh).
// Idempotent: releasing an entry the budget already evicted is a no-op.
func (b *Budget) release(el *list.Element) {
	if b == nil || el == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := el.Value.(*budgetEntry)
	if e.gone {
		return
	}
	e.gone = true
	b.ll.Remove(el)
	b.used -= e.size
}

// BudgetStats is a snapshot of the budget's accounting.
type BudgetStats struct {
	UsedBytes int64 `json:"usedBytes"`
	CapBytes  int64 `json:"capBytes"` // 0 = unlimited
	Entries   int   `json:"entries"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the budget counters. A nil budget reports an unlimited
// zero-usage budget.
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BudgetStats{UsedBytes: b.used, CapBytes: b.capBytes, Entries: b.ll.Len(), Evictions: b.evictions}
}

// Used returns the currently charged byte total.
func (b *Budget) Used() int64 { return b.Stats().UsedBytes }

// The per-cache size estimators. Like table.MemBytes they are accounting
// estimates: flat per-element overheads stand in for headers and allocator
// slack, applied identically when charging and releasing.

func tableBytes(t *table.Table) int64 { return t.MemBytes() }

func blobBytes(b []byte) int64 { return int64(len(b)) + 24 }

func changeSetBytes(cs *ChangeSet) int64 {
	const strOverhead = 16
	n := int64(128)
	for _, c := range cs.Columns {
		n += int64(len(c)) + strOverhead
	}
	for _, k := range cs.Removed {
		n += int64(len(k)) + strOverhead
	}
	for _, ins := range cs.Inserted {
		n += int64(len(ins.Key)) + strOverhead
		for _, c := range ins.Cells {
			n += int64(len(c)) + strOverhead
		}
	}
	for _, p := range cs.Patched {
		n += int64(len(p.Key)) + strOverhead + int64(len(p.Cols))*8
		for _, v := range p.Vals {
			n += int64(len(v)) + strOverhead
		}
	}
	return n
}

func diffAnswerBytes(a *diffAnswer) int64 {
	const strOverhead = 16
	n := int64(128)
	if a.res == nil {
		return n
	}
	for _, c := range a.res.Columns {
		n += int64(len(c)) + strOverhead
	}
	for _, k := range a.res.Removed {
		n += int64(len(k)) + strOverhead
	}
	for _, k := range a.res.Inserted {
		n += int64(len(k)) + strOverhead
	}
	for _, ch := range a.res.Changes {
		n += int64(len(ch.Key)) + int64(len(ch.Attr)) + 2*strOverhead + 64
	}
	for _, c := range a.res.ChangedAttrs {
		n += int64(len(c)) + strOverhead
	}
	return n
}
