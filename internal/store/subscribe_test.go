package store

import (
	"testing"
	"time"

	"charles/internal/gen"
	"charles/internal/table"
)

// fuzzChain builds a deterministic snapshot chain for commit traffic.
func fuzzChain(t *testing.T, steps, seed int) []*table.Table {
	t.Helper()
	snaps, err := gen.MutateChain(gen.FuzzConfig{N: 12, Steps: steps, Seed: int64(seed)})
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

func recvNote(t *testing.T, sub *Subscription) (CommitNote, bool) {
	t.Helper()
	select {
	case note, ok := <-sub.C():
		return note, ok
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for commit note")
		return CommitNote{}, false
	}
}

func TestSubscribeDeliversCommitsInOrder(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(8)
	defer sub.Close()
	ids := commitChain(t, s, fuzzChain(t, 4, 1))
	for i, want := range ids {
		note, ok := recvNote(t, sub)
		if !ok {
			t.Fatalf("channel closed after %d notes", i)
		}
		if note.Version.ID != want {
			t.Fatalf("note %d = %s, want %s", i, note.Version.ID, want)
		}
		if note.Version.Seq != i+1 {
			t.Fatalf("note %d seq = %d, want %d", i, note.Version.Seq, i+1)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", sub.Dropped())
	}
}

func TestSubscribeDedupCommitsDoNotNotify(t *testing.T) {
	s, _ := Open("")
	src, _ := gen.Toy()
	sub := s.Subscribe(8)
	defer sub.Close()
	v1, err := s.Commit(src, "", "first")
	if err != nil {
		t.Fatal(err)
	}
	// Content-addressed dedup: the second commit returns the existing
	// version and must not produce a second note.
	if _, err := s.Commit(src.Clone(), "", "dup"); err != nil {
		t.Fatal(err)
	}
	note, _ := recvNote(t, sub)
	if note.Version.ID != v1.ID {
		t.Fatalf("note = %s, want %s", note.Version.ID, v1.ID)
	}
	select {
	case extra := <-sub.C():
		t.Fatalf("dedup commit produced a note: %+v", extra)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSubscribeCoalescesSlowSubscriber(t *testing.T) {
	s, _ := Open("")
	sub := s.Subscribe(2)
	defer sub.Close()
	ids := commitChain(t, s, fuzzChain(t, 6, 2))
	// Nobody drained while 6 commits landed into a 2-slot buffer: the
	// oldest notes were coalesced away, the newest survive, and the
	// committer never blocked (we got here).
	if got, want := sub.Dropped(), int64(len(ids)-2); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	var last string
	for {
		select {
		case note := <-sub.C():
			last = note.Version.ID
			continue
		default:
		}
		break
	}
	if last != ids[len(ids)-1] {
		t.Fatalf("newest buffered note = %s, want head %s", last, ids[len(ids)-1])
	}
}

func TestStoreCloseClosesSubscriptions(t *testing.T) {
	s, _ := Open("")
	sub := s.Subscribe(4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after Store.Close")
	}
	sub.Close() // idempotent after store close
	// Subscribing to a closed store yields an already-closed channel.
	late := s.Subscribe(4)
	if _, ok := <-late.C(); ok {
		t.Fatal("subscription on closed store delivered a note")
	}
}

func TestHubSubscribeFanIn(t *testing.T) {
	h, err := OpenHub("")
	if err != nil {
		t.Fatal(err)
	}
	sub := h.Subscribe(8)
	snaps := fuzzChain(t, 2, 3)
	va, err := h.Commit("acme", "sales", snaps[0], "", "a")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := h.Commit("acme", "hr", snaps[1], "", "b")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for i := 0; i < 2; i++ {
		select {
		case note, ok := <-sub.C():
			if !ok {
				t.Fatal("hub feed closed early")
			}
			got[note.Tenant+"/"+note.Dataset] = note.Version.ID
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for hub note")
		}
	}
	if got["acme/sales"] != va.ID || got["acme/hr"] != vb.ID {
		t.Fatalf("hub notes = %v, want sales=%s hr=%s", got, va.ID, vb.ID)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.C():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("hub feed still open after Hub.Close")
		}
	}
}
