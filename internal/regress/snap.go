package regress

import (
	"math"
)

// SnapOptions control coefficient snapping.
type SnapOptions struct {
	// Tolerance is the maximum allowed *relative* growth in MAE caused by
	// snapping; e.g. 0.05 permits snapped models whose mean absolute error
	// is at most 5% worse (in absolute terms, relative to the target scale)
	// than the exact fit. ≤ 0 disables snapping.
	Tolerance float64
	// Scale normalizes the MAE comparison; typically the mean |target|.
	// When 0, a scale is derived from the targets.
	Scale float64
}

// Snap rounds each coefficient (and the intercept) of m to nearby "normal"
// values — the grid humans use for policies: 1.05 rather than 1.0493,
// 1000 rather than 997.3 — keeping the rounding only when the model's mean
// absolute error on (x, y) does not degrade beyond the tolerance.
//
// It returns a new model; m is unchanged. Snapping proceeds coordinate-wise
// from the coarsest candidate to the finest, greedily keeping the coarsest
// acceptable rounding per coefficient (jointly validated at the end).
func Snap(m *Model, x [][]float64, y []float64, opts SnapOptions) *Model {
	if opts.Tolerance <= 0 || len(y) == 0 {
		return m.Clone()
	}
	scale := opts.Scale
	if scale <= 0 {
		for _, v := range y {
			scale += math.Abs(v)
		}
		scale /= float64(len(y))
		if scale == 0 {
			scale = 1
		}
	}
	budget := opts.Tolerance * scale

	best := m.Clone()
	// Try snapping each parameter independently, coarsest first; accept a
	// candidate when the resulting model stays within the error budget.
	params := len(m.Coef) + 1
	for p := 0; p < params; p++ {
		orig := getParam(best, p)
		for _, cand := range RoundCandidates(orig) {
			if cand == orig {
				break // already normal
			}
			trial := best.Clone()
			setParam(trial, p, cand)
			trial.Refit(x, y)
			if trial.MAE <= m.MAE+budget {
				best = trial
				break
			}
		}
	}
	best.Refit(x, y)
	return best
}

func getParam(m *Model, p int) float64 {
	if p < len(m.Coef) {
		return m.Coef[p]
	}
	return m.Intercept
}

func setParam(m *Model, p int, v float64) {
	if p < len(m.Coef) {
		m.Coef[p] = v
	} else {
		m.Intercept = v
	}
}

// RoundCandidates returns rounded versions of x ordered from coarsest to
// finest: zero first (the most normal constant of all — it removes a term),
// then 1–5 significant digits. The final candidate is x itself. Zero maps
// to just {0}.
func RoundCandidates(x float64) []float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return []float64{x}
	}
	out := []float64{0}
	seen := map[float64]bool{0: true}
	// Round to 1..5 significant digits.
	for digits := 1; digits <= 5; digits++ {
		r := RoundSig(x, digits)
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	if !seen[x] {
		out = append(out, x)
	}
	return out
}

// RoundSig rounds x to the given number of significant decimal digits.
// Negative powers of ten are applied by division (10⁵ is exact in binary
// floating point, 10⁻⁵ is not), so rounding 185000 to one digit yields
// exactly 200000 rather than 199999.99999999997.
func RoundSig(x float64, digits int) float64 {
	if x == 0 {
		return 0
	}
	p := float64(digits-1) - math.Floor(math.Log10(math.Abs(x)))
	if p >= 0 {
		mag := math.Pow(10, p)
		return math.Round(x*mag) / mag
	}
	div := math.Pow(10, -p)
	return math.Round(x/div) * div
}

// Roundness scores how "normal" a constant looks, in [0,1]: 1 for values
// that are already 1–2 significant digits (10%, 0.05, 1000), decreasing as
// more digits are needed to represent the value exactly. ChARLES uses it in
// the interpretability score: "Age > 25" beats "Age > 23.796".
func Roundness(x float64) float64 {
	if x == 0 {
		return 1
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	for digits := 1; digits <= 6; digits++ {
		r := RoundSig(x, digits)
		if closeEnough(r, x) {
			// digits=1 or 2 → 1.0, then decay.
			switch digits {
			case 1:
				return 1
			case 2:
				return 1
			case 3:
				return 0.75
			case 4:
				return 0.5
			case 5:
				return 0.3
			default:
				return 0.15
			}
		}
	}
	return 0.1
}

func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff == 0 {
		return true
	}
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
