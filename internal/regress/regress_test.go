package regress

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitExactLine(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 12; i++ {
		v := float64(i) * 100
		x = append(x, []float64{v})
		y = append(y, 1.05*v+1000)
	}
	m, err := Fit(x, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 1.05, 1e-9) || !almostEq(m.Intercept, 1000, 1e-6) {
		t.Errorf("coef=%v intercept=%v", m.Coef, m.Intercept)
	}
	if !almostEq(m.R2, 1, 1e-12) || m.MAE > 1e-6 || m.RMSE > 1e-6 {
		t.Errorf("diagnostics: R2=%v MAE=%v RMSE=%v", m.R2, m.MAE, m.RMSE)
	}
	if m.N != 12 {
		t.Errorf("N = %d", m.N)
	}
}

func TestFitMultiFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		a, b := rng.NormFloat64()*10, rng.NormFloat64()*10
		x = append(x, []float64{a, b})
		y = append(y, 2*a-3*b+7)
	}
	m, err := Fit(x, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 2, 1e-8) || !almostEq(m.Coef[1], -3, 1e-8) || !almostEq(m.Intercept, 7, 1e-8) {
		t.Errorf("model = %v + %v", m.Coef, m.Intercept)
	}
}

func TestFitNoIntercept(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{2, 4, 6}
	m, err := Fit(x, y, Options{Intercept: false})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 2, 1e-12) || m.Intercept != 0 {
		t.Errorf("no-intercept fit: %v + %v", m.Coef, m.Intercept)
	}
}

func TestFitDegenerateCases(t *testing.T) {
	if _, err := Fit(nil, nil, DefaultOptions()); err == nil {
		t.Error("empty fit accepted")
	}
	// 1 row, 2 params (slope+intercept), no ridge.
	if _, err := Fit([][]float64{{1}}, []float64{2}, Options{Intercept: true}); err == nil {
		t.Error("underdetermined fit without ridge accepted")
	}
	// Same with ridge: succeeds.
	if _, err := Fit([][]float64{{1}}, []float64{2}, Options{Intercept: true, Ridge: 1e-6}); err != nil {
		t.Errorf("ridge-backed underdetermined fit failed: %v", err)
	}
	// Mismatched lengths.
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, DefaultOptions()); err == nil {
		t.Error("length mismatch accepted")
	}
	// Ragged features.
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, DefaultOptions()); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestFitRejectsNonFinite(t *testing.T) {
	if _, err := Fit([][]float64{{math.NaN()}, {1}}, []float64{1, 2}, DefaultOptions()); err == nil {
		t.Error("NaN feature accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{math.Inf(1), 2}, DefaultOptions()); err == nil {
		t.Error("Inf target accepted")
	}
}

func TestFitConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{5, 5, 5}
	m, err := Fit(x, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.R2 != 1 {
		t.Errorf("constant target reproduced exactly should give R2=1, got %v", m.R2)
	}
}

func TestFitDuplicateRowsRankDeficientRidgeFallback(t *testing.T) {
	// Two identical x values: slope+intercept not identifiable; the default
	// options carry a tiny ridge fallback.
	x := [][]float64{{5}, {5}}
	y := []float64{10, 10}
	m, err := Fit(x, y, DefaultOptions())
	if err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
	if !almostEq(m.Predict([]float64{5}), 10, 1e-6) {
		t.Errorf("prediction = %v, want 10", m.Predict([]float64{5}))
	}
}

func TestResidualsAndPredict(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{1, 3, 5}
	m, err := Fit(x, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Residuals(x, y)
	for i, r := range res {
		if !almostEq(r, 0, 1e-9) {
			t.Errorf("residual[%d] = %v", i, r)
		}
	}
	if !almostEq(m.Predict([]float64{10}), 21, 1e-9) {
		t.Errorf("extrapolation = %v, want 21", m.Predict([]float64{10}))
	}
}

func TestCloneIndependence(t *testing.T) {
	m := &Model{Coef: []float64{1, 2}, Intercept: 3}
	c := m.Clone()
	c.Coef[0] = 99
	c.Intercept = 99
	if m.Coef[0] != 1 || m.Intercept != 3 {
		t.Error("Clone not deep")
	}
}

func TestEquationRendering(t *testing.T) {
	m := &Model{Coef: []float64{1.05, -2}, Intercept: 1000}
	eq := m.Equation([]string{"bonus", "salary"})
	if eq != "1.05×bonus - 2×salary + 1000" {
		t.Errorf("Equation = %q", eq)
	}
	m2 := &Model{Coef: []float64{0}, Intercept: -5}
	if got := m2.Equation([]string{"x"}); got != "-5" {
		t.Errorf("constant equation = %q", got)
	}
}

func TestRefitAfterManualEdit(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{2.1, 4.2, 6.3}
	m, err := Fit(x, y, Options{Intercept: false})
	if err != nil {
		t.Fatal(err)
	}
	m.Coef[0] = 2
	m.Refit(x, y)
	if m.MAE < 0.09 || m.MAE > 0.21 {
		t.Errorf("refit MAE = %v", m.MAE)
	}
}
