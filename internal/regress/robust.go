package regress

import (
	"math"
	"sort"
)

// RobustOptions configure outlier-trimmed fitting.
type RobustOptions struct {
	Base Options
	// MaxTrimFrac bounds the fraction of rows that may be discarded as
	// outliers (default 0.2).
	MaxTrimFrac float64
	// Threshold is the MAD multiple beyond which a residual is an outlier
	// (default 6).
	Threshold float64
	// Rounds is the number of trim-refit rounds (default 2).
	Rounds int
}

func (o RobustOptions) withDefaults() RobustOptions {
	if o.MaxTrimFrac <= 0 {
		o.MaxTrimFrac = 0.2
	}
	if o.Threshold <= 0 {
		o.Threshold = 6
	}
	if o.Rounds <= 0 {
		o.Rounds = 2
	}
	return o
}

// FitRobust fits an OLS model, then iteratively discards rows whose
// absolute residual exceeds Threshold × MAD (median absolute deviation of
// the residuals) and refits. This keeps a handful of off-policy edits —
// data-entry errors, manual adjustments — from dragging the fitted policy
// away from the true one. It never discards more than MaxTrimFrac of the
// rows; if trimming would, the untrimmed fit is returned.
//
// The returned keep mask marks the rows used in the final fit.
func FitRobust(x [][]float64, y []float64, opts RobustOptions) (*Model, []bool, error) {
	opts = opts.withDefaults()
	m, err := Fit(x, y, opts.Base)
	if err != nil {
		return nil, nil, err
	}
	n := len(y)
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	maxTrim := int(opts.MaxTrimFrac * float64(n))
	if maxTrim == 0 {
		return m, keep, nil
	}
	for round := 0; round < opts.Rounds; round++ {
		resid := make([]float64, 0, n)
		for i := range y {
			if keep[i] {
				resid = append(resid, math.Abs(y[i]-m.Predict(x[i])))
			}
		}
		mad := median(resid)
		// All-but-exact fits: use a floor so numeric dust is not "outlying".
		floor := 1e-9 * scaleAbs(y)
		cut := opts.Threshold * mad
		if cut < floor {
			cut = floor
		}
		trimmed := 0
		newKeep := make([]bool, n)
		for i := range y {
			newKeep[i] = keep[i]
			if keep[i] && math.Abs(y[i]-m.Predict(x[i])) > cut {
				newKeep[i] = false
				trimmed++
			}
		}
		if trimmed == 0 {
			break
		}
		total := 0
		for _, k := range newKeep {
			if !k {
				total++
			}
		}
		if total > maxTrim {
			break // too many outliers: distrust the trimming, keep the fit
		}
		var tx [][]float64
		var ty []float64
		for i := range y {
			if newKeep[i] {
				tx = append(tx, x[i])
				ty = append(ty, y[i])
			}
		}
		m2, err := Fit(tx, ty, opts.Base)
		if err != nil {
			break
		}
		m = m2
		keep = newKeep
	}
	// Diagnostics over all rows, so MAE reflects what the model explains
	// including the rows it refused to chase.
	m.Refit(x, y)
	return m, keep, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

func scaleAbs(y []float64) float64 {
	s := 0.0
	for _, v := range y {
		s += math.Abs(v)
	}
	if len(y) == 0 {
		return 1
	}
	s /= float64(len(y))
	if s == 0 {
		return 1
	}
	return s
}
