// Package regress implements ordinary least squares regression on top of
// internal/linalg, plus the coefficient "snapping" used by ChARLES to trade
// a little accuracy for a lot of interpretability (5% beats 4.973%).
//
// Models here are the transformation half of a conditional transformation:
// new_target = Σ coefᵢ·featureᵢ + intercept.
package regress

import (
	"errors"
	"fmt"
	"math"

	"charles/internal/linalg"
)

// ErrDegenerate is returned when a fit is impossible (no rows, or fewer rows
// than parameters and ridge disabled).
var ErrDegenerate = errors.New("regress: degenerate fit (too few rows for parameters)")

// Options control model fitting.
type Options struct {
	// Intercept adds a constant term (default true via DefaultOptions).
	Intercept bool
	// Ridge is the fallback L2 regularization strength used only when the
	// unregularized system is rank deficient. 0 disables the fallback.
	Ridge float64
}

// DefaultOptions fits with an intercept and a tiny ridge fallback.
func DefaultOptions() Options { return Options{Intercept: true, Ridge: 1e-8} }

// Model is a fitted linear model y ≈ X·Coef + Intercept.
type Model struct {
	Coef      []float64 // one per feature column
	Intercept float64
	N         int // rows used

	// Fit diagnostics over the training rows.
	R2   float64 // coefficient of determination (1 for perfect fit)
	RMSE float64
	MAE  float64 // mean absolute error (the paper's L1 accuracy basis)
}

// Fit computes the least-squares model of y on the feature matrix x
// (x[i][j] = feature j of row i). Rows containing NaN/Inf in x or y are
// rejected with an error: the table layer is responsible for filtering.
func Fit(x [][]float64, y []float64, opts Options) (*Model, error) {
	n := len(y)
	if len(x) != n {
		return nil, fmt.Errorf("regress: %d feature rows vs %d targets", len(x), n)
	}
	if n == 0 {
		return nil, ErrDegenerate
	}
	d := 0
	if n > 0 {
		d = len(x[0])
	}
	p := d
	if opts.Intercept {
		p++
	}
	if n < p && opts.Ridge == 0 {
		return nil, ErrDegenerate
	}
	for i := 0; i < n; i++ {
		if len(x[i]) != d {
			return nil, fmt.Errorf("regress: ragged feature row %d (%d vs %d)", i, len(x[i]), d)
		}
		for _, v := range x[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("regress: non-finite feature at row %d", i)
			}
		}
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return nil, fmt.Errorf("regress: non-finite target at row %d", i)
		}
	}

	// Degenerate but legal: zero features + intercept = fit the mean.
	if p == 0 {
		return nil, ErrDegenerate
	}

	a := linalg.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			a.Set(i, j, x[i][j])
		}
		if opts.Intercept {
			a.Set(i, d, 1)
		}
	}
	var beta []float64
	var err error
	if n >= p {
		beta, err = linalg.SolveLS(a, y)
		if errors.Is(err, linalg.ErrSingular) && opts.Ridge > 0 {
			beta, err = linalg.SolveRidge(a, y, opts.Ridge)
		}
	} else {
		// Fewer rows than parameters: only the ridge-regularized problem is
		// well posed (its augmented system is square-or-tall by design).
		beta, err = linalg.SolveRidge(a, y, opts.Ridge)
	}
	if err != nil {
		return nil, fmt.Errorf("regress: %w", err)
	}

	m := &Model{Coef: beta[:d], N: n}
	if opts.Intercept {
		m.Intercept = beta[d]
	}
	m.computeDiagnostics(x, y)
	return m, nil
}

// Predict evaluates the model on one feature vector.
func (m *Model) Predict(features []float64) float64 {
	s := m.Intercept
	for j, c := range m.Coef {
		s += c * features[j]
	}
	return s
}

// Residuals returns yᵢ − ŷᵢ for each row.
func (m *Model) Residuals(x [][]float64, y []float64) []float64 {
	out := make([]float64, len(y))
	for i := range y {
		out[i] = y[i] - m.Predict(x[i])
	}
	return out
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := *m
	c.Coef = append([]float64(nil), m.Coef...)
	return &c
}

// computeDiagnostics fills R2, RMSE and MAE from the training data.
func (m *Model) computeDiagnostics(x [][]float64, y []float64) {
	n := len(y)
	if n == 0 {
		return
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var sse, sst, sae float64
	for i := range y {
		r := y[i] - m.Predict(x[i])
		sse += r * r
		sae += math.Abs(r)
		dv := y[i] - mean
		sst += dv * dv
	}
	m.RMSE = math.Sqrt(sse / float64(n))
	m.MAE = sae / float64(n)
	if sst == 0 {
		// Constant target: R² is 1 when we reproduce it exactly, else 0.
		if sse < 1e-18 {
			m.R2 = 1
		} else {
			m.R2 = 0
		}
		return
	}
	m.R2 = 1 - sse/sst
}

// Refit re-evaluates diagnostics after coefficients were modified (e.g. by
// snapping), without re-solving.
func (m *Model) Refit(x [][]float64, y []float64) {
	m.computeDiagnostics(x, y)
	m.N = len(y)
}

// Equation renders the model as a human-readable right-hand side,
// e.g. "1.05×bonus + 1000" for names = ["bonus"].
func (m *Model) Equation(names []string) string {
	out := ""
	for j, c := range m.Coef {
		name := fmt.Sprintf("x%d", j)
		if j < len(names) {
			name = names[j]
		}
		if c == 0 {
			continue
		}
		term := fmt.Sprintf("%s×%s", trimFloat(c), name)
		if out == "" {
			out = term
		} else if c >= 0 {
			out += " + " + term
		} else {
			out += " - " + fmt.Sprintf("%s×%s", trimFloat(-c), name)
		}
	}
	switch {
	case out == "":
		out = trimFloat(m.Intercept)
	case m.Intercept > 0:
		out += " + " + trimFloat(m.Intercept)
	case m.Intercept < 0:
		out += " - " + trimFloat(-m.Intercept)
	}
	return out
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.6g", x)
	return s
}
