package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func wellSeparated1D() []float64 {
	// Three tight groups around 0, 100, 200.
	var vals []float64
	rng := rand.New(rand.NewSource(1))
	for _, center := range []float64{0, 100, 200} {
		for i := 0; i < 20; i++ {
			vals = append(vals, center+rng.NormFloat64())
		}
	}
	return vals
}

func TestKMeans1DSeparatesGroups(t *testing.T) {
	vals := wellSeparated1D()
	res, err := KMeans1D(vals, 3, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	// Every group of 20 must share one label.
	for g := 0; g < 3; g++ {
		first := res.Labels[g*20]
		for i := 1; i < 20; i++ {
			if res.Labels[g*20+i] != first {
				t.Fatalf("group %d split across clusters", g)
			}
		}
	}
	if res.Inertia > float64(len(vals))*9 {
		t.Errorf("inertia too high: %v", res.Inertia)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	vals := wellSeparated1D()
	a, err := KMeans1D(vals, 3, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans1D(vals, 3, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestKMeansLabelsSortedBySize(t *testing.T) {
	// 30 points near 0, 10 near 100: cluster 0 must be the big one.
	var vals []float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		vals = append(vals, rng.NormFloat64())
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 100+rng.NormFloat64())
	}
	res, err := KMeans1D(vals, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes[0] != 30 || res.Sizes[1] != 10 {
		t.Errorf("sizes = %v, want [30 10]", res.Sizes)
	}
	if res.Labels[0] != 0 {
		t.Error("majority group should be cluster 0")
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, Options{}); err == nil {
		t.Error("no points accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, Options{}); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	res, err := KMeans([][]float64{{1}, {2}}, 5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Errorf("K should clamp to n: %d", res.K)
	}
}

func TestKMeansMultiDim(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts [][]float64
	for _, c := range [][]float64{{0, 0}, {50, 50}} {
		for i := 0; i < 25; i++ {
			pts = append(pts, []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
		}
	}
	res, err := KMeans(pts, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] == res.Labels[25] {
		t.Error("2-D clusters not separated")
	}
}

func TestKMeansInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		k := 1 + rng.Intn(4)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 50
		}
		res, err := KMeans1D(vals, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		// Labels in range, sizes sum to n, inertia non-negative, sizes
		// non-increasing.
		total := 0
		for _, s := range res.Sizes {
			total += s
		}
		if total != n || res.Inertia < 0 {
			return false
		}
		for i := 1; i < len(res.Sizes); i++ {
			if res.Sizes[i] > res.Sizes[i-1] {
				return false
			}
		}
		for _, l := range res.Labels {
			if l < 0 || l >= res.K {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestKMeansMoreClustersNeverWorse(t *testing.T) {
	vals := wellSeparated1D()
	prev := math.Inf(1)
	for k := 1; k <= 4; k++ {
		res, err := KMeans1D(vals, k, Options{Seed: 9, Restarts: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.001 {
			t.Errorf("k=%d inertia %v worse than k-1 %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestChooseKFindsThree(t *testing.T) {
	vals := wellSeparated1D()
	res, err := ChooseK1D(vals, 6, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Errorf("ChooseK picked %d, want 3", res.K)
	}
}

func TestChooseKSingleCluster(t *testing.T) {
	// Homogeneous data: the BIC penalty should keep k small.
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	res, err := ChooseK1D(vals, 5, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("ChooseK picked %d for homogeneous data", res.K)
	}
}

func TestChooseKErrors(t *testing.T) {
	if _, err := ChooseK(nil, 3, Options{}); err == nil {
		t.Error("no points accepted")
	}
	if _, err := ChooseK([][]float64{{1}}, 0, Options{}); err == nil {
		t.Error("kmax=0 accepted")
	}
}

func TestSilhouette(t *testing.T) {
	pts := [][]float64{{0}, {1}, {100}, {101}}
	labels := []int{0, 0, 1, 1}
	s := Silhouette(pts, labels, 2)
	if s < 0.9 {
		t.Errorf("well-separated silhouette = %v, want near 1", s)
	}
	bad := []int{0, 1, 0, 1}
	if Silhouette(pts, bad, 2) >= s {
		t.Error("bad clustering should have lower silhouette")
	}
	if Silhouette(pts, labels, 1) != 0 {
		t.Error("k=1 silhouette should be 0")
	}
}

func TestDuplicatePointsDoNotCrash(t *testing.T) {
	vals := []float64{5, 5, 5, 5, 5}
	res, err := KMeans1D(vals, 3, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical points inertia = %v", res.Inertia)
	}
}
