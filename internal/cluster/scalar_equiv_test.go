package cluster

import (
	"math/rand"
	"testing"
)

func TestScalarMatchesBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(300)
		vals := make([]float64, n)
		pts := make([][]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			pts[i] = []float64{vals[i]}
		}
		k := 1 + rng.Intn(5)
		opts := Options{Seed: int64(trial)}
		a, err := KMeans1D(vals, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := KMeans(pts, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Inertia != b.Inertia || a.K != b.K || a.Iters != b.Iters || a.Converged != b.Converged {
			t.Fatalf("trial %d: scalar %+v vs boxed %+v", trial, a, b)
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				t.Fatalf("trial %d: label %d differs", trial, i)
			}
		}
		for c := range a.Centers {
			if a.Centers[c][0] != b.Centers[c][0] {
				t.Fatalf("trial %d: center %d differs", trial, c)
			}
		}
	}
}
