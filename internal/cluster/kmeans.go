// Package cluster implements k-means clustering with k-means++ seeding and
// automatic selection of k. ChARLES clusters the one-dimensional residuals
// of a global regression to discover candidate data partitions, so the
// package provides both a 1-D convenience path and a general d-dim
// implementation, plus silhouette-based selection of k.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Result holds the outcome of a k-means run.
type Result struct {
	K         int
	Labels    []int       // cluster id per point, in input order
	Centers   [][]float64 // K × d centroids
	Inertia   float64     // Σ squared distance to assigned centroid
	Iters     int         // iterations until convergence
	Sizes     []int       // points per cluster
	Converged bool
}

// Options configure a k-means run.
type Options struct {
	MaxIters int   // default 100
	Restarts int   // independent seedings; best inertia wins (default 4)
	Seed     int64 // RNG seed for reproducibility
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
	return o
}

// KMeans clusters d-dimensional points into k clusters (Lloyd's algorithm,
// k-means++ seeding, multiple restarts). Deterministic for a fixed seed.
func KMeans(points [][]float64, k int, opts Options) (*Result, error) {
	n := len(points)
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k > n {
		k = n
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	var best *Result
	for r := 0; r < opts.Restarts; r++ {
		res := runLloyd(points, k, opts.MaxIters, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	relabelBySize(best)
	return best, nil
}

// KMeans1D clusters scalar values — the shape the ChARLES residual-
// clustering step calls in its inner loop. It is a dedicated scalar
// implementation rather than a boxing wrapper around KMeans: the engine
// runs it once per (T, k) candidate, and allocating one []float64 per point
// dominated the whole pipeline's allocation profile. The arithmetic mirrors
// runLloyd/seedPlusPlus exactly (same RNG consumption, same operation
// order), so results are bit-identical to the boxed path.
func KMeans1D(values []float64, k int, opts Options) (*Result, error) {
	n := len(values)
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k > n {
		k = n
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	var best *Result
	for r := 0; r < opts.Restarts; r++ {
		res := runLloyd1D(values, k, opts.MaxIters, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	relabelBySize(best)
	return best, nil
}

func runLloyd1D(values []float64, k, maxIters int, rng *rand.Rand) *Result {
	n := len(values)
	centers := seedPlusPlus1D(values, k, rng)
	labels := make([]int, n)
	sizes := make([]int, k)
	res := &Result{K: k}
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, v := range values {
			bi, bd := 0, math.Inf(1)
			for c := range centers {
				dd := sq(v - centers[c])
				if dd < bd {
					bi, bd = c, dd
				}
			}
			if labels[i] != bi {
				labels[i] = bi
				changed = true
			}
		}
		if iter > 0 && !changed {
			res.Converged = true
			res.Iters = iter
			break
		}
		for c := range centers {
			centers[c] = 0
			sizes[c] = 0
		}
		for i, v := range values {
			c := labels[i]
			sizes[c]++
			centers[c] += v
		}
		for c := range centers {
			if sizes[c] == 0 {
				fi, fd := 0, -1.0
				for i, v := range values {
					dd := sq(v - centers[labels[i]])
					if dd > fd {
						fi, fd = i, dd
					}
				}
				centers[c] = values[fi]
				continue
			}
			inv := 1 / float64(sizes[c])
			centers[c] *= inv
		}
		res.Iters = iter + 1
	}
	inertia := 0.0
	for c := range sizes {
		sizes[c] = 0
	}
	for i, v := range values {
		bi, bd := 0, math.Inf(1)
		for c := range centers {
			dd := sq(v - centers[c])
			if dd < bd {
				bi, bd = c, dd
			}
		}
		labels[i] = bi
		sizes[bi]++
		inertia += bd
	}
	res.Labels = labels
	res.Sizes = sizes
	res.Inertia = inertia
	res.Centers = make([][]float64, k)
	for c, v := range centers {
		res.Centers[c] = []float64{v}
	}
	return res
}

// sq mirrors sqDist for d = 1 (0 + d·d, the identical float sequence).
func sq(d float64) float64 { return d * d }

// seedPlusPlus1D mirrors seedPlusPlus on scalars with the same RNG calls.
func seedPlusPlus1D(values []float64, k int, rng *rand.Rand) []float64 {
	n := len(values)
	centers := make([]float64, 0, k)
	centers = append(centers, values[rng.Intn(n)])
	dist := make([]float64, n)
	for len(centers) < k {
		total := 0.0
		for i, v := range values {
			dd := math.Inf(1)
			for _, c := range centers {
				if d := sq(v - c); d < dd {
					dd = d
				}
			}
			dist[i] = dd
			total += dd
		}
		var chosen int
		if total == 0 {
			chosen = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			chosen = n - 1
			for i, dd := range dist {
				acc += dd
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		centers = append(centers, values[chosen])
	}
	return centers
}

func runLloyd(points [][]float64, k, maxIters int, rng *rand.Rand) *Result {
	n, d := len(points), len(points[0])
	centers := seedPlusPlus(points, k, rng)
	labels := make([]int, n)
	sizes := make([]int, k)
	res := &Result{K: k}
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		// Assignment step.
		for i, p := range points {
			bi, bd := 0, math.Inf(1)
			for c := range centers {
				dd := sqDist(p, centers[c])
				if dd < bd {
					bi, bd = c, dd
				}
			}
			if labels[i] != bi {
				labels[i] = bi
				changed = true
			}
		}
		if iter > 0 && !changed {
			res.Converged = true
			res.Iters = iter
			break
		}
		// Update step.
		for c := range centers {
			for j := 0; j < d; j++ {
				centers[c][j] = 0
			}
			sizes[c] = 0
		}
		for i, p := range points {
			c := labels[i]
			sizes[c]++
			for j := 0; j < d; j++ {
				centers[c][j] += p[j]
			}
		}
		for c := range centers {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its center.
				fi, fd := 0, -1.0
				for i, p := range points {
					dd := sqDist(p, centers[labels[i]])
					if dd > fd {
						fi, fd = i, dd
					}
				}
				copy(centers[c], points[fi])
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := 0; j < d; j++ {
				centers[c][j] *= inv
			}
		}
		res.Iters = iter + 1
	}
	// Final assignment + inertia.
	inertia := 0.0
	for c := range sizes {
		sizes[c] = 0
	}
	for i, p := range points {
		bi, bd := 0, math.Inf(1)
		for c := range centers {
			dd := sqDist(p, centers[c])
			if dd < bd {
				bi, bd = c, dd
			}
		}
		labels[i] = bi
		sizes[bi]++
		inertia += bd
	}
	res.Labels = labels
	res.Centers = centers
	res.Sizes = sizes
	res.Inertia = inertia
	return res
}

// seedPlusPlus picks k initial centers with the k-means++ distribution.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centers = append(centers, append([]float64(nil), first...))
	dist := make([]float64, n)
	for len(centers) < k {
		total := 0.0
		for i, p := range points {
			dd := math.Inf(1)
			for _, c := range centers {
				if v := sqDist(p, c); v < dd {
					dd = v
				}
			}
			dist[i] = dd
			total += dd
		}
		var chosen int
		if total == 0 {
			chosen = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			chosen = n - 1
			for i, dd := range dist {
				acc += dd
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points[chosen]...))
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// relabelBySize renumbers clusters so that cluster 0 is the largest; this
// makes downstream output deterministic and stable across seeds.
func relabelBySize(r *Result) {
	order := make([]int, r.K)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if r.Sizes[order[a]] != r.Sizes[order[b]] {
			return r.Sizes[order[a]] > r.Sizes[order[b]]
		}
		// Tie-break on first center coordinate for determinism.
		return r.Centers[order[a]][0] < r.Centers[order[b]][0]
	})
	remap := make([]int, r.K)
	for newID, oldID := range order {
		remap[oldID] = newID
	}
	for i, l := range r.Labels {
		r.Labels[i] = remap[l]
	}
	newCenters := make([][]float64, r.K)
	newSizes := make([]int, r.K)
	for oldID, newID := range remap {
		newCenters[newID] = r.Centers[oldID]
		newSizes[newID] = r.Sizes[oldID]
	}
	r.Centers = newCenters
	r.Sizes = newSizes
}

// silhouetteAccept is the minimum mean silhouette for a multi-cluster
// solution to beat the single-cluster default. Splitting homogeneous 1-D
// data at its median yields silhouettes around 0.55, so 0.6 separates real
// structure from inertia-chasing splits.
const silhouetteAccept = 0.6

// silhouetteSample caps the points used for silhouette evaluation (which is
// quadratic); a uniform stride subsample preserves cluster proportions.
const silhouetteSample = 512

// ChooseK runs k-means for k = 1..kmax and selects the k with the best mean
// silhouette, defaulting to k = 1 when no multi-cluster solution is
// convincingly separated. (Raw inertia keeps improving with k — splitting a
// single Gaussian nearly triples the fit — so an elbow/BIC rule on inertia
// alone over-segments; silhouette measures separation directly.)
func ChooseK(points [][]float64, kmax int, opts Options) (*Result, error) {
	if kmax <= 0 {
		return nil, fmt.Errorf("cluster: kmax must be positive, got %d", kmax)
	}
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	results := make([]*Result, 0, kmax)
	for k := 1; k <= kmax && k <= n; k++ {
		res, err := KMeans(points, k, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	if len(results) == 1 {
		return results[0], nil
	}
	// Subsample for the quadratic silhouette pass.
	stride := 1
	if n > silhouetteSample {
		stride = (n + silhouetteSample - 1) / silhouetteSample
	}
	var subPts [][]float64
	for i := 0; i < n; i += stride {
		subPts = append(subPts, points[i])
	}
	best := results[0] // k = 1 default
	bestSil := silhouetteAccept
	for _, res := range results[1:] {
		var subLabels []int
		for i := 0; i < n; i += stride {
			subLabels = append(subLabels, res.Labels[i])
		}
		if sil := Silhouette(subPts, subLabels, res.K); sil > bestSil {
			best, bestSil = res, sil
		}
	}
	return best, nil
}

// ChooseK1D is ChooseK for scalar values.
func ChooseK1D(values []float64, kmax int, opts Options) (*Result, error) {
	pts := make([][]float64, len(values))
	for i, v := range values {
		pts[i] = []float64{v}
	}
	return ChooseK(pts, kmax, opts)
}

// Silhouette computes the mean silhouette coefficient of a clustering
// (in [-1, 1], higher = better separated). O(n²); intended for tests and
// small diagnostic runs, not the hot path.
func Silhouette(points [][]float64, labels []int, k int) float64 {
	n := len(points)
	if n == 0 || k <= 1 {
		return 0
	}
	total, counted := 0.0, 0
	for i := 0; i < n; i++ {
		sumBy := make([]float64, k)
		cntBy := make([]int, k)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := math.Sqrt(sqDist(points[i], points[j]))
			sumBy[labels[j]] += d
			cntBy[labels[j]]++
		}
		own := labels[i]
		if cntBy[own] == 0 {
			continue // singleton cluster: silhouette undefined
		}
		a := sumBy[own] / float64(cntBy[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || cntBy[c] == 0 {
				continue
			}
			if v := sumBy[c] / float64(cntBy[c]); v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
