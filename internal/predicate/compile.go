package predicate

import (
	"fmt"
	"sync"
	"sync/atomic"

	"charles/internal/table"
)

// This file is the columnar fast path of the condition language. The naive
// path (Atom.Eval / Predicate.Mask) resolves the column by name and
// dispatches on the operator for every row; the engine evaluates the same
// atoms against the same table thousands of times per run (once per
// candidate summary), so here each atom is compiled once — column resolved,
// categorical constants translated to dictionary codes — and evaluated over
// the whole column into a Bitset. Conjunctions reduce to word-wise ANDs,
// and a Cache shares the per-atom bitsets across every candidate in a run.

// CompileAtom evaluates the atom over every row of t into a fresh bitset.
// The result bit r equals Atom.Eval(t, r) for all rows.
func CompileAtom(a Atom, t *table.Table) (Bitset, error) {
	col, err := t.Column(a.Attr)
	if err != nil {
		return nil, err
	}
	n := t.NumRows()
	out := NewBitset(n)
	nulls := col.Nulls()
	if a.Numeric {
		switch a.Op {
		case Lt, Ge, Eq, Ne:
		default:
			return nil, fmt.Errorf("predicate: numeric atom with operator %s", a.Op)
		}
		// Numeric atoms over a non-numeric column fall back to the boxed
		// accessor (NaN), matching Atom.Eval exactly.
		at := col.Float
		if vals := col.FloatView(); vals != nil {
			at = func(r int) float64 { return vals[r] }
		}
		for r := 0; r < n; r++ {
			if nulls[r] {
				continue
			}
			x := at(r)
			var ok bool
			switch a.Op {
			case Lt:
				ok = x < a.Num
			case Ge:
				ok = x >= a.Num
			case Eq:
				ok = x == a.Num
			case Ne:
				ok = x != a.Num
			}
			if ok {
				out.Set(r)
			}
		}
		return out, nil
	}
	codes, dict := col.Codes()
	switch a.Op {
	case Eq, Ne:
		want, present := col.Code(a.Str)
		for r := 0; r < n; r++ {
			if nulls[r] {
				continue
			}
			match := present && codes[r] == want
			if a.Op == Ne {
				match = !match
			}
			if match {
				out.Set(r)
			}
		}
	case In:
		inSet := make([]bool, len(dict))
		for _, s := range a.Set {
			if c, ok := col.Code(s); ok {
				inSet[c] = true
			}
		}
		for r := 0; r < n; r++ {
			if !nulls[r] && inSet[codes[r]] {
				out.Set(r)
			}
		}
	default:
		return nil, fmt.Errorf("predicate: categorical atom with operator %s", a.Op)
	}
	return out, nil
}

// Compiled is a predicate resolved against one table: every atom has been
// materialized as a bitset, so evaluating the conjunction costs one AND per
// atom per 64 rows.
type Compiled struct {
	n     int
	atoms []Bitset
}

// Compile resolves every atom of p against t. The compiled form is immutable
// and safe for concurrent use.
func Compile(p Predicate, t *table.Table) (*Compiled, error) {
	c := &Compiled{n: t.NumRows()}
	for _, a := range p.Atoms {
		bs, err := CompileAtom(a, t)
		if err != nil {
			return nil, err
		}
		c.atoms = append(c.atoms, bs)
	}
	return c, nil
}

// Rows returns the number of rows the predicate was compiled against.
func (c *Compiled) Rows() int { return c.n }

// Mask writes the conjunction into dst (reallocated only when too small)
// and returns it. The empty predicate matches every row.
func (c *Compiled) Mask(dst Bitset) Bitset {
	dst = sized(dst, c.n)
	if len(c.atoms) == 0 {
		dst.Fill(c.n)
		return dst
	}
	dst.CopyFrom(c.atoms[0])
	for _, a := range c.atoms[1:] {
		dst.And(a)
	}
	return dst
}

// sized returns dst if it already holds enough words for n rows, else a
// fresh bitset — the zero-realloc contract of the scoring path.
func sized(dst Bitset, n int) Bitset {
	words := (n + 63) / 64
	if cap(dst) < words {
		return make(Bitset, words)
	}
	return dst[:words]
}

// Cache shares materialized atom bitsets across all candidate evaluations of
// a run. The engine enumerates thousands of (C, T, k) candidates whose
// conditions reuse a small set of distinct atoms (edu = PhD recurs in
// hundreds of summaries), so each atom is compiled exactly once, keyed by
// its canonical form. Safe for concurrent use.
type Cache struct {
	t *table.Table
	n int

	mu     sync.RWMutex // read-locked on warm hits so workers don't serialize
	atoms  map[string]Bitset
	hits   atomic.Uint64
	misses uint64
}

// NewCache returns an empty atom-bitmap cache bound to t.
func NewCache(t *table.Table) *Cache {
	return &Cache{t: t, n: t.NumRows(), atoms: map[string]Bitset{}}
}

// Rows returns the number of rows of the cached table.
func (c *Cache) Rows() int { return c.n }

// AtomMask returns the bitset of rows matching a, materializing it on first
// use. The returned bitset is shared: callers must not modify it.
func (c *Cache) AtomMask(a Atom) (Bitset, error) {
	// The key is built on the stack; the string(k) map lookup is
	// allocation-free (the conversion only materializes on insert), which
	// keeps warm-cache scoring at zero allocations.
	var kb [64]byte
	k := a.appendKey(kb[:0])
	c.mu.RLock()
	bs, ok := c.atoms[string(k)]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return bs, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if bs, ok := c.atoms[string(k)]; ok { // raced with another materializer
		c.hits.Add(1)
		return bs, nil
	}
	bs, err := CompileAtom(a, c.t)
	if err != nil {
		return nil, err
	}
	c.misses++
	c.atoms[string(k)] = bs
	return bs, nil
}

// Mask evaluates the conjunction p into dst (reallocated only when too
// small) via the cached atom bitsets and returns it.
func (c *Cache) Mask(p Predicate, dst Bitset) (Bitset, error) {
	dst = sized(dst, c.n)
	if len(p.Atoms) == 0 {
		dst.Fill(c.n)
		return dst, nil
	}
	for i, a := range p.Atoms {
		bs, err := c.AtomMask(a)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			dst.CopyFrom(bs)
		} else {
			dst.And(bs)
		}
	}
	return dst, nil
}

// Stats reports cache effectiveness: hits (atom lookups served from the
// cache) and misses (atoms materialized).
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits.Load(), c.misses
}

// Size returns the number of distinct atoms materialized so far.
func (c *Cache) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.atoms)
}
