package predicate

import (
	"strings"
	"testing"

	"charles/internal/table"
)

func parseSchema(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "edu", Type: table.String},
		{Name: "exp", Type: table.Int},
		{Name: "pay", Type: table.Float},
	})
	tbl.MustAppendRow(table.S("PhD"), table.I(2), table.F(230000))
	tbl.MustAppendRow(table.S("MS"), table.I(5), table.F(160000))
	return tbl
}

func TestParseSimpleEquality(t *testing.T) {
	tbl := parseSchema(t)
	p, err := Parse("edu = PhD", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "edu = PhD" {
		t.Errorf("parsed = %q", p)
	}
	ok, err := p.Eval(tbl, 0)
	if err != nil || !ok {
		t.Errorf("eval = %v, %v", ok, err)
	}
}

func TestParseConjunctionVariants(t *testing.T) {
	tbl := parseSchema(t)
	for _, in := range []string{
		"edu = MS && exp >= 3",
		"edu = MS and exp >= 3",
		"edu = MS AND exp ≥ 3",
		"edu = MS ∧ exp >= 3",
		"edu == 'MS' && exp >= 3.0",
	} {
		p, err := Parse(in, tbl)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(p.Atoms) != 2 {
			t.Fatalf("%q parsed to %d atoms", in, len(p.Atoms))
		}
		ok, err := p.Eval(tbl, 1)
		if err != nil || !ok {
			t.Errorf("%q should match row 1: %v, %v", in, ok, err)
		}
		ok, _ = p.Eval(tbl, 0)
		if ok {
			t.Errorf("%q should not match row 0", in)
		}
	}
}

func TestParseNumericAndNegation(t *testing.T) {
	tbl := parseSchema(t)
	p, err := Parse("pay < 200000 && edu != PhD", tbl)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := p.Eval(tbl, 1)
	if !ok {
		t.Error("row 1 should match")
	}
	p2, err := Parse("exp ≥ 3", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Atoms[0].Op != Ge || p2.Atoms[0].Num != 3 {
		t.Errorf("unicode ≥ parse: %+v", p2.Atoms[0])
	}
	// Negative thresholds parse.
	p3, err := Parse("pay >= -100", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Atoms[0].Num != -100 {
		t.Errorf("negative threshold: %+v", p3.Atoms[0])
	}
}

func TestParseInList(t *testing.T) {
	tbl := parseSchema(t)
	p, err := Parse("edu in (PhD, 'MS')", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if p.Atoms[0].Op != In || len(p.Atoms[0].Set) != 2 {
		t.Errorf("in-list: %+v", p.Atoms[0])
	}
	for r := 0; r < 2; r++ {
		ok, _ := p.Eval(tbl, r)
		if !ok {
			t.Errorf("row %d should match the in-list", r)
		}
	}
}

func TestParseQuotedStringsWithSpaces(t *testing.T) {
	tbl := table.MustNew(table.Schema{{Name: "dept", Type: table.String}})
	tbl.MustAppendRow(table.S("Fire and Rescue"))
	p, err := Parse(`dept = "Fire and Rescue"`, tbl)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := p.Eval(tbl, 0)
	if !ok {
		t.Error("quoted value with spaces should match")
	}
}

func TestParseEmptyIsTrue(t *testing.T) {
	tbl := parseSchema(t)
	p, err := Parse("", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsTrue() {
		t.Error("empty input should parse to TRUE")
	}
}

func TestParseErrors(t *testing.T) {
	tbl := parseSchema(t)
	cases := []struct {
		in   string
		hint string
	}{
		{"ghost = 1", "no column"},
		{"edu < 3", "categorical"},
		{"exp = MS", "numeric"},
		{"exp > 3", "half-open"},
		{"exp <= 3", "half-open"},
		{"edu in ()", "empty in-list"},
		{"edu in (PhD", "unterminated"},
		{"edu =", "missing value"},
		{"= PhD", "attribute name"},
		{"edu = 'unterminated", "unterminated string"},
		{"edu ~ PhD", "unexpected character"},
		{"exp in (1,2)", "categorical"},
		{"edu = MS exp >= 3", "&&"},
	}
	for _, c := range cases {
		_, err := Parse(c.in, tbl)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.in)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.hint)) {
			t.Errorf("Parse(%q) error %q missing hint %q", c.in, err, c.hint)
		}
	}
}

func TestParseRoundTripsEngineOutput(t *testing.T) {
	// Everything the engine renders (minus the ∧ joins it shares with the
	// parser) must parse back to a semantically identical predicate.
	tbl := parseSchema(t)
	preds := []Predicate{
		{Atoms: []Atom{StrAtom("edu", Eq, "PhD")}},
		{Atoms: []Atom{StrAtom("edu", Eq, "MS"), NumAtom("exp", Lt, 3)}},
		{Atoms: []Atom{NumAtom("pay", Ge, 130000), NumAtom("pay", Lt, 220000)}},
		{Atoms: []Atom{StrAtom("edu", Ne, "BS")}},
	}
	for _, p := range preds {
		back, err := Parse(p.String(), tbl)
		if err != nil {
			t.Fatalf("round-trip %q: %v", p.String(), err)
		}
		if !back.Equal(p) {
			t.Errorf("round-trip changed semantics: %q → %q", p, back)
		}
	}
}
