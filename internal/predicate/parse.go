package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"charles/internal/table"
)

// Parse converts a textual condition into a Predicate, resolving operand
// types against the table schema. The grammar is the conjunctive fragment
// the engine itself emits:
//
//	cond   := atom { ("&&" | "and" | "∧") atom }
//	atom   := ident op value
//	op     := "=" | "==" | "!=" | "≠" | "<" | ">=" | "≥" | "in"
//	value  := number | quoted string | bare word | "(" list ")"   (in only)
//
// Numeric attributes accept numeric comparisons; categorical attributes
// accept =, !=, and in. `>` and `<=` are normalized into the engine's
// half-open Lt/Ge forms (x > v ⇒ ¬(x < v) has no direct encoding, so they
// are rejected with a hint instead — the induced conditions never use them).
func Parse(input string, schema *table.Table) (Predicate, error) {
	toks, err := lex(input)
	if err != nil {
		return Predicate{}, err
	}
	p := &parser{toks: toks, schema: schema}
	pred, err := p.parse()
	if err != nil {
		return Predicate{}, fmt.Errorf("predicate: %w", err)
	}
	return pred, nil
}

type token struct {
	kind string // ident, op, number, string, lparen, rparen, comma, and
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	rs := []rune(s)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{"lparen", "("})
			i++
		case r == ')':
			toks = append(toks, token{"rparen", ")"})
			i++
		case r == ',':
			toks = append(toks, token{"comma", ","})
			i++
		case r == '\'' || r == '"':
			quote := r
			j := i + 1
			var sb strings.Builder
			for j < len(rs) && rs[j] != quote {
				sb.WriteRune(rs[j])
				j++
			}
			if j >= len(rs) {
				return nil, fmt.Errorf("predicate: unterminated string at offset %d", i)
			}
			toks = append(toks, token{"string", sb.String()})
			i = j + 1
		case r == '∧':
			toks = append(toks, token{"and", "&&"})
			i++
		case r == '≥':
			toks = append(toks, token{"op", ">="})
			i++
		case r == '≠':
			toks = append(toks, token{"op", "!="})
			i++
		case strings.ContainsRune("=!<>&", r):
			j := i
			for j < len(rs) && strings.ContainsRune("=!<>&", rs[j]) {
				j++
			}
			op := string(rs[i:j])
			if op == "&&" {
				toks = append(toks, token{"and", op})
			} else {
				toks = append(toks, token{"op", op})
			}
			i = j
		case unicode.IsDigit(r) || r == '-' || r == '+' || r == '.':
			j := i
			for j < len(rs) && (unicode.IsDigit(rs[j]) || strings.ContainsRune(".eE+-", rs[j])) {
				// Stop a sign that starts a new token (e.g. "a=1 -b" is not
				// expected in this grammar, so greedy is fine).
				j++
			}
			toks = append(toks, token{"number", string(rs[i:j])})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			word := string(rs[i:j])
			switch strings.ToLower(word) {
			case "and":
				toks = append(toks, token{"and", word})
			case "in":
				toks = append(toks, token{"op", "in"})
			default:
				toks = append(toks, token{"ident", word})
			}
			i = j
		default:
			return nil, fmt.Errorf("predicate: unexpected character %q at offset %d", r, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks   []token
	pos    int
	schema *table.Table
}

func (p *parser) peek() *token {
	if p.pos >= len(p.toks) {
		return nil
	}
	return &p.toks[p.pos]
}

func (p *parser) next() *token {
	t := p.peek()
	if t != nil {
		p.pos++
	}
	return t
}

func (p *parser) parse() (Predicate, error) {
	if len(p.toks) == 0 {
		return True(), nil
	}
	var pred Predicate
	for {
		atom, err := p.parseAtom()
		if err != nil {
			return Predicate{}, err
		}
		pred = pred.And(atom)
		t := p.peek()
		if t == nil {
			break
		}
		if t.kind != "and" {
			return Predicate{}, fmt.Errorf("expected '&&' before %q", t.text)
		}
		p.next()
	}
	return pred.Normalize(), nil
}

func (p *parser) parseAtom() (Atom, error) {
	t := p.next()
	if t == nil || t.kind != "ident" {
		return Atom{}, fmt.Errorf("expected attribute name, got %v", tokText(t))
	}
	attr := t.text
	col, err := p.schema.Column(attr)
	if err != nil {
		return Atom{}, err
	}
	opTok := p.next()
	if opTok == nil || opTok.kind != "op" {
		return Atom{}, fmt.Errorf("expected operator after %q, got %v", attr, tokText(opTok))
	}
	numeric := col.Type.Numeric()
	switch opTok.text {
	case "=", "==":
		return p.equalityAtom(attr, numeric, Eq)
	case "!=":
		return p.equalityAtom(attr, numeric, Ne)
	case "<":
		return p.thresholdAtom(attr, numeric, Lt)
	case ">=":
		return p.thresholdAtom(attr, numeric, Ge)
	case ">", "<=":
		return Atom{}, fmt.Errorf("operator %q is not in the condition language; use '<' or '>=' (half-open splits)", opTok.text)
	case "in":
		return p.inAtom(attr, numeric)
	default:
		return Atom{}, fmt.Errorf("unknown operator %q", opTok.text)
	}
}

func (p *parser) equalityAtom(attr string, numeric bool, op Op) (Atom, error) {
	v := p.next()
	if v == nil {
		return Atom{}, fmt.Errorf("missing value after %q", attr)
	}
	if numeric {
		if v.kind != "number" {
			return Atom{}, fmt.Errorf("attribute %q is numeric; got %q", attr, v.text)
		}
		x, err := strconv.ParseFloat(v.text, 64)
		if err != nil {
			return Atom{}, fmt.Errorf("bad number %q", v.text)
		}
		return NumAtom(attr, op, x), nil
	}
	if v.kind != "string" && v.kind != "ident" && v.kind != "number" {
		return Atom{}, fmt.Errorf("bad value %q for attribute %q", v.text, attr)
	}
	return StrAtom(attr, op, v.text), nil
}

func (p *parser) thresholdAtom(attr string, numeric bool, op Op) (Atom, error) {
	if !numeric {
		return Atom{}, fmt.Errorf("attribute %q is categorical; '<' and '>=' need a numeric attribute", attr)
	}
	v := p.next()
	if v == nil || v.kind != "number" {
		return Atom{}, fmt.Errorf("expected number after threshold operator on %q", attr)
	}
	x, err := strconv.ParseFloat(v.text, 64)
	if err != nil {
		return Atom{}, fmt.Errorf("bad number %q", v.text)
	}
	return NumAtom(attr, op, x), nil
}

func (p *parser) inAtom(attr string, numeric bool) (Atom, error) {
	if numeric {
		return Atom{}, fmt.Errorf("'in' requires a categorical attribute; %q is numeric", attr)
	}
	if t := p.next(); t == nil || t.kind != "lparen" {
		return Atom{}, fmt.Errorf("expected '(' after in")
	}
	var vals []string
	for {
		v := p.next()
		if v == nil {
			return Atom{}, fmt.Errorf("unterminated in-list for %q", attr)
		}
		if v.kind == "rparen" {
			break
		}
		if v.kind == "comma" {
			continue
		}
		if v.kind != "string" && v.kind != "ident" && v.kind != "number" {
			return Atom{}, fmt.Errorf("bad in-list value %q", v.text)
		}
		vals = append(vals, v.text)
	}
	if len(vals) == 0 {
		return Atom{}, fmt.Errorf("empty in-list for %q", attr)
	}
	return SetAtom(attr, vals), nil
}

func tokText(t *token) string {
	if t == nil {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}
