package predicate

import "math/bits"

// Bitset is a fixed-size row mask packed 64 rows per word. It is the
// currency of the compiled-predicate layer: atoms materialize into bitsets
// once, and conjunctions become word-wise ANDs instead of per-row
// interface dispatch. Bits beyond the logical length are kept zero, so
// whole-word operations (Count, Equal) need no tail masking.
type Bitset []uint64

// NewBitset returns a zeroed bitset with capacity for n rows.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Test reports whether bit i is set.
func (b Bitset) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Zero clears every bit.
func (b Bitset) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// Fill sets the first n bits and clears the rest.
func (b Bitset) Fill(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	b.trim(n)
}

// trim clears bits at positions ≥ n.
func (b Bitset) trim(n int) {
	if w := n >> 6; w < len(b) {
		if r := uint(n) & 63; r != 0 {
			b[w] &= (1 << r) - 1
			w++
		}
		for ; w < len(b); w++ {
			b[w] = 0
		}
	}
}

// CopyFrom overwrites b with o (equal lengths assumed).
func (b Bitset) CopyFrom(o Bitset) { copy(b, o) }

// And intersects b with o in place.
func (b Bitset) And(o Bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

// AndNot removes o's bits from b in place.
func (b Bitset) AndNot(o Bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// Or unions o into b in place.
func (b Bitset) Or(o Bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether two bitsets have identical bits.
func (b Bitset) Equal(o Bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i, w := range b {
		if w != o[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn with every set bit index in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Bools expands the first n bits into dst (grown as needed) and returns it;
// the bridge between the compiled path and []bool consumers.
func (b Bitset) Bools(dst []bool, n int) []bool {
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = b.Test(i)
	}
	return dst
}
