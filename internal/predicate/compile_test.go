package predicate

import (
	"fmt"
	"math/rand"
	"testing"

	"charles/internal/table"
)

// randomTable builds a table with every column type and ~10% nulls.
func randomTable(rng *rand.Rand, n int) *table.Table {
	t := table.MustNew(table.Schema{
		{Name: "f", Type: table.Float},
		{Name: "i", Type: table.Int},
		{Name: "s", Type: table.String},
		{Name: "b", Type: table.Bool},
	})
	cats := []string{"red", "green", "blue", "violet"}
	for r := 0; r < n; r++ {
		vals := []table.Value{
			table.F(float64(rng.Intn(20)) / 2),
			table.I(int64(rng.Intn(10))),
			table.S(cats[rng.Intn(len(cats))]),
			table.B(rng.Intn(2) == 0),
		}
		for c := range vals {
			if rng.Float64() < 0.1 {
				vals[c] = table.Null(t.Schema()[c].Type)
			}
		}
		t.MustAppendRow(vals...)
	}
	return t
}

// randomAtom draws an atom over the random table's columns, including
// values absent from the data.
func randomAtom(rng *rand.Rand) Atom {
	switch rng.Intn(5) {
	case 0:
		return NumAtom("f", Lt, float64(rng.Intn(22))/2-0.5)
	case 1:
		return NumAtom("i", Ge, float64(rng.Intn(12)-1))
	case 2:
		vals := []string{"red", "green", "blue", "violet", "absent"}
		return StrAtom("s", Eq, vals[rng.Intn(len(vals))])
	case 3:
		vals := []string{"red", "green", "blue", "violet", "absent"}
		return StrAtom("s", Ne, vals[rng.Intn(len(vals))])
	default:
		pool := []string{"red", "green", "absent", "true", "false"}
		k := 1 + rng.Intn(3)
		set := make([]string, k)
		for i := range set {
			set[i] = pool[rng.Intn(len(pool))]
		}
		attr := "s"
		if rng.Intn(2) == 0 {
			attr = "b"
		}
		return SetAtom(attr, set)
	}
}

// TestCompiledMatchesNaive is the differential lock on the vectorized path:
// compiled atom bitsets and cached conjunction masks must agree with the
// row-at-a-time Eval on randomized tables with nulls.
func TestCompiledMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tbl := randomTable(rng, 10+rng.Intn(200))
		cache := NewCache(tbl)
		for pi := 0; pi < 10; pi++ {
			p := Predicate{}
			for len(p.Atoms) < rng.Intn(4) {
				p = p.And(randomAtom(rng))
			}
			want, err := p.Mask(tbl)
			if err != nil {
				t.Fatal(err)
			}
			// Standalone compile.
			cp, err := Compile(p, tbl)
			if err != nil {
				t.Fatal(err)
			}
			got := cp.Mask(nil)
			for r := range want {
				if got.Test(r) != want[r] {
					t.Fatalf("trial %d: Compile row %d: got %v want %v (pred %s)", trial, r, got.Test(r), want[r], p)
				}
			}
			// Cached path.
			cgot, err := cache.Mask(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !cgot.Equal(got) {
				t.Fatalf("trial %d: cache mask differs from compiled mask (pred %s)", trial, p)
			}
		}
	}
}

// TestCacheHitAccounting locks the "each distinct atom materialized exactly
// once" contract.
func TestCacheHitAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := randomTable(rng, 50)
	cache := NewCache(tbl)

	a1 := NumAtom("f", Lt, 3)
	a2 := StrAtom("s", Eq, "red")
	p := Predicate{Atoms: []Atom{a1, a2}}

	if _, err := cache.Mask(p, nil); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("after first mask: hits=%d misses=%d, want 0/2", hits, misses)
	}
	// Re-evaluating the same predicate (and its atoms individually) must be
	// all hits.
	for i := 0; i < 5; i++ {
		if _, err := cache.Mask(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cache.AtomMask(a1); err != nil {
		t.Fatal(err)
	}
	hits, misses = cache.Stats()
	if misses != 2 {
		t.Fatalf("misses grew on repeat evaluation: %d", misses)
	}
	if hits != 11 {
		t.Fatalf("hits = %d, want 11 (5 masks × 2 atoms + 1 direct)", hits)
	}
	if cache.Size() != 2 {
		t.Fatalf("cache size = %d, want 2", cache.Size())
	}
}

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	o := NewBitset(130)
	o.Fill(130)
	if o.Count() != 130 {
		t.Fatalf("fill count = %d", o.Count())
	}
	o.And(b)
	if !o.Equal(b) {
		t.Fatal("fill∧b != b")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if fmt.Sprint(got) != "[0 64 129]" {
		t.Fatalf("ForEach = %v", got)
	}
	bools := b.Bools(nil, 130)
	for i, v := range bools {
		if v != b.Test(i) {
			t.Fatalf("Bools[%d] mismatch", i)
		}
	}
	b.AndNot(b)
	if b.Count() != 0 {
		t.Fatal("AndNot self not empty")
	}
}

// TestFillKeepsTailZero guards the whole-word invariant Count/Equal rely on.
func TestFillKeepsTailZero(t *testing.T) {
	b := NewBitset(70)
	b.Fill(70)
	if b.Count() != 70 {
		t.Fatalf("count = %d, want 70", b.Count())
	}
	if b[1]>>6 != 0 {
		t.Fatal("bits above logical length are set")
	}
}
