// Package predicate implements the condition language of ChARLES: conjunctive
// predicates over table attributes. A condition is the "why" half of a
// conditional transformation — it identifies the data partition a
// transformation applies to, e.g. `edu = MS ∧ exp < 3`.
package predicate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"charles/internal/table"
)

// Op is a comparison operator.
type Op int

// Supported operators. Numeric attributes use Lt/Ge (the decision-tree
// induction only produces half-open splits); categorical attributes use
// Eq/Ne/In.
const (
	Eq Op = iota // attr = value (categorical)
	Ne           // attr ≠ value (categorical)
	Lt           // attr < threshold (numeric)
	Ge           // attr ≥ threshold (numeric)
	In           // attr ∈ {set} (categorical)
)

// String returns the operator's display form.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "≠"
	case Lt:
		return "<"
	case Ge:
		return "≥"
	case In:
		return "∈"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Atom is a single comparison against one attribute.
type Atom struct {
	Attr    string
	Op      Op
	Num     float64  // threshold for Lt/Ge
	Str     string   // value for Eq/Ne
	Set     []string // values for In (sorted)
	Numeric bool     // true when the atom compares numerically
}

// NumAtom builds a numeric threshold atom.
func NumAtom(attr string, op Op, threshold float64) Atom {
	return Atom{Attr: attr, Op: op, Num: threshold, Numeric: true}
}

// StrAtom builds a categorical equality/inequality atom.
func StrAtom(attr string, op Op, value string) Atom {
	return Atom{Attr: attr, Op: op, Str: value}
}

// SetAtom builds a set-membership atom.
func SetAtom(attr string, values []string) Atom {
	s := append([]string(nil), values...)
	sort.Strings(s)
	return Atom{Attr: attr, Op: In, Set: s}
}

// Eval evaluates the atom against row r of t. Rows with nulls in the tested
// attribute never match.
func (a Atom) Eval(t *table.Table, r int) (bool, error) {
	col, err := t.Column(a.Attr)
	if err != nil {
		return false, err
	}
	if col.IsNull(r) {
		return false, nil
	}
	if a.Numeric {
		x := col.Float(r)
		switch a.Op {
		case Lt:
			return x < a.Num, nil
		case Ge:
			return x >= a.Num, nil
		case Eq:
			return x == a.Num, nil
		case Ne:
			return x != a.Num, nil
		default:
			return false, fmt.Errorf("predicate: numeric atom with operator %s", a.Op)
		}
	}
	s := col.Str(r)
	switch a.Op {
	case Eq:
		return s == a.Str, nil
	case Ne:
		return s != a.Str, nil
	case In:
		i := sort.SearchStrings(a.Set, s)
		return i < len(a.Set) && a.Set[i] == s, nil
	default:
		return false, fmt.Errorf("predicate: categorical atom with operator %s", a.Op)
	}
}

// String renders the atom, e.g. "edu = PhD" or "exp < 3".
func (a Atom) String() string {
	if a.Numeric {
		return fmt.Sprintf("%s %s %s", a.Attr, a.Op, formatNum(a.Num))
	}
	if a.Op == In {
		return fmt.Sprintf("%s ∈ {%s}", a.Attr, strings.Join(a.Set, ", "))
	}
	return fmt.Sprintf("%s %s %s", a.Attr, a.Op, a.Str)
}

func formatNum(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', 6, 64)
}

// key is a canonical form used for fingerprinting and dedup.
func (a Atom) key() string {
	if a.Numeric {
		return fmt.Sprintf("%s|%d|%.12g", a.Attr, a.Op, a.Num)
	}
	if a.Op == In {
		return fmt.Sprintf("%s|in|%s", a.Attr, strings.Join(a.Set, ","))
	}
	return fmt.Sprintf("%s|%d|%s", a.Attr, a.Op, a.Str)
}

// Predicate is a conjunction of atoms. The empty predicate is TRUE (it
// matches every row) — used for global, unconditional transformations.
type Predicate struct {
	Atoms []Atom
}

// True returns the always-true predicate.
func True() Predicate { return Predicate{} }

// And returns a predicate extended with an extra atom (receiver unchanged).
func (p Predicate) And(a Atom) Predicate {
	atoms := make([]Atom, 0, len(p.Atoms)+1)
	atoms = append(atoms, p.Atoms...)
	atoms = append(atoms, a)
	return Predicate{Atoms: atoms}
}

// IsTrue reports whether the predicate matches all rows trivially.
func (p Predicate) IsTrue() bool { return len(p.Atoms) == 0 }

// Eval evaluates the conjunction against row r.
func (p Predicate) Eval(t *table.Table, r int) (bool, error) {
	for _, a := range p.Atoms {
		ok, err := a.Eval(t, r)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Mask evaluates the predicate over all rows of t.
func (p Predicate) Mask(t *table.Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for r := range out {
		ok, err := p.Eval(t, r)
		if err != nil {
			return nil, err
		}
		out[r] = ok
	}
	return out, nil
}

// Rows returns the indices of matching rows.
func (p Predicate) Rows(t *table.Table) ([]int, error) {
	var rows []int
	for r := 0; r < t.NumRows(); r++ {
		ok, err := p.Eval(t, r)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Coverage returns the fraction of rows of t that match (0 for empty t).
func (p Predicate) Coverage(t *table.Table) (float64, error) {
	if t.NumRows() == 0 {
		return 0, nil
	}
	rows, err := p.Rows(t)
	if err != nil {
		return 0, err
	}
	return float64(len(rows)) / float64(t.NumRows()), nil
}

// Complexity counts the number of atoms (the paper's "fewer descriptors"
// interpretability criterion).
func (p Predicate) Complexity() int { return len(p.Atoms) }

// Attrs returns the distinct attributes referenced, sorted.
func (p Predicate) Attrs() []string {
	seen := map[string]bool{}
	for _, a := range p.Atoms {
		seen[a.Attr] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Normalize merges redundant atoms: multiple Lt atoms on one attribute keep
// only the tightest bound, likewise Ge; duplicate categorical atoms collapse;
// Ne atoms implied by an Eq atom on the same attribute are dropped
// (edu = MS subsumes edu ≠ PhD). Contradictory categorical equalities are
// preserved (the predicate simply matches nothing). The result is sorted
// canonically.
func (p Predicate) Normalize() Predicate {
	lt := map[string]float64{}
	ge := map[string]float64{}
	eqAttr := map[string]string{}
	for _, a := range p.Atoms {
		if !a.Numeric && a.Op == Eq {
			eqAttr[a.Attr] = a.Str
		}
	}
	var rest []Atom
	seen := map[string]bool{}
	for _, a := range p.Atoms {
		switch {
		case a.Numeric && a.Op == Lt:
			if cur, ok := lt[a.Attr]; !ok || a.Num < cur {
				lt[a.Attr] = a.Num
			}
		case a.Numeric && a.Op == Ge:
			if cur, ok := ge[a.Attr]; !ok || a.Num > cur {
				ge[a.Attr] = a.Num
			}
		default:
			if !a.Numeric && a.Op == Ne {
				if v, ok := eqAttr[a.Attr]; ok && v != a.Str {
					continue // implied by the equality on this attribute
				}
			}
			if !seen[a.key()] {
				seen[a.key()] = true
				rest = append(rest, a)
			}
		}
	}
	var atoms []Atom
	atoms = append(atoms, rest...)
	for attr, v := range ge {
		atoms = append(atoms, NumAtom(attr, Ge, v))
	}
	for attr, v := range lt {
		atoms = append(atoms, NumAtom(attr, Lt, v))
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].key() < atoms[j].key() })
	return Predicate{Atoms: atoms}
}

// String renders the conjunction, e.g. "edu = MS ∧ exp < 3"; TRUE when empty.
func (p Predicate) String() string {
	if p.IsTrue() {
		return "TRUE"
	}
	parts := make([]string, len(p.Atoms))
	for i, a := range p.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Fingerprint returns a canonical identity string (normalization applied),
// so semantically equal predicates compare equal.
func (p Predicate) Fingerprint() string {
	n := p.Normalize()
	keys := make([]string, len(n.Atoms))
	for i, a := range n.Atoms {
		keys[i] = a.key()
	}
	return strings.Join(keys, "&")
}

// Equal reports semantic equality via fingerprints.
func (p Predicate) Equal(o Predicate) bool { return p.Fingerprint() == o.Fingerprint() }
